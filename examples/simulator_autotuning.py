"""Contribution I: autotuning with simulators instead of the target hardware.

The example tunes the same Conv2D+Bias+ReLU kernel twice with the
Auto-Scheduler flow:

* once measuring every candidate natively on the (modelled) board — the
  classic flow, whose wall-clock cost is dominated by the measurement
  protocol (15 repetitions + 1 s cooldown per candidate);
* once measuring on the instruction-accurate :class:`SimulatorRunner`
  (here with the raw executed-instruction score, i.e. without a trained
  predictor), which needs no access to the board at all.

It then validates the simulator-chosen schedule natively and reports the
break-even parallelism K from Equation 4.

Run with:  python examples/simulator_autotuning.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.autotune import LocalRunner, SimulatorRunner
from repro.autotune.sketch import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.codegen import Target, build_program
from repro.hardware import TargetBoard
from repro.metrics import SpeedupModel
from repro.sim import TraceOptions
from repro.te.lower import lower
from repro.workloads import conv2d_bias_relu_workload, scaled_group_params

ARCH = "riscv"
TRIALS = 24


def native_time_of(candidate, task, board, target):
    """Measure one candidate natively (undisturbed time, no noise)."""
    schedule = candidate.apply(task.output_tensors)
    func = lower(schedule, task.arg_tensors, name="validate")
    program = build_program(func, target, name="validate")
    return board.undisturbed_time(program).seconds, program


def main() -> None:
    params = scaled_group_params(1, scale=0.2)  # a scaled Table II group 1 layer
    target = Target.from_name(ARCH)
    trace_options = TraceOptions(max_accesses=100_000)
    board = TargetBoard(ARCH, trace_options=trace_options, seed=0)

    print(f"Tuning Conv2D+Bias+ReLU {params} on {ARCH} ({TRIALS} trials)\n")

    # --- classic flow: native measurements -------------------------------
    task = SearchTask(conv2d_bias_relu_workload, params.as_args(), target, name="native_flow")
    native_policy = SketchPolicy(
        task, TuningOptions(num_measure_trials=TRIALS, num_measures_per_round=8, seed=0),
        cost_model=RandomCostModel(seed=0),
    )
    native_best = native_policy.search(runner=LocalRunner(board))
    native_cost_s = sum(record.result.all_cost for record in native_policy.records)
    print("Native-measurement flow:")
    print(f"  best measured t_ref      : {min(r.cost for r in native_policy.records) * 1e3:.3f} ms")
    print(f"  total benchmarking cost  : {native_cost_s:.0f} s of board time\n")

    # --- the paper's flow: parallel simulators ----------------------------
    task_sim = SearchTask(conv2d_bias_relu_workload, params.as_args(), target, name="sim_flow")
    simulator_runner = SimulatorRunner(ARCH, n_parallel=16, trace_options=trace_options)
    sim_policy = SketchPolicy(
        task_sim, TuningOptions(num_measure_trials=TRIALS, num_measures_per_round=8, seed=0),
        cost_model=RandomCostModel(seed=0),
    )
    sim_best = sim_policy.search(runner=simulator_runner)

    best_time, best_program = native_time_of(sim_best, task_sim, board, target)
    all_times = [
        native_time_of(r.candidate, task_sim, board, target)[0] for r in sim_policy.records
    ]
    # The stable facade runs the chosen schedule once more on the batched
    # fast path (served from the memo cache here — the tuner already
    # simulated it), returning the same bit-exact statistics.
    chosen = repro.simulate(best_program, ARCH, trace_options=trace_options)
    print("Simulator-based flow (no board needed during tuning):")
    print(f"  candidates simulated     : {len(sim_policy.records)}")
    print(f"  chosen schedule, insts   : {chosen.stats.get('cpu.num_insts'):.3e}")
    print(f"  chosen schedule, t_ref   : {best_time * 1e3:.3f} ms")
    print(f"  median candidate, t_ref  : {np.median(all_times) * 1e3:.3f} ms")
    print(f"  best candidate overall   : {min(all_times) * 1e3:.3f} ms\n")

    # --- Equation 4: how many parallel simulators break even? --------------
    # Project the scaled kernel to the full-size Table II group 1 layer: both
    # the instruction count and the native run time grow with the MAC count.
    model = SpeedupModel(simulator_mips=7.0)
    full = scaled_group_params(1, scale=1.0)
    work_ratio = full.macs() / params.macs()
    k_scaled = model.k_for(best_program.total_instructions(), best_time)
    k_full = model.k_for(
        best_program.total_instructions() * work_ratio, best_time * work_ratio
    )
    print(f"Equation 4: K = {k_scaled} at this reduced size, "
          f"K ~= {k_full} projected to the full-size layer")
    print("(the paper reports K in [3, 21] for the RISC-V board at full workload size)")


if __name__ == "__main__":
    main()

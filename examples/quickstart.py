"""Quickstart: define a kernel, schedule it, simulate it, time it natively.

This example walks through the building blocks of the library in ~60 lines:

1. define a Conv2D+Bias+ReLU kernel with the tensor-expression DSL,
2. apply a schedule (tiling + vectorisation),
3. compile it for an ISA and run it on the instruction-accurate simulator,
4. "measure" it on the modelled target board with the paper's protocol.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro import te
from repro.codegen import Target, build_program
from repro.hardware import TargetBoard
from repro.sim import TraceOptions
from repro.te import topi


def build_kernel():
    """Conv2D+Bias+ReLU (a small ResNet-style layer) in the TE DSL."""
    ifm = te.placeholder((1, 16, 28, 28), name="ifm")
    weights = te.placeholder((32, 16, 3, 3), name="weights")
    bias = te.placeholder((1, 32, 1, 1), name="bias")
    conv = topi.conv2d_nchw(ifm, weights, stride=1, padding=1)
    out = topi.relu(topi.bias_add(conv, bias))
    return [ifm, weights, bias, out], conv


def schedule_kernel(args, conv):
    """Tile the output channels and width, vectorise the innermost loop."""
    *_, out = args
    schedule = te.create_schedule(out)
    for stage in schedule.compute_stages():
        if stage.op.name.endswith(".pad"):
            stage.compute_inline()

    conv_stage = schedule[conv]
    n, co, oh, ow = conv.op.axis
    ci, kh, kw = conv.op.reduce_axis
    co_outer, co_inner = conv_stage.split(co, factor=8)
    ow_outer, ow_inner = conv_stage.split(ow, factor=7)
    conv_stage.reorder(n, co_outer, oh, ow_outer, ci, kh, kw, co_inner, ow_inner)
    conv_stage.vectorize(ow_inner)
    return schedule


def main() -> None:
    args, conv = build_kernel()
    schedule = schedule_kernel(args, conv)
    func = te.lower(schedule, args, name="conv2d_bias_relu")

    trace_options = TraceOptions(max_accesses=150_000)
    for arch in ("x86", "arm", "riscv"):
        target = Target.from_name(arch)
        program = build_program(func, target)

        # Instruction-accurate simulation: counts and cache behaviour, no
        # timing.  repro.simulate is the stable facade — it never raises for
        # a failed simulation (it returns a SimulationFailure record instead).
        simulation = repro.simulate(program, arch, trace_options=trace_options)
        stats = simulation.flat_stats()

        # Native measurement on the modelled board (15 reps, 1 s cooldown, median).
        board = TargetBoard(arch, trace_options=trace_options, seed=0)
        record = board.measure(program)

        print(f"=== {arch} ({target.triple}) ===")
        print(f"  executed instructions : {stats['cpu.num_insts']:.3e}")
        print(f"  load / store / branch : {stats['cpu.num_loads']:.3e} / "
              f"{stats['cpu.num_stores']:.3e} / {stats['cpu.num_branches']:.3e}")
        print(f"  L1D miss rate         : {stats['l1d.miss_rate'] * 100:.2f} %")
        print(f"  L2  miss rate         : {stats['l2.miss_rate'] * 100:.2f} %")
        print(f"  t_ref (median of 15)  : {record.median_s * 1e3:.3f} ms")
        print(f"  benchmarking cost     : {record.benchmarking_seconds:.1f} s "
              f"(protocol: 15 runs + cooldown)")
        print()


if __name__ == "__main__":
    main()

"""Template-based tuning (AutoTVM flow) with different tuners and runners.

The example tunes the paper's matrix-multiplication kernel (Listing 1/2) with
a user-defined schedule template and compares three tuners (random search,
genetic algorithm, cost-model guided) on top of the simulator runner, then
re-measures the winners natively.

Run with:  python examples/autotvm_template_tuning.py
"""

from __future__ import annotations


import repro.workloads  # noqa: F401  - registers the built-in templates
from repro.autotune import (
    GATuner,
    LocalBuilder,
    ModelBasedTuner,
    RandomTuner,
    SimulatorRunner,
    create_task,
    log_to_records,
)
from repro.codegen import Target, build_program
from repro.hardware import TargetBoard
from repro.sim import TraceOptions

ARCH = "x86"
SHAPE = (64, 64, 64)  # N, L, M
TRIALS = 32


def main() -> None:
    target = Target.from_name(ARCH)
    task = create_task("matmul", SHAPE, target)
    print(f"Tuning matmul{SHAPE} on {ARCH}: "
          f"design space has {len(task.config_space)} configurations\n")

    trace_options = TraceOptions(max_accesses=120_000)
    board = TargetBoard(ARCH, trace_options=trace_options, seed=0)

    tuners = {
        "random": RandomTuner(task, seed=0),
        "genetic": GATuner(task, population_size=16, seed=0),
        "cost-model": ModelBasedTuner(task, plan_size=16, seed=0),
    }

    print(f"{'tuner':<12} {'best score':>14} {'native t_ref':>14}")
    for name, tuner in tuners.items():
        records = []
        runner = SimulatorRunner(ARCH, n_parallel=8, trace_options=trace_options)
        tuner.tune(
            n_trial=TRIALS,
            runner=runner,
            builder=LocalBuilder(),
            batch_size=8,
            callbacks=[log_to_records(records)],
        )
        # Validate the chosen configuration natively.
        func = task.lower(tuner.best_config)
        program = build_program(func, target)
        native = board.measure(program)
        print(f"{name:<12} {tuner.best_cost:>14.4g} {native.median_s * 1e3:>11.3f} ms")

    print("\nEach tuner measured", TRIALS, "configurations on the simulator; only the")
    print("final winners were executed on the (modelled) target board.")


if __name__ == "__main__":
    main()

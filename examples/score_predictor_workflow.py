"""Contribution II: training and using a score predictor (Figure 4).

Phase I (training): many implementations of several kernel groups are run
both on the instruction-accurate simulator and natively on the target board;
the paired records train one score predictor per architecture.

Phase II (execution): a *new* kernel group is tuned using only simulators —
every candidate's simulator statistics are turned into a score by the trained
predictor.  The target CPU is not needed anymore; at the end, the top
predictions are optionally re-validated on the board (the paper shows the true
optimum is within the top 2-3 % of predictions).

Run with:  python examples/score_predictor_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro.autotune.sketch import TuningOptions
from repro.metrics import evaluate_predictions
from repro.pipeline import DatasetConfig, ExecutionPhase, TrainingPhase
from repro.predictor import PREDICTOR_NAMES, ScorePredictor
from repro.sim import TraceOptions
from repro.workloads import scaled_group_params

ARCH = "arm"
SCALE = 0.15
TRAIN_GROUPS = (1, 2, 4)
NEW_GROUP = 3  # tuned in the execution phase without touching the board


def main() -> None:
    # ----- Phase I: training -------------------------------------------------
    config = DatasetConfig(
        arch=ARCH,
        implementations_per_group=24,
        groups=TRAIN_GROUPS,
        scale=SCALE,
        trace_max_accesses=80_000,
        seed=0,
    )
    print(f"[phase I] generating training data on {ARCH} (groups {TRAIN_GROUPS}) ...")
    training = TrainingPhase(config, predictor_name="xgboost").run(verbose=True)
    dataset = training.dataset
    print(f"[phase I] {len(dataset)} paired (simulator stats, native time) records")

    # Compare the four predictor families on a held-out split, as in Tables III-V.
    train, test = dataset.train_test_split(test_fraction=0.25, seed=1)
    print("\nPredictor comparison on the held-out test set (lower is better):")
    print(f"{'predictor':<10} {'Etop1 %':>9} {'Qlow %':>8} {'Qhigh %':>8} {'Rtop1 %':>9}")
    for name in PREDICTOR_NAMES:
        predictor = ScorePredictor(name, seed=0).fit(train)
        all_metrics = []
        for group_id in test.group_ids():
            samples = test.group(group_id)
            scores = predictor.predict_dataset(samples, window="exact")
            times = [s.measured_time_s for s in samples]
            all_metrics.append(evaluate_predictions(times, scores))
        print(
            f"{name:<10} "
            f"{np.mean([m.e_top1 for m in all_metrics]):>9.1f} "
            f"{np.mean([m.q_low for m in all_metrics]):>8.1f} "
            f"{np.mean([m.q_high for m in all_metrics]):>8.1f} "
            f"{np.mean([m.r_top1 for m in all_metrics]):>9.1f}"
        )

    # ----- Phase II: execution (no board required) ----------------------------
    new_params = scaled_group_params(NEW_GROUP, SCALE)
    print(f"\n[phase II] tuning unseen group {NEW_GROUP} {new_params} with simulators only ...")
    phase = ExecutionPhase(
        training.predictor,
        arch=ARCH,
        params=new_params,
        trace_options=TraceOptions(max_accesses=80_000),
        options=TuningOptions(num_measure_trials=24, num_measures_per_round=8, seed=0),
        window="dynamic",
    )
    result = phase.run(validate_top_percent=10.0)

    validated = sorted(seconds for _, seconds in result.validated)
    print(f"[phase II] candidates explored      : {len(result.records)}")
    print(f"[phase II] validated top predictions: {[f'{s*1e3:.3f} ms' for s in validated]}")
    print(f"[phase II] best validated run time  : {result.best_validated_seconds * 1e3:.3f} ms")
    print("\nThe board was only used for the final validation of the top predictions,")
    print("mirroring the paper's conclusion that re-executing the top 2-3 % suffices.")


if __name__ == "__main__":
    main()

"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation (a table, a
figure or a quoted number).  Dataset generation — the expensive part — happens
once per architecture in a session fixture and is cached on disk under
``benchmarks/.cache``, so re-running the harness is cheap.

Scale knobs (environment variables):

* ``REPRO_BENCH_IMPLS``   — implementations per group (default 36; paper: 500)
* ``REPRO_BENCH_SCALE``   — workload scale factor      (default 0.18; paper: 1.0)
* ``REPRO_BENCH_REPEATS`` — training repetitions       (default 2; paper: 10)
* ``REPRO_BENCH_TRACE``   — simulated trace budget     (default 100000 accesses)

Results are printed and written to ``benchmarks/results/`` so they can be
compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.pipeline import DatasetConfig, ExperimentConfig, load_or_generate_dataset

BENCH_DIR = Path(__file__).parent
CACHE_DIR = BENCH_DIR / ".cache"
RESULTS_DIR = BENCH_DIR / "results"

IMPLEMENTATIONS = int(os.environ.get("REPRO_BENCH_IMPLS", "36"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.18"))
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
TRACE_BUDGET = int(os.environ.get("REPRO_BENCH_TRACE", "100000"))
GROUPS = (0, 1, 2, 3, 4)
ARCHS = ("x86", "arm", "riscv")


def experiment_config() -> ExperimentConfig:
    """The experiment configuration used by all prediction benchmarks."""
    return ExperimentConfig(
        implementations_per_group=IMPLEMENTATIONS,
        test_fraction=0.2,
        n_training_repeats=REPEATS,
        groups=GROUPS,
        scale=SCALE,
        trace_max_accesses=TRACE_BUDGET,
        seed=0,
    )


def dataset_config(arch: str) -> DatasetConfig:
    """The dataset configuration for one architecture."""
    return DatasetConfig(
        arch=arch,
        implementations_per_group=IMPLEMENTATIONS,
        groups=GROUPS,
        scale=SCALE,
        trace_max_accesses=TRACE_BUDGET,
        seed=0,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_experiment_config() -> ExperimentConfig:
    return experiment_config()


@pytest.fixture(scope="session")
def dataset_factory():
    """Factory returning the (cached) dataset of one architecture."""
    cache: dict = {}

    def get(arch: str):
        if arch not in cache:
            cache[arch] = load_or_generate_dataset(
                dataset_config(arch), cache_dir=CACHE_DIR, verbose=True
            )
        return cache[arch]

    return get


def write_result(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered result table and echo it to stdout."""
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")

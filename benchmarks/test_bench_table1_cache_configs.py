"""Table I: cache sizes and hierarchies of the evaluated CPUs.

The benchmark instantiates each Table I hierarchy, regenerates the table rows
from the instantiated caches (not from the config constants), and measures the
cost of driving a representative access stream through each hierarchy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import CACHE_HIERARCHIES, CacheHierarchy, cache_hierarchy_for
from repro.utils.tabulate import format_table

from benchmarks.conftest import write_result

#: Table I of the paper, as (arch, level) -> (size KiB, sets, associativity).
PAPER_TABLE1 = {
    ("x86", "l1d"): (32, 64, 8),
    ("x86", "l1i"): (32, 64, 8),
    ("x86", "l2"): (512, 1024, 8),
    ("x86", "l3"): (32768, 32768, 16),
    ("arm", "l1d"): (32, 256, 2),
    ("arm", "l1i"): (48, 256, 3),
    ("arm", "l2"): (1024, 1024, 16),
    ("riscv", "l1d"): (32, 64, 8),
    ("riscv", "l1i"): (32, 64, 8),
    ("riscv", "l2"): (2048, 2048, 16),
}


def _rows_from_instantiated_hierarchies():
    rows = []
    for arch in ("x86", "arm", "riscv"):
        hierarchy = cache_hierarchy_for(arch)
        for level, cache in hierarchy.all_caches().items():
            config = cache.config
            rows.append(
                (arch, level, config.size_bytes // 1024, config.sets, config.associativity)
            )
    return rows


def test_bench_table1(benchmark, results_dir):
    rows = benchmark(_rows_from_instantiated_hierarchies)

    # Every instantiated level must match the paper's Table I exactly.
    observed = {(arch, level): (size, sets, assoc) for arch, level, size, sets, assoc in rows}
    assert observed == PAPER_TABLE1

    text = format_table(
        ["arch", "level", "size KiB", "sets", "assoc"],
        rows,
        title="Table I - cache sizes and hierarchy of the used CPUs",
    )
    write_result(results_dir, "table1_cache_configs.txt", text)


@pytest.mark.parametrize("arch", ["x86", "arm", "riscv"])
def test_bench_table1_hierarchy_throughput(benchmark, arch):
    """Cost of simulating a mixed access stream on each Table I hierarchy."""
    hierarchy = CacheHierarchy(CACHE_HIERARCHIES[arch])
    rng = np.random.default_rng(0)
    addresses = (rng.integers(0, 1 << 22, size=20_000) * 4).astype(np.int64)
    writes = rng.random(20_000) < 0.3

    def run():
        hierarchy.access_data_batch(addresses, writes)
        return hierarchy.l1d.accesses

    total = benchmark(run)
    assert total >= 20_000

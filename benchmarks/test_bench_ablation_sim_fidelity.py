"""Ablation: how much simulator detail does the score predictor need?

The paper's premise is that *instruction-accurate* statistics (counts plus
cache behaviour, no timing) are enough to rank implementations.  This ablation
compares the learned predictor against two cheaper signals that need no cache
simulation at all: the raw executed-instruction count and the analytic FLOP
count (which is identical for every implementation of a group and therefore
carries no ranking information).
"""

from __future__ import annotations

import numpy as np

from repro.metrics import evaluate_predictions
from repro.predictor import ScorePredictor
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

from benchmarks.conftest import write_result

ARCH = "x86"


def _learned(dataset, config, repeats=2):
    metrics = []
    for repeat in range(repeats):
        train, test = dataset.train_test_split(
            config.test_fraction, seed=derive_seed(2, "ablation_fidelity", repeat)
        )
        predictor = ScorePredictor("xgboost", seed=repeat).fit(train)
        for group_id in test.group_ids():
            samples = test.group(group_id)
            scores = predictor.predict_dataset(samples, window="exact")
            times = [s.measured_time_s for s in samples]
            metrics.append(evaluate_predictions(times, scores))
    return metrics


def _baseline(dataset, config, stat_key, repeats=2):
    metrics = []
    for repeat in range(repeats):
        _, test = dataset.train_test_split(
            config.test_fraction, seed=derive_seed(2, "ablation_fidelity", repeat)
        )
        for group_id in test.group_ids():
            samples = test.group(group_id)
            scores = [s.flat_stats.get(stat_key, 0.0) for s in samples]
            times = [s.measured_time_s for s in samples]
            metrics.append(evaluate_predictions(times, scores))
    return metrics


def _summarise(metrics):
    return {
        "Etop1": float(np.mean([m.e_top1 for m in metrics])),
        "Rtop1": float(np.mean([m.r_top1 for m in metrics])),
        "Qlow": float(np.mean([m.q_low for m in metrics])),
    }


def test_bench_ablation_sim_fidelity(
    benchmark, dataset_factory, bench_experiment_config, results_dir
):
    dataset = dataset_factory(ARCH)

    def run():
        return {
            "learned score (counts + caches)": _summarise(
                _learned(dataset, bench_experiment_config)
            ),
            "instruction count only": _summarise(
                _baseline(dataset, bench_experiment_config, "cpu.num_insts")
            ),
            "memory references only": _summarise(
                _baseline(dataset, bench_experiment_config, "cpu.num_mem_refs")
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, d["Etop1"], d["Qlow"], d["Rtop1"]] for name, d in results.items()]
    text = format_table(
        ["score source", "Etop1 %", "Qlow %", "Rtop1 %"],
        rows,
        title=f"Ablation - simulator fidelity ({ARCH})",
    )
    write_result(results_dir, "ablation_sim_fidelity.txt", text)

    learned = results["learned score (counts + caches)"]
    baseline = results["instruction count only"]
    # The learned score must not be worse than the raw instruction count by a
    # large margin (it usually is substantially better).
    assert learned["Rtop1"] <= baseline["Rtop1"] + 15.0

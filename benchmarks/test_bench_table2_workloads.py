"""Table II: the Conv2D+Bias+ReLU kernel groups of the evaluation.

The benchmark regenerates the table from the workload definitions, checks the
shapes against the paper and measures the cost of building the compute DAG and
design space for each group (at reduced scale).
"""

from __future__ import annotations

import pytest

from repro.autotune.sketch import ComputeDAG, generate_sketches
from repro.utils.tabulate import format_table
from repro.workloads import (
    TABLE2_ROWS,
    conv2d_bias_relu_workload,
    group_params,
    scaled_group_params,
)

from benchmarks.conftest import SCALE, write_result

#: Table II of the paper: group -> (N, H, W, CO, CI, KH, KW, stride, pad).
PAPER_TABLE2 = {
    0: (1, 224, 224, 64, 3, 7, 7, (2, 2), (3, 3)),
    1: (1, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1)),
    2: (1, 56, 56, 128, 64, 3, 3, (2, 2), (1, 1)),
    3: (1, 28, 28, 256, 128, 3, 3, (2, 2), (1, 1)),
    4: (1, 14, 24, 512, 256, 3, 3, (2, 2), (1, 1)),
}


def test_bench_table2(benchmark, results_dir):
    rows = benchmark(lambda: list(TABLE2_ROWS))

    observed = {row[0]: tuple(row[1:]) for row in rows}
    assert observed == PAPER_TABLE2

    text = format_table(
        ["group", "N", "H", "W", "CO", "CI", "KH", "KW", "stride", "pad"],
        rows,
        title="Table II - shapes of the used Conv2D+Bias+ReLU kernels",
    )
    write_result(results_dir, "table2_workloads.txt", text)


@pytest.mark.parametrize("group_id", [0, 1, 2, 3, 4])
def test_bench_table2_design_space(benchmark, group_id):
    """Cost of deriving the compute DAG and sketches for one (scaled) group."""
    params = scaled_group_params(group_id, SCALE)

    def build():
        tensors = conv2d_bias_relu_workload(*params.as_args())
        dag = ComputeDAG([tensors[-1]])
        return len(generate_sketches(dag))

    n_sketches = benchmark(build)
    assert n_sketches >= 1


def test_bench_table2_macs_match_resnet_shapes(benchmark):
    """The full-size groups have the MAC counts implied by the paper's shapes."""
    benchmark(lambda: [group_params(gid).macs() for gid in range(5)])
    expected_macs = {
        0: 1 * 64 * 112 * 112 * 3 * 7 * 7,
        1: 1 * 64 * 56 * 56 * 64 * 3 * 3,
        2: 1 * 128 * 28 * 28 * 64 * 3 * 3,
        3: 1 * 256 * 14 * 14 * 128 * 3 * 3,
        4: 1 * 512 * 7 * 12 * 256 * 3 * 3,
    }
    for group_id, macs in expected_macs.items():
        assert group_params(group_id).macs() == macs

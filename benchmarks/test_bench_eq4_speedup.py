"""Equation 4: break-even parallelism K of simulator-based autotuning.

The paper reports K ranges of [7, 97] for x86, [4, 31] for ARM and [3, 21] for
RISC-V with N_exe = 15 and a 1 s cooldown.  This benchmark recomputes K from
the full-size Table II workloads: the simulation time is estimated from the
analytically exact instruction counts at a gem5-atomic-like simulation rate,
and the native benchmarking time follows the measurement protocol on the
modelled boards.
"""

from __future__ import annotations

import pytest

from repro.pipeline import speedup_summary
from repro.utils.tabulate import format_table

from benchmarks.conftest import write_result

#: K ranges quoted in Section IV of the paper.
PAPER_K_RANGES = {"x86": (7, 97), "arm": (4, 31), "riscv": (3, 21)}


@pytest.fixture(scope="module")
def summary():
    # Full-size shapes (scale=1.0): instruction counts are analytic, and the
    # board characterisation uses a bounded trace, so this stays fast.
    return speedup_summary(
        archs=("x86", "arm", "riscv"),
        groups=(0, 1, 2, 3, 4),
        scale=1.0,
        n_schedules=3,
        trace_max_accesses=120_000,
    )


def test_bench_eq4_speedup(benchmark, summary, results_dir):
    def k_ranges():
        return {arch: (data["k_min"], data["k_max"]) for arch, data in summary.items()}

    observed = benchmark(k_ranges)

    rows = []
    for arch, (k_min, k_max) in observed.items():
        paper_min, paper_max = PAPER_K_RANGES[arch]
        rows.append([arch, k_min, k_max, paper_min, paper_max])
    text = format_table(
        ["arch", "K min", "K max", "paper K min", "paper K max"],
        rows,
        title="Equation 4 - break-even parallel simulator instances",
    )
    write_result(results_dir, "eq4_speedup.txt", text)

    # Shape of the result: parallel simulation is hardest to justify on the
    # fast x86 board and easiest on the slow RISC-V board.
    assert observed["x86"][1] >= observed["arm"][1] >= observed["riscv"][1]
    assert observed["riscv"][0] <= observed["arm"][0] <= observed["x86"][0]
    # K stays within an order of magnitude of the paper's ranges.
    for arch, (k_min, k_max) in observed.items():
        assert 1 <= k_min <= 40
        assert k_max <= 1000


def test_bench_eq4_workload_details(benchmark, summary, results_dir):
    def collect():
        return [
            (arch, entry["group"], entry["K"])
            for arch, data in summary.items()
            for entry in data["workloads"]
        ]

    benchmark(collect)
    rows = []
    for arch, data in summary.items():
        for entry in data["workloads"]:
            rows.append(
                [arch, entry["group"], f"{entry['instructions']:.3e}",
                 f"{entry['t_ref_s']:.4f}", entry["K"]]
            )
    text = format_table(
        ["arch", "group", "instructions", "t_ref [s]", "K"],
        rows,
        title="Equation 4 - per-workload break-even factors",
    )
    write_result(results_dir, "eq4_details.txt", text)
    assert rows

"""Ablation: group-mean approximation at inference time (Section III-E).

At inference time the exact group means are unknown; the paper approximates
them with a static or a dynamic window and reports no accuracy loss for
realistic batch sizes.  This ablation compares exact means, static windows of
several sizes and the dynamic window.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import evaluate_predictions
from repro.predictor import ScorePredictor
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

from benchmarks.conftest import write_result

ARCH = "riscv"


def _evaluate(dataset, config, window, window_size=16, repeats=2):
    metrics = []
    for repeat in range(repeats):
        train, test = dataset.train_test_split(
            config.test_fraction, seed=derive_seed(1, "ablation_windows", repeat)
        )
        predictor = ScorePredictor("xgboost", seed=repeat).fit(train)
        for group_id in test.group_ids():
            samples = test.group(group_id)
            scores = predictor.predict_dataset(samples, window=window, window_size=window_size)
            times = [s.measured_time_s for s in samples]
            metrics.append(evaluate_predictions(times, scores))
    return {
        "Etop1": float(np.mean([m.e_top1 for m in metrics])),
        "Rtop1": float(np.mean([m.r_top1 for m in metrics])),
    }


def test_bench_ablation_windows(benchmark, dataset_factory, bench_experiment_config, results_dir):
    dataset = dataset_factory(ARCH)

    def run():
        return {
            "exact group means": _evaluate(dataset, bench_experiment_config, "exact"),
            "static window (w=4)": _evaluate(dataset, bench_experiment_config, "static", 4),
            "static window (w=16)": _evaluate(dataset, bench_experiment_config, "static", 16),
            "dynamic window": _evaluate(dataset, bench_experiment_config, "dynamic"),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[name, data["Etop1"], data["Rtop1"]] for name, data in results.items()]
    text = format_table(
        ["group-mean estimate", "Etop1 %", "Rtop1 %"],
        rows,
        title=f"Ablation - inference-time window approximation ({ARCH}, XGBoost)",
    )
    write_result(results_dir, "ablation_windows.txt", text)

    exact = results["exact group means"]["Rtop1"]
    dynamic = results["dynamic window"]["Rtop1"]
    # The paper observes no accuracy loss from window approximations; allow a
    # generous margin at laptop scale.
    assert dynamic <= exact + 30.0

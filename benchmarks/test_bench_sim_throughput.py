"""Simulation-engine throughput on the Table II workloads.

Measures simulated accesses/second of the reference (per-access loop) and
vectorized (array chunk) cache-simulation engines on one schedule
implementation per Table II kernel group, verifies that both engines produce
bit-identical statistics, and writes ``benchmarks/results/sim_throughput.txt``
so future PRs can track the performance trajectory.

Scale knobs (environment variables):

* ``REPRO_BENCH_SIM_TRACE`` — simulated accesses per workload (default 300000)
* ``REPRO_BENCH_SMOKE``     — set to 1 for a quick correctness-only pass
  (small trace, no speedup floor), as used by CI.
"""

from __future__ import annotations

import os
import time

from repro.autotune.sketch.auto_scheduler import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.codegen.target import Target
from repro.sim import ENGINE_REFERENCE, ENGINE_VECTORIZED, cache_hierarchy_for
from repro.utils.tabulate import format_table
from repro.workloads import conv2d_bias_relu_workload, scaled_group_params

from benchmarks.conftest import SCALE, write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
TRACE_ACCESSES = int(os.environ.get("REPRO_BENCH_SIM_TRACE", "20000" if SMOKE else "300000"))
CHUNK_ITERATIONS = 1 << 16
#: Acceptance floor: the vectorized engine must be at least this much faster
#: on at least one Table II workload (skipped in smoke mode, where the trace
#: is too small to amortize fixed costs).
MIN_SPEEDUP = 5.0
ARCH = "x86"
GROUPS = (0, 1, 2, 3, 4)


def _table2_program(group_id: int):
    """One buildable schedule implementation of a (scaled) Table II group."""
    params = scaled_group_params(group_id, SCALE)
    task = SearchTask(
        conv2d_bias_relu_workload,
        params.as_args(),
        Target.from_name(ARCH),
        name=f"conv2d_g{group_id}_{ARCH}",
    )
    policy = SketchPolicy(
        task, TuningOptions(seed=group_id), cost_model=RandomCostModel(seed=group_id)
    )
    candidates = policy.sample_candidates(4)
    _, build_results = policy.build_candidates(candidates)
    for build in build_results:
        if build.ok:
            return build.program
    raise RuntimeError(f"no buildable candidate for group {group_id}")


def _drive(chunks, engine: str):
    """Walk one trace through a cold Table I hierarchy; returns (seconds, stats)."""
    hierarchy = cache_hierarchy_for(ARCH, engine=engine)
    start = time.perf_counter()
    for addresses, is_write in chunks:
        hierarchy.access_data_batch(addresses, is_write)
    return time.perf_counter() - start, hierarchy.stats_dict()


def test_bench_sim_throughput(results_dir):
    rows = []
    speedups = {}
    for group_id in GROUPS:
        program = _table2_program(group_id)
        chunks = [
            (addresses, is_write)
            for addresses, is_write in program.memory_trace(
                max_accesses=TRACE_ACCESSES, chunk_iterations=CHUNK_ITERATIONS
            )
        ]
        accesses = sum(int(addresses.size) for addresses, _ in chunks)
        reference_s, reference_stats = min(
            (_drive(chunks, ENGINE_REFERENCE) for _ in range(2)), key=lambda item: item[0]
        )
        vectorized_s, vectorized_stats = min(
            (_drive(chunks, ENGINE_VECTORIZED) for _ in range(3)), key=lambda item: item[0]
        )
        assert vectorized_stats == reference_stats, (
            f"engine statistics diverge on Table II group {group_id}"
        )
        speedups[group_id] = reference_s / vectorized_s
        rows.append(
            (
                group_id,
                accesses,
                f"{accesses / reference_s / 1e6:.2f}",
                f"{accesses / vectorized_s / 1e6:.2f}",
                f"{speedups[group_id]:.2f}x",
            )
        )

    text = format_table(
        ["group", "accesses", "reference Macc/s", "vectorized Macc/s", "speedup"],
        rows,
        title=(
            f"Simulation-engine throughput on Table II workloads "
            f"({ARCH}, {TRACE_ACCESSES} accesses{', smoke' if SMOKE else ''})"
        ),
    )
    write_result(results_dir, "sim_throughput.txt", text)

    if not SMOKE:
        best = max(speedups.values())
        assert best >= MIN_SPEEDUP, (
            f"vectorized engine reached only {best:.2f}x on its best Table II "
            f"workload (floor: {MIN_SPEEDUP}x); per-group: {speedups}"
        )

"""Simulation-engine throughput on the Table II workloads.

Measures simulated accesses/second of the reference (per-access loop),
vectorized (array chunk, expanded trace), descriptor (compressed affine
run, per-chunk NumPy pipeline) and native (compiled head pipeline with
cross-chunk arena batching) cache-simulation paths on one schedule
implementation per Table II kernel group, verifies that all paths produce
bit-identical statistics, and writes
``benchmarks/results/sim_throughput.txt`` plus a machine-readable
``sim_throughput.json`` so the performance trajectory stays diffable across
PRs.

Two views are reported:

* **engine** — the hierarchy walk alone on pre-built chunks (the PR 1
  methodology, comparable across PRs); the ``native`` column walks the
  same descriptor chunks through the arena-batched compiled pipeline (the
  ``Simulator.run`` default since PR 5).
* **end-to-end** — trace generation plus the walk, which is what
  ``Simulator.run`` actually pays; the descriptor paths skip address
  materialisation entirely, so this is where trace compression shows up.
  ``e2e arena`` includes arena packing.

Further tables drive the same chunks through Table I geometry variants
with one registry replacement policy at every level — random (replayable
victim stream, fixed seed), tree-PLRU and SRRIP: all four paths must stay
bit-identical for every policy — this is the CI policy-equivalence gate —
and each policy's vectorized path must hold a >= 3x engine-side edge over
the reference loop (non-smoke), so new policies ride the fast paths
instead of silently falling back.

With the compiled kernel available, the native descriptor path must meet
or beat the vectorized expanded path engine-side on at least
``NATIVE_MIN_GROUP_WINS`` of the five Table II groups (smoke and full
modes; smoke applies a small timing tolerance for shared runners) — the
descriptor representation is meant to dominate engine-side *and*
end-to-end, not trade one for the other.

Scale knobs (environment variables):

* ``REPRO_BENCH_SIM_TRACE`` — simulated accesses per workload (default 300000)
* ``REPRO_BENCH_SMOKE``     — set to 1 for a quick correctness pass, as used
  by CI: small trace, no absolute throughput floors, but the descriptor path
  must not be slower than the expanded vectorized path end-to-end and the
  group 0 trace-memory compression ratio must clear its floor (the grid
  descriptor gate — timing-free, so it applies in smoke mode too).
"""

from __future__ import annotations

import json
import os
import time

from repro.autotune.sketch.auto_scheduler import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.codegen.target import Target
from repro.sim.engine import arena_batching_available
from repro.sim import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    CacheHierarchy,
    cache_hierarchy_for,
    hierarchy_with_replacement,
)
from repro.utils.tabulate import format_table
from repro.workloads import conv2d_bias_relu_workload, scaled_group_params

from benchmarks.conftest import SCALE, write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
TRACE_ACCESSES = int(os.environ.get("REPRO_BENCH_SIM_TRACE", "20000" if SMOKE else "300000"))
CHUNK_ITERATIONS = 1 << 16
#: Acceptance floor: the vectorized engine must be at least this much faster
#: than the reference loop on at least one Table II workload (skipped in
#: smoke mode, where the trace is too small to amortize fixed costs).
MIN_SPEEDUP = 5.0
#: Acceptance floor for the non-default policy configurations: the policy
#: registry keeps random/PLRU/RRIP caches on the vectorized/descriptor fast
#: path, which must beat the reference loop by at least this much on at
#: least one Table II workload per policy (non-smoke only) — the dominance
#: floor that stops a new policy from silently degrading to scalar walks.
ALT_POLICY_MIN_SPEEDUP = 3.0
#: Vectorized Macc/s for the Table II stragglers as committed by PR 1
#: (``git show <pr1>:benchmarks/results/sim_throughput.txt``); the
#: descriptor-era engine must at least double them (non-smoke only; the
#: floor is host-absolute, so rerun on comparable idle hardware).
PR1_VECTORIZED_MACCS = {3: 10.74, 4: 10.35}
#: Trace-memory compression floor for Table II group 0 (tiled schedule with
#: a tiny affine window — the geometry that forced the multi-level grid
#: descriptors).  PR 2's 1-D run batches sat at ~1.1x here; the grid
#: front-end must hold at least this much, in smoke mode too (a regression
#: to per-window runs drops it below the floor immediately).
GROUP0_COMPRESSION_FLOOR = 3.0
#: With the compiled kernel enabled, the native descriptor path must be at
#: least engine-side-even with the vectorized expanded path on this many of
#: the five Table II groups (it measured 1.4-2.2x at introduction).
NATIVE_MIN_GROUP_WINS = 4
ARCH = "x86"
GROUPS = (0, 1, 2, 3, 4)
#: Table I geometry variants with one registry policy at every level: the
#: replayable random victim stream plus the PLRU/RRIP registry additions.
#: The victim-stream seed is fixed so recorded trajectories stay
#: reproducible (it only affects the random variant).
ALT_POLICIES = ("random", "plru", "rrip")
ALT_HIERARCHIES = {
    policy: hierarchy_with_replacement(ARCH, policy) for policy in ALT_POLICIES
}
RANDOM_SEED = 1234


def _table2_program(group_id: int):
    """One buildable schedule implementation of a (scaled) Table II group."""
    params = scaled_group_params(group_id, SCALE)
    task = SearchTask(
        conv2d_bias_relu_workload,
        params.as_args(),
        Target.from_name(ARCH),
        name=f"conv2d_g{group_id}_{ARCH}",
    )
    policy = SketchPolicy(
        task, TuningOptions(seed=group_id), cost_model=RandomCostModel(seed=group_id)
    )
    candidates = policy.sample_candidates(4)
    _, build_results = policy.build_candidates(candidates)
    for build in build_results:
        if build.ok:
            return build.program
    raise RuntimeError(f"no buildable candidate for group {group_id}")


def _best(callable_, repeats):
    best_seconds, best_stats = None, None
    for _ in range(repeats):
        seconds, stats = callable_()
        if best_seconds is None or seconds < best_seconds:
            best_seconds, best_stats = seconds, stats
    return best_seconds, best_stats


def _make_hierarchy(engine, policy):
    if policy is not None:
        return CacheHierarchy(
            ALT_HIERARCHIES[policy], engine=engine, rng_seed=RANDOM_SEED
        )
    return cache_hierarchy_for(ARCH, engine=engine)


def _drive_batches(chunks, engine, policy=None):
    """Walk pre-built address chunks through a cold Table I hierarchy."""
    hierarchy = _make_hierarchy(engine, policy)
    start = time.perf_counter()
    for addresses, is_write in chunks:
        hierarchy.access_data_batch(addresses, is_write)
    return time.perf_counter() - start, hierarchy.stats_dict()


def _drive_descriptors(chunks, policy=None):
    """Walk pre-built descriptor chunks through a cold Table I hierarchy."""
    hierarchy = _make_hierarchy(ENGINE_VECTORIZED, policy)
    for chunk in chunks:
        for batch in chunk.batches:
            # Cold-consumer timing: grid expansions are memoized on the
            # batch, so a repeat over the same pre-built chunks would skip
            # work every first-time consumer pays.
            batch.__dict__.pop("_degrid_cache", None)
    start = time.perf_counter()
    for chunk in chunks:
        hierarchy.access_data_descriptors(chunk)
    return time.perf_counter() - start, hierarchy.stats_dict()


def _drive_descriptor_stream(chunks, policy=None):
    """Walk pre-built descriptor chunks via arena batching (native path).

    Timing includes arena packing — that is part of what the batched
    dispatch costs.  Without the compiled kernel the stream falls back to
    per-chunk dispatch, bit-identically, and the column duplicates the
    ``descriptor`` one (the native gate is skipped in that case).
    """
    hierarchy = _make_hierarchy(ENGINE_VECTORIZED, policy)
    for chunk in chunks:
        for batch in chunk.batches:
            batch.__dict__.pop("_degrid_cache", None)
    start = time.perf_counter()
    hierarchy.access_data_descriptor_stream(chunks)
    return time.perf_counter() - start, hierarchy.stats_dict()


def _end_to_end(program, trace):
    """Trace generation plus hierarchy walk (what ``Simulator.run`` pays).

    ``trace`` selects the route: ``"expanded"`` address chunks,
    ``"descriptor"`` per-chunk descriptor dispatch, or ``"arena"`` — the
    descriptor stream with cross-chunk arena batching (the default route
    of :func:`repro.sim.run_data_trace` when the kernel is available).
    """
    hierarchy = cache_hierarchy_for(ARCH, engine=ENGINE_VECTORIZED)
    start = time.perf_counter()
    if trace == "arena":
        hierarchy.access_data_descriptor_stream(
            program.memory_trace_descriptors(
                max_accesses=TRACE_ACCESSES, chunk_iterations=CHUNK_ITERATIONS
            )
        )
    elif trace == "descriptor":
        for chunk in program.memory_trace_descriptors(
            max_accesses=TRACE_ACCESSES, chunk_iterations=CHUNK_ITERATIONS
        ):
            hierarchy.access_data_descriptors(chunk)
    else:
        for addresses, is_write in program.memory_trace(
            max_accesses=TRACE_ACCESSES, chunk_iterations=CHUNK_ITERATIONS
        ):
            hierarchy.access_data_batch(addresses, is_write)
    return time.perf_counter() - start, hierarchy.stats_dict()


def test_bench_sim_throughput(results_dir):
    rows = []
    payload = {
        "arch": ARCH,
        "trace_accesses": TRACE_ACCESSES,
        "smoke": SMOKE,
        "units": "Macc/s",
        "groups": {},
    }
    for group_id in GROUPS:
        program = _table2_program(group_id)
        trace_kwargs = dict(max_accesses=TRACE_ACCESSES, chunk_iterations=CHUNK_ITERATIONS)
        batch_chunks = [(a, w) for a, w in program.memory_trace(**trace_kwargs)]
        descriptor_chunks = list(program.memory_trace_descriptors(**trace_kwargs))
        accesses = sum(int(addresses.size) for addresses, _ in batch_chunks)
        expanded_bytes = sum(a.nbytes + w.nbytes for a, w in batch_chunks)
        descriptor_bytes = max(sum(chunk.nbytes() for chunk in descriptor_chunks), 1)

        reference_s, reference_stats = _best(
            lambda: _drive_batches(batch_chunks, ENGINE_REFERENCE), 2
        )
        # Engine timings are fast enough that host noise dominates a single
        # sample; best-of-5 keeps the recorded trajectory stable across PRs.
        vectorized_s, vectorized_stats = _best(
            lambda: _drive_batches(batch_chunks, ENGINE_VECTORIZED), 5
        )
        descriptor_s, descriptor_stats = _best(
            lambda: _drive_descriptors(descriptor_chunks), 5
        )
        native_s, native_stats = _best(
            lambda: _drive_descriptor_stream(descriptor_chunks), 5
        )
        assert vectorized_stats == reference_stats, (
            f"vectorized statistics diverge on Table II group {group_id}"
        )
        assert descriptor_stats == reference_stats, (
            f"descriptor statistics diverge on Table II group {group_id}"
        )
        assert native_stats == reference_stats, (
            f"native descriptor statistics diverge on Table II group {group_id}"
        )
        e2e_repeats = 5 if SMOKE else 3  # the smoke trace is tiny and noisy
        e2e_expanded_s, e2e_exp_stats = _best(
            lambda: _end_to_end(program, "expanded"), e2e_repeats
        )
        e2e_descriptor_s, e2e_desc_stats = _best(
            lambda: _end_to_end(program, "descriptor"), e2e_repeats
        )
        e2e_arena_s, e2e_arena_stats = _best(
            lambda: _end_to_end(program, "arena"), e2e_repeats
        )
        assert e2e_arena_stats == e2e_desc_stats == e2e_exp_stats == reference_stats

        # Non-default policies: all four paths must agree bit-identically
        # for every registry policy (this doubles as the CI
        # policy-equivalence gate), and the vectorized paths must keep
        # their throughput edge so new policies ride the fast paths.
        alt = {}
        for alt_policy in ALT_POLICIES:
            alt_reference_s, alt_reference_stats = _best(
                lambda: _drive_batches(batch_chunks, ENGINE_REFERENCE, policy=alt_policy), 2
            )
            alt_vectorized_s, alt_vectorized_stats = _best(
                lambda: _drive_batches(batch_chunks, ENGINE_VECTORIZED, policy=alt_policy), 5
            )
            alt_descriptor_s, alt_descriptor_stats = _best(
                lambda: _drive_descriptors(descriptor_chunks, policy=alt_policy), 5
            )
            alt_native_s, alt_native_stats = _best(
                lambda: _drive_descriptor_stream(descriptor_chunks, policy=alt_policy), 5
            )
            assert alt_vectorized_stats == alt_reference_stats, (
                f"{alt_policy}-policy vectorized statistics diverge on "
                f"Table II group {group_id}"
            )
            assert alt_descriptor_stats == alt_reference_stats, (
                f"{alt_policy}-policy descriptor statistics diverge on "
                f"Table II group {group_id}"
            )
            assert alt_native_stats == alt_reference_stats, (
                f"{alt_policy}-policy native statistics diverge on "
                f"Table II group {group_id}"
            )
            alt[f"{alt_policy}_reference"] = accesses / alt_reference_s / 1e6
            alt[f"{alt_policy}_vectorized"] = accesses / alt_vectorized_s / 1e6
            alt[f"{alt_policy}_descriptor"] = accesses / alt_descriptor_s / 1e6
            alt[f"{alt_policy}_native"] = accesses / alt_native_s / 1e6
            alt[f"{alt_policy}_vectorized_speedup"] = alt_reference_s / alt_vectorized_s
            alt[f"{alt_policy}_descriptor_speedup"] = alt_reference_s / alt_descriptor_s
            alt[f"{alt_policy}_native_speedup"] = alt_reference_s / alt_native_s

        group = {
            "accesses": accesses,
            "reference": accesses / reference_s / 1e6,
            "vectorized": accesses / vectorized_s / 1e6,
            "descriptor": accesses / descriptor_s / 1e6,
            "native_descriptor": accesses / native_s / 1e6,
            "vectorized_speedup": reference_s / vectorized_s,
            "descriptor_speedup": reference_s / descriptor_s,
            "native_speedup": reference_s / native_s,
            "native_vs_vectorized": vectorized_s / native_s,
            "e2e_expanded": accesses / e2e_expanded_s / 1e6,
            "e2e_descriptor": accesses / e2e_descriptor_s / 1e6,
            "e2e_arena": accesses / e2e_arena_s / 1e6,
            "e2e_descriptor_gain": e2e_expanded_s / e2e_descriptor_s,
            "e2e_arena_gain": e2e_expanded_s / e2e_arena_s,
            "trace_bytes_expanded": expanded_bytes,
            "trace_bytes_descriptor": descriptor_bytes,
            "trace_compression": expanded_bytes / descriptor_bytes,
            **alt,
        }
        payload["groups"][str(group_id)] = group
        rows.append(
            (
                group_id,
                accesses,
                f"{group['reference']:.2f}",
                f"{group['vectorized']:.2f}",
                f"{group['descriptor']:.2f}",
                f"{group['native_descriptor']:.2f}",
                f"{group['native_vs_vectorized']:.2f}x",
                f"{group['e2e_expanded']:.2f}",
                f"{group['e2e_arena']:.2f}",
                f"{group['e2e_arena_gain']:.2f}x",
                f"{group['trace_compression']:.1f}x",
            )
        )

    text = format_table(
        [
            "group",
            "accesses",
            "ref Macc/s",
            "vec Macc/s",
            "desc Macc/s",
            "native Macc/s",
            "native/vec",
            "e2e vec",
            "e2e arena",
            "e2e gain",
            "trace mem",
        ],
        rows,
        title=(
            f"Simulation throughput on Table II workloads ({ARCH}, {TRACE_ACCESSES} "
            f"accesses{', smoke' if SMOKE else ''}); engine columns walk pre-built "
            f"chunks (native = arena-batched compiled pipeline), e2e columns "
            f"include trace generation"
        ),
    )
    policy_titles = {
        "random": (
            f"Random replacement (replayable victim stream, seed {RANDOM_SEED}) on "
            f"the Table I {ARCH} geometry; same pre-built chunks, engine-side"
        ),
        "plru": (
            f"Tree-PLRU replacement on the Table I {ARCH} geometry; "
            f"same pre-built chunks, engine-side"
        ),
        "rrip": (
            f"SRRIP replacement on the Table I {ARCH} geometry; "
            f"same pre-built chunks, engine-side"
        ),
    }
    for alt_policy in ALT_POLICIES:
        alt_rows = [
            (
                group_id,
                f"{groups_row[f'{alt_policy}_reference']:.2f}",
                f"{groups_row[f'{alt_policy}_vectorized']:.2f}",
                f"{groups_row[f'{alt_policy}_descriptor']:.2f}",
                f"{groups_row[f'{alt_policy}_native']:.2f}",
                f"{groups_row[f'{alt_policy}_vectorized_speedup']:.2f}x",
                f"{groups_row[f'{alt_policy}_native_speedup']:.2f}x",
            )
            for group_id, groups_row in sorted(
                ((int(k), v) for k, v in payload["groups"].items())
            )
        ]
        text += "\n" + format_table(
            [
                "group",
                "ref Macc/s",
                "vec Macc/s",
                "desc Macc/s",
                "native Macc/s",
                "vec speedup",
                "native speedup",
            ],
            alt_rows,
            title=policy_titles[alt_policy],
        )
    write_result(results_dir, "sim_throughput.txt", text)
    (results_dir / "sim_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    groups = payload["groups"]
    # Compression gate (smoke and full): the grid descriptor front-end must
    # keep the worst-compressing Table II geometry above the floor.  The
    # ratio is a pure function of the emitted descriptors — no timing noise —
    # so no tolerance is applied.
    group0_compression = groups["0"]["trace_compression"]
    assert group0_compression >= GROUP0_COMPRESSION_FLOOR, (
        f"Table II group 0 trace-memory compression fell to "
        f"{group0_compression:.2f}x (floor: {GROUP0_COMPRESSION_FLOOR}x): the "
        f"grid descriptor front-end is no longer compressing tiled windows"
    )
    # Native-dominance gate (smoke and full): with the compiled kernel, the
    # arena-batched descriptor path must at least match the vectorized
    # expanded path engine-side on NATIVE_MIN_GROUP_WINS groups.  Smoke
    # timings on shared runners are noisy, so a 10% per-group tolerance
    # applies there; the margin was 1.4-2.2x when the gate was introduced.
    if arena_batching_available():
        tolerance = 1.10 if SMOKE else 1.0
        wins = sum(
            groups[str(group_id)]["native_descriptor"] * tolerance
            >= groups[str(group_id)]["vectorized"]
            for group_id in GROUPS
        )
        assert wins >= NATIVE_MIN_GROUP_WINS, (
            f"native descriptor path beat the vectorized expanded engine on "
            f"only {wins}/5 Table II groups (floor: {NATIVE_MIN_GROUP_WINS}): "
            + ", ".join(
                f"g{gid}: {groups[str(gid)]['native_descriptor']:.2f} vs "
                f"{groups[str(gid)]['vectorized']:.2f}"
                for gid in GROUPS
            )
        )
    if SMOKE:
        # CI gate: the descriptor default must never lose to the expanded
        # path end-to-end.  The production route is the arena-batched
        # stream when the kernel is available (what ``Simulator.run``
        # pays), the per-chunk dispatch otherwise.  The tiny smoke trace
        # makes per-group timings noisy on shared runners, so the gate
        # takes best-of-5 timings, a 25% per-group tolerance, and
        # additionally requires the aggregate over all groups to win
        # outright — a genuine regression fails both.
        e2e_key = "e2e_arena" if arena_batching_available() else "e2e_descriptor"
        slower = []
        for group_id in GROUPS:
            group = groups[str(group_id)]
            if group[e2e_key] * 1.25 < group["e2e_expanded"]:
                slower.append((group_id, group[e2e_key], group["e2e_expanded"]))
        total_desc = sum(g["accesses"] / (g[e2e_key] * 1e6) for g in groups.values())
        total_exp = sum(g["accesses"] / (g["e2e_expanded"] * 1e6) for g in groups.values())
        assert not slower, f"descriptor path slower than expanded on smoke groups: {slower}"
        assert total_desc <= total_exp * 1.05, (  # 5% scheduler-noise allowance
            f"descriptor path slower than expanded end-to-end in aggregate: "
            f"{total_desc:.4f}s vs {total_exp:.4f}s"
        )
        return

    best = max(group["vectorized_speedup"] for group in groups.values())
    assert best >= MIN_SPEEDUP, (
        f"vectorized engine reached only {best:.2f}x on its best Table II "
        f"workload (floor: {MIN_SPEEDUP}x)"
    )
    for alt_policy in ALT_POLICIES:
        best_alt = max(
            group[f"{alt_policy}_vectorized_speedup"] for group in groups.values()
        )
        assert best_alt >= ALT_POLICY_MIN_SPEEDUP, (
            f"{alt_policy}-replacement vectorized engine reached only "
            f"{best_alt:.2f}x on its best Table II workload "
            f"(floor: {ALT_POLICY_MIN_SPEEDUP}x)"
        )
    for group_id, pr1_maccs in PR1_VECTORIZED_MACCS.items():
        now = groups[str(group_id)]["vectorized"]
        assert now >= 2.0 * pr1_maccs, (
            f"Table II group {group_id} reached {now:.2f} Macc/s; the "
            f"descriptor-era engine must at least double PR 1's "
            f"{pr1_maccs:.2f} Macc/s (absolute floor — rerun on an "
            f"otherwise-idle host if marginal)"
        )

"""Figure 5: sorted run-time predictions with group 3 included vs. excluded.

The paper trains Bayesian predictors with and without group 3 in the training
data and shows that the prediction quality on group 3's test set is visually
indistinguishable.  This benchmark regenerates both curves per architecture
and checks that excluding the group does not catastrophically degrade the
metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import generalization_curves
from repro.utils.tabulate import format_table

from benchmarks.conftest import ARCHS, write_result

HELD_OUT_GROUP = 3


@pytest.mark.parametrize("arch", ARCHS)
def test_bench_fig5(benchmark, arch, dataset_factory, bench_experiment_config, results_dir):
    dataset = dataset_factory(arch)

    curves = benchmark.pedantic(
        generalization_curves,
        args=(dataset,),
        kwargs={
            "held_out_group": HELD_OUT_GROUP,
            "config": bench_experiment_config,
            "predictor_name": "bayes",
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for variant, data in curves.items():
        metrics = data["metrics"]
        rows.append(
            [
                variant,
                metrics.e_top1,
                metrics.q_low,
                metrics.q_high,
                metrics.r_top1,
            ]
        )
    text = format_table(
        ["training", "Etop1 %", "Qlow %", "Qhigh %", "Rtop1 %"],
        rows,
        title=f"Figure 5 ({arch}) - group {HELD_OUT_GROUP} test set, included vs. excluded",
    )
    curve_lines = []
    for variant, data in curves.items():
        t_ref = ", ".join(f"{v:.6f}" for v in data["t_ref"])
        t_pred = ", ".join(f"{v:.6f}" for v in data["t_pred"])
        curve_lines.append(f"{variant}.t_ref  = [{t_ref}]")
        curve_lines.append(f"{variant}.t_pred = [{t_pred}]")
    write_result(results_dir, f"fig5_{arch}.txt", text + "\n" + "\n".join(curve_lines))

    included = curves["included"]
    excluded = curves["excluded"]
    # Both variants produce predictions over the same measured samples.
    np.testing.assert_allclose(included["t_ref"], excluded["t_ref"])
    # An ascending trend must be visible: the first half of the prediction
    # order is on average faster than the second half (both variants).
    for data in (included, excluded):
        ordered = data["t_pred"]
        half = len(ordered) // 2
        assert ordered[:half].mean() < ordered[half:].mean()
    # Excluding the group from training must not blow up the top-1 rank
    # catastrophically (the paper finds no clear disadvantage).
    assert excluded["metrics"].r_top1 <= 60.0

"""Simulation-service round-trip throughput: cold compute vs warm store hits.

Starts a real :class:`~repro.service.ServiceServer` on an ephemeral port and
drives a candidate batch through the HTTP client twice:

* **cold** — an empty :class:`~repro.service.ResultStore`; every request is
  computed through the worker's arena-batched waves;
* **warm** — a *fresh* service process state (cold in-memory LRU) over the
  same store; every request must be served from the DB-backed store.

A third **journal-drain** pass submits a batch of *new* candidates with
``wait=false`` — the durable write-ahead path (202 → journal → worker wave →
store) — and polls ``wait_result`` until every job settles, recording the
journal counter group alongside the request-rate numbers.

Writes ``benchmarks/results/service_throughput.txt`` plus a machine-readable
``service_throughput.json`` so the trajectory stays diffable across PRs.

Gates (timing-free, so they hold in smoke mode too):

* every service result must be bit-identical to a local
  ``BatchSimulator`` run of the same candidates (``sim.host_seconds``
  excluded — it reports round-trip time for service results, by the
  memoized-result convention);
* the warm pass must be served from the store at a hit rate of at least
  ``WARM_HIT_RATE_FLOOR`` (0.5 in smoke mode, 0.9 otherwise — the repeated
  batch acceptance gate).

Scale knobs (environment variables):

* ``REPRO_BENCH_SERVICE_CANDS`` — candidates in the batch (default 12)
* ``REPRO_BENCH_SERVICE_TRACE`` — simulated accesses per candidate
  (default 40000; smoke 8000)
* ``REPRO_BENCH_SMOKE``         — quick correctness pass as used by CI
"""

from __future__ import annotations

import json
import os
import time

import repro.workloads  # noqa: F401 — registers the tuning templates
from repro.autotune import LocalBuilder, MeasureInput, create_task
from repro.codegen.target import Target
from repro.service import ResultStore, ServiceClient, ServiceServer, SimulationService
from repro.sim import (
    BatchSimulator,
    RuntimeConfig,
    SimulationCache,
    SimulationResult,
    TraceOptions,
)
from repro.utils.tabulate import format_table

from benchmarks.conftest import write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
CANDIDATES = int(os.environ.get("REPRO_BENCH_SERVICE_CANDS", "12"))
TRACE_ACCESSES = int(
    os.environ.get("REPRO_BENCH_SERVICE_TRACE", "8000" if SMOKE else "40000")
)
#: Fraction of the repeated batch that must be served from the result store.
WARM_HIT_RATE_FLOOR = 0.5 if SMOKE else 0.9
ARCH = "arm"


def _candidate_batch(offset: int = 0):
    task = create_task("matmul", (16, 16, 16), Target.from_name(ARCH))
    space = task.config_space
    indices = [(offset + i) % len(space) for i in range(CANDIDATES)]
    builds = LocalBuilder().build([MeasureInput(task, space.get(i)) for i in indices])
    assert all(build.ok for build in builds)
    return [build.program for build in builds]


def _flat(result):
    stats = dict(result.stats.as_dict())
    stats.pop("sim.host_seconds", None)
    return stats


def _timed_batch(client, programs):
    start = time.perf_counter()
    outcomes = client.simulate_batch(programs)
    return time.perf_counter() - start, outcomes


def test_bench_service_throughput(results_dir):
    trace = TraceOptions(max_accesses=TRACE_ACCESSES)
    programs = _candidate_batch()

    # Local ground truth: the same candidates on the local fast path.
    local = list(
        BatchSimulator(
            ARCH, trace_options=trace, config=RuntimeConfig(memoize=False)
        ).iter_batch(programs)
    )
    assert all(isinstance(r, SimulationResult) for r in local)

    store = ResultStore(":memory:")
    cold_server = ServiceServer(
        SimulationService(ARCH, store, trace_options=trace), port=0
    ).start_in_thread()
    try:
        t_cold, cold = _timed_batch(ServiceClient(cold_server.url), programs)
    finally:
        cold_server.stop()
    assert all(isinstance(r, SimulationResult) for r in cold)
    assert [_flat(r) for r in cold] == [_flat(r) for r in local]

    # Fresh service state over the same store: the warm pass must be served
    # from the DB, not from the dead service's in-memory LRU.
    warm_server = ServiceServer(
        SimulationService(ARCH, store, trace_options=trace), port=0
    ).start_in_thread()
    try:
        warm_client = ServiceClient(warm_server.url)
        t_warm, warm = _timed_batch(warm_client, programs)
        stats = warm_client.stats()
    finally:
        warm_server.stop()
    assert all(isinstance(r, SimulationResult) for r in warm)
    assert [_flat(r) for r in warm] == [_flat(r) for r in local]

    # Journal drain: new candidates through the durable wait=false path.
    drain_programs = _candidate_batch(offset=CANDIDATES)
    local_drain = list(
        BatchSimulator(
            ARCH, trace_options=trace, config=RuntimeConfig(memoize=False)
        ).iter_batch(drain_programs)
    )
    drain_service = SimulationService(ARCH, store, trace_options=trace)
    drain_server = ServiceServer(drain_service, port=0).start_in_thread()
    try:
        drain_client = ServiceClient(drain_server.url)
        t_drain_start = time.perf_counter()
        for program in drain_programs:
            drain_client.simulate(program, wait=False)  # 202: journaled
        digests = [
            SimulationCache.make_key(
                program,
                drain_service.simulator.hierarchy_config,
                drain_service.simulator.trace_options,
                drain_service.simulator.engine,
            )
            for program in drain_programs
        ]
        drained = [
            drain_client.wait_result(digest, deadline_s=600.0) for digest in digests
        ]
        t_drain = time.perf_counter() - t_drain_start
        journal = drain_client.stats()["journal"]
    finally:
        drain_server.stop()
        store.close()
    assert all(isinstance(r, SimulationResult) for r in drained)
    assert [_flat(r) for r in drained] == [_flat(r) for r in local_drain]
    assert journal["drained"] >= len(drain_programs)
    assert journal["queued"] == 0.0 and journal["leased"] == 0.0

    warm_hit_rate = stats["hit_rate"]
    n = len(programs)
    rows = [
        ["cold (computed)", n, t_cold, n / t_cold],
        ["warm (store-served)", n, t_warm, n / t_warm],
        ["journal drain (wait=false)", n, t_drain, n / t_drain],
    ]
    table = format_table(
        ["pass", "requests", "total s", "req/s"],
        rows,
        float_fmt=".3f",
        title=(
            f"Service round-trip throughput — {ARCH}, {TRACE_ACCESSES} accesses/cand"
            f"{' (smoke)' if SMOKE else ''}"
        ),
    )
    write_result(results_dir, "service_throughput.txt", table)
    payload = {
        "arch": ARCH,
        "smoke": SMOKE,
        "trace_accesses": TRACE_ACCESSES,
        "candidates": n,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "drain_seconds": t_drain,
        "cold_requests_per_second": n / t_cold,
        "warm_requests_per_second": n / t_warm,
        "drain_requests_per_second": n / t_drain,
        "warm_speedup": t_cold / t_warm,
        "warm_hit_rate": warm_hit_rate,
        "store": stats["store"],
        "journal": journal,
        "hit_rate_floor": WARM_HIT_RATE_FLOOR,
    }
    (results_dir / "service_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    assert warm_hit_rate >= WARM_HIT_RATE_FLOOR, (
        f"repeated batch was served at a hit rate of only {warm_hit_rate:.2f} "
        f"(floor {WARM_HIT_RATE_FLOOR})"
    )

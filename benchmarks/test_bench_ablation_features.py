"""Ablation: feature set of the score predictor.

The paper uses every statistic both in its raw form (Equation 1) and in its
group-normalised form (Equation 2).  This ablation compares the full feature
vector against (a) raw ratios only and (b) instruction mix only (no cache
statistics), using the XGBoost predictor on one architecture.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import evaluate_predictions
from repro.predictor import FeatureExtractor, ScorePredictor
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table

from benchmarks.conftest import write_result

ARCH = "arm"


class RawOnlyExtractor(FeatureExtractor):
    """Feature extractor without the group-normalised copies (Equation 2 off)."""

    def vector_from_raw(self, raw, group_means):
        return np.asarray(
            [value for name, value in raw.items() if name != self.TOTAL_INSTRUCTIONS], dtype=float
        )


class InstructionMixExtractor(FeatureExtractor):
    """Feature extractor that ignores all cache statistics."""

    def __init__(self):
        super().__init__(cache_levels=())


def _evaluate(dataset, extractor, config, repeats=2):
    metrics = []
    for repeat in range(repeats):
        train, test = dataset.train_test_split(
            config.test_fraction, seed=derive_seed(0, "ablation_features", repeat)
        )
        predictor = ScorePredictor("xgboost", extractor=extractor, seed=repeat)
        predictor.fit(train)
        for group_id in test.group_ids():
            samples = test.group(group_id)
            scores = predictor.predict_dataset(samples, window="exact")
            times = [s.measured_time_s for s in samples]
            metrics.append(evaluate_predictions(times, scores))
    return {
        "Etop1": float(np.mean([m.e_top1 for m in metrics])),
        "Rtop1": float(np.mean([m.r_top1 for m in metrics])),
        "Qlow": float(np.mean([m.q_low for m in metrics])),
        "Qhigh": float(np.mean([m.q_high for m in metrics])),
    }


def test_bench_ablation_features(benchmark, dataset_factory, bench_experiment_config, results_dir):
    dataset = dataset_factory(ARCH)

    def run():
        return {
            "raw + normalised (paper)": _evaluate(
                dataset, FeatureExtractor(), bench_experiment_config
            ),
            "raw ratios only": _evaluate(dataset, RawOnlyExtractor(), bench_experiment_config),
            "instruction mix only": _evaluate(
                dataset, InstructionMixExtractor(), bench_experiment_config
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [name, data["Etop1"], data["Qlow"], data["Qhigh"], data["Rtop1"]]
        for name, data in results.items()
    ]
    text = format_table(
        ["feature set", "Etop1 %", "Qlow %", "Qhigh %", "Rtop1 %"],
        rows,
        title=f"Ablation - predictor feature sets ({ARCH}, XGBoost)",
    )
    write_result(results_dir, "ablation_features.txt", text)

    for data in results.values():
        assert 0.0 <= data["Rtop1"] <= 100.0

"""Table III: prediction results for the x86-based CPU.

For every predictor family (LinReg, DNN, Bayes, XGBoost) and every kernel
group, the benchmark reports E_top1, Q_low, Q_high and R_top1 on the test set,
using the paper's protocol (repeated random train/test splits, median
predictions).
"""

from __future__ import annotations

from repro.pipeline import format_comparison_table, predictor_comparison_table

from benchmarks.conftest import write_result

ARCH = "x86"

#: The paper's headline observations for this table (used as loose shape checks).
MAX_MEAN_RTOP1 = 35.0  # paper: best predictors reach <= 3 %; allow laptop-scale slack


def test_bench_table3_x86(benchmark, dataset_factory, bench_experiment_config, results_dir):
    dataset = dataset_factory(ARCH)

    rows = benchmark.pedantic(
        predictor_comparison_table,
        args=(dataset, bench_experiment_config),
        rounds=1,
        iterations=1,
    )

    text = format_comparison_table(rows, title=f"Table III - prediction results for {ARCH}")
    write_result(results_dir, "table3_x86.txt", text)

    assert len(rows) == 4 * len(dataset.group_ids())
    for row in rows:
        assert 0.0 <= row["Rtop1"] <= 100.0
        assert row["Etop1"] >= 0.0
    # Learned predictors must rank the fastest implementation well on average.
    learned = [row["Rtop1"] for row in rows if row["predictor"] in ("dnn", "bayes", "xgboost")]
    assert sum(learned) / len(learned) <= MAX_MEAN_RTOP1

"""Autotuning-loop measurement throughput: batched vs per-candidate.

Times one GA-style measurement generation — duplicate-heavy, as genetic
populations and model-based tuners produce them — through the
``SimulatorRunner`` on both measurement paths and writes
``benchmarks/results/tuner_throughput.txt`` plus a machine-readable
``tuner_throughput.json`` so the trajectory stays diffable across PRs.

Three views are reported:

* **GA batch** — the full generation including duplicates; this is the
  tuner-visible metric, where digest-level deduplication and the shared
  arena sweep compound.
* **unique only** — the same generation with duplicates removed; isolates
  the candidate-batch scheduler's arena effect (shared hierarchy, packed
  cross-candidate arenas) from the dedupe effect.
* **engine floor** — ``BatchSimulator.run_batch`` on the unique programs
  with no runner machinery and no scoring: the raw simulation throughput
  the runner can at best approach.

Gates:

* batched GA-batch evals/sec must exceed the per-candidate path by
  ``BATCHED_MIN_SPEEDUP`` (default 2.0; 1.5 in smoke mode, where small
  traces and shared runners add noise) — this is the CI gate for the
  candidate-batch scheduler;
* non-smoke only: batched unique-only runner throughput must stay within
  ``RUNNER_ENGINE_MAX_OVERHEAD`` (2x) of the engine floor — the tuning
  loop is not allowed to cost more than the simulations it schedules;
* both paths must return identical scores and the dedupe hit rate must
  match the constructed duplicate fraction exactly (timing-free, so these
  hold in smoke mode too).

Scale knobs (environment variables):

* ``REPRO_BENCH_TUNER_CANDS`` — unique candidates per generation (default 24)
* ``REPRO_BENCH_TUNER_TRACE`` — simulated accesses per candidate
  (default 40000; smoke 8000)
* ``BATCHED_MIN_SPEEDUP``     — override the batched-vs-serial floor
* ``REPRO_BENCH_SMOKE``       — quick correctness pass as used by CI
"""

from __future__ import annotations

import json
import os
import random
import time

import repro.workloads  # noqa: F401 — registers the tuning templates
from repro.autotune import LocalBuilder, MeasureInput, SimulatorRunner, create_task
from repro.codegen.target import Target
from repro.sim import BatchSimulator, TraceOptions
from repro.utils.tabulate import format_table

from benchmarks.conftest import write_result

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"
UNIQUE_CANDIDATES = int(os.environ.get("REPRO_BENCH_TUNER_CANDS", "24"))
TRACE_ACCESSES = int(
    os.environ.get("REPRO_BENCH_TUNER_TRACE", "8000" if SMOKE else "40000")
)
#: Acceptance floor: the batched measurement path must deliver at least this
#: many times the per-candidate path's evals/sec on the GA-style batch.
BATCHED_MIN_SPEEDUP = float(
    os.environ.get("BATCHED_MIN_SPEEDUP", "1.5" if SMOKE else "2.0")
)
#: The batched runner may cost at most this factor over raw engine
#: throughput (non-smoke only).
RUNNER_ENGINE_MAX_OVERHEAD = 2.0
ARCH = "arm"
ROUNDS = 2 if SMOKE else 3


def _best_of(fn, rounds=ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measurement_load():
    """A duplicate-heavy GA-style generation plus its unique-only version."""
    task = create_task("matmul", (16, 16, 16), Target.from_name(ARCH))
    space = task.config_space
    rng = random.Random(7)
    unique = rng.sample(range(len(space)), UNIQUE_CANDIDATES)
    ga = unique + [rng.choice(unique) for _ in range(UNIQUE_CANDIDATES)]
    rng.shuffle(ga)
    builder = LocalBuilder()
    ga_inputs = [MeasureInput(task, space.get(i)) for i in ga]
    unique_inputs = [MeasureInput(task, space.get(i)) for i in unique]
    return (
        (ga_inputs, builder.build(ga_inputs)),
        (unique_inputs, builder.build(unique_inputs)),
    )


def test_bench_tuner_throughput(results_dir):
    trace = TraceOptions(max_accesses=TRACE_ACCESSES)
    (ga_inputs, ga_builds), (unique_inputs, unique_builds) = _measurement_load()
    assert all(build.ok for build in ga_builds + unique_builds)
    programs = [build.program for build in unique_builds]

    def run_runner(batch, inputs, builds):
        runner = SimulatorRunner(
            ARCH, trace_options=trace, memoize=False, batch=batch
        )
        results = runner.run(inputs, builds)
        assert all(result.error_no == 0 for result in results)
        return runner, results

    # Correctness before timing: both paths must return identical scores and
    # the dedupe accounting must match the constructed duplicate fraction.
    batched_runner, batched_results = run_runner(True, ga_inputs, ga_builds)
    _, serial_results = run_runner(False, ga_inputs, ga_builds)
    assert [r.costs for r in batched_results] == [r.costs for r in serial_results]
    assert batched_runner.dedupe_lookups == len(ga_inputs)
    dedupe_rate = batched_runner.dedupe_hits / batched_runner.dedupe_lookups
    assert dedupe_rate == 0.5  # half the generation is duplicates

    t_serial = _best_of(lambda: run_runner(False, ga_inputs, ga_builds))
    t_batched = _best_of(lambda: run_runner(True, ga_inputs, ga_builds))
    t_serial_unique = _best_of(lambda: run_runner(False, unique_inputs, unique_builds))
    t_batched_unique = _best_of(lambda: run_runner(True, unique_inputs, unique_builds))
    t_engine = _best_of(
        lambda: BatchSimulator(ARCH, trace_options=trace, memoize=False).run_batch(
            programs
        )
    )

    n, u = len(ga_inputs), len(unique_inputs)
    evals = {
        "ga_serial": n / t_serial,
        "ga_batched": n / t_batched,
        "unique_serial": u / t_serial_unique,
        "unique_batched": u / t_batched_unique,
        "engine": u / t_engine,
    }
    speedup = evals["ga_batched"] / evals["ga_serial"]
    unique_speedup = evals["unique_batched"] / evals["unique_serial"]
    engine_ratio = evals["unique_batched"] / evals["engine"]

    rows = [
        ["GA batch (50% dupes)", n, evals["ga_serial"], evals["ga_batched"], speedup],
        ["unique only", u, evals["unique_serial"], evals["unique_batched"], unique_speedup],
        ["engine floor", u, "-", evals["engine"], "-"],
    ]
    table = format_table(
        ["measurement load", "cands", "per-cand ev/s", "batched ev/s", "speedup"],
        rows,
        float_fmt=".1f",
        title=(
            f"Tuner measurement throughput — {ARCH}, {TRACE_ACCESSES} accesses/cand"
            f"{' (smoke)' if SMOKE else ''}"
        ),
    )
    write_result(results_dir, "tuner_throughput.txt", table)
    payload = {
        "arch": ARCH,
        "smoke": SMOKE,
        "trace_accesses": TRACE_ACCESSES,
        "candidates": {"ga_batch": n, "unique": u},
        "evals_per_second": evals,
        "batched_speedup": speedup,
        "unique_batched_speedup": unique_speedup,
        "runner_vs_engine": engine_ratio,
        "dedupe_hit_rate": dedupe_rate,
        "min_speedup_gate": BATCHED_MIN_SPEEDUP,
    }
    (results_dir / "tuner_throughput.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    assert speedup >= BATCHED_MIN_SPEEDUP, (
        f"batched measurement path delivered only {speedup:.2f}x the per-candidate "
        f"path on the GA batch (floor {BATCHED_MIN_SPEEDUP}x)"
    )
    if not SMOKE:
        assert engine_ratio * RUNNER_ENGINE_MAX_OVERHEAD >= 1.0, (
            f"batched runner reached only {engine_ratio:.2f} of raw engine "
            f"throughput (allowed overhead {RUNNER_ENGINE_MAX_OVERHEAD}x)"
        )

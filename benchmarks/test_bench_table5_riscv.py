"""Table V: prediction results for the RISC-V-based CPU (SiFive U74 class)."""

from __future__ import annotations

from repro.pipeline import format_comparison_table, predictor_comparison_table

from benchmarks.conftest import write_result

ARCH = "riscv"
MAX_MEAN_RTOP1 = 35.0


def test_bench_table5_riscv(benchmark, dataset_factory, bench_experiment_config, results_dir):
    dataset = dataset_factory(ARCH)

    rows = benchmark.pedantic(
        predictor_comparison_table,
        args=(dataset, bench_experiment_config),
        rounds=1,
        iterations=1,
    )

    text = format_comparison_table(rows, title=f"Table V - prediction results for {ARCH}")
    write_result(results_dir, "table5_riscv.txt", text)

    assert len(rows) == 4 * len(dataset.group_ids())
    learned = [row["Rtop1"] for row in rows if row["predictor"] in ("dnn", "bayes", "xgboost")]
    assert sum(learned) / len(learned) <= MAX_MEAN_RTOP1

"""Tests for tensors, iteration variables and schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import te
from repro.te import topi
from repro.te.schedule import FuseRelation, SplitRelation
from repro.te.tensor import IterVar


class TestTensors:
    def test_placeholder_shape_dtype(self):
        t = te.placeholder((2, 3), dtype="float32", name="a")
        assert t.shape == (2, 3)
        assert t.size == 6
        assert t.nbytes == 24

    def test_strides_row_major(self):
        t = te.placeholder((2, 3, 4), name="a")
        assert t.strides() == (12, 4, 1)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            te.placeholder((2,), dtype="complex64")

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ValueError):
            te.placeholder((0, 3))

    def test_indexing_requires_full_rank(self):
        t = te.placeholder((2, 3))
        with pytest.raises(ValueError):
            t[0]

    def test_compute_creates_axes(self):
        a = te.placeholder((4, 5), name="a")
        b = te.compute((4, 5), lambda i, j: a[i, j] * 2, name="b")
        assert [ax.extent for ax in b.op.axis] == [4, 5]
        assert b.op.input_tensors == [a]

    def test_reduce_axis_validation(self):
        with pytest.raises(ValueError):
            te.reduce_axis((1, 5))

    def test_sum_requires_reduce_axis(self):
        a = te.placeholder((4,), name="a")
        spatial = IterVar(4, "i")
        with pytest.raises(ValueError):
            te.sum_reduce(a[spatial], axis=spatial)

    def test_itervar_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            IterVar(4, "i", kind="weird")

    def test_itervar_rejects_nonpositive_extent(self):
        with pytest.raises(ValueError):
            IterVar(0, "i")


class TestScheduleTransformations:
    def _matmul(self, n=8, l=4, m=6):
        a = te.placeholder((n, l), name="A")
        b = te.placeholder((l, m), name="B")
        c = topi.matmul(a, b, name="C")
        return a, b, c, te.create_schedule(c)

    def test_create_schedule_collects_stages(self):
        _, _, c, schedule = self._matmul()
        names = [stage.op.name for stage in schedule.stages]
        assert "C" in names and "A" in names and "B" in names

    def test_split_factor(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, x = c.op.axis
        outer, inner = stage.split(x, factor=3)
        assert inner.extent == 3 and outer.extent == 2
        assert isinstance(stage.relations[-1], SplitRelation)
        assert inner in stage.leaf_iter_vars and outer in stage.leaf_iter_vars
        assert x not in stage.leaf_iter_vars

    def test_split_nparts(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, _ = c.op.axis
        outer, inner = stage.split(y, nparts=2)
        assert outer.extent == 2 and inner.extent == 4

    def test_split_requires_exactly_one_of_factor_nparts(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, _ = c.op.axis
        with pytest.raises(ValueError):
            stage.split(y)
        with pytest.raises(ValueError):
            stage.split(y, factor=2, nparts=2)

    def test_split_non_leaf_rejected(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, _ = c.op.axis
        stage.split(y, factor=2)
        with pytest.raises(ValueError):
            stage.split(y, factor=2)

    def test_imperfect_split_extents(self):
        _, _, c, schedule = self._matmul(n=7)
        stage = schedule[c]
        y, _ = c.op.axis
        outer, inner = stage.split(y, factor=4)
        assert inner.extent == 4 and outer.extent == 2  # 2*4 >= 7

    def test_fuse_adjacent(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, x = c.op.axis
        fused = stage.fuse(y, x)
        assert fused.extent == 8 * 6
        assert isinstance(stage.relations[-1], FuseRelation)

    def test_fuse_non_adjacent_rejected(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, x = c.op.axis
        (k,) = c.op.reduce_axis
        with pytest.raises(ValueError):
            stage.fuse(y, k)  # x sits between them

    def test_fuse_mixed_kind_rejected(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        _, x = c.op.axis
        (k,) = c.op.reduce_axis
        with pytest.raises(ValueError):
            stage.fuse(x, k)

    def test_reorder(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, x = c.op.axis
        (k,) = c.op.reduce_axis
        stage.reorder(k, y, x)
        assert stage.leaf_iter_vars == [k, y, x]

    def test_reorder_duplicate_rejected(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, _ = c.op.axis
        with pytest.raises(ValueError):
            stage.reorder(y, y)

    def test_annotations(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, x = c.op.axis
        stage.vectorize(x)
        stage.parallel(y)
        assert stage.annotations[x] == "vectorize"
        assert stage.annotations[y] == "parallel"

    def test_compute_inline_reduction_rejected(self):
        _, _, c, schedule = self._matmul()
        with pytest.raises(ValueError):
            schedule[c].compute_inline()

    def test_compute_inline_elementwise(self):
        a = te.placeholder((4, 4), name="a")
        b = te.compute((4, 4), lambda i, j: a[i, j] + 1, name="b")
        c = te.compute((4, 4), lambda i, j: b[i, j] * 2, name="c")
        schedule = te.create_schedule(c)
        schedule[b].compute_inline()
        assert schedule[b].inlined

    def test_axis_decomposition_tracks_origin(self):
        _, _, c, schedule = self._matmul()
        stage = schedule[c]
        y, x = c.op.axis
        outer, inner = stage.split(x, factor=2)
        decomposition = stage.axis_decomposition()
        assert decomposition[x] == [outer, inner]
        assert decomposition[y] == [y]

    def test_unknown_op_lookup_raises(self):
        _, _, c, schedule = self._matmul()
        other = te.placeholder((2, 2), name="other")
        with pytest.raises(KeyError):
            schedule[other]

    @given(st.integers(2, 24), st.integers(1, 8))
    def test_split_covers_extent(self, extent, factor):
        a = te.placeholder((extent,), name="a")
        b = te.compute((extent,), lambda i: a[i] + 1, name="b")
        schedule = te.create_schedule(b)
        outer, inner = schedule[b].split(b.op.axis[0], factor=factor)
        assert outer.extent * inner.extent >= extent
        assert (outer.extent - 1) * inner.extent < extent

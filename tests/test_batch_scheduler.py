"""Candidate-batch scheduler: batched vs per-candidate equivalence.

The central hypothesis of the batch scheduler (and of the arena fast path it
rides on): *statistics are chunking-invariant*.  Packing many candidates'
descriptor chunks into shared arenas, sweeping them on one reused hierarchy
and fanning deduplicated results back out must be bit-identical — same
statistics, same error mapping, same retry accounting, same tuner
trajectory — to simulating every candidate alone.  ``sim.host_seconds`` is
the single wall-clock observable excluded from the comparison.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.workloads  # noqa: F401 — registers the tuning templates
from repro.autotune import (
    GATuner,
    LocalBuilder,
    MeasureInput,
    RandomTuner,
    SimulatorRunner,
    create_task,
)
from repro.autotune.measure import BuildResult, MeasureErrorNo
from repro.codegen import Target
from repro.codegen.program import pack_descriptor_arena
from repro.reliability import Deadline, DeadlineExceeded, RetryPolicy, deadline_scope
from repro.reliability import faults
from repro.sim import BatchSimulator, Simulator, SimulatorPool, TraceOptions, _native
from repro.sim.memo import SimulationCache
from repro.sim.simulator import SimulationFailure, SimulationResult
from repro.sim.stats import SimulationStats

TRACE = TraceOptions(max_accesses=15_000)


@pytest.fixture(autouse=True)
def _fault_free():
    """Shield every test from ambient fault-injection profiles."""
    faults.configure("")
    yield
    faults.reset()


@pytest.fixture(scope="module")
def task():
    return create_task("matmul", (8, 8, 8), Target.arm())


@pytest.fixture(scope="module")
def inputs(task):
    return [MeasureInput(task, task.config_space.get(i)) for i in (0, 1, 2, 3, 5)]


@pytest.fixture(scope="module")
def programs(inputs):
    builds = LocalBuilder().build(inputs)
    assert all(build.ok for build in builds)
    return [build.program for build in builds]


def flat(result):
    """Statistics of one simulation, minus the wall-clock observable."""
    stats = dict(result.stats.as_dict())
    stats.pop("sim.host_seconds", None)
    return stats


def assert_bit_identical(batched, serial):
    assert len(batched) == len(serial)
    for b, s in zip(batched, serial):
        assert isinstance(b, SimulationResult), b
        assert flat(b) == flat(s)


# ---------------------------------------------------------------------------
# Arena candidate groups
# ---------------------------------------------------------------------------


class TestArenaGroups:
    def _chunks(self, program):
        return list(program.memory_trace_descriptors(max_accesses=TRACE.max_accesses))

    def test_group_bounds_partition_the_chunks(self, programs):
        per_candidate = [self._chunks(p) for p in programs[:3]]
        sizes = [len(chunks) for chunks in per_candidate]
        arena = pack_descriptor_arena(
            [c for chunks in per_candidate for c in chunks], group_sizes=sizes
        )
        assert arena.n_groups == 3
        assert list(arena.group_bounds) == [0, sizes[0], sizes[0] + sizes[1], sum(sizes)]
        for g, chunks in enumerate(per_candidate):
            view = arena.group_view(g)
            assert view.total == sum(c.total for c in chunks)
            assert list(view.chunks) == chunks
            assert view.chunk_meta.shape[0] == len(chunks)

    def test_group_views_share_backing_arrays(self, programs):
        chunks = self._chunks(programs[0]) + self._chunks(programs[1])
        sizes = [len(chunks) - 2, 2]
        arena = pack_descriptor_arena(chunks, group_sizes=sizes)
        for view in arena.group_views():
            assert view.max_chunk_total == arena.max_chunk_total
            assert view.max_pos_bound == arena.max_pos_bound
            assert view.max_grid_levels == arena.max_grid_levels

    def test_empty_group_is_allowed(self, programs):
        chunks = self._chunks(programs[0])
        arena = pack_descriptor_arena(chunks, group_sizes=[0, len(chunks)])
        assert arena.group_view(0).total == 0
        assert arena.group_view(1).total == arena.total

    def test_bad_group_sizes_are_rejected(self, programs):
        chunks = self._chunks(programs[0])
        with pytest.raises(ValueError):
            pack_descriptor_arena(chunks, group_sizes=[len(chunks) - 1])
        with pytest.raises(ValueError):
            pack_descriptor_arena(chunks, group_sizes=[-1, len(chunks) + 1])

    def test_ungrouped_arena_has_one_implicit_group(self, programs):
        chunks = self._chunks(programs[0])
        arena = pack_descriptor_arena(chunks)
        assert arena.n_groups == 1
        assert arena.group_view(0).total == arena.total
        with pytest.raises(IndexError):
            arena.group_view(1)

    def test_group_view_out_of_range(self, programs):
        chunks = self._chunks(programs[0])
        arena = pack_descriptor_arena(chunks, group_sizes=[len(chunks)])
        with pytest.raises(IndexError):
            arena.group_view(1)


# ---------------------------------------------------------------------------
# BatchSimulator bit-identity
# ---------------------------------------------------------------------------


class TestBatchSimulatorEquivalence:
    @pytest.mark.parametrize("engine", ["vectorized", "reference"])
    @pytest.mark.parametrize("trace", ["descriptor", "expanded"])
    def test_bit_identical_across_engines_and_traces(self, programs, engine, trace):
        options = TraceOptions(max_accesses=TRACE.max_accesses, engine=engine, trace=trace)
        serial = [Simulator("arm", trace_options=options, memoize=False).run(p) for p in programs]
        batched = BatchSimulator("arm", trace_options=options, memoize=False).run_batch(programs)
        assert_bit_identical(batched, serial)

    def test_bit_identical_without_arena_batching(self, programs, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ARENA", "0")
        serial = [Simulator("arm", trace_options=TRACE, memoize=False).run(p) for p in programs]
        batched = BatchSimulator("arm", trace_options=TRACE, memoize=False).run_batch(programs)
        assert_bit_identical(batched, serial)

    def test_bit_identical_without_native_kernels(self, programs, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_NATIVE", "0")
        _native._reset_for_tests()
        try:
            serial = [
                Simulator("arm", trace_options=TRACE, memoize=False).run(p) for p in programs
            ]
            batched = BatchSimulator("arm", trace_options=TRACE, memoize=False).run_batch(
                programs
            )
            assert_bit_identical(batched, serial)
        finally:
            monkeypatch.undo()
            _native._reset_for_tests()

    def test_duplicates_in_one_batch(self, programs):
        doubled = list(programs) + list(programs)
        serial = [Simulator("arm", trace_options=TRACE, memoize=False).run(p) for p in doubled]
        batched = BatchSimulator("arm", trace_options=TRACE, memoize=False).run_batch(doubled)
        assert_bit_identical(batched, serial)

    def test_iter_batch_streams_in_input_order(self, programs):
        batch = BatchSimulator("arm", trace_options=TRACE, memoize=False)
        names = [outcome.program_name for outcome in batch.iter_batch(programs)]
        assert names == [p.name for p in programs]

    def test_memoized_rerun_is_served_cached(self, programs):
        # A private cache: the process-wide default memo may already hold
        # these programs from other test modules.
        batch = BatchSimulator(
            "arm", trace_options=TRACE, memoize=True, memo_cache=SimulationCache()
        )
        first = batch.run_batch(programs)
        second = batch.run_batch(programs)
        assert all(not r.cached for r in first)
        assert all(r.cached for r in second)
        assert_bit_identical(second, first)

    def test_empty_batch(self):
        assert BatchSimulator("arm", trace_options=TRACE).run_batch([]) == []

    def test_sim_digest_is_stable_across_paths(self, programs):
        serial = Simulator("arm", trace_options=TRACE, memoize=False).run(programs[0])
        batched = BatchSimulator("arm", trace_options=TRACE, memoize=False).run_batch(
            [programs[0]]
        )[0]
        memoized = Simulator("arm", trace_options=TRACE, memoize=True).run(programs[0])
        assert serial.sim_digest
        assert serial.sim_digest == batched.sim_digest == memoized.sim_digest
        other = Simulator(
            "arm", trace_options=TraceOptions(max_accesses=7_000), memoize=False
        ).run(programs[0])
        assert other.sim_digest != serial.sim_digest


# ---------------------------------------------------------------------------
# Failure isolation inside a batch
# ---------------------------------------------------------------------------


class _BrokenProgram:
    """A program stand-in whose trace lowering always raises."""

    def __init__(self, name="broken"):
        self.name = name

    def content_digest(self):
        return f"broken:{self.name}"

    def instruction_counts(self):
        return {}

    def memory_trace_descriptors(self, **kwargs):
        raise RuntimeError("synthetic lowering failure")

    def memory_trace(self, **kwargs):
        raise RuntimeError("synthetic lowering failure")


class TestBatchFailureIsolation:
    def test_error_is_isolated_and_mapped_identically(self, programs):
        mixed = [programs[0], _BrokenProgram(), programs[1]]
        batch = BatchSimulator("arm", trace_options=TRACE, memoize=False)
        outcomes = list(batch.iter_batch(mixed, retry=RetryPolicy()))
        serial = [Simulator("arm", trace_options=TRACE, memoize=False).run(p) for p in (programs[0], programs[1])]
        assert flat(outcomes[0]) == flat(serial[0])
        assert flat(outcomes[2]) == flat(serial[1])
        failure = outcomes[1]
        assert isinstance(failure, SimulationFailure)
        assert failure.kind == SimulationFailure.ERROR
        assert failure.attempts == 1
        assert "synthetic lowering failure" in failure.error

    def test_error_accounting_matches_per_candidate_path(self, programs):
        retry = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        mixed = [programs[0], _BrokenProgram(), programs[1]]
        pool = SimulatorPool("arm", n_parallel=1, trace_options=TRACE, backend="serial",
                             memoize=False, retry=retry)
        per_candidate = pool.run_many_resilient(mixed)
        batched = list(pool.iter_batch_resilient(mixed))
        for b, s in zip(batched, per_candidate):
            assert type(b) is type(s)
            if isinstance(b, SimulationFailure):
                assert (b.kind, b.attempts, b.error) == (s.kind, s.attempts, s.error)
            else:
                assert flat(b) == flat(s)

    def test_timeout_is_final_and_isolated(self, programs):
        batch = BatchSimulator("arm", trace_options=TRACE, memoize=False)
        outcomes = list(batch.iter_batch(programs, timeout_s=1e-9, retry=RetryPolicy(max_attempts=3)))
        assert len(outcomes) == len(programs)
        for outcome in outcomes:
            assert isinstance(outcome, SimulationFailure)
            assert outcome.kind == SimulationFailure.TIMEOUT
            assert outcome.attempts == 1  # timeouts are never retried

    def test_injected_crash_is_retried_in_isolation(self, programs):
        faults.configure("worker_crash:once")
        batch = BatchSimulator("arm", trace_options=TRACE, memoize=False)
        retry = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0)
        outcomes = list(batch.iter_batch(programs, retry=retry))
        serial = [Simulator("arm", trace_options=TRACE, memoize=False).run(p) for p in programs]
        assert_bit_identical(outcomes, serial)

    def test_injected_crash_without_retry_budget_fails_alone(self, programs):
        faults.configure("worker_crash:once")
        batch = BatchSimulator("arm", trace_options=TRACE, memoize=False)
        outcomes = list(batch.iter_batch(programs, retry=RetryPolicy()))
        assert isinstance(outcomes[0], SimulationFailure)
        assert outcomes[0].kind == SimulationFailure.CRASH
        serial = [Simulator("arm", trace_options=TRACE, memoize=False).run(p) for p in programs]
        assert_bit_identical(outcomes[1:], serial[1:])


# ---------------------------------------------------------------------------
# SimulatorRunner: dedupe, fan-out, streaming, trajectory
# ---------------------------------------------------------------------------


def running_mean_score():
    """A deliberately order-sensitive score function (dynamic-window style)."""
    state = {"sum": 0.0, "count": 0}

    def score(result, measure_input):
        insts = float(result.stats.get("cpu.num_insts"))
        state["sum"] += insts
        state["count"] += 1
        return insts / (state["sum"] / state["count"])

    return score


class TestRunnerBatchedEquivalence:
    def _inputs_with_duplicates(self, task):
        indices = (0, 1, 0, 2, 1, 0)
        return [MeasureInput(task, task.config_space.get(i)) for i in indices]

    def test_results_and_trajectory_match_per_candidate_path(self, task):
        inputs = self._inputs_with_duplicates(task)
        builds = LocalBuilder().build(inputs)
        batched_runner = SimulatorRunner(
            "arm", trace_options=TRACE, score_function=running_mean_score(),
            memoize=False, batch=True,
        )
        serial_runner = SimulatorRunner(
            "arm", trace_options=TRACE, score_function=running_mean_score(),
            memoize=False, batch=False,
        )
        batched = batched_runner.run(inputs, builds)
        serial = serial_runner.run(inputs, builds)
        assert [r.costs for r in batched] == [r.costs for r in serial]
        assert [r.error_no for r in batched] == [r.error_no for r in serial]
        assert batched_runner.dedupe_lookups == len(inputs)
        assert batched_runner.dedupe_hits == 3
        assert serial_runner.dedupe_hits == 0

    def test_duplicate_fan_out_is_independent_and_marked_cached(self, task):
        inputs = self._inputs_with_duplicates(task)
        builds = LocalBuilder().build(inputs)
        runner = SimulatorRunner("arm", trace_options=TRACE, memoize=False, batch=True)
        runner.run(inputs, builds)
        simulations = runner.simulation_results
        assert len(simulations) == len(inputs)
        assert [s.cached for s in simulations] == [False, False, True, False, True, True]
        # Mutating a fan-out copy must not leak into the original.
        simulations[2].stats.group("sim").set("host_seconds", -1.0)
        assert simulations[0].stats.get("sim.host_seconds") != -1.0

    def test_on_result_streams_in_input_order(self, task):
        inputs = self._inputs_with_duplicates(task)
        builds = LocalBuilder().build(inputs)
        seen = []
        runner = SimulatorRunner(
            "arm", trace_options=TRACE, memoize=False, batch=True,
            on_result=lambda position, mi, result: seen.append(position),
        )
        results = runner.run(inputs, builds)
        assert seen == list(range(len(inputs)))
        assert len(results) == len(inputs)

    def test_build_failures_are_emitted_with_batch_results(self, task):
        inputs = self._inputs_with_duplicates(task)
        builds = list(LocalBuilder().build(inputs))
        builds[1] = BuildResult(
            program=None, build_seconds=0.0,
            error_no=MeasureErrorNo.COMPILE_ERROR, error_msg="synthetic build failure",
        )
        seen = []
        runner = SimulatorRunner(
            "arm", trace_options=TRACE, memoize=False, batch=True,
            on_result=lambda position, mi, result: seen.append(position),
        )
        results = runner.run(inputs, builds)
        assert len(results) == len(inputs)
        assert results[1].error_no == MeasureErrorNo.COMPILE_ERROR
        assert all(results[i].error_no == MeasureErrorNo.NO_ERROR for i in (0, 2, 3, 4, 5))
        assert seen == list(range(len(inputs)))

    def test_simulation_failure_maps_to_measure_error(self, task):
        inputs = self._inputs_with_duplicates(task)
        builds = LocalBuilder().build(inputs)
        runner = SimulatorRunner(
            "arm", trace_options=TRACE, memoize=False, batch=True, timeout_s=1e-9,
        )
        results = runner.run(inputs, builds)
        assert [r.error_no for r in results] == [MeasureErrorNo.RUN_TIMEOUT] * len(inputs)

    def test_batch_env_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_BATCH", "0")
        assert SimulatorRunner("arm", trace_options=TRACE).batch is False
        monkeypatch.setenv("REPRO_RUNNER_BATCH", "1")
        assert SimulatorRunner("arm", trace_options=TRACE).batch is True


class TestTunerTrajectory:
    @pytest.mark.parametrize("tuner_cls", [RandomTuner, GATuner])
    def test_fixed_seed_trajectory_is_identical(self, task, tuner_cls):
        trajectories = []
        for batch in (True, False):
            tuner = tuner_cls(task, seed=3)
            runner = SimulatorRunner(
                "arm", trace_options=TRACE, score_function=running_mean_score(),
                memoize=False, batch=batch,
            )
            tuner.tune(n_trial=24, runner=runner, builder=LocalBuilder(), batch_size=8)
            trajectories.append(
                (sorted(tuner.visited), tuner.best_cost, tuner.best_config.index,
                 tuner.trial_count)
            )
        assert trajectories[0] == trajectories[1]


# ---------------------------------------------------------------------------
# Memo coalescing (in-flight request merging)
# ---------------------------------------------------------------------------


class TestMemoCoalescing:
    def _stats(self, value=1.0):
        stats = SimulationStats()
        stats.group("sim").set("value", value)
        return stats

    def test_concurrent_requests_compute_once(self):
        cache = SimulationCache()
        calls = []

        def compute():
            calls.append(threading.get_ident())
            time.sleep(0.15)
            return self._stats()

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(cache.get_or_compute, "key", compute) for _ in range(8)]
            outcomes = [f.result() for f in futures]
        assert len(calls) == 1
        assert sum(1 for _, computed in outcomes if computed) == 1
        assert all(stats.get("sim.value") == 1.0 for stats, _ in outcomes)
        assert cache.coalesced == 7
        # Waiters receive independent copies, not aliases of one object.
        objects = {id(stats) for stats, _ in outcomes}
        assert len(objects) == len(outcomes)

    def test_leader_failure_releases_waiters(self):
        cache = SimulationCache()
        attempts = []
        started = threading.Event()

        def compute():
            attempts.append(None)
            started.set()
            if len(attempts) == 1:
                time.sleep(0.05)
                raise RuntimeError("first leader dies")
            return self._stats(2.0)

        with ThreadPoolExecutor(max_workers=2) as pool:
            first = pool.submit(cache.get_or_compute, "key", compute)
            started.wait(timeout=2.0)
            second = pool.submit(cache.get_or_compute, "key", compute)
            with pytest.raises(RuntimeError):
                first.result()
            stats, computed = second.result()
        assert stats.get("sim.value") == 2.0
        assert len(attempts) == 2

    def test_waiter_honours_ambient_deadline(self):
        cache = SimulationCache()
        release = threading.Event()
        started = threading.Event()

        def compute():
            started.set()
            release.wait(timeout=5.0)
            return self._stats()

        with ThreadPoolExecutor(max_workers=2) as pool:
            leader = pool.submit(cache.get_or_compute, "key", compute)
            started.wait(timeout=2.0)

            def waiter():
                with deadline_scope(Deadline.after(0.1)):
                    return cache.get_or_compute("key", compute)

            blocked = pool.submit(waiter)
            with pytest.raises(DeadlineExceeded):
                blocked.result()
            release.set()
            leader.result()

"""Tests for the ScorePredictor training/inference workflow (Figure 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import evaluate_predictions
from repro.predictor import PredictorDataset, ScorePredictor, TrainingSample
from repro.predictor.training import PREDICTOR_NAMES


class TestTrainingSampleAndDataset:
    def test_sample_validation(self):
        with pytest.raises(ValueError):
            TrainingSample(group_id=0, flat_stats={}, measured_time_s=0.0)

    def test_dataset_grouping(self, tiny_dataset):
        assert tiny_dataset.group_ids() == [1, 2]
        assert len(tiny_dataset.group(1)) + len(tiny_dataset.group(2)) == len(tiny_dataset)

    def test_exclude_and_only(self, tiny_dataset):
        without = tiny_dataset.exclude_groups([1])
        assert without.group_ids() == [2]
        only = tiny_dataset.only_groups([1])
        assert only.group_ids() == [1]

    def test_split_preserves_groups_and_fraction(self, tiny_dataset):
        train, test = tiny_dataset.train_test_split(test_fraction=0.25, seed=0)
        assert set(train.group_ids()) == set(tiny_dataset.group_ids())
        assert set(test.group_ids()) == set(tiny_dataset.group_ids())
        assert len(train) + len(test) == len(tiny_dataset)
        for group_id in tiny_dataset.group_ids():
            assert len(test.group(group_id)) >= 1

    def test_split_validation(self, tiny_dataset):
        with pytest.raises(ValueError):
            tiny_dataset.train_test_split(test_fraction=0.0)

    def test_split_is_deterministic(self, tiny_dataset):
        first = tiny_dataset.train_test_split(0.3, seed=11)[1]
        second = tiny_dataset.train_test_split(0.3, seed=11)[1]
        assert [s.implementation_id for s in first.samples] == [
            s.implementation_id for s in second.samples
        ]


class TestScorePredictor:
    def test_fit_requires_samples(self):
        with pytest.raises(ValueError):
            ScorePredictor("linreg").fit(PredictorDataset())

    def test_predict_requires_fit(self, tiny_dataset):
        predictor = ScorePredictor("linreg")
        with pytest.raises(RuntimeError):
            predictor.predict_with_means(tiny_dataset.samples[0].flat_stats, {})

    def test_single_group_prediction_required(self, tiny_dataset):
        predictor = ScorePredictor("linreg").fit(tiny_dataset)
        with pytest.raises(ValueError):
            predictor.predict_dataset(tiny_dataset.samples)

    @pytest.mark.parametrize("model_name", ["linreg", "xgboost"])
    def test_scores_correlate_with_times(self, tiny_dataset, model_name):
        train, test = tiny_dataset.train_test_split(0.3, seed=1)
        predictor = ScorePredictor(model_name, seed=0).fit(train)
        group_samples = test.group(1)
        scores = predictor.predict_dataset(group_samples, window="exact")
        times = [s.measured_time_s for s in group_samples]
        correlation = np.corrcoef(scores, times)[0, 1]
        assert correlation > 0.3
        metrics = evaluate_predictions(times, scores)
        assert metrics.r_top1 <= 100.0

    def test_window_modes_produce_scores(self, tiny_dataset):
        predictor = ScorePredictor("linreg").fit(tiny_dataset)
        samples = tiny_dataset.group(2)
        for window in ("exact", "known", "static", "dynamic"):
            scores = predictor.predict_dataset(samples, window=window, window_size=4)
            assert scores.shape == (len(samples),)
            assert np.isfinite(scores).all()

    def test_known_window_requires_trained_group(self, tiny_dataset):
        train = tiny_dataset.exclude_groups([2])
        predictor = ScorePredictor("linreg").fit(train)
        with pytest.raises(KeyError):
            predictor.predict_dataset(tiny_dataset.group(2), window="known")

    def test_unknown_window_mode(self, tiny_dataset):
        predictor = ScorePredictor("linreg").fit(tiny_dataset)
        with pytest.raises(ValueError):
            predictor.predict_dataset(tiny_dataset.group(1), window="sliding")

    def test_generalizes_to_unseen_group(self, tiny_dataset):
        """The Figure 5 property: a predictor works on a group it never saw."""
        train = tiny_dataset.exclude_groups([2])
        predictor = ScorePredictor("linreg").fit(train)
        samples = tiny_dataset.group(2)
        scores = predictor.predict_dataset(samples, window="exact")
        times = [s.measured_time_s for s in samples]
        assert np.corrcoef(scores, times)[0, 1] > 0.0

    def test_score_function_for_simulator_runner(self, tiny_dataset):
        predictor = ScorePredictor("linreg").fit(tiny_dataset)
        score_fn = predictor.score_function(window="dynamic")

        class FakeSimulation:
            def __init__(self, stats):
                self._stats = stats

            def flat_stats(self):
                return self._stats

        sample = tiny_dataset.samples[0]
        value = score_fn(FakeSimulation(sample.flat_stats), None)
        assert np.isfinite(value)

    def test_all_predictor_names_construct(self):
        for name in PREDICTOR_NAMES:
            assert ScorePredictor(name).model is not None

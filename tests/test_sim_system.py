"""Tests for cache hierarchies, Table I configurations, the CPU and simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import (
    CACHE_HIERARCHIES,
    AtomicSimpleCPU,
    Simulator,
    SimulatorPool,
    TraceOptions,
    cache_hierarchy_for,
    TABLE1_ROWS,
)
from repro.sim.stats import SimulationStats


class TestTable1Configs:
    @pytest.mark.parametrize("arch", ["x86", "arm", "riscv"])
    def test_geometry_is_consistent(self, arch):
        hierarchy = cache_hierarchy_for(arch)
        for name, cache in hierarchy.all_caches().items():
            config = cache.config
            assert config.size_bytes == config.sets * config.associativity * config.line_bytes
            assert config.line_bytes == 64

    def test_paper_values(self):
        x86 = CACHE_HIERARCHIES["x86"]
        assert (x86.l1d.size_bytes, x86.l1d.sets, x86.l1d.associativity) == (32 * 1024, 64, 8)
        assert x86.l3 is not None and x86.l3.size_bytes == 32768 * 1024
        arm = CACHE_HIERARCHIES["arm"]
        assert (arm.l1i.size_bytes, arm.l1i.sets, arm.l1i.associativity) == (48 * 1024, 256, 3)
        assert arm.l3 is None
        riscv = CACHE_HIERARCHIES["riscv"]
        assert riscv.l2.size_bytes == 2048 * 1024 and riscv.l3 is None

    def test_table1_rows_cover_all_levels(self):
        assert len(TABLE1_ROWS) == 4 + 3 + 3  # x86 has L3, the others do not

    def test_unknown_arch(self):
        with pytest.raises(KeyError):
            cache_hierarchy_for("mips")


class TestHierarchyBehaviour:
    def test_l2_sees_only_l1_misses(self):
        hierarchy = cache_hierarchy_for("arm")
        addresses = np.repeat(np.arange(16) * 64, 4)  # each line accessed 4 times
        hierarchy.access_data_batch(addresses, np.zeros(addresses.size, dtype=bool))
        assert hierarchy.l1d.read_misses == 16
        assert hierarchy.l2.accesses == 16
        assert hierarchy.l1d.accesses == 64

    def test_memory_sees_only_llc_misses(self):
        hierarchy = cache_hierarchy_for("x86")
        addresses = np.arange(32) * 64
        hierarchy.access_data_batch(addresses, np.zeros(32, dtype=bool))
        assert hierarchy.memory.accesses == hierarchy.l3.misses

    def test_instruction_path_uses_l1i(self):
        hierarchy = cache_hierarchy_for("riscv")
        hierarchy.access_instr_batch(np.arange(8) * 64)
        assert hierarchy.l1i.accesses == 8
        assert hierarchy.l1d.accesses == 0

    def test_reset(self):
        hierarchy = cache_hierarchy_for("arm")
        hierarchy.access_data_batch(np.arange(8) * 64, np.zeros(8, dtype=bool))
        hierarchy.reset_state()
        assert hierarchy.l1d.accesses == 0
        assert hierarchy.l1d.resident_lines() == 0

    def test_stats_dict_keys(self):
        stats = cache_hierarchy_for("x86").stats_dict()
        assert set(stats) == {"l1d", "l1i", "l2", "l3", "mem"}


class TestStats:
    def test_group_and_flatten(self):
        stats = SimulationStats()
        stats.group("cpu").set("num_insts", 10)
        stats.group("l1d").add("read_hits", 3)
        flat = stats.as_dict()
        assert flat["cpu.num_insts"] == 10
        assert stats.get("l1d.read_hits") == 3
        assert stats.get("does.not_exist", -1) == -1

    def test_dump_format(self):
        stats = SimulationStats()
        stats.group("cpu").set("num_insts", 10)
        text = stats.dump()
        assert "cpu.num_insts" in text and "Begin Simulation Statistics" in text


class TestCpuAndSimulator:
    def test_stats_consistency(self, conv_program_riscv):
        result = Simulator("riscv", trace_options=TraceOptions(max_accesses=30_000)).run(
            conv_program_riscv
        )
        flat = result.flat_stats()
        assert flat["cpu.num_insts"] > 0
        assert flat["cpu.num_loads"] + flat["cpu.num_stores"] == flat["cpu.num_mem_refs"]
        # L1D accesses equal the generated trace length.
        assert flat["l1d.read_accesses"] + flat["l1d.write_accesses"] == result.trace_accesses
        # Hit/miss accounting.
        assert flat["l1d.hits"] + flat["l1d.misses"] == flat["l1d.accesses"]
        assert 0.0 <= flat["l1d.miss_rate"] <= 1.0

    def test_trace_budget_respected(self, conv_program_riscv):
        result = Simulator("riscv", trace_options=TraceOptions(max_accesses=5_000)).run(
            conv_program_riscv
        )
        assert result.trace_accesses <= 5_000

    def test_icache_model_bounded(self, conv_program_riscv):
        result = Simulator("riscv", trace_options=TraceOptions(max_accesses=5_000)).run(
            conv_program_riscv
        )
        flat = result.flat_stats()
        assert 0 < flat["l1i.read_misses"] <= flat["l1i.read_accesses"]
        assert flat["l1i.read_accesses"] == pytest.approx(flat["cpu.num_insts"])

    def test_simulation_is_deterministic(self, conv_program_x86):
        options = TraceOptions(max_accesses=20_000)
        first = Simulator("x86", trace_options=options).run(conv_program_x86).flat_stats()
        second = Simulator("x86", trace_options=options).run(conv_program_x86).flat_stats()
        first.pop("sim.host_seconds")
        second.pop("sim.host_seconds")
        assert first == second

    def test_dump_contains_cache_stats(self, conv_program_x86):
        result = Simulator("x86", trace_options=TraceOptions(max_accesses=5_000)).run(
            conv_program_x86
        )
        assert "l1d.read_hits" in result.dump()

    def test_unknown_arch(self):
        with pytest.raises(KeyError):
            Simulator("sparc")

    def test_pool_serial(self, conv_program_x86, conv_program_riscv):
        pool = SimulatorPool(
            arch="x86", n_parallel=2, trace_options=TraceOptions(max_accesses=5_000)
        )
        results = pool.run_many([conv_program_x86, conv_program_x86])
        assert len(results) == 2
        assert results[0].flat_stats()["cpu.num_insts"] == results[1].flat_stats()["cpu.num_insts"]

    def test_pool_rejects_bad_backend(self, conv_program_x86):
        pool = SimulatorPool(arch="x86", backend="fibers")
        with pytest.raises(ValueError):
            pool.run_many([conv_program_x86])

    def test_pool_threads_backend(self, conv_program_x86, conv_program_riscv):
        serial = SimulatorPool(
            arch="x86", trace_options=TraceOptions(max_accesses=5_000), memoize=False
        )
        threaded = SimulatorPool(
            arch="x86",
            n_parallel=2,
            backend="threads",
            trace_options=TraceOptions(max_accesses=5_000),
            memoize=False,
        )
        programs = [conv_program_x86, conv_program_riscv, conv_program_x86]
        expected = [r.flat_stats() for r in serial.run_many(programs)]
        observed = [r.flat_stats() for r in threaded.run_many(programs)]
        for left, right in zip(expected, observed):
            left.pop("sim.host_seconds")
            right.pop("sim.host_seconds")
        assert expected == observed

    def test_cpu_runs_on_existing_hierarchy(self, conv_program_riscv):
        hierarchy = cache_hierarchy_for("riscv")
        cpu = AtomicSimpleCPU(hierarchy)
        stats = cpu.run(conv_program_riscv, TraceOptions(max_accesses=2_000))
        assert stats.get("cpu.num_insts") > 0

"""Tests for the unified replacement-policy registry (PLRU and SRRIP).

The :class:`~repro.sim.policies.PolicySpec` registry is the single source
of truth for replacement behaviour; the reference per-access loop is the
equivalence oracle.  This file pins the two policies that landed as pure
registry additions — tree-PLRU and SRRIP — bit-identical across every
execution layer: the vectorized NumPy engine (rank rounds and scalar
chain tails), the native event kernel, the arena batch driver and the
descriptor stream.  CI runs it under the full ``REPRO_SIM_NATIVE`` /
``REPRO_SIM_ARENA`` matrix, so the same assertions cover the pure-Python
fallbacks and the compiled fast paths.

It also pins the registry contract itself: stable wire ids (they join the
native ABI and the memoization key), geometry validation, and one memo
digest per policy so new policies can never alias results computed before
they existed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    Cache,
    CacheConfig,
    CacheHierarchy,
    CacheHierarchyConfig,
    CacheLevelConfig,
    MainMemory,
    POLICIES,
    POLICY_NAMES,
    ReplacementPolicy,
    SimulationCache,
    Simulator,
    TraceOptions,
    get_policy,
    hierarchy_with_replacement,
    policy_wire_id,
)
from repro.sim.policies import (
    RRIP_HIT,
    RRIP_INSERT,
    RRIP_MAX,
    _plru_touch_bits,
    _plru_victim_way,
)


def make_pair(sets, assoc, policy, with_memory=True, rng_seed=0):
    """One reference and one vectorized cache with identical geometry."""
    config = CacheConfig.from_geometry(
        "test", sets=sets, associativity=assoc, replacement=policy, rng_seed=rng_seed
    )
    reference = Cache(
        config, next_level=MainMemory() if with_memory else None, engine=ENGINE_REFERENCE
    )
    vectorized = Cache(
        config, next_level=MainMemory() if with_memory else None, engine=ENGINE_VECTORIZED
    )
    return reference, vectorized


def assert_equivalent(reference: Cache, vectorized: Cache):
    assert reference.stats_dict() == vectorized.stats_dict()
    assert reference.resident_lines() == vectorized.resident_lines()
    if reference.next_level is not None:
        assert reference.next_level.stats_dict() == vectorized.next_level.stats_dict()


#: Includes a non-power-of-two associativity (the ARM L1I's 3 ways) and a
#: direct-mapped geometry, both of which exercise PLRU's empty-half guard.
GEOMETRIES = [(4, 2), (8, 1), (4, 3), (2, 4), (16, 4), (8, 5)]

NEW_POLICIES = [ReplacementPolicy.PLRU, ReplacementPolicy.RRIP]


class TestRegistryContract:
    def test_wire_ids_are_stable(self):
        """Wire ids are an append-only ABI shared with the C kernels."""
        assert {name: policy_wire_id(name) for name in POLICY_NAMES} == {
            "fifo": 0,
            "lru": 1,
            "random": 2,
            "plru": 3,
            "rrip": 4,
        }

    def test_registry_names_in_wire_order(self):
        assert POLICY_NAMES == ("fifo", "lru", "random", "plru", "rrip")
        assert [spec.wire_id for spec in POLICIES.values()] == [0, 1, 2, 3, 4]
        assert sorted(ReplacementPolicy.ALL) == sorted(POLICY_NAMES)

    def test_get_policy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            get_policy("mru")

    def test_traits(self):
        assert get_policy("lru").exact_stack and get_policy("lru").touch_on_hit
        assert get_policy("random").uses_victim_stream
        for name in ("fifo", "plru", "rrip"):
            spec = get_policy(name)
            assert not spec.exact_stack
            assert not spec.uses_victim_stream
        assert get_policy("plru").aux_kind == "set"
        assert get_policy("rrip").aux_kind == "way"

    def test_plru_associativity_ceiling(self):
        """One int64 packs a tree over at most 64 leaves."""
        get_policy("plru").validate_geometry(64)
        with pytest.raises(ValueError, match="at most 64 ways"):
            get_policy("plru").validate_geometry(65)
        with pytest.raises(ValueError, match="at most 64 ways"):
            CacheConfig.from_geometry(
                "huge", sets=2, associativity=65, replacement=ReplacementPolicy.PLRU
            )

    def test_no_policy_string_branches_outside_registry(self):
        """The refactor's point: no engine dispatches on policy-name strings."""
        import pathlib

        import repro.sim as sim_pkg

        sim_dir = pathlib.Path(sim_pkg.__file__).parent
        offenders = [
            path.name
            for path in sim_dir.glob("*.py")
            if path.name != "policies.py" and 'replacement == "' in path.read_text()
        ]
        assert offenders == []


class TestPlruTree:
    def test_touch_sequence_is_lru_like(self):
        """Sequential touches leave the untouched-longest way as the victim."""
        bits = 0
        for way in (0, 1, 2, 3):
            bits = _plru_touch_bits(bits, way, 4)
        assert _plru_victim_way(bits, 4) == 0
        bits = _plru_touch_bits(bits, 0, 4)
        assert _plru_victim_way(bits, 4) == 2

    def test_victim_avoids_last_touched_way(self):
        rng = np.random.default_rng(7)
        for assoc in (2, 3, 4, 5, 8):
            bits = 0
            for way in rng.integers(0, assoc, size=64):
                bits = _plru_touch_bits(bits, int(way), assoc)
                if assoc > 1:
                    assert _plru_victim_way(bits, assoc) != way

    def test_victim_always_valid_for_ragged_associativity(self):
        """The forced-left walk never selects a way beyond the associativity."""
        for assoc in (1, 2, 3, 5, 6, 7):
            for bits in range(1 << 7):
                assert 0 <= _plru_victim_way(bits, assoc) < assoc


class TestRripSemantics:
    def test_constants(self):
        assert (RRIP_MAX, RRIP_INSERT, RRIP_HIT) == (3, 2, 0)

    def _reference(self, assoc=2):
        config = CacheConfig.from_geometry(
            "rrip", sets=1, associativity=assoc, replacement=ReplacementPolicy.RRIP
        )
        return Cache(config, next_level=MainMemory(), engine=ENGINE_REFERENCE)

    def test_without_reuse_behaves_fifo_like(self):
        """No hits: all lines age together, the first way at RRIP_MAX goes."""
        cache = self._reference()
        for line in (0, 1, 2, 3):
            cache.access(line * 64, False)
        assert not cache.contains(0 * 64) and not cache.contains(1 * 64)
        assert cache.contains(2 * 64) and cache.contains(3 * 64)

    def test_hit_promotion_protects_reused_line(self):
        """A hit promotes to RRPV 0, so the un-reused line is evicted first."""
        cache = self._reference()
        cache.access(0 * 64, False)
        cache.access(1 * 64, False)
        cache.access(0 * 64, False)  # hit: line 0 promoted to RRIP_HIT
        cache.access(2 * 64, False)  # aging evicts line 1 (still at RRIP_INSERT)
        assert cache.contains(0 * 64)
        assert not cache.contains(1 * 64)
        assert cache.contains(2 * 64)

    def test_collapsed_rerun_promotes_like_explicit_hits(self):
        """Consecutive same-line repeats (collapsed into one head by the
        chunk engines) must leave the line promoted — the retouch rule."""
        explicit, collapsed = make_pair(1, 2, ReplacementPolicy.RRIP)
        trace = np.asarray([0, 0, 0, 64, 128], dtype=np.int64) // 64
        writes = np.zeros(trace.size, dtype=bool)
        explicit.access_lines(trace, writes)
        collapsed.access_lines(trace, writes)
        assert_equivalent(explicit, collapsed)
        # Line 0 was re-touched after its fill, so aging for line 128's
        # fill evicts line 64 (still at RRIP_INSERT), not line 0.
        assert explicit.contains(0) and collapsed.contains(0)


class TestEngineEquivalence:
    """Reference vs vectorized (and through it the native/arena fast paths
    active in this process) for the two new policies."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 300), st.booleans()), min_size=1, max_size=600),
        st.sampled_from(GEOMETRIES),
        st.sampled_from(NEW_POLICIES),
        st.integers(1, 4),
    )
    def test_property_equivalence(self, accesses, geometry, policy, n_chunks):
        sets, assoc = geometry
        reference, vectorized = make_pair(sets, assoc, policy)
        lines = np.asarray([line for line, _ in accesses], dtype=np.int64)
        writes = np.asarray([write for _, write in accesses], dtype=bool)
        for chunk_lines, chunk_writes in zip(
            np.array_split(lines, n_chunks), np.array_split(writes, n_chunks)
        ):
            reference.access_lines(chunk_lines, chunk_writes)
            vectorized.access_lines(chunk_lines, chunk_writes)
        assert_equivalent(reference, vectorized)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.sampled_from(NEW_POLICIES))
    def test_large_random_trace_equivalence(self, seed, policy):
        """Bulk traces exercise the wide-round and chain-tail paths."""
        rng = np.random.default_rng(seed)
        reference, vectorized = make_pair(16, 4, policy)
        for _ in range(3):
            size = int(rng.integers(200, 4000))
            lines = rng.integers(0, 400, size=size).astype(np.int64)
            writes = rng.random(size) < 0.3
            reference.access_lines(lines, writes)
            vectorized.access_lines(lines, writes)
        assert_equivalent(reference, vectorized)

    @pytest.mark.parametrize("policy", NEW_POLICIES)
    def test_repeat_heavy_trace_equivalence(self, policy):
        """Runs of consecutive repeats drive the head-collapse/retouch path."""
        rng = np.random.default_rng(3)
        reference, vectorized = make_pair(4, 2, policy)
        lines = np.repeat(
            rng.integers(0, 24, size=400), rng.integers(1, 6, size=400)
        ).astype(np.int64)
        writes = rng.random(lines.size) < 0.3
        reference.access_lines(lines, writes)
        vectorized.access_lines(lines, writes)
        assert_equivalent(reference, vectorized)

    @pytest.mark.parametrize("policy", NEW_POLICIES)
    def test_scalar_matches_batch(self, policy):
        """The per-access scalar fast path agrees with batch submission."""
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 48, size=600).astype(np.int64)
        writes = rng.random(600) < 0.25
        scalar, batch = make_pair(4, 3, policy)
        for line, write in zip(lines, writes):
            scalar.access(int(line) * 64, bool(write))
        batch.access_lines(lines, writes)
        assert_equivalent(scalar, batch)


class TestHierarchyEquivalence:
    @staticmethod
    def _tiny(policy):
        return CacheHierarchyConfig(
            name=f"tiny-{policy}",
            l1d=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement=policy),
            l1i=CacheLevelConfig(4 * 64 * 3, 4, 3, replacement=policy),
            l2=CacheLevelConfig(8 * 64 * 2, 8, 2, replacement=policy),
        )

    @pytest.mark.parametrize("policy", NEW_POLICIES)
    def test_stream_matches_per_chunk(self, conv_program_x86, policy):
        """Arena stream dispatch vs per-chunk dispatch, assoc-3 L1I included."""
        config = self._tiny(policy)
        chunks = list(
            conv_program_x86.memory_trace_descriptors(
                chunk_iterations=512, max_accesses=20_000
            )
        )
        streamed = CacheHierarchy(config, engine=ENGINE_VECTORIZED)
        streamed.access_data_descriptor_stream(chunks)
        per_chunk = CacheHierarchy(config, engine=ENGINE_VECTORIZED)
        for chunk in chunks:
            per_chunk.access_data_descriptors(chunk)
        assert streamed.stats_dict() == per_chunk.stats_dict()

    @pytest.mark.parametrize("policy", NEW_POLICIES)
    def test_simulator_engines_agree(self, conv_program_x86, policy):
        """Full simulator runs: vectorized == reference, with real evictions."""
        from repro.sim import RuntimeConfig

        options = TraceOptions(max_accesses=30_000)
        config = self._tiny(policy)
        flats = {}
        for engine in (ENGINE_VECTORIZED, ENGINE_REFERENCE):
            simulator = Simulator(
                "x86",
                hierarchy_config=config,
                trace_options=options,
                config=RuntimeConfig(engine=engine, memoize=False),
            )
            flat = simulator.run(conv_program_x86).flat_stats()
            flat.pop("sim.host_seconds")
            flats[engine] = flat
        assert flats[ENGINE_VECTORIZED] == flats[ENGINE_REFERENCE]
        # The trace must actually evict, or the policies were never consulted.
        assert (
            flats[ENGINE_VECTORIZED]["l1d.read_replacements"]
            + flats[ENGINE_VECTORIZED]["l1d.write_replacements"]
        ) > 0

    def test_runtime_config_replacement_override(self, conv_program_x86):
        """``RuntimeConfig(replacement=...)`` rewrites every hierarchy level."""
        from repro.sim import RuntimeConfig

        simulator = Simulator(
            "x86", config=RuntimeConfig(replacement=ReplacementPolicy.PLRU)
        )
        levels = simulator.hierarchy_config.levels()
        assert {level.replacement for level in levels.values()} == {"plru"}
        assert simulator.hierarchy_config.name.endswith("-plru")


class TestMemoKeys:
    def test_one_digest_per_policy(self, conv_program_x86):
        """New policies must never alias digests of existing ones."""
        memo = SimulationCache()
        options = TraceOptions(max_accesses=5_000)
        keys = {
            memo.make_key(
                conv_program_x86,
                hierarchy_with_replacement("x86", policy),
                options,
                ENGINE_VECTORIZED,
            )
            for policy in POLICY_NAMES
        }
        assert len(keys) == len(POLICY_NAMES)

    @pytest.mark.parametrize("policy", NEW_POLICIES)
    def test_deterministic_policies_are_seed_neutral(self, conv_program_x86, policy):
        """PLRU/RRIP never consume the victim stream: one key across seeds."""
        memo = SimulationCache()
        keys = {
            memo.make_key(
                conv_program_x86,
                hierarchy_with_replacement("x86", policy),
                TraceOptions(max_accesses=5_000, rng_seed=seed),
                ENGINE_VECTORIZED,
            )
            for seed in (0, 1, 2)
        }
        assert len(keys) == 1

"""Correctness tests for lowering: the interpreter must match numpy references.

These are the strongest tests of the tensor-expression substrate: every
schedule transformation (splits, imperfect splits, reorders, vectorise/unroll
annotations, inlining, padding) must leave the computed values unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import te
from repro.te import interpreter, topi
from repro.te.ir import For, ForKind, stmt_to_string, walk_statements


def _matmul_reference(a, b):
    return a @ b


def _run_matmul(schedule_fn, n=6, l=5, m=7):
    a = te.placeholder((n, l), name="A")
    b = te.placeholder((l, m), name="B")
    c = topi.matmul(a, b, name="C")
    schedule = te.create_schedule(c)
    schedule_fn(schedule, c)
    func = te.lower(schedule, [a, b, c], name="mm")
    rng = np.random.default_rng(0)
    a_np = rng.random((n, l), dtype=np.float32)
    b_np = rng.random((l, m), dtype=np.float32)
    c_np = np.zeros((n, m), dtype=np.float32)
    interpreter.run(func, [a_np, b_np, c_np])
    np.testing.assert_allclose(c_np, _matmul_reference(a_np, b_np), rtol=1e-5)
    return func


class TestMatmulLowering:
    def test_default_schedule(self):
        _run_matmul(lambda s, c: None)

    def test_split_even(self):
        def schedule_fn(schedule, c):
            stage = schedule[c]
            y, x = c.op.axis
            stage.split(x, factor=7)

        _run_matmul(schedule_fn, m=14)

    def test_split_imperfect_guarded(self):
        def schedule_fn(schedule, c):
            stage = schedule[c]
            y, x = c.op.axis
            stage.split(x, factor=4)  # 7 % 4 != 0 -> guard needed

        func = _run_matmul(schedule_fn, m=7)
        from repro.te.ir import IfThenElse

        assert any(isinstance(stmt, IfThenElse) for stmt in walk_statements(func.body))

    def test_split_reduction_axis(self):
        def schedule_fn(schedule, c):
            stage = schedule[c]
            (k,) = c.op.reduce_axis
            stage.split(k, factor=2)

        _run_matmul(schedule_fn, l=5)

    def test_reorder_and_tile(self):
        def schedule_fn(schedule, c):
            stage = schedule[c]
            y, x = c.op.axis
            (k,) = c.op.reduce_axis
            yo, yi = stage.split(y, factor=2)
            xo, xi = stage.split(x, factor=3)
            stage.reorder(yo, xo, k, yi, xi)

        _run_matmul(schedule_fn, n=6, m=9)

    def test_vectorize_and_unroll_do_not_change_semantics(self):
        def schedule_fn(schedule, c):
            stage = schedule[c]
            y, x = c.op.axis
            xo, xi = stage.split(x, factor=4)
            stage.vectorize(xi)
            stage.unroll(y)

        func = _run_matmul(schedule_fn, m=8)
        kinds = {stmt.kind for stmt in walk_statements(func.body) if isinstance(stmt, For)}
        assert ForKind.VECTORIZED in kinds and ForKind.UNROLLED in kinds

    def test_fused_axes(self):
        def schedule_fn(schedule, c):
            stage = schedule[c]
            y, x = c.op.axis
            stage.fuse(y, x)

        _run_matmul(schedule_fn)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(2, 8),
        st.integers(2, 8),
        st.integers(2, 8),
        st.integers(1, 5),
        st.integers(1, 5),
    )
    def test_random_tilings_preserve_semantics(self, n, l, m, fx, fk):
        def schedule_fn(schedule, c):
            stage = schedule[c]
            y, x = c.op.axis
            (k,) = c.op.reduce_axis
            stage.split(x, factor=min(fx, m))
            stage.split(k, factor=min(fk, l))

        _run_matmul(schedule_fn, n=n, l=l, m=m)


class TestConvLowering:
    def _reference(self, ifm, weights, bias, stride, padding):
        n, ci, h, w = ifm.shape
        co = weights.shape[0]
        kh, kw = weights.shape[2], weights.shape[3]
        oh = (h + 2 * padding[0] - kh) // stride[0] + 1
        ow = (w + 2 * padding[1] - kw) // stride[1] + 1
        padded = np.pad(ifm, ((0, 0), (0, 0), (padding[0],) * 2, (padding[1],) * 2))
        out = np.zeros((n, co, oh, ow), dtype=np.float32)
        for b_i in range(n):
            for c_o in range(co):
                for y in range(oh):
                    for x in range(ow):
                        window = padded[
                            b_i,
                            :,
                            y * stride[0] : y * stride[0] + kh,
                            x * stride[1] : x * stride[1] + kw,
                        ]
                        out[b_i, c_o, y, x] = np.sum(window * weights[c_o]) + bias[b_i, c_o, 0, 0]
        return np.maximum(out, 0.0)

    @pytest.mark.parametrize("stride,padding,inline_pad", [
        ((1, 1), (1, 1), True),
        ((2, 2), (1, 1), True),
        ((1, 1), (0, 0), True),
        ((1, 1), (1, 1), False),
        ((2, 2), (3, 3), True),
    ])
    def test_conv_bias_relu_matches_reference(self, stride, padding, inline_pad):
        n, ci, h, w, co, kh, kw = 1, 3, 8, 8, 4, 3, 3
        ifm = te.placeholder((n, ci, h, w), name="ifm")
        weights = te.placeholder((co, ci, kh, kw), name="weights")
        bias = te.placeholder((n, co, 1, 1), name="bias")
        conv = topi.conv2d_nchw(ifm, weights, stride=stride, padding=padding)
        out = topi.relu(topi.bias_add(conv, bias))
        schedule = te.create_schedule(out)
        if inline_pad:
            for stage in schedule.compute_stages():
                if stage.op.name.endswith(".pad"):
                    stage.compute_inline()
        conv_stage = schedule[conv]
        _, co_ax, _, ow_ax = conv.op.axis
        conv_stage.split(co_ax, factor=2)
        conv_stage.split(ow_ax, factor=3)
        func = te.lower(schedule, [ifm, weights, bias, out], name="conv")

        rng = np.random.default_rng(1)
        ifm_np = rng.random((n, ci, h, w), dtype=np.float32) - 0.5
        w_np = rng.random((co, ci, kh, kw), dtype=np.float32) - 0.5
        b_np = rng.random((n, co, 1, 1), dtype=np.float32) - 0.5
        oh = (h + 2 * padding[0] - kh) // stride[0] + 1
        ow = (w + 2 * padding[1] - kw) // stride[1] + 1
        out_np = np.zeros((n, co, oh, ow), dtype=np.float32)
        interpreter.run(func, [ifm_np, w_np, b_np, out_np])
        np.testing.assert_allclose(
            out_np, self._reference(ifm_np, w_np, b_np, stride, padding), rtol=1e-4, atol=1e-5
        )

    def test_non_inlined_pad_allocates_buffer(self):
        ifm = te.placeholder((1, 2, 6, 6), name="ifm")
        weights = te.placeholder((4, 2, 3, 3), name="weights")
        conv = topi.conv2d_nchw(ifm, weights, stride=1, padding=1)
        schedule = te.create_schedule(conv)
        func = te.lower(schedule, [ifm, weights, conv], name="conv")
        assert any(t.name.endswith(".pad") for t in func.intermediate_buffers)


class TestLoweringErrorsAndPrinting:
    def test_inlined_argument_rejected(self):
        a = te.placeholder((4,), name="a")
        b = te.compute((4,), lambda i: a[i] + 1, name="b")
        schedule = te.create_schedule(b)
        schedule[b].compute_inline()
        with pytest.raises(ValueError):
            te.lower(schedule, [a, b], name="bad")

    def test_stmt_to_string_renders_loops(self, matmul_func):
        text = stmt_to_string(matmul_func.body)
        assert "for " in text and "=" in text

    def test_lowered_func_buffers(self, matmul_func):
        assert [t.name for t in matmul_func.args] == ["A", "B", "C"]
        assert matmul_func.intermediate_buffers == []

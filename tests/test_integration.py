"""End-to-end integration tests of the paper's two contributions.

These tests exercise the complete flow on tiny kernels: the simulator
interface replacing native execution in autotuning (Contribution I), and the
trained score predictor ranking implementations close to their true run-time
order (Contribution II).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune import SimulatorRunner
from repro.autotune.sketch.auto_scheduler import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.codegen import Target, build_program
from repro.hardware import TargetBoard
from repro.metrics import evaluate_predictions
from repro.predictor import ScorePredictor
from repro.sim import TraceOptions
from repro.te.lower import lower
from repro.workloads import Conv2DParams, conv2d_bias_relu_workload

TRACE = TraceOptions(max_accesses=25_000)
ARCH = "riscv"
GROUP_PARAMS = {
    1: Conv2DParams(1, 8, 8, 8, 8, 3, 3, (1, 1), (1, 1)),
    2: Conv2DParams(1, 6, 6, 12, 8, 3, 3, (2, 2), (1, 1)),
}


@pytest.fixture(scope="module")
def trained_predictor(tiny_dataset):
    return ScorePredictor("xgboost", seed=0).fit(tiny_dataset)


class TestContributionOne:
    """The simulator interface can replace the board inside autotuning."""

    def test_simulator_guided_search_finds_fast_schedule(self):
        target = Target.from_name(ARCH)
        task = SearchTask(
            conv2d_bias_relu_workload, GROUP_PARAMS[1].as_args(), target, name="sim_guided"
        )
        policy = SketchPolicy(
            task,
            TuningOptions(num_measure_trials=12, num_measures_per_round=6, seed=0),
            cost_model=RandomCostModel(seed=0),
        )
        best = policy.search(runner=SimulatorRunner(ARCH, trace_options=TRACE))
        assert best is not None

        # Validate natively: the chosen candidate must beat the median candidate.
        board = TargetBoard(ARCH, trace_options=TRACE, seed=9, noise_enabled=False)
        times = []
        for record in policy.records:
            schedule = record.candidate.apply(task.output_tensors)
            func = lower(schedule, task.arg_tensors, name="validate")
            program = build_program(func, target, name="validate")
            times.append((record.cost, board.undisturbed_time(program).seconds))
        best_cost = min(cost for cost, _ in times)
        best_time = next(t for cost, t in times if cost == best_cost)
        median_time = float(np.median([t for _, t in times]))
        assert best_time <= median_time * 1.05


class TestContributionTwo:
    """Simulator statistics plus a trained predictor rank implementations well."""

    def test_predictor_beats_instruction_count_baseline(self, tiny_dataset, trained_predictor):
        # Note: the tiny dataset is also the training set here; this checks the
        # full plumbing and that the learned score is at least as good a ranker
        # as the raw instruction-count baseline on data it has seen.
        group_samples = tiny_dataset.group(2)
        times = np.array([s.measured_time_s for s in group_samples])

        learned_scores = trained_predictor.predict_dataset(group_samples, window="exact")
        baseline_scores = np.array([s.flat_stats["cpu.num_insts"] for s in group_samples])

        learned = evaluate_predictions(times, learned_scores)
        baseline = evaluate_predictions(times, baseline_scores)
        assert learned.r_top1 <= baseline.r_top1 + 20.0
        assert learned.e_top1 <= max(baseline.e_top1, 25.0)

    def test_scores_are_group_relative_not_absolute_times(self, tiny_dataset, trained_predictor):
        group_samples = tiny_dataset.group(1)
        scores = trained_predictor.predict_dataset(group_samples, window="exact")
        times = np.array([s.measured_time_s for s in group_samples])
        # Scores are normalised (Equation 2): they live around zero, unlike times.
        assert abs(np.mean(scores)) < 1.0
        assert np.all(times > 0)

    def test_execution_phase_does_not_touch_the_board(self, trained_predictor, monkeypatch):
        """During the execution phase only the simulator is used (Figure 4-II)."""
        from repro.hardware import board as board_module

        def forbidden(*args, **kwargs):  # pragma: no cover - should never run
            raise AssertionError("the target board must not be used in the execution phase")

        monkeypatch.setattr(board_module.TargetBoard, "measure", forbidden)
        target = Target.from_name(ARCH)
        task = SearchTask(
            conv2d_bias_relu_workload, GROUP_PARAMS[2].as_args(), target, name="exec_only_sim"
        )
        runner = SimulatorRunner(
            ARCH,
            trace_options=TRACE,
            score_function=trained_predictor.score_function(window="dynamic"),
        )
        policy = SketchPolicy(
            task,
            TuningOptions(num_measure_trials=6, num_measures_per_round=3, seed=1),
            cost_model=RandomCostModel(seed=1),
        )
        best = policy.search(runner=runner)
        assert best is not None
        assert all(np.isfinite(record.cost) for record in policy.records)

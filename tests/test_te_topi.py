"""Tests for the operator library (shapes and validation)."""

from __future__ import annotations

import pytest

from repro import te
from repro.te import topi
from repro.te.expr import Reduce, Select


class TestMatmulDense:
    def test_matmul_shape(self):
        a = te.placeholder((3, 4))
        b = te.placeholder((4, 5))
        c = topi.matmul(a, b)
        assert c.shape == (3, 5)
        assert isinstance(c.op.body, Reduce)

    def test_matmul_shape_mismatch(self):
        a = te.placeholder((3, 4))
        b = te.placeholder((5, 6))
        with pytest.raises(ValueError):
            topi.matmul(a, b)

    def test_matmul_requires_2d(self):
        a = te.placeholder((3,))
        b = te.placeholder((3, 4))
        with pytest.raises(ValueError):
            topi.matmul(a, b)

    def test_dense_shape(self):
        x = te.placeholder((2, 8))
        w = te.placeholder((16, 8))
        y = topi.dense(x, w)
        assert y.shape == (2, 16)

    def test_dense_mismatch(self):
        x = te.placeholder((2, 8))
        w = te.placeholder((16, 9))
        with pytest.raises(ValueError):
            topi.dense(x, w)


class TestConv2d:
    def test_output_shape_stride1(self):
        ifm = te.placeholder((1, 3, 32, 32))
        w = te.placeholder((8, 3, 3, 3))
        out = topi.conv2d_nchw(ifm, w, stride=1, padding=1)
        assert out.shape == (1, 8, 32, 32)

    def test_output_shape_stride2(self):
        ifm = te.placeholder((1, 3, 224, 224))
        w = te.placeholder((64, 3, 7, 7))
        out = topi.conv2d_nchw(ifm, w, stride=(2, 2), padding=(3, 3))
        assert out.shape == (1, 64, 112, 112)

    def test_channel_mismatch(self):
        ifm = te.placeholder((1, 3, 8, 8))
        w = te.placeholder((8, 4, 3, 3))
        with pytest.raises(ValueError):
            topi.conv2d_nchw(ifm, w)

    def test_empty_output_rejected(self):
        ifm = te.placeholder((1, 3, 2, 2))
        w = te.placeholder((8, 3, 5, 5))
        with pytest.raises(ValueError):
            topi.conv2d_nchw(ifm, w, stride=1, padding=0)

    def test_padding_creates_pad_stage(self):
        ifm = te.placeholder((1, 3, 8, 8))
        w = te.placeholder((4, 3, 3, 3))
        out = topi.conv2d_nchw(ifm, w, stride=1, padding=1)
        producer_names = [t.name for t in out.op.input_tensors]
        assert any(name.endswith(".pad") for name in producer_names)

    def test_no_padding_reads_input_directly(self):
        ifm = te.placeholder((1, 3, 8, 8), name="ifm")
        w = te.placeholder((4, 3, 3, 3))
        out = topi.conv2d_nchw(ifm, w, stride=1, padding=0)
        producer_names = [t.name for t in out.op.input_tensors]
        assert "ifm" in producer_names


class TestElementwise:
    def test_pad_shape_and_select(self):
        data = te.placeholder((2, 3))
        padded = topi.pad(data, (1, 0), (1, 2))
        assert padded.shape == (4, 5)
        assert isinstance(padded.op.body, Select)

    def test_pad_wrong_rank(self):
        data = te.placeholder((2, 3))
        with pytest.raises(ValueError):
            topi.pad(data, (1,), (1,))

    def test_relu_shape(self):
        data = te.placeholder((2, 3, 4, 5))
        assert topi.relu(data).shape == (2, 3, 4, 5)

    def test_bias_add_1d_and_4d(self):
        data = te.placeholder((1, 8, 4, 4))
        assert topi.bias_add(data, te.placeholder((8,))).shape == (1, 8, 4, 4)
        assert topi.bias_add(data, te.placeholder((1, 8, 1, 1))).shape == (1, 8, 4, 4)

    def test_bias_add_bad_shape(self):
        data = te.placeholder((1, 8, 4, 4))
        with pytest.raises(ValueError):
            topi.bias_add(data, te.placeholder((1, 8, 2, 2)))

    def test_elementwise_add_shape_mismatch(self):
        a = te.placeholder((2, 2))
        b = te.placeholder((2, 3))
        with pytest.raises(ValueError):
            topi.elementwise_add(a, b)

"""Tests for the Auto-Scheduler flow: DAG analysis, sketches, annotation, search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autotune import SimulatorRunner
from repro.autotune.registry import override_func, remove_func
from repro.autotune.sketch import (
    AnnotationSampler,
    ComputeDAG,
    LOCAL_RUNNER_FUNC_NAME,
    RandomCostModel,
    LearnedCostModel,
    SearchTask,
    SketchPolicy,
    TuningOptions,
    auto_schedule,
    generate_sketches,
)
from repro.autotune.measure import MeasureResult
from repro.codegen import Target, build_program
from repro.sim import TraceOptions
from repro.te.lower import lower
from repro.workloads import conv2d_bias_relu_workload, matmul_workload

TRACE = TraceOptions(max_accesses=15_000)
CONV_ARGS = (1, 8, 8, 8, 4, 3, 3, (1, 1), (1, 1))


@pytest.fixture(scope="module")
def conv_task():
    return SearchTask(conv2d_bias_relu_workload, CONV_ARGS, Target.arm(), name="conv_test")


class TestComputeDAG:
    def test_classification(self):
        tensors = conv2d_bias_relu_workload(*CONV_ARGS)
        dag = ComputeDAG([tensors[-1]])
        reduction_names = [op.name for op in dag.reduction_ops()]
        assert "conv2d" in reduction_names
        inlinable = [op.name for op in dag.inlinable_ops()]
        assert any(name.endswith(".pad") for name in inlinable)
        assert "bias_add" in inlinable
        # The output (relu) is element-wise but must never be inlined.
        assert "relu" not in inlinable

    def test_flop_estimate_positive(self):
        tensors = matmul_workload(8, 8, 8)
        dag = ComputeDAG([tensors[-1]])
        assert dag.flop_estimate() >= 2 * 8 * 8 * 8


class TestSketches:
    def test_generation_for_conv(self, conv_task):
        sketches = generate_sketches(conv_task.dag)
        assert len(sketches) >= 2
        for sketch in sketches:
            assert sketch.heavy_op_name == "conv2d"
            assert sketch.reduce_plans  # conv has reduction axes

    def test_elementwise_only_kernel_gets_flat_sketch(self):
        from repro import te
        from repro.te import topi

        a = te.placeholder((8, 8), name="a")
        out = topi.relu(a, name="out")
        sketches = generate_sketches(ComputeDAG([out]))
        assert len(sketches) == 1
        assert sketches[0].order_rule == "flat"

    def test_tunable_axes_exclude_unit_extents(self, conv_task):
        sketch = generate_sketches(conv_task.dag)[0]
        tunable_names = [plan.name for plan in sketch.tunable_axes()]
        assert all("conv2d.i" != name for name in tunable_names)  # batch axis extent 1


class TestAnnotation:
    def test_sample_tile_products_match_extents(self, conv_task, rng):
        sampler = AnnotationSampler(rng)
        sketch = generate_sketches(conv_task.dag)[0]
        candidate = sampler.sample(sketch)
        for plan in sketch.axis_plans():
            sizes = candidate.tile_sizes[plan.name]
            assert int(np.prod(sizes)) == plan.extent

    def test_mutation_changes_key(self, conv_task, rng):
        sampler = AnnotationSampler(rng)
        sketch = generate_sketches(conv_task.dag)[0]
        candidate = sampler.sample(sketch)
        mutations = {sampler.mutate(candidate).key() for _ in range(20)}
        assert any(key != candidate.key() for key in mutations)

    def test_features_are_numeric(self, conv_task, rng):
        sampler = AnnotationSampler(rng)
        candidate = sampler.sample(generate_sketches(conv_task.dag)[0])
        assert all(np.isfinite(v) for v in candidate.features())

    def test_candidate_applies_and_builds(self, conv_task, rng):
        sampler = AnnotationSampler(rng)
        for sketch in generate_sketches(conv_task.dag):
            candidate = sampler.sample(sketch)
            schedule = candidate.apply(conv_task.output_tensors)
            func = lower(schedule, conv_task.arg_tensors, name="candidate")
            program = build_program(func, conv_task.target)
            assert program.total_instructions() > 0

    def test_inline_rule_applied(self, conv_task, rng):
        sampler = AnnotationSampler(rng)
        candidate = sampler.sample(generate_sketches(conv_task.dag)[0])
        schedule = candidate.apply(conv_task.output_tensors)
        inlined = {stage.op.name for stage in schedule.compute_stages() if stage.inlined}
        assert any(name.endswith(".pad") for name in inlined)


class TestCostModels:
    def test_random_cost_model_shape(self, conv_task, rng):
        sampler = AnnotationSampler(rng)
        candidates = [sampler.sample(generate_sketches(conv_task.dag)[0]) for _ in range(5)]
        scores = RandomCostModel(seed=0).predict(candidates)
        assert scores.shape == (5,)

    def test_learned_cost_model_orders_after_update(self, conv_task, rng):
        sampler = AnnotationSampler(rng)
        sketch = generate_sketches(conv_task.dag)[0]
        candidates = [sampler.sample(sketch) for _ in range(24)]
        # Synthetic cost: prefer vectorised candidates.
        costs = [0.5 if c.vectorize_inner else 2.0 for c in candidates]
        model = LearnedCostModel(min_samples=8, seed=0)
        model.update(candidates, costs)
        vectorized = next(c for c in candidates if c.vectorize_inner)
        scalar = next(c for c in candidates if not c.vectorize_inner)
        predicted = model.predict([vectorized, scalar])
        assert predicted[0] < predicted[1]


class TestSearchTaskAndPolicy:
    def test_search_task_requires_computed_output(self):
        from repro import te

        def bad_workload():
            return [te.placeholder((4, 4), name="only_input")]

        with pytest.raises(ValueError):
            SearchTask(bad_workload, (), Target.arm())

    def test_sample_candidates_deduplicated(self, conv_task):
        policy = SketchPolicy(conv_task, TuningOptions(seed=0), cost_model=RandomCostModel())
        candidates = policy.sample_candidates(20)
        keys = {candidate.key() for candidate in candidates}
        assert len(keys) == len(candidates)

    def test_search_with_simulator_runner(self, conv_task):
        policy = SketchPolicy(
            conv_task,
            TuningOptions(num_measure_trials=8, num_measures_per_round=4, seed=0),
            cost_model=RandomCostModel(),
        )
        best = policy.search(runner=SimulatorRunner("arm", trace_options=TRACE))
        assert best is not None
        assert len(policy.records) == 8
        assert all(np.isfinite(record.cost) for record in policy.records)

    def test_search_requires_some_backend(self, conv_task):
        policy = SketchPolicy(conv_task, TuningOptions(num_measure_trials=4, seed=0))
        with pytest.raises(RuntimeError):
            policy.search(runner=None)

    def test_registry_override_listing4(self, conv_task):
        """The paper's Listing 4: override the local runner through the registry."""
        calls = {"n": 0}

        def local_run(inputs, build_results):
            calls["n"] += len(inputs)
            return [
                MeasureResult(costs=[float(build.program.total_instructions())])
                for build in build_results
            ]

        override_func(LOCAL_RUNNER_FUNC_NAME, local_run)
        try:
            best, records = auto_schedule(
                conv_task,
                TuningOptions(num_measure_trials=6, num_measures_per_round=3, seed=1),
                cost_model=RandomCostModel(),
            )
            assert calls["n"] == 6
            assert best is not None
            assert len(records) == 6
        finally:
            remove_func(LOCAL_RUNNER_FUNC_NAME)

    def test_evolution_uses_cost_model(self, conv_task):
        policy = SketchPolicy(
            conv_task,
            TuningOptions(num_measure_trials=12, num_measures_per_round=6, seed=2),
            cost_model=LearnedCostModel(min_samples=4, seed=0),
        )
        best = policy.search(runner=SimulatorRunner("arm", trace_options=TRACE))
        assert best is not None
        assert len(policy.records) == 12

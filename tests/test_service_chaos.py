"""Service survivability chaos suite: crash, restart, recover, verify bits.

Drives the durable job journal, worker supervision, circuit breaker and
resilient client through injected service-layer faults
(``service_conn_drop``, ``store_io_error``, ``worker_thread_crash``,
``journal_corrupt``) and through hard teardowns.  The invariant throughout
mirrors the rest of the chaos harness: every job settles as a structured
outcome — never lost, never duplicated — and every recovered result is
bit-identical to a fault-free run (``sim.host_seconds``, a wall-clock
observable, is excluded from every comparison).

The acceptance test at the bottom adopts the ambient ``REPRO_FAULT_INJECT``
profile (the CI service-chaos leg exports one); everything else shields
itself and configures its own profile explicitly.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

import repro.workloads  # noqa: F401 — registers the schedule templates
from repro.autotune import LocalBuilder, MeasureInput, create_task
from repro.codegen import Target
from repro.reliability import CircuitBreaker, RetryPolicy, faults
from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceServer,
    SimulationService,
)
from repro.service.worker import SimulationWorker
from repro.sim import (
    SimulationCache,
    SimulationFailure,
    SimulationResult,
    Simulator,
    TraceOptions,
)
from repro.sim.simulator import BatchSimulator

TRACE = TraceOptions(max_accesses=15_000)


@pytest.fixture(autouse=True)
def _fault_free():
    """Shield every test from ambient ``REPRO_FAULT_INJECT``; only the
    acceptance test at the bottom opts into the ambient profile."""
    faults.configure("")
    yield
    faults.reset()


@pytest.fixture(scope="module")
def matmul_task():
    return create_task("matmul", (8, 8, 8), Target.arm())


@pytest.fixture(scope="module")
def programs(matmul_task):
    inputs = [
        MeasureInput(matmul_task, matmul_task.config_space.get(i)) for i in (0, 1, 2, 3)
    ]
    builds = LocalBuilder().build(inputs)
    assert all(build.ok for build in builds)
    return [build.program for build in builds]


def flat(result):
    """Statistics of one simulation, minus the wall-clock observable."""
    stats = dict(result.stats.as_dict())
    stats.pop("sim.host_seconds", None)
    return stats


def _worker_rig(store, **kwargs):
    """A supervised worker over a real batch simulator and the given store."""
    simulator = BatchSimulator(
        "arm", None, TRACE, memo_cache=SimulationCache(store=store)
    )
    defaults = dict(journal=store, poll_s=0.01, heartbeat_s=0.05, lease_s=5.0)
    defaults.update(kwargs)
    worker = SimulationWorker(simulator, **defaults)
    return simulator, worker


def _digest(simulator, program):
    return SimulationCache.make_key(
        program, simulator.hierarchy_config, simulator.trace_options, simulator.engine
    )


def _wait_until(predicate, deadline_s=30.0, poll_s=0.02):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return predicate()


# ---------------------------------------------------------------------------
# Restart recovery (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestRestartRecovery:
    def test_restarted_service_settles_every_journaled_job_bit_identically(
        self, tmp_path, programs
    ):
        """Kill a service holding queued *and* leased jobs; a fresh service
        over the same database settles all of them — none lost, none
        duplicated, every result bit-identical to a fault-free run."""
        baseline = {
            program.name: flat(Simulator("arm").run(program)) for program in programs
        }
        db = tmp_path / "service.db"

        # Service A: the worker is dead (a crashed drain thread nobody
        # restarts), so accepted wait=false jobs pile up in the journal.
        store_a = ResultStore(db)
        service_a = SimulationService("arm", store_a, supervise=False)
        service_a.worker.stop()
        server_a = ServiceServer(service_a, port=0).start_in_thread()
        client_a = ServiceClient(server_a.url)
        digests = {}
        try:
            for program in programs:
                queued = client_a.simulate(program, wait=False)
                assert isinstance(queued, SimulationFailure)  # 202 placeholder
                digests[program.name] = _digest(service_a.simulator, program)
            assert store_a.journal_pending() == len(programs)
            # Two of the jobs were mid-wave when the "crash" hit: leased
            # under a short lease that the dead worker will never settle.
            leased = store_a.journal_claim(2, lease_s=0.2)
            assert len(leased) == 2
        finally:
            server_a.stop()  # hard teardown: no drain, journal untouched
            store_a.close()

        # Service B over the same database: startup recovery plus the
        # supervisor sweep reclaim everything and settle it.
        store_b = ResultStore(db)
        service_b = SimulationService("arm", store_b)
        server_b = ServiceServer(service_b, port=0).start_in_thread()
        client_b = ServiceClient(server_b.url)
        try:
            for program in programs:
                outcome = client_b.wait_result(digests[program.name], deadline_s=60.0)
                assert isinstance(outcome, SimulationResult)
                assert flat(outcome) == baseline[program.name]
            counters = store_b.journal_counters()
            assert counters["queued"] == 0.0 and counters["leased"] == 0.0
            assert counters["done"] == float(len(programs))
            # Digest-keyed rows: exactly one result per job, no duplicates.
            assert len(store_b) == len(programs)
        finally:
            server_b.stop()
            store_b.close()

    def test_stop_drain_journals_the_inflight_queue(self, programs):
        """A graceful drain loses nothing: queued-but-unstarted in-memory
        jobs land in the journal for the next service over the database."""
        store = ResultStore(":memory:")
        _, worker = _worker_rig(store, supervise=False)
        worker.stop()  # freeze the drain loop first
        for index, program in enumerate(programs[:3]):
            worker.submit(f"digest-{index}", program)
        worker.stop(drain=True)
        assert worker.journaled_on_drain == 3
        assert store.journal_pending() == 3
        store.close()


# ---------------------------------------------------------------------------
# Worker supervision and the circuit breaker
# ---------------------------------------------------------------------------


class TestSupervision:
    def test_supervisor_restarts_a_crashed_worker_and_rescues_the_wave(
        self, programs
    ):
        store = ResultStore(":memory:")
        simulator, worker = _worker_rig(store)
        try:
            faults.configure("worker_thread_crash:n=1", seed=1)
            job = worker.submit(_digest(simulator, programs[0]), programs[0])
            outcome = job.wait(30.0)
            assert isinstance(outcome, SimulationResult)
            assert flat(outcome) == flat(Simulator("arm", trace_options=TRACE).run(programs[0]))
            assert worker.restarts == 1
            assert worker.healthy()
        finally:
            worker.stop()
            store.close()

    def test_repeated_crashes_trip_the_breaker_then_a_probe_closes_it(
        self, programs
    ):
        store = ResultStore(":memory:")
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.4, jitter=0.0)
        simulator, worker = _worker_rig(store, breaker=breaker)
        digest = _digest(simulator, programs[1])
        try:
            faults.configure("worker_thread_crash:n=2", seed=1)
            store.journal_enqueue(digest, pickle.dumps(programs[1]))
            # Crash #1 and #2: each dead thread is one whole-wave fault, and
            # two in a row trip the breaker.
            assert _wait_until(lambda: breaker.state == CircuitBreaker.OPEN)
            assert worker.restarts >= 2
            # While open the worker claims nothing — the rescued job waits.
            assert store.journal_status(digest)[0] == "queued"
            # After the probe deadline the half-open probe wave runs the job
            # (no more crashes are armed) and closes the breaker.
            assert _wait_until(lambda: store.journal_status(digest)[0] == "done")
            assert _wait_until(lambda: breaker.state == CircuitBreaker.CLOSED)
            result = store.get(digest)
            assert result is not None
        finally:
            worker.stop()
            store.close()

    def test_corrupt_journal_blob_settles_failed_not_fatal(self, programs):
        """The ``journal_corrupt`` site garbles a claimed program blob; the
        worker settles the row as failed instead of dying on the pickle."""
        store = ResultStore(":memory:")
        simulator, worker = _worker_rig(store)
        digest = _digest(simulator, programs[2])
        try:
            faults.configure("journal_corrupt:once", seed=2)
            store.journal_enqueue(digest, pickle.dumps(programs[2]))
            assert _wait_until(lambda: store.journal_status(digest)[0] == "failed")
            state, error, _ = store.journal_status(digest)
            assert "undecodable journaled program" in error
            assert worker.corrupt_jobs == 1
            assert worker.healthy()  # the worker shrugged it off
        finally:
            worker.stop()
            store.close()


# ---------------------------------------------------------------------------
# Client resilience against injected transport/store faults
# ---------------------------------------------------------------------------


class TestClientResilience:
    def test_dropped_connection_is_retried_transparently(self, programs):
        store = ResultStore(":memory:")
        service = SimulationService("arm", store)
        server = ServiceServer(service, port=0).start_in_thread()
        client = ServiceClient(
            server.url, retry=RetryPolicy(max_attempts=4, base_delay_s=0.01)
        )
        try:
            warm = client.simulate(programs[0])
            assert isinstance(warm, SimulationResult)
            faults.configure("service_conn_drop:n=1", seed=3)
            again = client.simulate(programs[0])
            assert isinstance(again, SimulationResult)
            assert again.cached
            assert flat(again) == flat(warm)
            assert client.retries >= 1
        finally:
            server.stop()
            store.close()

    def test_store_io_error_degrades_health_but_requests_still_serve(
        self, tmp_path, programs
    ):
        db = tmp_path / "service.db"
        store_a = ResultStore(db)
        service_a = SimulationService("arm", store_a)
        server_a = ServiceServer(service_a, port=0).start_in_thread()
        try:
            warm = ServiceClient(server_a.url).simulate(programs[0])
            assert isinstance(warm, SimulationResult)
        finally:
            server_a.stop()
            store_a.close()

        # A fresh service (cold memory LRU) whose first store read faults:
        # the memo layer contains it as a miss, the request recomputes the
        # same bits, and the health probe reports the struggling store.
        faults.configure("store_io_error:n=1", seed=5)
        store_b = ResultStore(db)
        service_b = SimulationService("arm", store_b)
        server_b = ServiceServer(service_b, port=0).start_in_thread()
        client = ServiceClient(server_b.url)
        try:
            served = client.simulate(programs[0])
            assert isinstance(served, SimulationResult)
            assert flat(served) == flat(warm)
            assert store_b.io_errors == 1
            assert not client.healthy()  # degraded: recent store I/O errors
            status, body = service_b.health()
            assert status == 503 and "store io errors" in body["reasons"]
        finally:
            server_b.stop()
            store_b.close()


# ---------------------------------------------------------------------------
# Acceptance-scale ambient chaos run
# ---------------------------------------------------------------------------


#: Default acceptance profile; the CI service-chaos leg overrides it through
#: the environment (``REPRO_FAULT_INJECT``) to stress different rates/seeds.
SERVICE_CHAOS_PROFILE = "service_conn_drop:p=0.15;store_io_error:p=0.1;seed=33"


class TestServiceChaosAcceptance:
    def test_service_settles_a_batch_under_ambient_faults(self, programs):
        baseline = {
            program.name: flat(Simulator("arm").run(program)) for program in programs
        }
        faults.configure(os.environ.get(faults.ENV_VAR) or SERVICE_CHAOS_PROFILE)
        store = ResultStore(":memory:")
        service = SimulationService("arm", store)
        server = ServiceServer(service, port=0).start_in_thread()
        client = ServiceClient(
            server.url, retry=RetryPolicy(max_attempts=6, base_delay_s=0.02)
        )
        try:
            # Two passes over the batch: the first computes under injected
            # connection drops / store faults / worker crashes, the second
            # must serve the identical bits (from cache or by recompute).
            for _ in range(2):
                for program in programs:
                    outcome = client.simulate(program)
                    assert isinstance(outcome, SimulationResult)
                    assert flat(outcome) == baseline[program.name]
        finally:
            faults.configure("")
            server.stop()
            store.close()
        # A clean follow-up run is bit-identical to the pristine baseline.
        for program in programs:
            assert flat(Simulator("arm").run(program)) == baseline[program.name]

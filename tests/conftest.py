"""Shared fixtures: small kernels, programs and datasets used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import te
from repro.codegen import Target, build_program
from repro.pipeline.dataset import generate_group_samples
from repro.predictor.training import PredictorDataset
from repro.sim.cpu import TraceOptions
from repro.te import topi
from repro.workloads.conv2d import Conv2DParams


def make_matmul_func(n=8, l=6, m=10, tile_x=None, tile_k=None, vectorize=False, unroll=False,
                     name="matmul"):
    """A lowered matmul with an optional simple schedule."""
    a = te.placeholder((n, l), name="A")
    b = te.placeholder((l, m), name="B")
    c = topi.matmul(a, b, name="C")
    schedule = te.create_schedule(c)
    stage = schedule[c]
    y, x = c.op.axis
    (k,) = c.op.reduce_axis
    if tile_x:
        x_outer, x_inner = stage.split(x, factor=tile_x)
        if vectorize:
            stage.vectorize(x_inner)
    if tile_k:
        stage.split(k, factor=tile_k)
    if unroll:
        stage.unroll(stage.leaf_iter_vars[-1])
    return te.lower(schedule, [a, b, c], name=name), (a, b, c)


def make_conv_func(params: Conv2DParams | None = None, vectorize=True, name="conv"):
    """A lowered Conv2D+Bias+ReLU kernel with a small tiled schedule."""
    params = params or Conv2DParams(1, 8, 8, 4, 3, 3, 3, (1, 1), (1, 1))
    ifm = te.placeholder((params.n, params.ci, params.h, params.w), name="ifm")
    weights = te.placeholder((params.co, params.ci, params.kh, params.kw), name="weights")
    bias = te.placeholder((params.n, params.co, 1, 1), name="bias")
    conv = topi.conv2d_nchw(ifm, weights, stride=params.stride, padding=params.padding)
    out = topi.relu(topi.bias_add(conv, bias))
    schedule = te.create_schedule(out)
    for stage in schedule.compute_stages():
        if stage.op.name.endswith(".pad"):
            stage.compute_inline()
    conv_stage = schedule[conv]
    n, co, oh, ow = conv.op.axis
    ci, kh, kw = conv.op.reduce_axis
    co_outer, co_inner = conv_stage.split(co, factor=min(2, params.co))
    ow_outer, ow_inner = conv_stage.split(ow, factor=min(4, params.output_spatial[1]))
    conv_stage.reorder(n, co_outer, oh, ow_outer, ci, kh, kw, co_inner, ow_inner)
    if vectorize:
        conv_stage.vectorize(ow_inner)
    args = [ifm, weights, bias, out]
    return te.lower(schedule, args, name=name), args


@pytest.fixture(scope="session")
def matmul_func():
    return make_matmul_func()[0]


@pytest.fixture(scope="session")
def conv_func():
    return make_conv_func()[0]


@pytest.fixture(scope="session")
def conv_program_x86(conv_func):
    return build_program(conv_func, Target.x86())


@pytest.fixture(scope="session")
def conv_program_riscv(conv_func):
    return build_program(conv_func, Target.riscv())


@pytest.fixture(scope="session")
def tiny_dataset() -> PredictorDataset:
    """A tiny two-group training dataset (shared; generation costs ~2 s)."""
    dataset = PredictorDataset(arch="arm", kernel_type="conv2d_bias_relu")
    trace = TraceOptions(max_accesses=20_000)
    for group_id, params in {
        1: Conv2DParams(1, 8, 8, 8, 8, 3, 3, (1, 1), (1, 1)),
        2: Conv2DParams(1, 6, 6, 12, 8, 3, 3, (2, 2), (1, 1)),
    }.items():
        dataset.extend(
            generate_group_samples(
                "arm", group_id, params, n_implementations=14, seed=7, trace_options=trace
            )
        )
    return dataset


@pytest.fixture()
def rng():
    return np.random.default_rng(0)

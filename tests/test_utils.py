"""Tests for repro.utils: RNG derivation, tables and serialisation."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils import derive_seed, dump_json, format_table, load_json, new_generator, to_jsonable


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_change_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_seed_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_in_numpy_seed_range(self):
        assert 0 <= derive_seed(123, "x") < 2**31 - 1

    @given(st.integers(min_value=0, max_value=2**31 - 1), st.text(max_size=20))
    def test_always_valid_seed(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**31 - 1

    def test_new_generator_reproducible(self):
        a = new_generator(3, "tuner").random(5)
        b = new_generator(3, "tuner").random(5)
        np.testing.assert_array_equal(a, b)

    def test_new_generator_differs_by_label(self):
        a = new_generator(3, "x").random(5)
        b = new_generator(3, "y").random(5)
        assert not np.array_equal(a, b)


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text and "3.25" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_wrong_row_length_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_format(self):
        text = format_table(["v"], [[3.14159]], float_fmt=".3f")
        assert "3.142" in text


@dataclasses.dataclass
class _Record:
    name: str
    values: list


class TestSerialization:
    def test_numpy_types(self):
        payload = to_jsonable({"a": np.int64(3), "b": np.float32(1.5), "c": np.array([1, 2])})
        assert payload == {"a": 3, "b": 1.5, "c": [1, 2]}

    def test_dataclass(self):
        record = _Record(name="x", values=[1, 2])
        assert to_jsonable(record) == {"name": "x", "values": [1, 2]}

    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.json"
        dump_json({"k": [1, 2, 3], "nested": {"x": 1.5}}, path)
        assert load_json(path) == {"k": [1, 2, 3], "nested": {"x": 1.5}}

    def test_bool_conversion(self):
        assert to_jsonable(np.bool_(True)) is True

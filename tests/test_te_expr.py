"""Tests for the expression tree: operators, folding and affine analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.te.expr import (
    BinaryOp,
    CmpOp,
    FloatImm,
    IntImm,
    LogicalOp,
    Select,
    Var,
    affine_form,
    const,
    max_expr,
    min_expr,
    post_order_visit,
    simplify,
    substitute,
    wrap,
)


class TestOperatorOverloading:
    def test_add_builds_node(self):
        x = Var("x")
        node = x + 1
        assert isinstance(node, BinaryOp) and node.op == "add"

    def test_reverse_operators(self):
        x = Var("x")
        node = 3 * x
        assert isinstance(node, BinaryOp) and node.op == "mul"
        assert isinstance(node.a, IntImm) and node.a.value == 3

    def test_comparison_builds_cmp(self):
        x = Var("x")
        node = x < 5
        assert isinstance(node, CmpOp) and node.op == "lt"

    def test_neg(self):
        x = Var("x")
        node = -x
        assert isinstance(node, BinaryOp) and node.op == "sub"

    def test_float_wrap(self):
        node = wrap(1.5)
        assert isinstance(node, FloatImm) and node.value == 1.5

    def test_wrap_rejects_strings(self):
        with pytest.raises(TypeError):
            wrap("nope")

    def test_min_max_helpers(self):
        assert max_expr(1, 2).op == "max"
        assert min_expr(Var("x"), 0).op == "min"

    def test_invalid_binary_op(self):
        with pytest.raises(ValueError):
            BinaryOp("pow", const(1), const(2))

    def test_invalid_cmp_op(self):
        with pytest.raises(ValueError):
            CmpOp("approx", const(1), const(2))

    def test_invalid_logical_op(self):
        with pytest.raises(ValueError):
            LogicalOp("xor", const(1), const(0))


class TestVisitorsAndSubstitute:
    def test_post_order_counts_nodes(self):
        x, y = Var("x"), Var("y")
        expr = x * 2 + y
        seen = []
        post_order_visit(expr, seen.append)
        assert len(seen) == 5  # x, 2, mul, y, add

    def test_substitute_replaces_var(self):
        x, y = Var("x"), Var("y")
        expr = x + 1
        replaced = substitute(expr, {x: y * 2})
        assert isinstance(replaced.a, BinaryOp) and replaced.a.op == "mul"

    def test_substitute_identity_for_other_vars(self):
        x, y = Var("x"), Var("y")
        replaced = substitute(x + y, {x: const(1)})
        assert replaced.b is y

    def test_substitute_select(self):
        x = Var("x")
        expr = Select(x < 3, x, const(0))
        out = substitute(expr, {x: const(5)})
        assert isinstance(out.cond.a, IntImm) and out.cond.a.value == 5


class TestSimplify:
    def test_constant_folding(self):
        out = simplify(const(2) + const(3))
        assert isinstance(out, IntImm) and out.value == 5

    def test_mul_by_one(self):
        x = Var("x")
        out = simplify(x * 1)
        assert out is x

    def test_mul_by_zero(self):
        x = Var("x")
        out = simplify(x * 0)
        assert isinstance(out, IntImm) and out.value == 0

    def test_add_zero(self):
        x = Var("x")
        assert simplify(x + 0) is x
        assert simplify(0 + x) is x

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_fold_matches_python(self, a, b):
        out = simplify(const(a) + const(b))
        assert isinstance(out, IntImm) and out.value == a + b


class TestAffineForm:
    def test_simple_affine(self):
        x, y = Var("x"), Var("y")
        coeffs, constant = affine_form(x * 3 + y + 7, [x, y])
        assert coeffs == {x: 3, y: 1}
        assert constant == 7

    def test_nested_affine(self):
        x, y = Var("x"), Var("y")
        coeffs, constant = affine_form((x + 2) * 4 - y, [x, y])
        assert coeffs == {x: 4, y: -1}
        assert constant == 8

    def test_non_affine_returns_none(self):
        x, y = Var("x"), Var("y")
        assert affine_form(x * y, [x, y]) is None

    def test_unknown_var_returns_none(self):
        x, y = Var("x"), Var("y")
        assert affine_form(x + y, [x]) is None

    def test_zero_coefficients_dropped(self):
        x = Var("x")
        coeffs, constant = affine_form(x - x + 5, [x])
        assert coeffs == {}
        assert constant == 5

    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    def test_affine_of_linear_combo(self, a, b, c):
        x, y = Var("x"), Var("y")
        coeffs, constant = affine_form(x * a + y * b + c, [x, y])
        assert coeffs.get(x, 0) == a
        assert coeffs.get(y, 0) == b
        assert constant == c

"""Equivalence tests for the compressed descriptor trace pipeline.

Two properties anchor the descriptor path:

* **Trace equivalence** — for any program and any trace options,
  concatenating ``DescriptorChunk.expand()`` over
  :meth:`Program.memory_trace_descriptors` reproduces
  :meth:`Program.memory_trace` bit for bit (same chunk boundaries, same
  addresses, same write flags) — including guards, per-access predicates,
  gathers, ``sample_fraction`` < 1 and ``max_accesses`` truncation.
* **Statistics equivalence** — driving the descriptor stream through the
  vectorized engine produces cache statistics identical to the reference
  per-access loop on the expanded stream, at every level of the hierarchy.

The random-program generator below deliberately produces ugly programs:
negative coefficients, zero-extent-free but tiny loops, predicates with every
comparison operator, gathers and guard nests — so the closed-form collapse,
conflict explosion and chain pre-resolution paths all get exercised.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codegen.program import (
    Block,
    Buffer,
    DescriptorChunk,
    Guard,
    LinearPredicate,
    Loop,
    MemoryAccess,
    Program,
)
from repro.codegen.target import Target
from repro.sim import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    TRACE_DESCRIPTOR,
    TRACE_EXPANDED,
    CacheHierarchy,
    CacheHierarchyConfig,
    CacheLevelConfig,
    Simulator,
    TraceOptions,
    resolve_trace_mode,
)

OPS = ("lt", "le", "gt", "ge", "eq", "ne")

TINY_HIERARCHY = CacheHierarchyConfig(
    name="tiny",
    l1d=CacheLevelConfig(size_bytes=4 * 64 * 2, sets=4, associativity=2),
    l1i=CacheLevelConfig(size_bytes=4 * 64 * 2, sets=4, associativity=2),
    l2=CacheLevelConfig(size_bytes=8 * 64 * 2, sets=8, associativity=2),
    l3=CacheLevelConfig(size_bytes=16 * 64 * 4, sets=16, associativity=4),
)

#: The same geometry with random replacement everywhere: descriptor chunks
#: must replay the seeded victim stream bit-identically to the reference
#: loop on the expanded stream.
TINY_RANDOM_HIERARCHY = CacheHierarchyConfig(
    name="tiny-random",
    l1d=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement="random"),
    l1i=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement="random"),
    l2=CacheLevelConfig(8 * 64 * 2, 8, 2, replacement="random"),
    l3=CacheLevelConfig(16 * 64 * 4, 16, 4, replacement="random"),
)


def build_program(buffers, roots, name="prog"):
    return Program(name, Target.x86(), buffers, roots)


def random_program(rng: np.random.Generator) -> Program:
    n_buffers = int(rng.integers(1, 4))
    buffers = [
        Buffer(
            f"b{index}",
            size_bytes=int(rng.integers(1, 40)) * 256,
            element_bytes=int(rng.choice([1, 4, 8])),
        )
        for index in range(n_buffers)
    ]
    depth = int(rng.integers(1, 5))
    loops = [(f"v{level}", int(rng.integers(1, 7))) for level in range(depth)]
    names = [name for name, _ in loops]

    def random_predicates(limit):
        predicates = []
        for _ in range(int(rng.integers(0, limit + 1))):
            count = int(rng.integers(1, min(3, len(names)) + 1))
            chosen = rng.choice(names, size=count, replace=False)
            predicates.append(
                LinearPredicate(
                    coeffs={str(var): int(rng.integers(-3, 4)) for var in chosen},
                    const=int(rng.integers(-4, 5)),
                    op=str(rng.choice(OPS)),
                )
            )
        return predicates

    accesses = []
    for _ in range(int(rng.integers(1, 4))):
        buffer = buffers[int(rng.integers(0, n_buffers))]
        coeffs = {
            name: int(rng.integers(-8, 32)) for name, _ in loops if rng.random() < 0.8
        }
        gather = int(rng.choice([0, 0, 0, 2, 5]))
        accesses.append(
            MemoryAccess(
                buffer=buffer,
                coeffs=coeffs,
                const=int(rng.integers(0, 16)),
                is_store=bool(rng.random() < 0.4),
                width=int(rng.integers(2, 5)) if gather else 1,
                gather_stride=gather,
                predicates=random_predicates(2),
            )
        )
    node = Block(accesses=accesses)
    if rng.random() < 0.4:
        node = Guard(
            predicates=random_predicates(2)
            or [LinearPredicate({names[0]: 1}, 0, "ge")],
            body=node,
        )
    for name, extent in reversed(loops):
        node = Loop(var=name, extent=extent, kind="serial", body=node)
    return build_program(buffers, [node])


def assert_trace_equal(program: Program, **options) -> None:
    expanded = list(program.memory_trace(**options))
    descriptors = list(program.memory_trace_descriptors(**options))
    assert len(expanded) == len(descriptors)
    for index, ((addresses, writes), chunk) in enumerate(zip(expanded, descriptors)):
        got_addresses, got_writes = chunk.expand()
        assert chunk.total == addresses.size, f"chunk {index} size"
        assert np.array_equal(addresses, got_addresses), f"chunk {index} addresses"
        assert np.array_equal(writes, got_writes), f"chunk {index} writes"


def assert_stats_equal(
    program: Program, hierarchy=TINY_HIERARCHY, rng_seed: int = 0, **options
) -> None:
    reference = CacheHierarchy(hierarchy, engine=ENGINE_REFERENCE, rng_seed=rng_seed)
    for addresses, writes in program.memory_trace(**options):
        reference.access_data_batch(addresses, writes)
    descriptor = CacheHierarchy(hierarchy, engine=ENGINE_VECTORIZED, rng_seed=rng_seed)
    for chunk in program.memory_trace_descriptors(**options):
        descriptor.access_data_descriptors(chunk)
    assert reference.stats_dict() == descriptor.stats_dict()


class TestDescriptorTraceProperty:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_programs_trace_and_stats(self, seed):
        rng = np.random.default_rng(seed)
        program = random_program(rng)
        options = dict(chunk_iterations=int(rng.choice([5, 64, 1024])))
        if rng.random() < 0.5:
            options["max_accesses"] = int(rng.integers(1, 2000))
        if rng.random() < 0.4:
            options["sample_fraction"] = float(rng.uniform(0.2, 0.9))
            options["seed"] = seed
        assert_trace_equal(program, **options)
        assert_stats_equal(program, **options)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_replacement_descriptor_equivalence(self, seed):
        """Descriptor chunks replay the seeded victim stream bit-identically.

        The generated programs cover guards, predicates, gathers and
        truncation; the hierarchy uses random replacement at every level, so
        the vectorized engine's closed-form head collapse must consume the
        per-set eviction ordinals exactly as the reference loop does.
        """
        rng = np.random.default_rng(1000 + seed)
        program = random_program(rng)
        options = dict(chunk_iterations=int(rng.choice([5, 64, 1024])))
        if rng.random() < 0.5:
            options["max_accesses"] = int(rng.integers(1, 2000))
        assert_stats_equal(
            program, hierarchy=TINY_RANDOM_HIERARCHY, rng_seed=seed, **options
        )

    def test_random_replacement_truncation_and_chunking_invariance(self):
        rng = np.random.default_rng(77)
        program = random_program(rng)
        base = None
        for chunk_iterations in (7, 100, 1 << 14):
            hierarchy = CacheHierarchy(
                TINY_RANDOM_HIERARCHY, engine=ENGINE_VECTORIZED, rng_seed=5
            )
            for chunk in program.memory_trace_descriptors(
                chunk_iterations=chunk_iterations, max_accesses=1500
            ):
                hierarchy.access_data_descriptors(chunk)
            stats = hierarchy.stats_dict()
            if base is None:
                base = stats
            else:
                assert stats == base

    def test_chunking_invariance_of_statistics(self):
        rng = np.random.default_rng(11)
        program = random_program(rng)
        base = None
        for chunk_iterations in (7, 100, 1 << 14):
            hierarchy = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_VECTORIZED)
            for chunk in program.memory_trace_descriptors(chunk_iterations=chunk_iterations):
                hierarchy.access_data_descriptors(chunk)
            stats = hierarchy.stats_dict()
            if base is None:
                base = stats
            else:
                assert stats == base


class TestDescriptorShapes:
    """Targeted geometries for each closed-form collapse case."""

    def _linear_program(self, coeffs, extents, elem=4, predicates=(), is_store=False):
        buffer = Buffer("b", size_bytes=1 << 16, element_bytes=elem)
        access = MemoryAccess(
            buffer=buffer,
            coeffs=coeffs,
            const=64,
            is_store=is_store,
            predicates=list(predicates),
        )
        node = Block(accesses=[access])
        for name, extent in reversed(extents):
            node = Loop(var=name, extent=extent, kind="serial", body=node)
        return build_program([buffer], [node])

    def test_zero_stride_run(self):
        program = self._linear_program({"i": 1}, [("i", 8), ("j", 64)])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_contiguous_run_collapses(self):
        program = self._linear_program({"i": 64, "j": 1}, [("i", 16), ("j", 64)])
        chunks = list(program.memory_trace_descriptors())
        assert chunks[0].nbytes() < 200  # one regular batch, scalars only
        assert_stats_equal(program)

    def test_large_stride_and_negative_stride(self):
        for coeff in (64, -17, -1):
            program = self._linear_program({"j": coeff}, [("i", 4), ("j", 50)])
            assert_trace_equal(program)
            assert_stats_equal(program)

    def test_gather_lanes(self):
        buffer = Buffer("b", size_bytes=1 << 14, element_bytes=4)
        access = MemoryAccess(
            buffer=buffer,
            coeffs={"i": 3},
            const=0,
            is_store=False,
            width=4,
            gather_stride=7,
        )
        node = Loop(var="i", extent=100, kind="serial", body=Block(accesses=[access]))
        program = build_program([buffer], [node])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_guards_and_scalar_promotion_predicates(self):
        buffer = Buffer("b", size_bytes=1 << 14, element_bytes=4)
        first = LinearPredicate({"k": 1}, 0, "eq")  # hoisted-load pattern
        interior = LinearPredicate({"j": 2, "k": 1}, -3, "ge")  # padding window
        load = MemoryAccess(buffer=buffer, coeffs={"j": 4}, const=0, is_store=False,
                            predicates=[first])
        store = MemoryAccess(buffer=buffer, coeffs={"j": 4, "k": 1}, const=1,
                             is_store=True, predicates=[interior])
        node = Block(accesses=[load, store])
        node = Guard(predicates=[LinearPredicate({"i": 1}, -1, "ge")], body=node)
        for name, extent in (("k", 4), ("j", 8), ("i", 3)):
            node = Loop(var=name, extent=extent, kind="serial", body=node)
        program = build_program([buffer], [node])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_conflicting_interleaved_buffers_explode_exactly(self):
        # Two buffers whose lines alias to the same set force the conflict
        # explosion path: a long run of one buffer interleaved with accesses
        # of the other in the same set.
        a = Buffer("a", size_bytes=1 << 13, element_bytes=4)
        b = Buffer("b", size_bytes=1 << 13, element_bytes=4)
        run = MemoryAccess(buffer=a, coeffs={"i": 1}, const=0, is_store=False)
        hopper = MemoryAccess(buffer=b, coeffs={"i": 64}, const=0, is_store=True)
        node = Loop(var="i", extent=512, kind="serial",
                    body=Block(accesses=[run, hopper]))
        program = build_program([a, b], [node])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_truncation_stays_descriptor_form(self):
        program = self._linear_program({"i": 64, "j": 1}, [("i", 16), ("j", 64)])
        chunks = list(program.memory_trace_descriptors(max_accesses=777))
        assert sum(chunk.total for chunk in chunks) == 777
        assert chunks[-1].batches, "truncated chunk should keep its run batches"
        assert_trace_equal(program, max_accesses=777)
        assert_stats_equal(program, max_accesses=777)

    def test_empty_and_degenerate_programs(self):
        buffer = Buffer("b", size_bytes=256, element_bytes=4)
        empty = build_program([buffer], [Loop("i", 4, "serial", Block())])
        assert list(empty.memory_trace_descriptors()) == []
        scalar = build_program(
            [buffer],
            [Block(accesses=[MemoryAccess(buffer=buffer, coeffs={}, const=3,
                                          is_store=True)])],
        )
        assert_trace_equal(scalar)
        assert_stats_equal(scalar)


def _tiled_program(splits, elem=4, outer_order=None, inner_order=None, extra_accesses=()):
    """A conv2d-style tiled schedule: logical dims split into outer/inner loops.

    ``splits`` is a list of ``(outer, inner)`` factor pairs, one per logical
    (row-major) tensor dimension; the loop nest runs all outer loops first,
    then all inner loops, so the innermost affine window is tiny and the
    descriptor emitter must grid the outer structure to compress anything.
    """
    n_dims = len(splits)
    extents = [o * i for o, i in splits]
    strides = [1] * n_dims
    for d in range(n_dims - 2, -1, -1):
        strides[d] = strides[d + 1] * extents[d + 1]
    outer_order = list(outer_order if outer_order is not None else range(n_dims))
    inner_order = list(inner_order if inner_order is not None else range(n_dims))
    loops = [(f"o{d}", splits[d][0]) for d in outer_order]
    loops += [(f"i{d}", splits[d][1]) for d in inner_order]
    coeffs = {}
    for d in range(n_dims):
        coeffs[f"o{d}"] = strides[d] * splits[d][1]
        coeffs[f"i{d}"] = strides[d]
    buffer = Buffer("b", size_bytes=(strides[0] * extents[0] + 16) * elem, element_bytes=elem)
    accesses = [MemoryAccess(buffer=buffer, coeffs=coeffs, const=0, is_store=False)]
    for access in extra_accesses:
        accesses.append(access(buffer, coeffs, splits, inner_order))
    node = Block(accesses=accesses)
    for name, extent in reversed(loops):
        node = Loop(var=name, extent=extent, kind="serial", body=node)
    return build_program([buffer], [node])


def _padded_store(buffer, coeffs, splits, inner_order):
    """A store guarded by a padding-style window on logical dim 0."""
    predicate = LinearPredicate({"o0": splits[0][1], "i0": 1}, -1, "ge")
    return MemoryAccess(
        buffer=buffer, coeffs=dict(coeffs), const=1, is_store=True, predicates=[predicate]
    )


def _promoted_load(buffer, coeffs, splits, inner_order):
    """A scalar-promoted load that fires on the first innermost iteration only."""
    hoisted = f"i{inner_order[-1]}"
    return MemoryAccess(
        buffer=buffer,
        coeffs={name: value for name, value in coeffs.items() if name != hoisted},
        const=3,
        is_store=False,
        predicates=[LinearPredicate({hoisted: 1}, 0, "eq")],
    )


class TestGridRunBatches:
    """Multi-level grid descriptors: structure, truncation, engine collapse."""

    def test_tiled_nest_compresses_to_grids(self):
        program = _tiled_program([(4, 3), (5, 2), (3, 4)])
        chunks = list(program.memory_trace_descriptors())
        assert len(chunks) == 1
        chunk = chunks[0]
        assert any(batch.grid_counts is not None for batch in chunk.batches)
        # One stored run plus a handful of level scalars, not one run per
        # tiled window (the nest has 4*5*3 * 3*2 = 360 windows).
        assert chunk.nbytes() < 512
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_predicated_tiled_nest(self):
        program = _tiled_program(
            [(4, 3), (5, 2), (3, 4)], extra_accesses=[_padded_store, _promoted_load]
        )
        chunks = list(program.memory_trace_descriptors())
        expanded_bytes = sum(
            a.nbytes + w.nbytes for a, w in program.memory_trace()
        )
        assert sum(chunk.nbytes() for chunk in chunks) * 3 < expanded_bytes
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_degrid_matches_member_addresses(self):
        from repro.codegen.program import AccessRunBatch

        batch = AccessRunBatch(
            bases=np.array([0x100, 0x900], dtype=np.int64),
            stride=8,
            pos_stride=3,
            is_write=False,
            counts=np.array([3, 2], dtype=np.int64),
            first_pos=np.array([0, 9], dtype=np.int64),
            grid_strides=np.array([0x2000, 64], dtype=np.int64),
            grid_counts=np.array([2, 4], dtype=np.int64),
            grid_pos_strides=np.array([400, 100], dtype=np.int64),
        )
        assert batch.grid_multiplicity == 8
        assert batch.total == 5 * 8
        flat = batch.degrid()
        assert flat.grid_counts is None and flat.total == batch.total
        addresses, positions = batch.member_addresses()
        flat_addresses, flat_positions = flat.member_addresses()
        order, flat_order = np.argsort(positions), np.argsort(flat_positions)
        assert np.array_equal(addresses[order], flat_addresses[flat_order])
        assert np.array_equal(positions[order], flat_positions[flat_order])

    def test_truncate_mid_grid_keeps_grid_form(self):
        program = _tiled_program([(6, 2), (4, 3), (2, 5)])
        full = list(program.memory_trace_descriptors())
        assert any(b.grid_counts is not None for c in full for b in c.batches)
        total = sum(chunk.total for chunk in full)
        # Land strictly inside the grid: an odd cut well past the first slab.
        keep = total // 2 + 7
        chunks = list(program.memory_trace_descriptors(max_accesses=keep))
        assert sum(chunk.total for chunk in chunks) == keep
        assert any(
            batch.grid_counts is not None for batch in chunks[-1].batches
        ), "mid-grid truncation should keep the fully-covered slabs as a grid"
        assert_trace_equal(program, max_accesses=keep)
        assert_stats_equal(program, max_accesses=keep)

    def test_truncate_overlapping_handbuilt_grid_falls_back(self):
        # Slabs of the outer level overlap in position space — impossible for
        # the built-in emitter, legal for hand-built producers: truncation
        # must detect it and clip the degridded runs instead.
        from repro.codegen.program import AccessRunBatch

        batch = AccessRunBatch(
            bases=np.array([0x100], dtype=np.int64),
            stride=4,
            pos_stride=7,
            is_write=False,
            uniform_count=3,
            first_pos_start=0,
            grid_strides=np.array([0x40], dtype=np.int64),
            grid_counts=np.array([4], dtype=np.int64),
            grid_pos_strides=np.array([5], dtype=np.int64),  # < run span of 14
        )
        chunk = DescriptorChunk(total=12, pos_bound=32, batches=[batch])
        addresses, writes = chunk.expand()
        truncated = chunk.truncate(7)
        t_addresses, t_writes = truncated.expand()
        assert truncated.total == 7
        assert np.array_equal(t_addresses, addresses[:7])
        assert np.array_equal(t_writes, writes[:7])

    def test_all_masked_chunks_are_skipped(self):
        # The guard masks out whole chunk-sized stretches (i >= 6 never
        # holds in the second half): neither stream yields empty chunks and
        # they stay chunk-aligned.
        buffer = Buffer("b", size_bytes=1 << 12, element_bytes=4)
        access = MemoryAccess(buffer=buffer, coeffs={"i": 1, "j": 1}, const=0, is_store=False)
        node = Guard(
            predicates=[LinearPredicate({"i": -1}, 5, "ge")],  # i <= 5
            body=Block(accesses=[access]),
        )
        for name, extent in (("j", 8), ("i", 12)):
            node = Loop(var=name, extent=extent, kind="serial", body=node)
        program = build_program([buffer], [node])
        descriptor_chunks = list(program.memory_trace_descriptors(chunk_iterations=8))
        expanded_chunks = list(program.memory_trace(chunk_iterations=8))
        assert len(descriptor_chunks) == len(expanded_chunks) == 6
        assert all(chunk.total > 0 for chunk in descriptor_chunks)
        assert all(addresses.size > 0 for addresses, _ in expanded_chunks)
        assert_trace_equal(program, chunk_iterations=8)
        assert_stats_equal(program, chunk_iterations=8)


class TestSegmentSplitting:
    """Conflicted collapsed heads: segment splitting vs singleton explosion."""

    def _conflict_program(self):
        # A long unit-stride run through buffer a interleaved with a
        # line-hopping store through buffer b aliasing into the same sets:
        # every collapsed head of the run overlaps foreign heads.
        a = Buffer("a", size_bytes=1 << 13, element_bytes=4)
        b = Buffer("b", size_bytes=1 << 13, element_bytes=4)
        run = MemoryAccess(buffer=a, coeffs={"i": 1}, const=0, is_store=False)
        hopper = MemoryAccess(buffer=b, coeffs={"i": 64}, const=0, is_store=True)
        node = Loop(
            var="i", extent=512, kind="serial", body=Block(accesses=[run, hopper])
        )
        return build_program([a, b], [node])

    def test_splitting_is_bit_identical_to_explosion(self, monkeypatch):
        import repro.sim.engine as engine_module

        program = self._conflict_program()
        options = dict(chunk_iterations=256)

        def run_stats():
            hierarchy = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_VECTORIZED)
            for chunk in program.memory_trace_descriptors(**options):
                hierarchy.access_data_descriptors(chunk)
            return hierarchy.stats_dict()

        with_splitting = run_stats()
        monkeypatch.setattr(engine_module, "SEGMENT_SPLIT_PASSES", 0)
        explosion_only = run_stats()
        assert with_splitting == explosion_only
        assert_stats_equal(program, **options)

    def test_splitting_avoids_member_explosion(self, monkeypatch):
        # A localized conflict: one foreign singleton (same set, different
        # line) lands in the middle of a 16-member collapsed head.  Splitting
        # cuts the head into two collapsed sub-runs without materialising
        # members; explosion shatters all 16 and relies on the final
        # adjacent-merge pass to stitch them back together.  The outputs are
        # bit-identical — splitting only removes the intermediate work.
        import repro.sim.engine as engine_module
        from repro.codegen.program import AccessRunBatch
        from repro.sim.engine import chunk_heads

        run = AccessRunBatch(
            bases=np.array([0x1000], dtype=np.int64),
            stride=4,
            pos_stride=2,
            is_write=True,
            uniform_count=64,
            first_pos_start=0,
        )
        foreign = AccessRunBatch(
            bases=np.array([0x1100], dtype=np.int64),  # line 0x44: set 0, like 0x40
            stride=0,
            pos_stride=2,
            is_write=False,
            uniform_count=1,
            first_pos_start=15,
        )
        chunk = DescriptorChunk(total=65, pos_bound=130, batches=[run, foreign])

        original = engine_module._ragged_arange
        calls = {"count": 0}

        def counting(counts):
            calls["count"] += 1
            return original(counts)

        monkeypatch.setattr(engine_module, "_ragged_arange", counting)
        split_heads = chunk_heads(chunk, offset_bits=6, set_mask=3)
        split_calls = calls["count"]
        calls["count"] = 0
        monkeypatch.setattr(engine_module, "SEGMENT_SPLIT_PASSES", 0)
        exploded_heads = chunk_heads(chunk, offset_bits=6, set_mask=3)
        assert calls["count"] > split_calls, "explosion should materialise members"
        for split_part, exploded_part in zip(split_heads, exploded_heads):
            assert np.array_equal(split_part, exploded_part)
        # The conflicted 16-member head survives as collapsed sub-runs, and
        # every member is accounted for (the run is a store: write counts).
        assert int(split_heads[3].sum()) == 64

        def run_stats():
            hierarchy = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_VECTORIZED)
            hierarchy.l1d.access_descriptors(chunk)
            return hierarchy.stats_dict()

        explosion_stats = run_stats()
        monkeypatch.setattr(engine_module, "SEGMENT_SPLIT_PASSES", 4)
        assert run_stats() == explosion_stats

    @pytest.mark.parametrize("seed", range(20))
    def test_random_programs_split_vs_explode(self, seed, monkeypatch):
        import repro.sim.engine as engine_module

        rng = np.random.default_rng(5000 + seed)
        program = random_program(rng)
        options = dict(chunk_iterations=int(rng.choice([64, 1024])))

        def run_stats():
            hierarchy = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_VECTORIZED)
            for chunk in program.memory_trace_descriptors(**options):
                hierarchy.access_data_descriptors(chunk)
            return hierarchy.stats_dict()

        with_splitting = run_stats()
        monkeypatch.setattr(engine_module, "SEGMENT_SPLIT_PASSES", 0)
        assert run_stats() == with_splitting


@st.composite
def tiled_programs(draw):
    """Hypothesis strategy over tiled conv2d-style schedules."""
    n_dims = draw(st.integers(2, 3))
    splits = [
        (draw(st.integers(1, 3)), draw(st.integers(1, 4))) for _ in range(n_dims)
    ]
    outer_order = draw(st.permutations(list(range(n_dims))))
    inner_order = draw(st.permutations(list(range(n_dims))))
    extras = []
    if draw(st.booleans()):
        extras.append(_padded_store)
    if draw(st.booleans()):
        extras.append(_promoted_load)
    return _tiled_program(
        splits,
        elem=draw(st.sampled_from([4, 8])),
        outer_order=outer_order,
        inner_order=inner_order,
        extra_accesses=extras,
    )


class TestGridHypothesis:
    """Property-based equivalence of grid descriptors vs expanded traces."""

    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        program=tiled_programs(),
        chunk_iterations=st.sampled_from([5, 64, 1024, 1 << 16]),
    )
    def test_tiled_trace_and_stats_equivalence(self, program, chunk_iterations):
        assert_trace_equal(program, chunk_iterations=chunk_iterations)
        assert_stats_equal(program, chunk_iterations=chunk_iterations)

    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(program=tiled_programs(), data=st.data())
    def test_truncation_lands_anywhere(self, program, data):
        total = sum(chunk.total for chunk in program.memory_trace_descriptors())
        keep = data.draw(st.integers(1, max(total, 1)), label="max_accesses")
        assert_trace_equal(program, max_accesses=keep)
        assert_stats_equal(program, max_accesses=keep)

    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        program=tiled_programs(),
        rng_seed=st.integers(0, 7),
        chunk_iterations=st.sampled_from([64, 1 << 16]),
    )
    def test_tiled_random_replacement_equivalence(
        self, program, rng_seed, chunk_iterations
    ):
        assert_stats_equal(
            program,
            hierarchy=TINY_RANDOM_HIERARCHY,
            rng_seed=rng_seed,
            chunk_iterations=chunk_iterations,
        )


class TestTraceModePlumbing:
    def test_resolve_trace_mode_defaults(self):
        assert resolve_trace_mode(None, ENGINE_VECTORIZED) == TRACE_DESCRIPTOR
        assert resolve_trace_mode(None, ENGINE_REFERENCE) == TRACE_EXPANDED
        assert resolve_trace_mode(TRACE_EXPANDED, ENGINE_VECTORIZED) == TRACE_EXPANDED
        with pytest.raises(ValueError):
            resolve_trace_mode("compressed", ENGINE_VECTORIZED)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TRACE", TRACE_EXPANDED)
        assert resolve_trace_mode(None, ENGINE_VECTORIZED) == TRACE_EXPANDED

    def test_simulator_trace_modes_bit_identical(self, conv_program_x86):
        results = {}
        for trace in (TRACE_DESCRIPTOR, TRACE_EXPANDED):
            simulator = Simulator(
                "x86",
                trace_options=TraceOptions(max_accesses=20_000, trace=trace),
                memoize=False,
            )
            flat = simulator.run(conv_program_x86).flat_stats()
            flat.pop("sim.host_seconds")
            results[trace] = flat
        assert results[TRACE_DESCRIPTOR] == results[TRACE_EXPANDED]

    def test_memo_key_is_trace_representation_neutral(self, conv_program_x86):
        from repro.sim import SimulationCache

        config = Simulator("x86").hierarchy_config
        memo = SimulationCache()
        key_desc = memo.make_key(
            conv_program_x86, config,
            TraceOptions(max_accesses=5_000, trace=TRACE_DESCRIPTOR),
            ENGINE_VECTORIZED,
        )
        key_exp = memo.make_key(
            conv_program_x86, config,
            TraceOptions(max_accesses=5_000, trace=TRACE_EXPANDED),
            ENGINE_VECTORIZED,
        )
        assert key_desc == key_exp

    def test_board_characterize_matches_across_trace_modes(self, conv_program_x86):
        from repro.hardware.board import TargetBoard

        stats = {}
        for trace in (TRACE_DESCRIPTOR, TRACE_EXPANDED):
            board = TargetBoard(
                "x86", trace_options=TraceOptions(max_accesses=10_000, trace=trace)
            )
            stats[trace] = board.characterize(conv_program_x86)
        assert stats[TRACE_DESCRIPTOR] == stats[TRACE_EXPANDED]


class TestProgramDescriptorApi:
    def test_descriptor_digest_stable_and_cached(self, conv_program_x86):
        first = conv_program_x86.descriptor_digest()
        assert first == conv_program_x86.descriptor_digest()
        assert first != conv_program_x86.content_digest()

    def test_buffer_by_name_dict_semantics(self):
        buffers = [Buffer("x", 256, 4), Buffer("y", 256, 4)]
        program = build_program(buffers, [Block()])
        assert program.buffer_by_name("x") is buffers[0]
        with pytest.raises(KeyError):
            program.buffer_by_name("z")

    def test_chunk_nbytes_accounts_batches(self):
        chunk = DescriptorChunk(total=0, pos_bound=1)
        assert chunk.nbytes() == 0

    def test_mixed_chunk_with_explicit_span(self):
        # The explicit span is the escape hatch for non-affine producers; the
        # built-in emitter never creates one, so exercise the consumer
        # branches (expand, truncate, engine heads) with a hand-built chunk.
        from repro.codegen.program import AccessRunBatch

        rng = np.random.default_rng(9)
        batch = AccessRunBatch(
            bases=np.array([0x1000, 0x8000], dtype=np.int64),
            stride=4,
            pos_stride=2,
            is_write=False,
            counts=np.array([40, 40], dtype=np.int64),
            first_pos=np.array([0, 80], dtype=np.int64),
        )
        span_positions = np.arange(1, 41, 2, dtype=np.int64)  # a few odd slots
        chunk = DescriptorChunk(
            total=80 + span_positions.size,
            pos_bound=161,
            batches=[batch],
            addresses=rng.integers(0, 1 << 14, size=span_positions.size).astype(np.int64),
            writes=rng.random(span_positions.size) < 0.5,
            positions=span_positions,
        )
        # Independent reconstruction: members ordered by trace position.
        run_addresses, run_positions = batch.member_addresses()
        all_addresses = np.concatenate([run_addresses, chunk.addresses])
        all_positions = np.concatenate([run_positions, span_positions])
        order = np.argsort(all_positions)
        addresses, writes = chunk.expand()
        assert np.array_equal(addresses.astype(np.int64), all_addresses[order])

        truncated = chunk.truncate(57)
        t_addresses, t_writes = truncated.expand()
        assert truncated.total == 57
        assert np.array_equal(t_addresses, addresses[:57])
        assert np.array_equal(t_writes, writes[:57])

        # Replaying the mixed chunk against the expanded stream must give
        # identical statistics, and the chunk is large and compressible
        # enough to engage the closed-form head path (not the expand
        # fallback) on the vectorized engine.
        from repro.sim.engine import DESCRIPTOR_HEAD_FRACTION, estimated_heads

        assert chunk.total >= 48
        assert estimated_heads(chunk, 6) <= DESCRIPTOR_HEAD_FRACTION * chunk.total
        reference = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_REFERENCE)
        reference.access_data_batch(addresses, writes)
        descriptor = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_VECTORIZED)
        descriptor.access_data_descriptors(chunk)
        assert reference.stats_dict() == descriptor.stats_dict()


# ---------------------------------------------------------------------------
# native head pipeline (compiled counterpart of chunk_heads)
# ---------------------------------------------------------------------------

from repro.codegen.program import AccessRunBatch  # noqa: E402
from repro.sim._native import chunk_heads_kernel  # noqa: E402
from repro.sim.engine import chunk_heads, native_chunk_heads  # noqa: E402
import repro.sim.engine as engine_module  # noqa: E402

needs_native = pytest.mark.skipif(
    chunk_heads_kernel() is None,
    reason="compiled head pipeline unavailable (no compiler or REPRO_SIM_NATIVE=0)",
)

#: (offset_bits, set_mask) pairs covering the tiny test hierarchy's levels
#: plus a wider L2-like geometry and a sub-64-byte line size.
HEAD_GEOMETRIES = [(6, 3), (6, 7), (6, 255), (4, 15)]


def assert_native_heads_equal(chunk, offset_bits, set_mask, split_passes):
    """Native pipeline output must be bit-identical to :func:`chunk_heads`."""
    saved = engine_module.SEGMENT_SPLIT_PASSES
    engine_module.SEGMENT_SPLIT_PASSES = split_passes
    try:
        expected = chunk_heads(chunk, offset_bits, set_mask)
    finally:
        engine_module.SEGMENT_SPLIT_PASSES = saved
    got = native_chunk_heads(chunk, offset_bits, set_mask, split_passes=split_passes)
    assert got is not None
    for field, (want, have) in enumerate(zip(expected, got)):
        assert want.shape == have.shape, f"field {field} shape"
        assert np.array_equal(
            np.asarray(want, dtype=np.int64), np.asarray(have, dtype=np.int64)
        ), f"field {field}"


@needs_native
class TestNativeHeadPipeline:
    """The C head pipeline is bit-identical to the NumPy oracle.

    ``chunk_heads`` stays the equivalence oracle (and the
    ``REPRO_SIM_NATIVE=0`` fallback); every geometry, split-pass setting,
    truncation point and grid/stored-run mix the emitter can produce must
    come out of the compiled pipeline with identical head arrays — sets,
    lines, write flags, write counts, first and last positions.
    """

    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        program=tiled_programs(),
        chunk_iterations=st.sampled_from([5, 64, 1 << 16]),
        split_passes=st.sampled_from([0, 1, 2]),
        geometry=st.sampled_from(HEAD_GEOMETRIES),
    )
    def test_tiled_grid_chunks(self, program, chunk_iterations, split_passes, geometry):
        offset_bits, set_mask = geometry
        for chunk in program.memory_trace_descriptors(chunk_iterations=chunk_iterations):
            assert_native_heads_equal(chunk, offset_bits, set_mask, split_passes)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_programs(self, seed):
        rng = np.random.default_rng(700 + seed)
        program = random_program(rng)
        split_passes = seed % 3
        offset_bits, set_mask = HEAD_GEOMETRIES[seed % len(HEAD_GEOMETRIES)]
        for chunk in program.memory_trace_descriptors(chunk_iterations=97):
            assert_native_heads_equal(chunk, offset_bits, set_mask, split_passes)

    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(program=tiled_programs(), data=st.data())
    def test_truncated_chunks(self, program, data):
        chunks = list(program.memory_trace_descriptors())
        total = sum(chunk.total for chunk in chunks)
        keep = data.draw(st.integers(1, max(total, 1)), label="max_accesses")
        for chunk in program.memory_trace_descriptors(max_accesses=keep):
            assert_native_heads_equal(chunk, 6, 7, 2)

    def test_expand_mode_matches_head_mode(self):
        """The driver's expansion mode lands on the same merged heads.

        ``split_passes=-1`` routes the oracle entry point through the
        member-expansion pipeline (the mode the batch driver picks when
        the head estimate is poor); its maximal collapse must equal the
        closed-form + segment-split route for any split setting.
        """
        rng = np.random.default_rng(41)
        for case in range(10):
            program = random_program(rng)
            for chunk in program.memory_trace_descriptors(chunk_iterations=173):
                reference = native_chunk_heads(chunk, 6, 7, split_passes=2)
                expanded = native_chunk_heads(chunk, 6, 7, split_passes=-1)
                for want, have in zip(reference, expanded):
                    assert np.array_equal(
                        np.asarray(want, dtype=np.int64),
                        np.asarray(have, dtype=np.int64),
                    )

    def test_mixed_chunk_with_explicit_span_native(self):
        """Explicit members join the native pipeline as singleton heads."""
        rng = np.random.default_rng(9)
        batch = AccessRunBatch(
            bases=np.array([0, 4096], dtype=np.int64),
            stride=8,
            pos_stride=2,
            is_write=False,
            counts=np.array([40, 40], dtype=np.int64),
            first_pos=np.array([0, 80], dtype=np.int64),
        )
        span_positions = np.arange(1, 41, 2, dtype=np.int64)
        chunk = DescriptorChunk(
            total=80 + span_positions.size,
            pos_bound=161,
            batches=[batch],
            addresses=rng.integers(0, 1 << 14, size=span_positions.size).astype(np.int64),
            writes=rng.random(span_positions.size) < 0.5,
            positions=span_positions,
        )
        for split_passes in (0, 1, 2):
            assert_native_heads_equal(chunk, 6, 7, split_passes)

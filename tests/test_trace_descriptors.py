"""Equivalence tests for the compressed descriptor trace pipeline.

Two properties anchor the descriptor path:

* **Trace equivalence** — for any program and any trace options,
  concatenating ``DescriptorChunk.expand()`` over
  :meth:`Program.memory_trace_descriptors` reproduces
  :meth:`Program.memory_trace` bit for bit (same chunk boundaries, same
  addresses, same write flags) — including guards, per-access predicates,
  gathers, ``sample_fraction`` < 1 and ``max_accesses`` truncation.
* **Statistics equivalence** — driving the descriptor stream through the
  vectorized engine produces cache statistics identical to the reference
  per-access loop on the expanded stream, at every level of the hierarchy.

The random-program generator below deliberately produces ugly programs:
negative coefficients, zero-extent-free but tiny loops, predicates with every
comparison operator, gathers and guard nests — so the closed-form collapse,
conflict explosion and chain pre-resolution paths all get exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.program import (
    Block,
    Buffer,
    DescriptorChunk,
    Guard,
    LinearPredicate,
    Loop,
    MemoryAccess,
    Program,
)
from repro.codegen.target import Target
from repro.sim import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    TRACE_DESCRIPTOR,
    TRACE_EXPANDED,
    CacheHierarchy,
    CacheHierarchyConfig,
    CacheLevelConfig,
    Simulator,
    TraceOptions,
    resolve_trace_mode,
)

OPS = ("lt", "le", "gt", "ge", "eq", "ne")

TINY_HIERARCHY = CacheHierarchyConfig(
    name="tiny",
    l1d=CacheLevelConfig(size_bytes=4 * 64 * 2, sets=4, associativity=2),
    l1i=CacheLevelConfig(size_bytes=4 * 64 * 2, sets=4, associativity=2),
    l2=CacheLevelConfig(size_bytes=8 * 64 * 2, sets=8, associativity=2),
    l3=CacheLevelConfig(size_bytes=16 * 64 * 4, sets=16, associativity=4),
)

#: The same geometry with random replacement everywhere: descriptor chunks
#: must replay the seeded victim stream bit-identically to the reference
#: loop on the expanded stream.
TINY_RANDOM_HIERARCHY = CacheHierarchyConfig(
    name="tiny-random",
    l1d=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement="random"),
    l1i=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement="random"),
    l2=CacheLevelConfig(8 * 64 * 2, 8, 2, replacement="random"),
    l3=CacheLevelConfig(16 * 64 * 4, 16, 4, replacement="random"),
)


def build_program(buffers, roots, name="prog"):
    return Program(name, Target.x86(), buffers, roots)


def random_program(rng: np.random.Generator) -> Program:
    n_buffers = int(rng.integers(1, 4))
    buffers = [
        Buffer(
            f"b{index}",
            size_bytes=int(rng.integers(1, 40)) * 256,
            element_bytes=int(rng.choice([1, 4, 8])),
        )
        for index in range(n_buffers)
    ]
    depth = int(rng.integers(1, 5))
    loops = [(f"v{level}", int(rng.integers(1, 7))) for level in range(depth)]
    names = [name for name, _ in loops]

    def random_predicates(limit):
        predicates = []
        for _ in range(int(rng.integers(0, limit + 1))):
            count = int(rng.integers(1, min(3, len(names)) + 1))
            chosen = rng.choice(names, size=count, replace=False)
            predicates.append(
                LinearPredicate(
                    coeffs={str(var): int(rng.integers(-3, 4)) for var in chosen},
                    const=int(rng.integers(-4, 5)),
                    op=str(rng.choice(OPS)),
                )
            )
        return predicates

    accesses = []
    for _ in range(int(rng.integers(1, 4))):
        buffer = buffers[int(rng.integers(0, n_buffers))]
        coeffs = {
            name: int(rng.integers(-8, 32)) for name, _ in loops if rng.random() < 0.8
        }
        gather = int(rng.choice([0, 0, 0, 2, 5]))
        accesses.append(
            MemoryAccess(
                buffer=buffer,
                coeffs=coeffs,
                const=int(rng.integers(0, 16)),
                is_store=bool(rng.random() < 0.4),
                width=int(rng.integers(2, 5)) if gather else 1,
                gather_stride=gather,
                predicates=random_predicates(2),
            )
        )
    node = Block(accesses=accesses)
    if rng.random() < 0.4:
        node = Guard(
            predicates=random_predicates(2)
            or [LinearPredicate({names[0]: 1}, 0, "ge")],
            body=node,
        )
    for name, extent in reversed(loops):
        node = Loop(var=name, extent=extent, kind="serial", body=node)
    return build_program(buffers, [node])


def assert_trace_equal(program: Program, **options) -> None:
    expanded = list(program.memory_trace(**options))
    descriptors = list(program.memory_trace_descriptors(**options))
    assert len(expanded) == len(descriptors)
    for index, ((addresses, writes), chunk) in enumerate(zip(expanded, descriptors)):
        got_addresses, got_writes = chunk.expand()
        assert chunk.total == addresses.size, f"chunk {index} size"
        assert np.array_equal(addresses, got_addresses), f"chunk {index} addresses"
        assert np.array_equal(writes, got_writes), f"chunk {index} writes"


def assert_stats_equal(
    program: Program, hierarchy=TINY_HIERARCHY, rng_seed: int = 0, **options
) -> None:
    reference = CacheHierarchy(hierarchy, engine=ENGINE_REFERENCE, rng_seed=rng_seed)
    for addresses, writes in program.memory_trace(**options):
        reference.access_data_batch(addresses, writes)
    descriptor = CacheHierarchy(hierarchy, engine=ENGINE_VECTORIZED, rng_seed=rng_seed)
    for chunk in program.memory_trace_descriptors(**options):
        descriptor.access_data_descriptors(chunk)
    assert reference.stats_dict() == descriptor.stats_dict()


class TestDescriptorTraceProperty:
    @pytest.mark.parametrize("seed", range(60))
    def test_random_programs_trace_and_stats(self, seed):
        rng = np.random.default_rng(seed)
        program = random_program(rng)
        options = dict(chunk_iterations=int(rng.choice([5, 64, 1024])))
        if rng.random() < 0.5:
            options["max_accesses"] = int(rng.integers(1, 2000))
        if rng.random() < 0.4:
            options["sample_fraction"] = float(rng.uniform(0.2, 0.9))
            options["seed"] = seed
        assert_trace_equal(program, **options)
        assert_stats_equal(program, **options)

    @pytest.mark.parametrize("seed", range(25))
    def test_random_replacement_descriptor_equivalence(self, seed):
        """Descriptor chunks replay the seeded victim stream bit-identically.

        The generated programs cover guards, predicates, gathers and
        truncation; the hierarchy uses random replacement at every level, so
        the vectorized engine's closed-form head collapse must consume the
        per-set eviction ordinals exactly as the reference loop does.
        """
        rng = np.random.default_rng(1000 + seed)
        program = random_program(rng)
        options = dict(chunk_iterations=int(rng.choice([5, 64, 1024])))
        if rng.random() < 0.5:
            options["max_accesses"] = int(rng.integers(1, 2000))
        assert_stats_equal(
            program, hierarchy=TINY_RANDOM_HIERARCHY, rng_seed=seed, **options
        )

    def test_random_replacement_truncation_and_chunking_invariance(self):
        rng = np.random.default_rng(77)
        program = random_program(rng)
        base = None
        for chunk_iterations in (7, 100, 1 << 14):
            hierarchy = CacheHierarchy(
                TINY_RANDOM_HIERARCHY, engine=ENGINE_VECTORIZED, rng_seed=5
            )
            for chunk in program.memory_trace_descriptors(
                chunk_iterations=chunk_iterations, max_accesses=1500
            ):
                hierarchy.access_data_descriptors(chunk)
            stats = hierarchy.stats_dict()
            if base is None:
                base = stats
            else:
                assert stats == base

    def test_chunking_invariance_of_statistics(self):
        rng = np.random.default_rng(11)
        program = random_program(rng)
        base = None
        for chunk_iterations in (7, 100, 1 << 14):
            hierarchy = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_VECTORIZED)
            for chunk in program.memory_trace_descriptors(chunk_iterations=chunk_iterations):
                hierarchy.access_data_descriptors(chunk)
            stats = hierarchy.stats_dict()
            if base is None:
                base = stats
            else:
                assert stats == base


class TestDescriptorShapes:
    """Targeted geometries for each closed-form collapse case."""

    def _linear_program(self, coeffs, extents, elem=4, predicates=(), is_store=False):
        buffer = Buffer("b", size_bytes=1 << 16, element_bytes=elem)
        access = MemoryAccess(
            buffer=buffer,
            coeffs=coeffs,
            const=64,
            is_store=is_store,
            predicates=list(predicates),
        )
        node = Block(accesses=[access])
        for name, extent in reversed(extents):
            node = Loop(var=name, extent=extent, kind="serial", body=node)
        return build_program([buffer], [node])

    def test_zero_stride_run(self):
        program = self._linear_program({"i": 1}, [("i", 8), ("j", 64)])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_contiguous_run_collapses(self):
        program = self._linear_program({"i": 64, "j": 1}, [("i", 16), ("j", 64)])
        chunks = list(program.memory_trace_descriptors())
        assert chunks[0].nbytes() < 200  # one regular batch, scalars only
        assert_stats_equal(program)

    def test_large_stride_and_negative_stride(self):
        for coeff in (64, -17, -1):
            program = self._linear_program({"j": coeff}, [("i", 4), ("j", 50)])
            assert_trace_equal(program)
            assert_stats_equal(program)

    def test_gather_lanes(self):
        buffer = Buffer("b", size_bytes=1 << 14, element_bytes=4)
        access = MemoryAccess(
            buffer=buffer,
            coeffs={"i": 3},
            const=0,
            is_store=False,
            width=4,
            gather_stride=7,
        )
        node = Loop(var="i", extent=100, kind="serial", body=Block(accesses=[access]))
        program = build_program([buffer], [node])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_guards_and_scalar_promotion_predicates(self):
        buffer = Buffer("b", size_bytes=1 << 14, element_bytes=4)
        first = LinearPredicate({"k": 1}, 0, "eq")  # hoisted-load pattern
        interior = LinearPredicate({"j": 2, "k": 1}, -3, "ge")  # padding window
        load = MemoryAccess(buffer=buffer, coeffs={"j": 4}, const=0, is_store=False,
                            predicates=[first])
        store = MemoryAccess(buffer=buffer, coeffs={"j": 4, "k": 1}, const=1,
                             is_store=True, predicates=[interior])
        node = Block(accesses=[load, store])
        node = Guard(predicates=[LinearPredicate({"i": 1}, -1, "ge")], body=node)
        for name, extent in (("k", 4), ("j", 8), ("i", 3)):
            node = Loop(var=name, extent=extent, kind="serial", body=node)
        program = build_program([buffer], [node])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_conflicting_interleaved_buffers_explode_exactly(self):
        # Two buffers whose lines alias to the same set force the conflict
        # explosion path: a long run of one buffer interleaved with accesses
        # of the other in the same set.
        a = Buffer("a", size_bytes=1 << 13, element_bytes=4)
        b = Buffer("b", size_bytes=1 << 13, element_bytes=4)
        run = MemoryAccess(buffer=a, coeffs={"i": 1}, const=0, is_store=False)
        hopper = MemoryAccess(buffer=b, coeffs={"i": 64}, const=0, is_store=True)
        node = Loop(var="i", extent=512, kind="serial",
                    body=Block(accesses=[run, hopper]))
        program = build_program([a, b], [node])
        assert_trace_equal(program)
        assert_stats_equal(program)

    def test_truncation_stays_descriptor_form(self):
        program = self._linear_program({"i": 64, "j": 1}, [("i", 16), ("j", 64)])
        chunks = list(program.memory_trace_descriptors(max_accesses=777))
        assert sum(chunk.total for chunk in chunks) == 777
        assert chunks[-1].batches, "truncated chunk should keep its run batches"
        assert_trace_equal(program, max_accesses=777)
        assert_stats_equal(program, max_accesses=777)

    def test_empty_and_degenerate_programs(self):
        buffer = Buffer("b", size_bytes=256, element_bytes=4)
        empty = build_program([buffer], [Loop("i", 4, "serial", Block())])
        assert list(empty.memory_trace_descriptors()) == []
        scalar = build_program(
            [buffer],
            [Block(accesses=[MemoryAccess(buffer=buffer, coeffs={}, const=3,
                                          is_store=True)])],
        )
        assert_trace_equal(scalar)
        assert_stats_equal(scalar)


class TestTraceModePlumbing:
    def test_resolve_trace_mode_defaults(self):
        assert resolve_trace_mode(None, ENGINE_VECTORIZED) == TRACE_DESCRIPTOR
        assert resolve_trace_mode(None, ENGINE_REFERENCE) == TRACE_EXPANDED
        assert resolve_trace_mode(TRACE_EXPANDED, ENGINE_VECTORIZED) == TRACE_EXPANDED
        with pytest.raises(ValueError):
            resolve_trace_mode("compressed", ENGINE_VECTORIZED)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_TRACE", TRACE_EXPANDED)
        assert resolve_trace_mode(None, ENGINE_VECTORIZED) == TRACE_EXPANDED

    def test_simulator_trace_modes_bit_identical(self, conv_program_x86):
        results = {}
        for trace in (TRACE_DESCRIPTOR, TRACE_EXPANDED):
            simulator = Simulator(
                "x86",
                trace_options=TraceOptions(max_accesses=20_000, trace=trace),
                memoize=False,
            )
            flat = simulator.run(conv_program_x86).flat_stats()
            flat.pop("sim.host_seconds")
            results[trace] = flat
        assert results[TRACE_DESCRIPTOR] == results[TRACE_EXPANDED]

    def test_memo_key_is_trace_representation_neutral(self, conv_program_x86):
        from repro.sim import SimulationCache

        config = Simulator("x86").hierarchy_config
        memo = SimulationCache()
        key_desc = memo.make_key(
            conv_program_x86, config,
            TraceOptions(max_accesses=5_000, trace=TRACE_DESCRIPTOR),
            ENGINE_VECTORIZED,
        )
        key_exp = memo.make_key(
            conv_program_x86, config,
            TraceOptions(max_accesses=5_000, trace=TRACE_EXPANDED),
            ENGINE_VECTORIZED,
        )
        assert key_desc == key_exp

    def test_board_characterize_matches_across_trace_modes(self, conv_program_x86):
        from repro.hardware.board import TargetBoard

        stats = {}
        for trace in (TRACE_DESCRIPTOR, TRACE_EXPANDED):
            board = TargetBoard(
                "x86", trace_options=TraceOptions(max_accesses=10_000, trace=trace)
            )
            stats[trace] = board.characterize(conv_program_x86)
        assert stats[TRACE_DESCRIPTOR] == stats[TRACE_EXPANDED]


class TestProgramDescriptorApi:
    def test_descriptor_digest_stable_and_cached(self, conv_program_x86):
        first = conv_program_x86.descriptor_digest()
        assert first == conv_program_x86.descriptor_digest()
        assert first != conv_program_x86.content_digest()

    def test_buffer_by_name_dict_semantics(self):
        buffers = [Buffer("x", 256, 4), Buffer("y", 256, 4)]
        program = build_program(buffers, [Block()])
        assert program.buffer_by_name("x") is buffers[0]
        with pytest.raises(KeyError):
            program.buffer_by_name("z")

    def test_chunk_nbytes_accounts_batches(self):
        chunk = DescriptorChunk(total=0, pos_bound=1)
        assert chunk.nbytes() == 0

    def test_mixed_chunk_with_explicit_span(self):
        # The explicit span is the escape hatch for non-affine producers; the
        # built-in emitter never creates one, so exercise the consumer
        # branches (expand, truncate, engine heads) with a hand-built chunk.
        from repro.codegen.program import AccessRunBatch

        rng = np.random.default_rng(9)
        batch = AccessRunBatch(
            bases=np.array([0x1000, 0x8000], dtype=np.int64),
            stride=4,
            pos_stride=2,
            is_write=False,
            counts=np.array([40, 40], dtype=np.int64),
            first_pos=np.array([0, 80], dtype=np.int64),
        )
        span_positions = np.arange(1, 41, 2, dtype=np.int64)  # a few odd slots
        chunk = DescriptorChunk(
            total=80 + span_positions.size,
            pos_bound=161,
            batches=[batch],
            addresses=rng.integers(0, 1 << 14, size=span_positions.size).astype(np.int64),
            writes=rng.random(span_positions.size) < 0.5,
            positions=span_positions,
        )
        # Independent reconstruction: members ordered by trace position.
        run_addresses, run_positions = batch.member_addresses()
        all_addresses = np.concatenate([run_addresses, chunk.addresses])
        all_positions = np.concatenate([run_positions, span_positions])
        order = np.argsort(all_positions)
        addresses, writes = chunk.expand()
        assert np.array_equal(addresses.astype(np.int64), all_addresses[order])

        truncated = chunk.truncate(57)
        t_addresses, t_writes = truncated.expand()
        assert truncated.total == 57
        assert np.array_equal(t_addresses, addresses[:57])
        assert np.array_equal(t_writes, writes[:57])

        # Replaying the mixed chunk against the expanded stream must give
        # identical statistics, and the chunk is large and compressible
        # enough to engage the closed-form head path (not the expand
        # fallback) on the vectorized engine.
        from repro.sim.engine import DESCRIPTOR_HEAD_FRACTION, estimated_heads

        assert chunk.total >= 48
        assert estimated_heads(chunk, 6) <= DESCRIPTOR_HEAD_FRACTION * chunk.total
        reference = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_REFERENCE)
        reference.access_data_batch(addresses, writes)
        descriptor = CacheHierarchy(TINY_HIERARCHY, engine=ENGINE_VECTORIZED)
        descriptor.access_data_descriptors(chunk)
        assert reference.stats_dict() == descriptor.stats_dict()

"""Service-layer tests: result store, runtime config, facade, HTTP service.

Covers the simulation-as-a-service stack end to end against real simulation
paths: :class:`~repro.service.ResultStore` CRUD/eviction/migration, the
:class:`~repro.sim.RuntimeConfig` env-parity contract (``from_env()`` must
reproduce the legacy per-variable semantics exactly), the deprecation shim on
``Simulator``'s per-toggle kwargs, the ``repro.simulate`` facade, and the HTTP
service itself — request coalescing on duplicate digests, auth/quota
enforcement, worker-crash containment parity with ``run_many_resilient``, and
client-vs-local bit-identity (``sim.host_seconds``, a wall-clock observable,
is excluded from every comparison, as everywhere else in the suite).
"""

from __future__ import annotations

import dataclasses
import json
import sqlite3
import threading
import time
import warnings

import pytest

import repro
import repro.workloads  # noqa: F401 — registers the schedule templates
from repro.autotune import LocalBuilder, MeasureInput, create_task
from repro.autotune.runner import batched_measurement_default
from repro.codegen import Target
from repro.reliability import RetryPolicy, faults
from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SimulationService,
    Tenant,
    hierarchy_from_dict,
)
from repro.sim import (
    RuntimeConfig,
    SimulationCache,
    SimulationFailure,
    SimulationResult,
    Simulator,
    SimulatorPool,
    TraceOptions,
)
from repro.sim.engine import resolve_engine, resolve_trace_mode
from repro.sim.memo import _encode_entry, shared_disk_cache_dir
from repro.sim.runtime_config import ENV_SURFACE

TRACE = TraceOptions(max_accesses=15_000)

#: Every environment variable of the documented toggle surface.
ALL_ENV_VARS = (
    "REPRO_SIM_ENGINE",
    "REPRO_SIM_TRACE",
    "REPRO_SIM_NATIVE",
    "REPRO_SIM_ARENA",
    "REPRO_RUNNER_BATCH",
    "REPRO_SIM_MEMO_DIR",
    "REPRO_RETRY_ATTEMPTS",
    "REPRO_RETRY_BASE_DELAY_S",
    "REPRO_RETRY_MAX_DELAY_S",
    "REPRO_RETRY_SEED",
)


@pytest.fixture(autouse=True)
def _fault_free():
    """Shield every test from ambient ``REPRO_FAULT_INJECT`` (CI chaos legs)."""
    faults.configure("")
    yield
    faults.reset()


@pytest.fixture(scope="module")
def matmul_task():
    return create_task("matmul", (8, 8, 8), Target.arm())


@pytest.fixture(scope="module")
def programs(matmul_task):
    inputs = [
        MeasureInput(matmul_task, matmul_task.config_space.get(i)) for i in (0, 1, 2, 3)
    ]
    builds = LocalBuilder().build(inputs)
    assert all(build.ok for build in builds)
    return [build.program for build in builds]


@pytest.fixture(scope="module")
def big_task():
    return create_task("matmul", (16, 16, 16), Target.arm())


@pytest.fixture(scope="module")
def big_programs(big_task):
    inputs = [MeasureInput(big_task, big_task.config_space.get(i)) for i in (0, 1)]
    builds = LocalBuilder().build(inputs)
    assert all(build.ok for build in builds)
    return [build.program for build in builds]


def flat(result):
    """Statistics of one simulation, minus the wall-clock observable."""
    stats = dict(result.stats.as_dict())
    stats.pop("sim.host_seconds", None)
    return stats


# ---------------------------------------------------------------------------
# ResultStore
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_roundtrip(self):
        store = ResultStore(":memory:")
        payload = {"cpu.num_insts": 128.0, "l1d.miss_rate": 0.25}
        store.put("digest-a", payload)
        assert len(store) == 1
        assert "digest-a" in store
        assert store.get("digest-a") == payload
        assert store.get("unknown") is None
        counters = store.counters()
        assert counters["hits"] == 1.0
        assert counters["misses"] == 1.0
        assert counters["hit_rate"] == 0.5
        store.close()

    def test_put_is_idempotent(self):
        store = ResultStore(":memory:")
        store.put("digest-a", {"cpu.num_insts": 1.0})
        store.put("digest-a", {"cpu.num_insts": 1.0})
        assert len(store) == 1
        store.close()

    def test_lru_eviction_bounds_entries(self):
        store = ResultStore(":memory:", max_entries=2)
        for digest in ("a", "b", "c"):
            store.put(digest, {"cpu.num_insts": 1.0})
            time.sleep(0.01)  # keep last_used strictly ordered
        assert len(store) == 2
        assert "a" not in store  # the least recently used row went first
        assert "b" in store and "c" in store
        assert store.evictions == 1
        store.close()

    def test_age_eviction(self):
        store = ResultStore(":memory:", max_age_s=0.05)
        store.put("old", {"cpu.num_insts": 1.0})
        time.sleep(0.12)
        store.put("new", {"cpu.num_insts": 2.0})
        assert "old" not in store
        assert "new" in store
        assert store.evictions >= 1
        store.close()

    def test_persists_across_instances(self, tmp_path):
        db = tmp_path / "results.db"
        first = ResultStore(db)
        first.put("digest-a", {"cpu.num_insts": 7.0})
        first.close()
        second = ResultStore(db)
        assert second.get("digest-a") == {"cpu.num_insts": 7.0}
        second.close()

    def test_memo_schema_bump_drops_rows(self, tmp_path):
        db = tmp_path / "results.db"
        store = ResultStore(db)
        store.put("digest-a", {"cpu.num_insts": 1.0})
        store.close()
        conn = sqlite3.connect(db)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'memo_schema'")
        conn.commit()
        conn.close()
        reopened = ResultStore(db)
        assert len(reopened) == 0  # content-addressed recomputables: dropped
        assert reopened.get("digest-a") is None
        reopened.close()

    def test_corrupted_row_is_a_miss_and_deleted(self):
        store = ResultStore(":memory:")
        store.put("digest-a", {"cpu.num_insts": 1.0})
        store._conn.execute(
            "UPDATE results SET stats = ? WHERE digest = ?",
            (json.dumps({"cpu.num_insts": 999.0}), "digest-a"),
        )
        store._conn.commit()
        assert store.get("digest-a") is None  # checksum mismatch
        assert "digest-a" not in store
        store.close()

    def test_import_disk_cache_envelopes(self, tmp_path):
        memo_dir = tmp_path / "memo"
        memo_dir.mkdir()
        payload = {"cpu.num_insts": 5.0, "l2.miss_rate": 0.5}
        (memo_dir / "aaa.json").write_text(_encode_entry(payload), encoding="utf-8")
        (memo_dir / "bad.json").write_text("garbage{", encoding="utf-8")
        (memo_dir / "stale.json").write_text(
            json.dumps({"schema": 999, "sha256": "x", "stats": {}}), encoding="utf-8"
        )
        store = ResultStore(":memory:")
        assert store.import_disk_cache(memo_dir) == 1
        assert store.get("aaa") == payload
        assert len(store) == 1
        store.close()

    def test_import_real_memo_dir_roundtrip(self, tmp_path, programs):
        """Migration path: a flat-file memo written by a real simulation."""
        memo_dir = tmp_path / "memo"
        cache = SimulationCache(disk_dir=memo_dir)
        simulator = Simulator("arm", trace_options=TRACE, memo_cache=cache)
        result = simulator.run(programs[0])
        store = ResultStore(":memory:")
        assert store.import_disk_cache(memo_dir) == 1
        key = SimulationCache.make_key(
            programs[0], simulator.hierarchy_config, TRACE, simulator.engine
        )
        assert store.get(key) == dict(result.stats.as_dict())
        store.close()

    def test_cache_store_backend_roundtrip(self, programs):
        """A second cache over the same store serves the first one's results."""
        store = ResultStore(":memory:")
        first = Simulator(
            "arm", trace_options=TRACE, memo_cache=SimulationCache(store=store)
        )
        computed = first.run(programs[0])
        assert not computed.cached
        second = Simulator(
            "arm", trace_options=TRACE, memo_cache=SimulationCache(store=store)
        )
        served = second.run(programs[0])
        assert served.cached  # cold memory LRU: the hit came from the store
        assert flat(served) == flat(computed)
        assert store.hits >= 1
        store.close()

    def test_degraded_store_never_breaks_a_run(self, programs):
        class _BrokenStore:
            def get(self, key):
                raise RuntimeError("store down")

            def put(self, key, payload):
                raise RuntimeError("store down")

        cache = SimulationCache(store=_BrokenStore())
        result = Simulator("arm", trace_options=TRACE, memo_cache=cache).run(programs[0])
        assert isinstance(result, SimulationResult)


# ---------------------------------------------------------------------------
# RuntimeConfig
# ---------------------------------------------------------------------------


ENV_CASES = [
    {},
    {"REPRO_SIM_ENGINE": "reference"},
    {"REPRO_SIM_TRACE": "expanded"},
    {"REPRO_SIM_NATIVE": "0", "REPRO_SIM_ARENA": "0"},
    {"REPRO_RUNNER_BATCH": "off"},
    {
        "REPRO_RETRY_ATTEMPTS": "3",
        "REPRO_RETRY_BASE_DELAY_S": "0.01",
        "REPRO_RETRY_MAX_DELAY_S": "0.5",
        "REPRO_RETRY_SEED": "9",
    },
    {"REPRO_SIM_MEMO_DIR": "@tmp"},
]


class TestRuntimeConfig:
    @pytest.mark.parametrize("env", ENV_CASES, ids=lambda env: ",".join(env) or "clean")
    def test_from_env_matches_legacy_semantics(self, env, monkeypatch, tmp_path):
        """``from_env()`` must reproduce every legacy env-var reader exactly."""
        for name in ALL_ENV_VARS:
            monkeypatch.delenv(name, raising=False)
        for name, value in env.items():
            monkeypatch.setenv(name, str(tmp_path) if value == "@tmp" else value)
        config = RuntimeConfig.from_env()
        assert config.resolved_engine() == resolve_engine(None)
        engine = config.resolved_engine()
        assert config.resolved_trace(engine) == resolve_trace_mode(None, engine)
        assert config.resolved_native() == (env.get("REPRO_SIM_NATIVE") != "0")
        assert config.resolved_arena() == (env.get("REPRO_SIM_ARENA") != "0")
        assert config.resolved_runner_batch() == batched_measurement_default()
        assert config.resolved_retry() == RetryPolicy.from_env()
        assert config.resolved_memo_dir() == str(shared_disk_cache_dir())
        assert config.resolved_memoize() is True

    def test_default_config_defers_to_env(self, monkeypatch):
        """A plain ``RuntimeConfig()`` keeps reading the environment at use time."""
        config = RuntimeConfig()
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert config.resolved_engine() == "reference"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "vectorized")
        assert config.resolved_engine() == "vectorized"

    def test_from_env_pins_against_later_changes(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        monkeypatch.setenv("REPRO_RUNNER_BATCH", "off")
        config = RuntimeConfig.from_env()
        monkeypatch.setenv("REPRO_SIM_ENGINE", "vectorized")
        monkeypatch.delenv("REPRO_RUNNER_BATCH")
        assert config.resolved_engine() == "reference"
        assert config.resolved_runner_batch() is False

    def test_explicit_fields_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "vectorized")
        config = RuntimeConfig(engine="reference", runner_batch=False)
        assert config.resolved_engine() == "reference"
        assert config.resolved_runner_batch() is False

    def test_with_overrides_rejects_unknown_fields(self):
        config = RuntimeConfig()
        derived = config.with_overrides(engine="reference", timeout_s=1.5)
        assert derived.engine == "reference"
        assert derived.timeout_s == 1.5
        assert config.engine is None  # frozen original untouched
        with pytest.raises(TypeError, match="unknown RuntimeConfig fields"):
            config.with_overrides(enginee="reference")

    def test_validate_rejects_nonsense(self):
        with pytest.raises(ValueError, match="unknown simulation engine"):
            RuntimeConfig(engine="warp-drive").validate()
        with pytest.raises(ValueError, match="timeout_s"):
            RuntimeConfig(timeout_s=-1.0).validate()
        assert RuntimeConfig().validate() is not None

    def test_describe_covers_the_documented_surface(self):
        rows = RuntimeConfig.from_env().describe()
        assert [row[0] for row in rows] == [name for name, _, _ in ENV_SURFACE]
        assert all(len(row) == 3 and all(row) for row in rows)

    def test_apply_process_toggles(self, monkeypatch):
        for name in ("REPRO_SIM_NATIVE", "REPRO_SIM_ARENA", "REPRO_RUNNER_BATCH"):
            monkeypatch.delenv(name, raising=False)
        import os

        RuntimeConfig(native=False, arena=True, runner_batch=False).apply_process_toggles()
        assert os.environ["REPRO_SIM_NATIVE"] == "0"
        assert os.environ["REPRO_SIM_ARENA"] == "1"
        assert os.environ["REPRO_RUNNER_BATCH"] == "0"


# ---------------------------------------------------------------------------
# Simulator config API (deprecation shim) and the repro.simulate facade
# ---------------------------------------------------------------------------


class TestSimulatorConfigAPI:
    def test_legacy_engine_kwarg_warns_but_works(self, programs):
        with pytest.warns(DeprecationWarning, match="engine"):
            legacy = Simulator("arm", trace_options=TRACE, engine="reference")
        assert legacy.engine == "reference"
        modern = Simulator(
            "arm", trace_options=TRACE, config=RuntimeConfig(engine="reference")
        )
        assert flat(legacy.run(programs[0])) == flat(modern.run(programs[0]))

    def test_legacy_memoize_kwarg_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="memoize"):
            simulator = Simulator("arm", trace_options=TRACE, memoize=False)
        assert simulator.memoize is False

    def test_config_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulator = Simulator(
                "arm",
                trace_options=TRACE,
                config=RuntimeConfig(engine="reference", memoize=False),
            )
        assert simulator.engine == "reference"
        assert simulator.memoize is False

    def test_pool_threads_config_through(self, programs):
        """Engines are bit-identical, so a config-selected reference pool
        must reproduce the default pool's statistics exactly."""
        default = SimulatorPool("arm", trace_options=TRACE).run_many(programs)
        configured = SimulatorPool(
            "arm", trace_options=TRACE, config=RuntimeConfig(engine="reference")
        ).run_many(programs)
        assert [flat(r) for r in configured] == [flat(r) for r in default]


class TestFacade:
    def test_simulate_matches_local_simulator(self, programs):
        facade = repro.simulate(programs[0], "arm", trace_options=TRACE)
        local = Simulator("arm", trace_options=TRACE).run(programs[0])
        assert isinstance(facade, SimulationResult)
        assert facade.arch == local.arch == "arm"
        assert flat(facade) == flat(local)

    def test_simulate_batch_preserves_order(self, programs):
        outcomes = repro.simulate_batch(programs, "arm", trace_options=TRACE)
        assert [o.program_name for o in outcomes] == [p.name for p in programs]
        singles = [repro.simulate(p, "arm", trace_options=TRACE) for p in programs]
        assert [flat(o) for o in outcomes] == [flat(s) for s in singles]

    def test_simulate_defaults_to_program_target(self, programs):
        result = repro.simulate(programs[0], trace_options=TRACE)
        assert isinstance(result, SimulationResult)
        assert result.arch == "arm"  # the program's own target

    def test_simulate_contains_failures(self, big_programs):
        """The facade never raises for a failed simulation."""
        faults.configure("worker_crash:n=1", seed=7)
        outcome = repro.simulate(
            big_programs[0],
            "arm",
            trace_options=TRACE,
            config=RuntimeConfig(memoize=False, retry=RetryPolicy(max_attempts=1)),
        )
        assert isinstance(outcome, SimulationFailure)
        assert outcome.kind == SimulationFailure.CRASH


# ---------------------------------------------------------------------------
# HTTP service
# ---------------------------------------------------------------------------


def _service(arch="arm", store=None, tenants=None, config=None):
    """One running service on an ephemeral port; caller stops the server."""
    store = store if store is not None else ResultStore(":memory:")
    service = SimulationService(arch, store, config=config, tenants=tenants)
    server = ServiceServer(service, port=0).start_in_thread()
    return server, service, store


class TestServiceHTTP:
    def test_roundtrip_is_bit_identical_to_local(self, programs):
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            assert client.healthy()
            remote = client.simulate(programs[0])
            assert isinstance(remote, SimulationResult)
            assert not remote.cached
            local = Simulator("arm").run(programs[0])
            assert flat(remote) == flat(local)
            assert remote.sim_digest == SimulationCache.make_key(
                programs[0],
                service.simulator.hierarchy_config,
                service.simulator.trace_options,
                service.simulator.engine,
            )
            again = client.simulate(programs[0])
            assert again.cached
            assert flat(again) == flat(remote)
        finally:
            server.stop()
            store.close()

    def test_results_endpoint(self, programs):
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            first = client.simulate(programs[0])
            fetched = client.result(first.sim_digest)
            assert fetched is not None
            assert flat(fetched) == flat(first)
            assert client.result("0" * 64) is None  # 404 → None
        finally:
            server.stop()
            store.close()

    def test_wait_false_queues_and_worker_drains(self, programs):
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            queued = client.simulate(programs[1], wait=False)
            assert isinstance(queued, SimulationFailure)  # "queued" placeholder
            assert queued.kind == SimulationFailure.TIMEOUT
            digest = SimulationCache.make_key(
                programs[1],
                service.simulator.hierarchy_config,
                service.simulator.trace_options,
                service.simulator.engine,
            )
            deadline = time.time() + 30.0
            result = None
            while result is None and time.time() < deadline:
                result = client.result(digest)
                if result is None:
                    time.sleep(0.05)
            assert result is not None
            assert flat(result) == flat(Simulator("arm").run(programs[1]))
        finally:
            server.stop()
            store.close()

    def test_duplicate_digests_coalesce_onto_one_computation(self, programs):
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            n_clients = 4
            barrier = threading.Barrier(n_clients)
            outcomes = [None] * n_clients

            def post(slot):
                barrier.wait()
                outcomes[slot] = client.simulate(programs[2])

            threads = [
                threading.Thread(target=post, args=(slot,)) for slot in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)
            assert all(isinstance(o, SimulationResult) for o in outcomes)
            assert len({json.dumps(flat(o), sort_keys=True) for o in outcomes}) == 1
            # One digest, one computation: the leader simulated, everyone
            # else was coalesced in flight or served from the fresh cache.
            assert service.computed == 1
            assert service.served_cached == n_clients - 1
            assert service.worker.jobs == 1
        finally:
            server.stop()
            store.close()

    def test_auth_and_quota_enforcement(self, programs):
        tenants = {
            "secret-key": Tenant(name="alice", api_key="secret-key", quota=2),
        }
        server, service, store = _service(tenants=tenants)
        try:
            anonymous = ServiceClient(server.url)
            assert anonymous.healthy()  # liveness probe is unauthenticated
            with pytest.raises(ServiceError) as unauthorized:
                anonymous.stats()
            assert unauthorized.value.status == 401
            wrong = ServiceClient(server.url, api_key="wrong-key")
            with pytest.raises(ServiceError) as rejected:
                wrong.stats()
            assert rejected.value.status == 401
            alice = ServiceClient(server.url, api_key="secret-key")
            alice.stats()
            alice.stats()
            with pytest.raises(ServiceError) as throttled:
                alice.stats()
            assert throttled.value.status == 429
        finally:
            server.stop()
            store.close()

    def test_hierarchy_override_roundtrip(self, programs):
        default = SimulationService("arm", ResultStore(":memory:"))
        base = default.simulator.hierarchy_config
        default.close()
        assert hierarchy_from_dict(dataclasses.asdict(base)) == base
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            custom = dataclasses.replace(base, name=base.name + "-custom")
            remote = client.simulate(programs[3], hierarchy=custom)
            assert isinstance(remote, SimulationResult)
            baseline = client.simulate(programs[3])
            assert remote.sim_digest != baseline.sim_digest  # keyed per hierarchy
            # Identical geometry under a different name: same statistics.
            assert flat(remote) == flat(baseline)
        finally:
            server.stop()
            store.close()

    def test_worker_crash_containment_matches_resilient_pool(self, big_programs):
        config = RuntimeConfig(retry=RetryPolicy(max_attempts=1))
        server, service, store = _service(config=config)
        try:
            client = ServiceClient(server.url)
            faults.configure("worker_crash:n=1", seed=7)
            failure = client.simulate(big_programs[1])
            assert isinstance(failure, SimulationFailure)
            # The crash was contained: the worker survived and the very next
            # request for the same digest simulates successfully.
            recovered = client.simulate(big_programs[1])
            assert isinstance(recovered, SimulationResult)
            stats = client.stats()
            assert stats["failed"] == 1
            assert stats["worker"]["failures"] == 1
            # Parity with the local resilient API under the same profile.
            faults.configure("worker_crash:n=1", seed=7)
            pool = SimulatorPool("arm", memoize=False, retry=RetryPolicy(max_attempts=1))
            local = pool.run_many_resilient([big_programs[1]])[0]
            assert isinstance(local, SimulationFailure)
            assert failure.kind == local.kind
            assert failure.attempts == local.attempts
        finally:
            server.stop()
            store.close()

    def test_repeated_batch_served_from_shared_store(self, programs):
        """A fresh service over the same store serves a repeated batch
        entirely from the ResultStore (the >= 90 % acceptance gate)."""
        store = ResultStore(":memory:")
        server1, service1, _ = _service(store=store)
        try:
            first = ServiceClient(server1.url).simulate_batch(programs)
            assert all(isinstance(r, SimulationResult) for r in first)
        finally:
            server1.stop()
        server2, service2, _ = _service(store=store)
        try:
            client2 = ServiceClient(server2.url)
            second = client2.simulate_batch(programs)
            assert all(isinstance(r, SimulationResult) for r in second)
            assert all(r.cached for r in second)  # cold LRU → store hits
            assert [flat(r) for r in second] == [flat(r) for r in first]
            stats = client2.stats()
            assert stats["hit_rate"] >= 0.9
            assert stats["store"]["hits"] >= len(programs)
            assert stats["computed"] == 0
        finally:
            server2.stop()
            store.close()

    def test_stats_surface(self, programs):
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            client.simulate(programs[0])
            client.simulate(programs[0])
            stats = client.stats()
            assert stats["arch"] == "arm"
            assert stats["computed"] == 1
            assert stats["served_cached"] == 1
            assert stats["hit_rate"] == 0.5
            for section in ("store", "cache", "worker"):
                assert isinstance(stats[section], dict)
        finally:
            server.stop()
            store.close()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestServeCli:
    def test_serve_check_validates_and_exits_cleanly(self, capsys):
        from repro.cli import main

        assert main(["serve", "--check"]) == 0
        output = capsys.readouterr().out
        assert "runtime configuration" in output
        assert "configuration OK" in output

    def test_serve_check_rejects_bad_engine(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SIM_ENGINE", "warp-drive")
        assert main(["serve", "--check"]) == 2
        assert "invalid runtime configuration" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Durable job journal
# ---------------------------------------------------------------------------


class TestJobJournal:
    def test_enqueue_claim_settle_roundtrip(self):
        store = ResultStore(":memory:")
        assert store.journal_enqueue("d1", b"blob-1", tenant="alice")
        assert store.journal_pending() == 1
        assert store.journal_status("d1") == ("queued", None, 0)
        (job,) = store.journal_claim(limit=8, lease_s=30.0)
        assert (job.digest, job.program_blob, job.tenant) == ("d1", b"blob-1", "alice")
        assert job.attempts == 1
        assert store.journal_status("d1")[0] == "leased"
        store.journal_settle("d1", "done")
        assert store.journal_status("d1") == ("done", None, 1)
        assert store.journal_pending() == 0
        assert store.journal_claim(limit=8, lease_s=30.0) == []  # settled: done
        store.close()

    def test_enqueue_is_idempotent_while_pending_and_rearms_settled(self):
        store = ResultStore(":memory:")
        assert store.journal_enqueue("d1", b"v1")
        assert not store.journal_enqueue("d1", b"v2")  # already queued: no-op
        assert store.journal_claim(1, 30.0)[0].program_blob == b"v1"
        assert not store.journal_enqueue("d1", b"v2")  # leased: still a no-op
        store.journal_settle("d1", "failed", "boom")
        assert store.journal_status("d1") == ("failed", "boom", 1)
        # A settled row re-arms (result evicted / caller wants a recompute).
        assert store.journal_enqueue("d1", b"v3")
        assert store.journal_status("d1") == ("queued", None, 0)
        assert store.journal_claim(1, 30.0)[0].program_blob == b"v3"
        store.close()

    def test_expired_lease_is_reclaimable(self):
        store = ResultStore(":memory:")
        store.journal_enqueue("d1", b"blob")
        assert store.journal_claim(1, lease_s=0.01)  # claimed by a worker that dies
        time.sleep(0.05)
        assert store.journal_recover() == 1  # expired lease → queued
        (job,) = store.journal_claim(1, lease_s=30.0)
        assert job.attempts == 2  # at-least-once: the second delivery
        store.close()

    def test_claim_treats_expired_lease_as_claimable_directly(self):
        store = ResultStore(":memory:")
        store.journal_enqueue("d1", b"blob")
        store.journal_claim(1, lease_s=0.01)
        time.sleep(0.05)
        # Even without an explicit recover sweep, an expired lease is claimable.
        assert len(store.journal_claim(1, lease_s=30.0)) == 1
        store.close()

    def test_requeue_returns_leased_jobs_immediately(self):
        store = ResultStore(":memory:")
        store.journal_enqueue("d1", b"b1")
        store.journal_enqueue("d2", b"b2")
        store.journal_claim(2, lease_s=300.0)
        assert store.journal_requeue(["d1", "d2"]) == 2
        assert store.journal_status("d1")[0] == "queued"
        assert len(store.journal_claim(2, lease_s=300.0)) == 2
        store.close()

    def test_journal_survives_reopen(self, tmp_path):
        db = tmp_path / "svc.db"
        first = ResultStore(db)
        first.journal_enqueue("d1", b"durable", tenant="t")
        first.close()
        second = ResultStore(db)
        assert second.journal_pending() == 1
        (job,) = second.journal_claim(1, 30.0)
        assert job.program_blob == b"durable"
        second.close()

    def test_prune_drops_only_old_settled_rows(self):
        store = ResultStore(":memory:")
        store.journal_enqueue("done", b"x")
        store.journal_claim(1, 30.0)
        store.journal_settle("done", "done")
        store.journal_enqueue("live", b"y")
        time.sleep(0.05)
        assert store.journal_prune(max_age_s=0.01) == 1
        assert store.journal_status("done") is None
        assert store.journal_status("live")[0] == "queued"
        store.close()

    def test_journal_counters(self):
        store = ResultStore(":memory:")
        store.journal_enqueue("a", b"1")
        store.journal_enqueue("b", b"2")
        store.journal_claim(1, 30.0)
        store.journal_settle("a", "done")
        counters = store.journal_counters()
        assert counters["queued"] == 1.0 and counters["done"] == 1.0
        assert counters["enqueued"] == 2.0 and counters["claimed"] == 1.0
        assert counters["drained"] == 1.0
        store.close()

    def test_wait_false_goes_through_the_journal(self, programs):
        """The write-ahead path: wait=false is journaled before the 202 and
        the worker settles both the journal row and the result store."""
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            queued = client.simulate(programs[1], wait=False)
            assert isinstance(queued, SimulationFailure)
            digest = SimulationCache.make_key(
                programs[1],
                service.simulator.hierarchy_config,
                service.simulator.trace_options,
                service.simulator.engine,
            )
            outcome = client.wait_result(digest, deadline_s=30.0)
            assert isinstance(outcome, SimulationResult)
            assert flat(outcome) == flat(Simulator("arm").run(programs[1]))
            assert store.journal_status(digest)[0] == "done"
            assert store.journal_enqueued == 1
            assert client.stats()["journal"]["drained"] == 1.0
        finally:
            server.stop()
            store.close()


# ---------------------------------------------------------------------------
# Backpressure, rate limiting, health
# ---------------------------------------------------------------------------


def _simulate_payload(program, wait=False):
    import base64
    import pickle

    return {
        "program": base64.b64encode(pickle.dumps(program)).decode("ascii"),
        "wait": wait,
    }


class TestBackpressure:
    def test_queue_full_sheds_with_503(self, programs):
        store = ResultStore(":memory:")
        service = SimulationService("arm", store, max_queue_depth=1)
        try:
            service.worker.stop()  # freeze the drain so the backlog holds
            status, body = service.handle_simulate(_simulate_payload(programs[0]))
            assert status == 202
            status, body = service.handle_simulate(_simulate_payload(programs[1]))
            assert status == 503
            assert "queue is full" in body["error"]
            assert body["retry_after"] > 0
            assert service.shed_queue_full == 1
        finally:
            service.close()
            store.close()

    def test_open_breaker_sheds_misses_but_store_hits_serve(self, programs):
        store = ResultStore(":memory:")
        service = SimulationService("arm", store)
        try:
            # Warm one digest, then trip the breaker by hand.
            status, warm = service.handle_simulate(
                dict(_simulate_payload(programs[0]), wait=True)
            )
            assert status == 200
            for _ in range(service.breaker.failure_threshold):
                service.breaker.record_failure()
            assert service.breaker.state != "closed"
            status, body = service.handle_simulate(_simulate_payload(programs[1]))
            assert status == 503
            assert "circuit breaker" in body["error"]
            assert service.shed_breaker == 1
            # The stored digest still serves: degradation sheds misses only.
            status, again = service.handle_simulate(
                dict(_simulate_payload(programs[0]), wait=True)
            )
            assert status == 200 and again["cached"]
        finally:
            service.close()
            store.close()

    def test_healthz_reports_degradation_reasons(self):
        store = ResultStore(":memory:")
        service = SimulationService("arm", store, supervise=False)
        try:
            assert service.health() == (200, {"status": "ok"})
            service.worker.stop()  # no supervisor: the dead worker stays dead
            for _ in range(service.breaker.failure_threshold):
                service.breaker.record_failure()
            store._note_io_error()
            status, body = service.health()
            assert status == 503
            assert body["status"] == "degraded"
            assert "worker dead" in body["reasons"]
            assert any(r.startswith("breaker") for r in body["reasons"])
            assert "store io errors" in body["reasons"]
        finally:
            service.close()
            store.close()

    def test_healthz_degraded_over_http(self):
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            assert client.healthy()
            for _ in range(service.breaker.failure_threshold):
                service.breaker.record_failure()
            assert not client.healthy()  # 503 degraded
        finally:
            server.stop()
            store.close()


class TestTenantLimits:
    def test_quota_race_admits_exactly_one(self):
        """N requests racing one remaining quota slot admit exactly one."""
        store = ResultStore(":memory:")
        tenant = Tenant(name="alice", api_key="k", quota=1)
        service = SimulationService("arm", store, tenants={"k": tenant})
        try:
            n_threads = 8
            barrier = threading.Barrier(n_threads)
            outcomes = [None] * n_threads

            def race(slot):
                barrier.wait()
                outcomes[slot] = service.authenticate("k")

            threads = [
                threading.Thread(target=race, args=(slot,)) for slot in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10.0)
            admitted = [o for o in outcomes if o[1] is None]
            rejected = [o for o in outcomes if o[1] is not None]
            assert len(admitted) == 1
            assert len(rejected) == n_threads - 1
            assert all(error[0] == 429 for _, error in rejected)
            assert tenant.requests == 1
        finally:
            service.close()
            store.close()

    def test_rate_limit_resets_where_quota_does_not(self):
        """The sliding window frees up as it slides; the lifetime quota never."""
        store = ResultStore(":memory:")
        tenant = Tenant(name="bob", api_key="k", rate_limit=2, rate_window_s=0.2)
        service = SimulationService("arm", store, tenants={"k": tenant})
        try:
            assert service.authenticate("k")[1] is None
            assert service.authenticate("k")[1] is None
            _, error = service.authenticate("k")
            assert error is not None and error[0] == 429
            assert error[1]["retry_after"] > 0
            assert service.rate_limited == 1
            time.sleep(0.25)  # the window slides past both admissions
            assert service.authenticate("k")[1] is None  # rate limit reset
            assert tenant.requests == 3  # ... but the lifetime count kept going

            quota_tenant = Tenant(name="carol", api_key="q", quota=2)
            service.tenants["q"] = quota_tenant
            assert service.authenticate("q")[1] is None
            assert service.authenticate("q")[1] is None
            time.sleep(0.25)
            _, error = service.authenticate("q")
            assert error is not None and error[0] == 429  # quota never resets
        finally:
            service.close()
            store.close()

    def test_rate_limited_responses_carry_retry_after_header(self):
        tenants = {"k": Tenant(name="t", api_key="k", rate_limit=1, rate_window_s=5.0)}
        server, service, store = _service(tenants=tenants)
        try:
            from http.client import HTTPConnection

            def stats_response():
                conn = HTTPConnection(server.host, server.port, timeout=10.0)
                try:
                    conn.request("GET", "/stats", headers={"X-Api-Key": "k"})
                    response = conn.getresponse()
                    response.read()
                    return response.status, response.headers
                finally:
                    conn.close()

            status, _ = stats_response()
            assert status == 200
            status, headers = stats_response()
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
        finally:
            server.stop()
            store.close()


# ---------------------------------------------------------------------------
# HTTP protocol edges
# ---------------------------------------------------------------------------


class TestHttpProtocol:
    @staticmethod
    def _raw_exchange(server, head: bytes, body: bytes, half_close: bool = False):
        import socket

        with socket.create_connection((server.host, server.port), timeout=10.0) as sock:
            sock.sendall(head + body)
            if half_close:
                sock.shutdown(socket.SHUT_WR)
            sock.settimeout(10.0)
            chunks = []
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks).decode("latin-1")

    def test_oversized_body_is_413_not_500(self):
        from repro.service.server import MAX_BODY_BYTES

        server, service, store = _service()
        try:
            head = (
                f"POST /simulate HTTP/1.1\r\nHost: x\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
            ).encode("latin-1")
            response = self._raw_exchange(server, head, b"tiny")
            assert response.startswith("HTTP/1.1 413 Payload Too Large")
            assert "exceeds" in response
        finally:
            server.stop()
            store.close()

    def test_truncated_body_is_400_not_500(self):
        server, service, store = _service()
        try:
            head = (
                b"POST /simulate HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n"
            )
            response = self._raw_exchange(server, head, b"only-ten-b", half_close=True)
            assert response.startswith("HTTP/1.1 400 Bad Request")
            assert "truncated" in response
        finally:
            server.stop()
            store.close()

    def test_shed_responses_carry_retry_after_header(self):
        server, service, store = _service()
        try:
            for _ in range(service.breaker.failure_threshold):
                service.breaker.record_failure()
            head = (
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            response = self._raw_exchange(server, head, b"")
            assert response.startswith("HTTP/1.1 503 Service Unavailable")
            assert "Retry-After:" in response
        finally:
            server.stop()
            store.close()


# ---------------------------------------------------------------------------
# Resilient client
# ---------------------------------------------------------------------------


class TestResilientClient:
    def _stub_client(self, responses):
        """A client whose transport replays ``responses`` (callables raise)."""
        client = ServiceClient(
            "http://127.0.0.1:1",
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0),
        )
        calls = []

        def replay(method, path, payload=None):
            calls.append((method, path))
            item = responses[min(len(calls) - 1, len(responses) - 1)]
            if callable(item):
                raise item()
            return item

        client._request_once = replay
        return client, calls

    def test_connection_errors_are_retried(self):
        client, calls = self._stub_client(
            [lambda: ConnectionRefusedError("down"), (200, {"ok": True})]
        )
        assert client._request("GET", "/stats") == (200, {"ok": True})
        assert len(calls) == 2
        assert client.retries == 1

    def test_503_is_retried_honouring_retry_after(self):
        slept = []
        client, calls = self._stub_client(
            [(503, {"error": "shed", "retry_after": 0.01}), (200, {"ok": True})]
        )
        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(time, "sleep", slept.append)
            assert client._request("GET", "/stats") == (200, {"ok": True})
        assert client.retries == 1
        assert slept and slept[0] >= 0.01  # the server's hint was honoured

    def test_429_is_never_retried(self):
        client, calls = self._stub_client([(429, {"error": "quota"})])
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.status == 429
        assert len(calls) == 1
        assert client.retries == 0

    def test_exhausted_retries_raise_the_transport_error(self):
        client, calls = self._stub_client([lambda: ConnectionResetError("gone")])
        with pytest.raises(ConnectionResetError):
            client._request("GET", "/stats")
        assert len(calls) == 4  # max_attempts

    def test_wait_result_times_out(self):
        server, service, store = _service()
        try:
            client = ServiceClient(server.url)
            with pytest.raises(TimeoutError):
                client.wait_result("0" * 64, deadline_s=0.2, poll_s=0.02)
        finally:
            server.stop()
            store.close()

    def test_result_surfaces_journaled_failures(self):
        """A journal row settled as failed becomes a SimulationFailure."""
        server, service, store = _service()
        try:
            store.journal_enqueue("deadbeef", b"not a pickle")
            client = ServiceClient(server.url)
            outcome = client.wait_result("deadbeef", deadline_s=15.0)
            assert isinstance(outcome, SimulationFailure)
            assert "undecodable journaled program" in outcome.error
            assert service.worker.corrupt_jobs == 1
        finally:
            server.stop()
            store.close()

"""Tests for the target-hardware substitute: specs, noise, timing, boards."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.codegen import Target, build_program
from repro.codegen.isa import InstructionCategory as IC
from repro.hardware import (
    CPU_SPECS,
    MeasurementProtocol,
    MeasurementRecord,
    NoiseConfig,
    NoiseModel,
    TargetBoard,
    TimingModel,
    cpu_spec_for,
)
from repro.sim import TraceOptions
from tests.conftest import make_conv_func


class TestSpecs:
    def test_all_architectures_present(self):
        assert set(CPU_SPECS) == {"x86", "arm", "riscv"}

    def test_lookup(self):
        assert cpu_spec_for("ARM").name.startswith("ARM")
        with pytest.raises(KeyError):
            cpu_spec_for("powerpc")

    def test_paper_frequencies(self):
        assert cpu_spec_for("x86").frequency_ghz == pytest.approx(2.2)
        assert cpu_spec_for("arm").frequency_ghz == pytest.approx(1.5)
        assert cpu_spec_for("riscv").frequency_ghz == pytest.approx(1.2)

    def test_riscv_is_in_order_without_simd(self):
        spec = cpu_spec_for("riscv")
        assert not spec.out_of_order
        assert spec.vector_issue_per_cycle == 0.0


class TestNoiseModel:
    def test_factors_at_least_one(self, rng):
        model = NoiseModel(NoiseConfig.from_spec(cpu_spec_for("x86")), rng)
        factors = model.factors(100)
        assert np.all(factors >= 1.0)

    def test_disabled_noise_is_identity(self, rng):
        model = NoiseModel(NoiseConfig.from_spec(cpu_spec_for("x86"), enabled=False), rng)
        np.testing.assert_array_equal(model.factors(5), np.ones(5))

    def test_requires_positive_samples(self, rng):
        model = NoiseModel(NoiseConfig.from_spec(cpu_spec_for("arm")), rng)
        with pytest.raises(ValueError):
            model.factors(0)

    def test_x86_noisier_than_riscv(self):
        x86 = NoiseModel(NoiseConfig.from_spec(cpu_spec_for("x86")), np.random.default_rng(0))
        riscv = NoiseModel(NoiseConfig.from_spec(cpu_spec_for("riscv")), np.random.default_rng(0))
        assert np.std(x86.factors(500)) > np.std(riscv.factors(500))

    def test_longer_cooldown_reduces_drift(self, rng):
        config = NoiseConfig(
            sigma=0.0, outlier_probability=0.0, outlier_scale=0.0, thermal_drift=0.1
        )
        model = NoiseModel(config, rng)
        hot = model.factors(10, cooldown_s=0.0)
        cool = model.factors(10, cooldown_s=4.0)
        assert hot[-1] > cool[-1]


class TestTimingModel:
    def _counts(self, fp=1000.0, loads=300.0, stores=100.0, branches=50.0, int_alu=500.0):
        return {
            IC.FP_FMA: fp,
            IC.LOAD: loads,
            IC.STORE: stores,
            IC.BRANCH: branches,
            IC.INT_ALU: int_alu,
        }

    def _cache_stats(self, l1_misses=10.0, l2_misses=5.0, sequential=0.0):
        return {
            "l1d": {
                "read_misses": l1_misses,
                "write_misses": 0.0,
                "read_hits": 100.0,
                "write_hits": 0.0,
                "sequential_misses": sequential,
            },
            "l2": {"read_misses": l2_misses, "write_misses": 0.0, "sequential_misses": 0.0},
        }

    def test_more_instructions_take_longer(self):
        model = TimingModel(cpu_spec_for("riscv"))
        fast = model.estimate(self._counts(fp=1000), self._cache_stats())
        slow = model.estimate(self._counts(fp=5000), self._cache_stats())
        assert slow.seconds > fast.seconds

    def test_more_misses_take_longer(self):
        model = TimingModel(cpu_spec_for("arm"))
        fast = model.estimate(self._counts(), self._cache_stats(l1_misses=10))
        slow = model.estimate(self._counts(), self._cache_stats(l1_misses=10_000))
        assert slow.seconds > fast.seconds

    def test_prefetcher_hides_sequential_misses(self):
        model = TimingModel(cpu_spec_for("x86"))
        random_misses = model.estimate(self._counts(), self._cache_stats(l1_misses=1000))
        sequential_misses = model.estimate(
            self._counts(), self._cache_stats(l1_misses=1000, sequential=1000)
        )
        assert sequential_misses.memory_cycles < random_misses.memory_cycles

    def test_out_of_order_overlaps_memory(self):
        counts = self._counts()
        stats = self._cache_stats(l1_misses=2000)
        ooo = TimingModel(cpu_spec_for("x86")).estimate(counts, stats)
        assert ooo.total_cycles < ooo.issue_cycles + ooo.memory_cycles + ooo.branch_cycles

    def test_in_order_serialises(self):
        counts = self._counts()
        stats = self._cache_stats(l1_misses=2000)
        in_order = TimingModel(cpu_spec_for("riscv")).estimate(counts, stats)
        assert in_order.total_cycles == pytest.approx(
            in_order.issue_cycles + in_order.memory_cycles + in_order.branch_cycles
        )

    def test_breakdown_dict(self):
        breakdown = TimingModel(cpu_spec_for("arm")).estimate(self._counts(), self._cache_stats())
        data = breakdown.as_dict()
        assert set(data) == {
            "issue_cycles",
            "memory_cycles",
            "branch_cycles",
            "total_cycles",
            "seconds",
        }


class TestMeasurementProtocol:
    def test_defaults_match_paper(self):
        protocol = MeasurementProtocol()
        assert protocol.n_exe == 15
        assert protocol.cooldown_s == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(n_exe=0)
        with pytest.raises(ValueError):
            MeasurementProtocol(cooldown_s=-1)
        with pytest.raises(ValueError):
            MeasurementProtocol(n_exe=4, discard_outliers=2)

    def test_record_median_and_cost(self):
        record = MeasurementRecord(times_s=[0.2, 0.1, 0.3], cooldown_s=1.0)
        assert record.median_s == pytest.approx(0.2)
        assert record.benchmarking_seconds == pytest.approx((1.0 + 0.2) * 3)

    def test_outlier_removal(self):
        record = MeasurementRecord(times_s=[0.1, 0.1, 0.1, 0.1, 5.0], cooldown_s=0.0, discarded=1)
        assert record.median_s == pytest.approx(0.1)
        assert record.mean_s < 1.0

    @given(st.lists(st.floats(1e-6, 10.0), min_size=1, max_size=30))
    def test_median_between_min_and_max(self, times):
        record = MeasurementRecord(times_s=times, cooldown_s=1.0)
        assert min(times) <= record.median_s <= max(times)


class TestTargetBoard:
    @pytest.fixture(scope="class")
    def conv_programs(self):
        func, _ = make_conv_func()
        archs = ("x86", "arm", "riscv")
        return {arch: build_program(func, Target.from_name(arch)) for arch in archs}

    def test_measure_record_shape(self, conv_programs):
        board = TargetBoard("arm", trace_options=TraceOptions(max_accesses=20_000), seed=1)
        record = board.measure(conv_programs["arm"])
        assert record.n_exe == 15
        assert record.median_s > 0

    def test_deterministic_per_seed(self, conv_programs):
        options = TraceOptions(max_accesses=20_000)
        first = TargetBoard("arm", trace_options=options, seed=5).measure(conv_programs["arm"])
        second = TargetBoard("arm", trace_options=options, seed=5).measure(conv_programs["arm"])
        assert first.times_s == second.times_s

    def test_noise_changes_with_seed(self, conv_programs):
        options = TraceOptions(max_accesses=20_000)
        first = TargetBoard("arm", trace_options=options, seed=5).measure(conv_programs["arm"])
        second = TargetBoard("arm", trace_options=options, seed=6).measure(conv_programs["arm"])
        assert first.times_s != second.times_s

    def test_noise_disabled_gives_constant_times(self, conv_programs):
        board = TargetBoard(
            "arm", trace_options=TraceOptions(max_accesses=20_000), noise_enabled=False
        )
        record = board.measure(conv_programs["arm"])
        assert len(set(record.times_s)) == 1

    def test_architecture_speed_ordering(self, conv_programs):
        options = TraceOptions(max_accesses=20_000)
        times = {
            arch: TargetBoard(arch, trace_options=options, noise_enabled=False)
            .undisturbed_time(conv_programs[arch])
            .seconds
            for arch in ("x86", "arm", "riscv")
        }
        assert times["x86"] < times["arm"] < times["riscv"]

    def test_execute_single_run(self, conv_programs):
        board = TargetBoard("riscv", trace_options=TraceOptions(max_accesses=10_000), seed=2)
        assert board.execute(conv_programs["riscv"]) > 0

"""Tests for the vectorized simulation engine and the memoization layer.

The central property: both engines produce *bit-identical* statistics at
every cache level for any trace, geometry and replacement policy.  The
vectorized engine's fast paths (run collapse, first-touch pre-resolution,
rank rounds, chain tails) are all exercised by the random traces below.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    Cache,
    CacheConfig,
    CacheHierarchy,
    CacheHierarchyConfig,
    CacheLevelConfig,
    MainMemory,
    ReplacementPolicy,
    SimulationCache,
    Simulator,
    SimulatorPool,
    TraceOptions,
    hierarchy_with_replacement,
    resolve_engine,
    victim_rank,
)
import repro.sim.engine as engine_module


def make_pair(sets, assoc, policy=ReplacementPolicy.LRU, with_memory=True, rng_seed=0):
    """One reference and one vectorized cache with identical geometry."""
    config = CacheConfig.from_geometry(
        "test", sets=sets, associativity=assoc, replacement=policy, rng_seed=rng_seed
    )
    reference = Cache(
        config, next_level=MainMemory() if with_memory else None, engine=ENGINE_REFERENCE
    )
    vectorized = Cache(
        config, next_level=MainMemory() if with_memory else None, engine=ENGINE_VECTORIZED
    )
    return reference, vectorized


def assert_equivalent(reference: Cache, vectorized: Cache):
    assert reference.stats_dict() == vectorized.stats_dict()
    assert reference.resident_lines() == vectorized.resident_lines()
    if reference.next_level is not None:
        assert reference.next_level.stats_dict() == vectorized.next_level.stats_dict()


GEOMETRIES = [(4, 2), (8, 1), (2, 4), (16, 4), (64, 8)]


class TestEngineSelection:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError):
            resolve_engine("quantum")

    def test_resolve_default(self):
        assert resolve_engine(None) in (ENGINE_REFERENCE, ENGINE_VECTORIZED)

    def test_random_policy_stays_on_requested_engine(self):
        # Until the replayable victim stream, random caches silently fell
        # back to the reference loop; they now honour the engine selection.
        config = CacheConfig.from_geometry(
            "rand", sets=4, associativity=2, replacement=ReplacementPolicy.RANDOM
        )
        assert Cache(config, engine=ENGINE_VECTORIZED).engine == ENGINE_VECTORIZED
        assert Cache(config, engine=ENGINE_REFERENCE).engine == ENGINE_REFERENCE

    def test_trace_options_engine_threaded_to_simulator(self):
        simulator = Simulator("arm", trace_options=TraceOptions(engine=ENGINE_REFERENCE))
        assert simulator.engine == ENGINE_REFERENCE
        explicit = Simulator(
            "arm",
            trace_options=TraceOptions(engine=ENGINE_REFERENCE),
            engine=ENGINE_VECTORIZED,
        )
        assert explicit.engine == ENGINE_VECTORIZED

    def test_hierarchy_engine_threaded_to_caches(self):
        config = CacheHierarchyConfig(
            name="mini",
            l1d=CacheLevelConfig(size_bytes=2 * 64 * 2, sets=2, associativity=2),
            l1i=CacheLevelConfig(size_bytes=2 * 64 * 2, sets=2, associativity=2),
            l2=CacheLevelConfig(size_bytes=4 * 64 * 4, sets=4, associativity=4),
            line_bytes=64,
        )
        hierarchy = CacheHierarchy(config, engine=ENGINE_VECTORIZED)
        assert all(c.engine == ENGINE_VECTORIZED for c in hierarchy.all_caches().values())


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 300), st.booleans()), min_size=1, max_size=600),
        st.sampled_from(GEOMETRIES),
        st.sampled_from([ReplacementPolicy.LRU, ReplacementPolicy.FIFO, ReplacementPolicy.RANDOM]),
        st.integers(1, 4),
    )
    def test_property_equivalence(self, accesses, geometry, policy, n_chunks):
        """Random traces through both engines give identical per-level stats."""
        sets, assoc = geometry
        reference, vectorized = make_pair(sets, assoc, policy=policy)
        lines = np.asarray([line for line, _ in accesses], dtype=np.int64)
        writes = np.asarray([write for _, write in accesses], dtype=bool)
        for chunk_lines, chunk_writes in zip(
            np.array_split(lines, n_chunks), np.array_split(writes, n_chunks)
        ):
            reference.access_lines(chunk_lines, chunk_writes)
            vectorized.access_lines(chunk_lines, chunk_writes)
        assert_equivalent(reference, vectorized)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_large_random_trace_equivalence(self, seed):
        """Bulk traces exercise the wide-round and chain-tail paths."""
        rng = np.random.default_rng(seed)
        reference, vectorized = make_pair(16, 4)
        for _ in range(3):
            size = int(rng.integers(200, 4000))
            lines = rng.integers(0, 400, size=size).astype(np.int64)
            writes = rng.random(size) < 0.3
            reference.access_lines(lines, writes)
            vectorized.access_lines(lines, writes)
        assert_equivalent(reference, vectorized)

    def test_skewed_trace_hits_chain_tail(self):
        """A single-set-dominated trace goes through the scalar chain tail."""
        rng = np.random.default_rng(0)
        for policy in (ReplacementPolicy.LRU, ReplacementPolicy.FIFO):
            reference, vectorized = make_pair(8, 2, policy=policy)
            hot = rng.integers(0, 64, size=3000) * 8  # always set 0
            cold = rng.integers(0, 512, size=1000)
            lines = np.concatenate([hot, cold])
            rng.shuffle(lines)
            writes = rng.random(lines.size) < 0.5
            reference.access_lines(lines, writes)
            vectorized.access_lines(lines, writes)
            assert_equivalent(reference, vectorized)

    def test_sequential_miss_equivalence_across_chunks(self):
        reference, vectorized = make_pair(64, 8)
        first = np.arange(100, dtype=np.int64)
        second = np.arange(100, 200, dtype=np.int64)  # continues the streak
        for cache in (reference, vectorized):
            cache.access_lines(first, np.zeros(100, dtype=bool))
            cache.access_lines(second, np.zeros(100, dtype=bool))
        assert_equivalent(reference, vectorized)
        assert vectorized.sequential_misses == 199

    def test_hierarchy_equivalence_with_and_without_l3(self):
        rng = np.random.default_rng(7)
        small = CacheLevelConfig(size_bytes=4 * 64 * 2, sets=4, associativity=2)
        mid = CacheLevelConfig(size_bytes=8 * 64 * 4, sets=8, associativity=4)
        big = CacheLevelConfig(size_bytes=16 * 64 * 4, sets=16, associativity=4)
        for l3 in (None, big):
            config = CacheHierarchyConfig(name="t", l1d=small, l1i=small, l2=mid, l3=l3)
            hier_ref = CacheHierarchy(config, engine=ENGINE_REFERENCE)
            hier_vec = CacheHierarchy(config, engine=ENGINE_VECTORIZED)
            for _ in range(4):
                addresses = rng.integers(0, 1 << 16, size=1500).astype(np.int64)
                writes = rng.random(1500) < 0.4
                hier_ref.access_data_batch(addresses, writes)
                hier_vec.access_data_batch(addresses, writes)
            assert hier_ref.stats_dict() == hier_vec.stats_dict()

    def test_simulator_engine_equivalence(self, conv_program_x86):
        options = TraceOptions(max_accesses=30_000)
        ref = Simulator(
            "x86", trace_options=options, engine=ENGINE_REFERENCE, memoize=False
        ).run(conv_program_x86)
        vec = Simulator(
            "x86", trace_options=options, engine=ENGINE_VECTORIZED, memoize=False
        ).run(conv_program_x86)
        left, right = ref.flat_stats(), vec.flat_stats()
        left.pop("sim.host_seconds")
        right.pop("sim.host_seconds")
        assert left == right


class TestRandomReplacement:
    """The replayable victim stream: bit-identity and seed semantics.

    Random replacement draws victims from a counter-based stream keyed on
    ``(rng_seed, set index, per-set eviction ordinal)``, so the reference
    loop, the NumPy rank rounds, the chain tails and the compiled kernel
    must all pick identical victims for the same seed.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 200), st.booleans()), min_size=1, max_size=600),
        st.sampled_from(GEOMETRIES + [(4, 3), (32, 16), (2, 1)]),
        st.integers(0, 2**63 - 1),
        st.integers(1, 4),
    )
    def test_property_equivalence_across_seeds(self, accesses, geometry, seed, n_chunks):
        """Reference and vectorized agree for any seed, geometry and chunking."""
        sets, assoc = geometry
        reference, vectorized = make_pair(
            sets, assoc, policy=ReplacementPolicy.RANDOM, rng_seed=seed
        )
        lines = np.asarray([line for line, _ in accesses], dtype=np.int64)
        writes = np.asarray([write for _, write in accesses], dtype=bool)
        for chunk_lines, chunk_writes in zip(
            np.array_split(lines, n_chunks), np.array_split(writes, n_chunks)
        ):
            reference.access_lines(chunk_lines, chunk_writes)
            vectorized.access_lines(chunk_lines, chunk_writes)
        assert_equivalent(reference, vectorized)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_large_random_trace_equivalence(self, seed):
        """Bulk random-policy traces exercise rounds, tails and the kernel."""
        rng = np.random.default_rng(seed)
        reference, vectorized = make_pair(
            16, 4, policy=ReplacementPolicy.RANDOM, rng_seed=seed
        )
        for _ in range(3):
            size = int(rng.integers(200, 4000))
            lines = rng.integers(0, 400, size=size).astype(np.int64)
            writes = rng.random(size) < 0.3
            reference.access_lines(lines, writes)
            vectorized.access_lines(lines, writes)
        assert_equivalent(reference, vectorized)

    def test_skewed_trace_hits_chain_tail(self):
        """A single-set-dominated random trace goes through the scalar chain."""
        rng = np.random.default_rng(0)
        reference, vectorized = make_pair(8, 2, policy=ReplacementPolicy.RANDOM, rng_seed=9)
        hot = rng.integers(0, 64, size=3000) * 8  # always set 0
        cold = rng.integers(0, 512, size=1000)
        lines = np.concatenate([hot, cold])
        rng.shuffle(lines)
        writes = rng.random(lines.size) < 0.5
        reference.access_lines(lines, writes)
        vectorized.access_lines(lines, writes)
        assert_equivalent(reference, vectorized)

    def test_numpy_rounds_match_compiled_kernel(self, monkeypatch):
        """The pure-NumPy event phase is bit-identical to the C kernel.

        With the kernel unavailable both runs take the NumPy path and the
        assertion is trivially true; CI also runs the whole suite under
        ``REPRO_SIM_NATIVE=0`` to pin the pure-NumPy path against the
        reference loop.
        """
        rng = np.random.default_rng(4)
        lines = rng.integers(0, 500, size=6000).astype(np.int64)
        writes = rng.random(lines.size) < 0.4

        def run(disable_kernel):
            config = CacheConfig.from_geometry(
                "k", sets=16, associativity=4,
                replacement=ReplacementPolicy.RANDOM, rng_seed=21,
            )
            cache = Cache(config, next_level=MainMemory(), engine=ENGINE_VECTORIZED)
            if disable_kernel:
                monkeypatch.setattr(engine_module, "event_kernel", lambda: None)
            try:
                cache.access_lines(lines, writes)
            finally:
                monkeypatch.undo()
            return cache.stats_dict(), cache.next_level.stats_dict()

        assert run(disable_kernel=True) == run(disable_kernel=False)

    def test_seed_changes_victims(self):
        """Two seeds must diverge on an eviction-heavy trace."""
        rng = np.random.default_rng(1)
        lines = rng.integers(0, 64, size=5000).astype(np.int64)
        writes = np.zeros(lines.size, dtype=bool)
        stats = []
        for seed in (0, 1):
            _, vectorized = make_pair(4, 2, policy=ReplacementPolicy.RANDOM, rng_seed=seed)
            vectorized.access_lines(lines, writes)
            stats.append(vectorized.stats_dict())
        assert stats[0] != stats[1]

    def test_same_seed_is_replayable_after_reset(self):
        rng = np.random.default_rng(2)
        lines = rng.integers(0, 128, size=2000).astype(np.int64)
        writes = rng.random(lines.size) < 0.5
        _, cache = make_pair(8, 2, policy=ReplacementPolicy.RANDOM, rng_seed=5)
        cache.access_lines(lines, writes)
        first = cache.stats_dict()
        cache.reset_state()  # rewinds the per-set eviction ordinals too
        cache.access_lines(lines, writes)
        assert cache.stats_dict() == first

    def test_victim_rank_is_deterministic_and_bounded(self):
        seen = set()
        for ordinal in range(512):
            rank = victim_rank(7, 3, ordinal, 8)
            assert 0 <= rank < 8
            assert rank == victim_rank(7, 3, ordinal, 8)
            seen.add(rank)
        assert seen == set(range(8))  # the stream reaches every way

    def test_victim_ranks_vectorized_matches_scalar(self):
        rng = np.random.default_rng(3)
        sets = rng.integers(0, 1 << 15, size=200).astype(np.int64)
        ordinals = rng.integers(0, 1 << 20, size=200).astype(np.int64)
        for seed in (0, 1, 2**31, 2**63 - 1):
            got = engine_module._victim_ranks(seed, sets, ordinals, 16)
            expected = [
                victim_rank(seed, int(s), int(k), 16) for s, k in zip(sets, ordinals)
            ]
            assert got.tolist() == expected

    def test_random_hierarchy_simulator_equivalence(self, conv_program_x86):
        """Reference vs vectorized(+descriptor) through a full random hierarchy."""
        config = CacheHierarchyConfig(
            name="tiny-random",
            l1d=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement=ReplacementPolicy.RANDOM),
            l1i=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement=ReplacementPolicy.RANDOM),
            l2=CacheLevelConfig(8 * 64 * 2, 8, 2, replacement=ReplacementPolicy.RANDOM),
            l3=CacheLevelConfig(16 * 64 * 4, 16, 4, replacement=ReplacementPolicy.RANDOM),
        )
        options = TraceOptions(max_accesses=30_000, rng_seed=13)
        ref = Simulator(
            "x86", config, trace_options=options, engine=ENGINE_REFERENCE, memoize=False
        ).run(conv_program_x86)
        vec = Simulator(
            "x86", config, trace_options=options, engine=ENGINE_VECTORIZED, memoize=False
        ).run(conv_program_x86)
        left, right = ref.flat_stats(), vec.flat_stats()
        left.pop("sim.host_seconds")
        right.pop("sim.host_seconds")
        assert left == right
        # The tiny hierarchy must actually evict, or the test proves nothing.
        assert left["l1d.read_replacements"] + left["l1d.write_replacements"] > 0

    def test_hierarchy_with_replacement_variant(self):
        variant = hierarchy_with_replacement("x86", ReplacementPolicy.RANDOM)
        assert all(
            level.replacement == ReplacementPolicy.RANDOM
            for level in variant.levels().values()
        )
        base = Simulator("x86").hierarchy_config
        assert variant.l1d.sets == base.l1d.sets  # geometry untouched
        with pytest.raises(KeyError):
            hierarchy_with_replacement("sparc", ReplacementPolicy.RANDOM)

    def test_split_l1_streams_are_independent(self):
        """Same-geometry L1D/L1I levels must not share one victim tape."""
        hierarchy = CacheHierarchy(
            hierarchy_with_replacement("x86", ReplacementPolicy.RANDOM), rng_seed=3
        )
        assert hierarchy.l1d.rng_seed != hierarchy.l1i.rng_seed


class TestScalarFastPath:
    @pytest.mark.parametrize(
        "policy", [ReplacementPolicy.LRU, ReplacementPolicy.FIFO, ReplacementPolicy.RANDOM]
    )
    def test_scalar_access_equals_batch(self, policy):
        rng = np.random.default_rng(3)
        addresses = rng.integers(0, 4096, size=400) * 4
        writes = rng.random(400) < 0.3
        for engine in (ENGINE_REFERENCE, ENGINE_VECTORIZED):
            config = CacheConfig.from_geometry("s", sets=8, associativity=2, replacement=policy)
            scalar = Cache(config, next_level=MainMemory(), engine=engine)
            batch = Cache(config, next_level=MainMemory(), engine=engine)
            for address, write in zip(addresses, writes):
                scalar.access(int(address), bool(write))
            batch.access_batch(addresses, writes)
            assert scalar.stats_dict() == batch.stats_dict()
            assert scalar.next_level.stats_dict() == batch.next_level.stats_dict()

    def test_scalar_forwarding_through_cache_levels(self):
        memory = MainMemory()
        l2 = Cache(CacheConfig.from_geometry("l2", sets=4, associativity=2), memory)
        l1 = Cache(CacheConfig.from_geometry("l1", sets=1, associativity=1), l2)
        l1.access(0 * 64, True)   # write miss -> fill
        l1.access(1 * 64, False)  # evicts dirty line -> writeback
        assert l1.writebacks == 1
        assert l2.accesses == 3  # two fills plus one writeback
        assert memory.read_accesses == 2

    def test_contains_and_resident_lines(self):
        for engine in (ENGINE_REFERENCE, ENGINE_VECTORIZED):
            cache = Cache(CacheConfig.from_geometry("c", sets=4, associativity=2), engine=engine)
            cache.access(0x1000, False)
            assert cache.contains(0x1000)
            assert cache.contains(0x103F)
            assert not cache.contains(0x2000)
            assert cache.resident_lines() == 1
            cache.reset_state()
            assert cache.resident_lines() == 0
            assert not cache.contains(0x1000)


class TestMemoization:
    def test_second_run_is_served_from_cache(self, conv_program_x86):
        memo = SimulationCache(maxsize=8)
        options = TraceOptions(max_accesses=10_000)
        simulator = Simulator("x86", trace_options=options, memo_cache=memo)
        first = simulator.run(conv_program_x86)
        assert not first.cached and memo.misses == 1 and memo.hits == 0
        second = simulator.run(conv_program_x86)
        assert second.cached and memo.hits == 1
        left, right = first.flat_stats(), second.flat_stats()
        left.pop("sim.host_seconds")
        right.pop("sim.host_seconds")
        assert left == right
        assert second.trace_accesses == first.trace_accesses

    def test_memoized_result_is_isolated_from_mutation(self, conv_program_x86):
        memo = SimulationCache(maxsize=8)
        options = TraceOptions(max_accesses=5_000)
        simulator = Simulator("x86", trace_options=options, memo_cache=memo)
        first = simulator.run(conv_program_x86)
        first.stats.group("l1d").set("read_hits", -1.0)
        second = simulator.run(conv_program_x86)
        assert second.flat_stats()["l1d.read_hits"] != -1.0

    def test_key_distinguishes_options_and_engine(self, conv_program_x86):
        memo = SimulationCache()
        base = TraceOptions(max_accesses=5_000)
        config = Simulator("x86").hierarchy_config
        key = memo.make_key(conv_program_x86, config, base, ENGINE_VECTORIZED)
        other_budget = memo.make_key(
            conv_program_x86, config, TraceOptions(max_accesses=6_000), ENGINE_VECTORIZED
        )
        other_engine = memo.make_key(conv_program_x86, config, base, ENGINE_REFERENCE)
        assert len({key, other_budget, other_engine}) == 3

    def test_key_incorporates_random_replacement_seed(self, conv_program_x86):
        """Two runs with different victim-stream seeds can never share a result."""
        memo = SimulationCache()
        random_config = hierarchy_with_replacement("x86", ReplacementPolicy.RANDOM)
        keys = {
            memo.make_key(
                conv_program_x86,
                random_config,
                TraceOptions(max_accesses=5_000, rng_seed=seed),
                ENGINE_VECTORIZED,
            )
            for seed in (0, 1, 2)
        }
        assert len(keys) == 3

    def test_key_is_seed_neutral_without_random_levels(self, conv_program_x86):
        """Deterministic hierarchies never consume the stream: one key per result."""
        memo = SimulationCache()
        lru_config = Simulator("x86").hierarchy_config
        keys = {
            memo.make_key(
                conv_program_x86,
                lru_config,
                TraceOptions(max_accesses=5_000, rng_seed=seed),
                ENGINE_VECTORIZED,
            )
            for seed in (0, 1, 2)
        }
        assert len(keys) == 1

    def test_key_distinguishes_replacement_policy(self, conv_program_x86):
        memo = SimulationCache()
        base = TraceOptions(max_accesses=5_000)
        lru_key = memo.make_key(
            conv_program_x86, Simulator("x86").hierarchy_config, base, ENGINE_VECTORIZED
        )
        random_key = memo.make_key(
            conv_program_x86,
            hierarchy_with_replacement("x86", ReplacementPolicy.RANDOM),
            base,
            ENGINE_VECTORIZED,
        )
        assert lru_key != random_key

    def test_lru_bound(self):
        from repro.sim.stats import SimulationStats

        memo = SimulationCache(maxsize=2)
        for index in range(3):
            stats = SimulationStats()
            stats.group("sim").set("trace_accesses", index)
            memo.put(f"key{index}", stats)
        assert len(memo) == 2
        assert memo.get("key0") is None  # evicted
        assert memo.get("key2") is not None

    def test_disk_cache_roundtrip(self, tmp_path, conv_program_x86):
        options = TraceOptions(max_accesses=5_000)
        first_memo = SimulationCache(maxsize=4, disk_dir=tmp_path)
        simulator = Simulator("x86", trace_options=options, memo_cache=first_memo)
        fresh = simulator.run(conv_program_x86)
        # A brand-new in-memory cache backed by the same directory hits disk.
        second_memo = SimulationCache(maxsize=4, disk_dir=tmp_path)
        reloaded = Simulator("x86", trace_options=options, memo_cache=second_memo).run(
            conv_program_x86
        )
        assert reloaded.cached
        left, right = fresh.flat_stats(), reloaded.flat_stats()
        left.pop("sim.host_seconds")
        right.pop("sim.host_seconds")
        assert left == right

    def test_disk_load_happens_outside_lock(self, tmp_path, monkeypatch):
        """``get`` must not hold the store lock across disk reads — the
        ``threads`` pool backend would otherwise serialize behind file I/O."""
        from repro.sim.stats import SimulationStats

        memo = SimulationCache(maxsize=4, disk_dir=tmp_path)
        stats = SimulationStats()
        stats.group("sim").set("trace_accesses", 1.0)
        memo.put("key", stats)
        memo.clear()  # force the next get through the disk layer
        original = SimulationCache._load_from_disk
        observed = {}

        def spying_load(self, key):
            observed["locked"] = self._lock.locked()
            return original(self, key)

        monkeypatch.setattr(SimulationCache, "_load_from_disk", spying_load)
        assert memo.get("key") is not None
        assert observed["locked"] is False

    def test_concurrent_get_put_and_len(self, tmp_path):
        """Hammer one disk-backed cache from many threads: every lookup sees
        a consistent snapshot and the LRU bound holds throughout."""
        import threading

        from repro.sim.stats import SimulationStats

        memo = SimulationCache(maxsize=6, disk_dir=tmp_path)
        seeder = SimulationCache(maxsize=6, disk_dir=tmp_path)
        for index in range(8):
            stats = SimulationStats()
            stats.group("sim").set("trace_accesses", float(index))
            seeder.put(f"key{index}", stats)
        errors = []

        def worker():
            try:
                for _ in range(40):
                    for index in range(8):
                        got = memo.get(f"key{index}")
                        if got is not None:
                            flat = dict(got.as_dict())
                            assert flat["sim.trace_accesses"] == float(index)
                        stats = SimulationStats()
                        stats.group("sim").set("trace_accesses", float(index))
                        memo.put(f"key{index}", stats)
                        assert 0 <= len(memo) <= 6
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(memo) <= 6

    def test_memoize_disabled(self, conv_program_x86):
        options = TraceOptions(max_accesses=5_000)
        simulator = Simulator("x86", trace_options=options, memoize=False)
        assert simulator.memo_cache is None
        assert not simulator.run(conv_program_x86).cached
        assert not simulator.run(conv_program_x86).cached

    def test_pool_shares_memoization(self, conv_program_x86):
        memo = SimulationCache(maxsize=8)
        options = TraceOptions(max_accesses=5_000)
        simulator = Simulator("x86", trace_options=options, memo_cache=memo)
        simulator.run(conv_program_x86)
        runs = Simulator("x86", trace_options=options, memo_cache=memo).run(conv_program_x86)
        assert runs.cached

    def test_process_pool_shares_memo_through_disk(self, tmp_path, conv_program_x86):
        options = TraceOptions(max_accesses=5_000)
        pool = SimulatorPool(
            "x86",
            n_parallel=2,
            trace_options=options,
            backend="processes",
            memo_dir=str(tmp_path),
        )
        first = pool.run_many([conv_program_x86, conv_program_x86])
        assert list(tmp_path.glob("*.json")), "workers should persist results to disk"
        # A fresh pool (new processes, empty in-memory caches) is served
        # entirely from the shared disk layer.
        second = SimulatorPool(
            "x86",
            n_parallel=2,
            trace_options=options,
            backend="processes",
            memo_dir=str(tmp_path),
        ).run_many([conv_program_x86])
        assert second[0].cached
        left = first[0].flat_stats()
        right = second[0].flat_stats()
        left.pop("sim.host_seconds")
        right.pop("sim.host_seconds")
        assert left == right


class TestProgramDigest:
    def test_digest_stable_and_name_independent(self, conv_program_x86):
        digest = conv_program_x86.content_digest()
        assert digest == conv_program_x86.content_digest()
        original_name = conv_program_x86.name
        try:
            conv_program_x86.name = "renamed"
            assert conv_program_x86.content_digest() == digest
        finally:
            conv_program_x86.name = original_name

    def test_digest_differs_across_programs(self, conv_program_x86, conv_program_riscv):
        assert conv_program_x86.content_digest() != conv_program_riscv.content_digest()

    def test_code_bytes_public_api(self, conv_program_x86):
        total = sum(conv_program_x86.code_bytes(root) for root in conv_program_x86.roots)
        assert total > 0
        assert conv_program_x86.code_footprint_bytes() == pytest.approx(
            total + conv_program_x86.static_code_bytes
        )


class TestArenaBatching:
    """Cross-chunk arena batching is bit-identical to per-chunk dispatch.

    The native batch driver walks whole groups of descriptor chunks in one
    foreign call per cache level and forwards the combined miss stream to
    the next level in one batch; every statistic must match both the
    per-chunk descriptor path and the reference per-access loop, for every
    replacement policy, across the ``REPRO_SIM_ARENA`` toggle and the
    no-kernel fallback.
    """

    TINY = CacheHierarchyConfig(
        name="tiny-arena",
        l1d=CacheLevelConfig(4 * 64 * 2, 4, 2),
        l1i=CacheLevelConfig(4 * 64 * 2, 4, 2),
        l2=CacheLevelConfig(8 * 64 * 2, 8, 2),
    )

    def _flat(self, program, monkeypatch, arena, engine=ENGINE_VECTORIZED, rng_seed=0):
        monkeypatch.setenv("REPRO_SIM_ARENA", "1" if arena else "0")
        simulator = Simulator(
            "x86",
            trace_options=TraceOptions(max_accesses=30_000, rng_seed=rng_seed),
            engine=engine,
            memoize=False,
        )
        stats = simulator.run(program).flat_stats()
        stats.pop("sim.host_seconds")
        return stats

    def test_simulator_toggle_bit_identical(self, conv_program_x86, monkeypatch):
        batched = self._flat(conv_program_x86, monkeypatch, arena=True)
        per_chunk = self._flat(conv_program_x86, monkeypatch, arena=False)
        reference = self._flat(
            conv_program_x86, monkeypatch, arena=True, engine=ENGINE_REFERENCE
        )
        assert batched == per_chunk == reference

    @pytest.mark.parametrize("policy", ReplacementPolicy.ALL)
    def test_policies_through_stream(self, conv_program_x86, policy):
        """All three policies agree between stream and per-chunk dispatch."""
        config = CacheHierarchyConfig(
            name=f"tiny-{policy}",
            l1d=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement=policy),
            l1i=CacheLevelConfig(4 * 64 * 2, 4, 2, replacement=policy),
            l2=CacheLevelConfig(8 * 64 * 2, 8, 2, replacement=policy),
        )
        chunks = list(
            conv_program_x86.memory_trace_descriptors(
                chunk_iterations=512, max_accesses=20_000
            )
        )
        streamed = CacheHierarchy(config, engine=ENGINE_VECTORIZED, rng_seed=11)
        streamed.access_data_descriptor_stream(chunks)
        per_chunk = CacheHierarchy(config, engine=ENGINE_VECTORIZED, rng_seed=11)
        for chunk in chunks:
            per_chunk.access_data_descriptors(chunk)
        assert streamed.stats_dict() == per_chunk.stats_dict()

    def test_stream_groups_multiple_arenas(self, conv_program_x86, monkeypatch):
        """Tiny group bounds force several flushes; results cannot change."""
        import repro.sim.cache as cache_module

        chunks = list(
            conv_program_x86.memory_trace_descriptors(
                chunk_iterations=256, max_accesses=20_000
            )
        )
        assert len(chunks) > 4  # several flushes at batch size 2
        monkeypatch.setattr(cache_module, "ARENA_CHUNK_BATCH", 2)
        grouped = CacheHierarchy(self.TINY, engine=ENGINE_VECTORIZED)
        grouped.access_data_descriptor_stream(chunks)
        monkeypatch.undo()
        baseline = CacheHierarchy(self.TINY, engine=ENGINE_VECTORIZED)
        baseline.access_data_descriptor_stream(chunks)
        assert grouped.stats_dict() == baseline.stats_dict()

    def test_stream_falls_back_without_kernel(self, conv_program_x86, monkeypatch):
        import repro.sim.cache as cache_module

        chunks = list(
            conv_program_x86.memory_trace_descriptors(
                chunk_iterations=512, max_accesses=10_000
            )
        )
        monkeypatch.setattr(cache_module, "arena_batching_available", lambda: False)
        fallback = CacheHierarchy(self.TINY, engine=ENGINE_VECTORIZED)
        fallback.access_data_descriptor_stream(chunks)
        monkeypatch.undo()
        native = CacheHierarchy(self.TINY, engine=ENGINE_VECTORIZED)
        native.access_data_descriptor_stream(chunks)
        assert fallback.stats_dict() == native.stats_dict()

    def test_env_toggle_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ARENA", raising=False)
        assert engine_module.arena_batching_enabled()
        monkeypatch.setenv("REPRO_SIM_ARENA", "0")
        assert not engine_module.arena_batching_enabled()
        assert not engine_module.arena_batching_available()
        monkeypatch.setenv("REPRO_SIM_ARENA", "1")
        assert engine_module.arena_batching_enabled()

    def test_random_policy_arena_equivalence(self, conv_program_x86, monkeypatch):
        """The replayable victim stream survives arena batching, per seed."""
        for rng_seed in (0, 5):
            config = hierarchy_with_replacement("x86", ReplacementPolicy.RANDOM)
            monkeypatch.setenv("REPRO_SIM_ARENA", "1")
            simulator = Simulator(
                "x86",
                hierarchy_config=config,
                trace_options=TraceOptions(max_accesses=30_000, rng_seed=rng_seed),
                memoize=False,
            )
            batched = simulator.run(conv_program_x86).flat_stats()
            batched.pop("sim.host_seconds")
            monkeypatch.setenv("REPRO_SIM_ARENA", "0")
            per_chunk_sim = Simulator(
                "x86",
                hierarchy_config=config,
                trace_options=TraceOptions(max_accesses=30_000, rng_seed=rng_seed),
                memoize=False,
            )
            per_chunk = per_chunk_sim.run(conv_program_x86).flat_stats()
            per_chunk.pop("sim.host_seconds")
            assert batched == per_chunk

    def test_scratch_pool_reused_across_hierarchies(self, conv_program_x86):
        """Fresh hierarchies share the thread's kernel scratch safely.

        The pooled workspace keeps stateful tables (position scatter,
        hash stamps) across runs; three back-to-back cold runs must stay
        bit-identical to each other.
        """
        chunks = list(
            conv_program_x86.memory_trace_descriptors(
                chunk_iterations=512, max_accesses=20_000
            )
        )
        results = []
        for _ in range(3):
            hierarchy = CacheHierarchy(self.TINY, engine=ENGINE_VECTORIZED)
            hierarchy.access_data_descriptor_stream(chunks)
            results.append(hierarchy.stats_dict())
        assert results[0] == results[1] == results[2]

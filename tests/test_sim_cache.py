"""Tests for the set-associative cache model and main memory."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Cache, CacheConfig, MainMemory, ReplacementPolicy


def make_cache(sets=4, assoc=2, line=64, next_level=None, policy=ReplacementPolicy.LRU):
    config = CacheConfig.from_geometry("test", sets=sets, associativity=assoc, line_bytes=line,
                                       replacement=policy)
    return Cache(config, next_level=next_level)


class TestCacheConfig:
    def test_geometry_consistency_enforced(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, sets=4, associativity=2, line_bytes=64)

    def test_power_of_two_sets_required(self):
        with pytest.raises(ValueError):
            CacheConfig.from_geometry("bad", sets=3, associativity=2)

    def test_power_of_two_line_required(self):
        with pytest.raises(ValueError):
            CacheConfig.from_geometry("bad", sets=4, associativity=2, line_bytes=48)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            CacheConfig.from_geometry("bad", sets=4, associativity=2, replacement="mru")

    def test_from_geometry_size(self):
        config = CacheConfig.from_geometry("c", sets=64, associativity=8, line_bytes=64)
        assert config.size_bytes == 32 * 1024


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x1000, is_write=False) is False
        assert cache.access(0x1000, is_write=False) is True
        assert cache.read_misses == 1 and cache.read_hits == 1

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0x1000, False)
        assert cache.access(0x103F, False) is True  # same 64-byte line

    def test_lru_eviction_order(self):
        cache = make_cache(sets=1, assoc=2)
        cache.access(0 * 64, False)
        cache.access(1 * 64, False)
        cache.access(0 * 64, False)  # 0 is now MRU
        cache.access(2 * 64, False)  # evicts 1
        assert cache.contains(0 * 64)
        assert not cache.contains(1 * 64)
        assert cache.contains(2 * 64)

    def test_conflict_misses_with_direct_mapped(self):
        cache = make_cache(sets=2, assoc=1)
        # Lines 0 and 2 map to set 0 -> they evict each other.
        for _ in range(4):
            cache.access(0 * 64, False)
            cache.access(2 * 64, False)
        assert cache.read_hits == 0
        assert cache.read_misses == 8

    def test_write_allocate_and_writeback(self):
        memory = MainMemory()
        cache = make_cache(sets=1, assoc=1, next_level=memory)
        cache.access(0 * 64, True)   # write miss -> fill read from memory
        cache.access(1 * 64, False)  # evicts dirty line -> writeback
        assert cache.writebacks == 1
        assert memory.write_accesses == 1
        assert memory.read_accesses == 2

    def test_replacements_counted_by_request_type(self):
        cache = make_cache(sets=1, assoc=1)
        cache.access(0 * 64, False)
        cache.access(1 * 64, True)
        cache.access(2 * 64, False)
        assert cache.write_replacements == 1
        assert cache.read_replacements == 1

    def test_sequential_miss_tracking(self):
        cache = make_cache(sets=16, assoc=2)
        addresses = np.arange(8) * 64
        cache.access_batch(addresses, np.zeros(8, dtype=bool))
        assert cache.sequential_misses == 7

    def test_batch_equals_scalar_processing(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 4096, size=300) * 4
        writes = rng.random(300) < 0.3
        batch_cache = make_cache(sets=8, assoc=2)
        scalar_cache = make_cache(sets=8, assoc=2)
        batch_cache.access_batch(addresses, writes)
        for address, write in zip(addresses, writes):
            scalar_cache.access(int(address), bool(write))
        assert batch_cache.stats_dict() == scalar_cache.stats_dict()

    def test_reset_stats_keeps_contents(self):
        cache = make_cache()
        cache.access(0x40, False)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.contains(0x40)

    def test_reset_state_flushes(self):
        cache = make_cache()
        cache.access(0x40, False)
        cache.reset_state()
        assert not cache.contains(0x40)

    def test_random_policy_still_bounded(self):
        cache = make_cache(sets=1, assoc=2, policy=ReplacementPolicy.RANDOM)
        for line in range(10):
            cache.access(line * 64, False)
        assert cache.resident_lines() <= 2

    def test_empty_batch(self):
        cache = make_cache()
        assert cache.access_lines(np.asarray([], dtype=np.int64), np.asarray([], dtype=bool)) == 0


class TestCacheProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 255), st.booleans()), min_size=1, max_size=300),
        st.sampled_from([(4, 2), (8, 1), (2, 4)]),
    )
    def test_invariants(self, accesses, geometry):
        sets, assoc = geometry
        cache = make_cache(sets=sets, assoc=assoc)
        lines = np.asarray([line for line, _ in accesses], dtype=np.int64) * 64
        writes = np.asarray([write for _, write in accesses], dtype=bool)
        cache.access_batch(lines, writes)
        # Accounting identities.
        assert cache.hits + cache.misses == len(accesses)
        assert cache.read_accesses + cache.write_accesses == len(accesses)
        assert cache.read_hits + cache.read_misses == cache.read_accesses
        assert cache.write_hits + cache.write_misses == cache.write_accesses
        # Capacity invariants.
        assert cache.resident_lines() <= sets * assoc
        distinct_lines = len({line for line, _ in accesses})
        assert cache.misses >= min(distinct_lines, 1)
        assert cache.misses >= distinct_lines - sets * assoc
        assert cache.replacements <= cache.misses

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_fits_entirely_when_small(self, lines):
        """A read-only working set smaller than the cache only cold-misses."""
        cache = make_cache(sets=16, assoc=4)  # 64 lines capacity
        array = np.asarray(lines, dtype=np.int64) * 64
        cache.access_batch(array, np.zeros(len(lines), dtype=bool))
        assert cache.read_misses == len(set(lines))


class TestMainMemory:
    def test_counts(self):
        memory = MainMemory()
        memory.access(0x0, False)
        memory.access_batch(np.asarray([64, 128]), np.asarray([True, False]))
        assert memory.read_accesses == 2
        assert memory.write_accesses == 1
        assert memory.accesses == 3

    def test_reset(self):
        memory = MainMemory()
        memory.access(0, True)
        memory.reset_stats()
        assert memory.accesses == 0

"""Tests for the tuners: random, grid, genetic and model-based."""

from __future__ import annotations

import numpy as np
import pytest

import repro.workloads  # noqa: F401
from repro.autotune import (
    GATuner,
    GridSearchTuner,
    LocalBuilder,
    ModelBasedTuner,
    RandomTuner,
    Runner,
    create_task,
    log_to_records,
    progress_callback,
)
from repro.autotune.measure import MeasureResult
from repro.codegen import Target


class AnalyticRunner(Runner):
    """A fast fake runner whose cost is a deterministic function of the config.

    Using an analytic cost keeps tuner tests fast and lets them check that the
    search actually minimises something.
    """

    def __init__(self):
        super().__init__(n_parallel=1)
        self.calls = 0

    @staticmethod
    def cost_of(config) -> float:
        features = config.features()
        target = np.linspace(1.0, 3.0, num=len(features))
        return float(np.sum((np.asarray(features) - target) ** 2) + 0.01)

    def run(self, measure_inputs, build_results):
        self.calls += len(measure_inputs)
        return [
            MeasureResult(costs=[self.cost_of(mi.config)], all_cost=0.0) for mi in measure_inputs
        ]


@pytest.fixture(scope="module")
def task():
    return create_task("matmul", (16, 16, 16), Target.riscv())


def best_possible(task, sample=400):
    rng = np.random.default_rng(0)
    configs = task.config_space.sample(sample, rng)
    return min(AnalyticRunner.cost_of(c) for c in configs)


class TestRandomTuner:
    def test_finds_reasonable_config(self, task):
        tuner = RandomTuner(task, seed=0)
        tuner.tune(n_trial=40, runner=AnalyticRunner(), builder=LocalBuilder(), batch_size=8)
        assert tuner.best_config is not None
        assert np.isfinite(tuner.best_cost)
        assert tuner.trial_count == 40

    def test_no_duplicate_visits(self, task):
        tuner = RandomTuner(task, seed=0)
        tuner.tune(n_trial=30, runner=AnalyticRunner(), batch_size=10)
        assert len(tuner.visited) == 30

    def test_early_stopping(self, task):
        tuner = RandomTuner(task, seed=0)
        tuner.tune(n_trial=200, runner=AnalyticRunner(), batch_size=10, early_stopping=20)
        assert tuner.trial_count < 200


class TestGridSearchTuner:
    def test_enumerates_in_order(self, task):
        tuner = GridSearchTuner(task)
        batch = tuner.next_batch(5)
        assert [config.index for config in batch] == [0, 1, 2, 3, 4]

    def test_tune_small_budget(self, task):
        tuner = GridSearchTuner(task)
        tuner.tune(n_trial=12, runner=AnalyticRunner(), batch_size=6)
        assert tuner.trial_count == 12
        assert len(tuner.visited) == 12


class TestGATuner:
    def test_improves_over_random_start(self, task):
        runner = AnalyticRunner()
        tuner = GATuner(task, population_size=16, seed=1)
        tuner.tune(n_trial=96, runner=runner, batch_size=16)
        assert tuner.best_cost <= best_possible(task) * 5

    def test_population_pruning(self, task):
        tuner = GATuner(task, population_size=4, seed=1)
        tuner.tune(n_trial=64, runner=AnalyticRunner(), batch_size=16)
        assert len(tuner._fitness) <= 8 * tuner.population_size

    def test_invalid_elite_fraction(self, task):
        with pytest.raises(ValueError):
            GATuner(task, elite_fraction=0.0)

    def test_genome_round_trip(self, task):
        tuner = GATuner(task, seed=0)
        for index in (0, 7, 101):
            genome = tuner._index_to_genome(index)
            assert tuner._genome_to_index(genome) == index


class TestModelBasedTuner:
    def test_model_guides_search(self, task):
        runner = AnalyticRunner()
        tuner = ModelBasedTuner(task, plan_size=16, candidate_pool=64, seed=0)
        tuner.tune(n_trial=80, runner=runner, batch_size=16)
        assert tuner.best_cost <= best_possible(task) * 5
        assert tuner.predicted_cost(task.config_space.get(0)) is not None

    def test_predicted_cost_none_before_fit(self, task):
        tuner = ModelBasedTuner(task, plan_size=64, seed=0)
        assert tuner.predicted_cost(task.config_space.get(0)) is None


class TestCallbacks:
    def test_log_to_records(self, task):
        records = []
        tuner = RandomTuner(task, seed=0)
        tuner.tune(
            n_trial=8,
            runner=AnalyticRunner(),
            batch_size=4,
            callbacks=[log_to_records(records)],
        )
        assert len(records) == 8
        assert {"task", "config_index", "cost"} <= set(records[0])

    def test_progress_callback_prints(self, task, capsys):
        printed = []
        tuner = RandomTuner(task, seed=0)
        tuner.tune(
            n_trial=8,
            runner=AnalyticRunner(),
            batch_size=4,
            callbacks=[progress_callback(prefix="t", printer=printed.append)],
        )
        assert len(printed) == 2
        assert "best cost" in printed[0]

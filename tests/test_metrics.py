"""Tests for the evaluation metrics (Equations 5-7) and the speedup model (Equation 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    SpeedupModel,
    break_even_parallelism,
    e_top1,
    estimate_simulation_seconds,
    evaluate_predictions,
    native_benchmarking_seconds,
    prediction_order,
    quality_scores,
    r_top1,
)


class TestPredictionOrder:
    def test_orders_by_score(self):
        times = [3.0, 1.0, 2.0]
        scores = [0.9, 0.1, 0.5]
        np.testing.assert_array_equal(prediction_order(times, scores), [1.0, 2.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            prediction_order([], [])
        with pytest.raises(ValueError):
            prediction_order([1.0, 2.0], [0.1])
        with pytest.raises(ValueError):
            prediction_order([1.0, -2.0], [0.1, 0.2])


class TestEtop1:
    def test_perfect_prediction(self):
        times = [1.0, 2.0, 3.0, 4.0]
        scores = [0.1, 0.2, 0.3, 0.4]
        assert e_top1(times, scores) == pytest.approx(0.0)

    def test_known_error(self):
        times = [1.0, 2.0, 4.0]
        scores = [0.3, 0.1, 0.2]  # predictor ranks the 2.0 s sample first
        assert e_top1(times, scores) == pytest.approx(50.0)

    def test_scale_invariant_in_scores(self):
        times = [1.0, 2.0, 4.0]
        assert e_top1(times, [3.0, 1.0, 2.0]) == e_top1(times, [300.0, 100.0, 200.0])


class TestRtop1:
    def test_perfect_prediction_is_first_position(self):
        times = [1.0, 2.0, 3.0, 4.0]
        scores = [0.1, 0.2, 0.3, 0.4]
        assert r_top1(times, scores) == pytest.approx(25.0)  # 1 of 4

    def test_worst_case_is_100(self):
        times = [1.0, 2.0, 3.0, 4.0]
        scores = [0.9, 0.2, 0.3, 0.05]  # fastest sample ranked last
        assert r_top1(times, scores) == pytest.approx(100.0)

    def test_paper_interpretation(self):
        # "Rtop1 = 3 % means the fastest sample was ranked within the top 3 %".
        times = [1.0] + [2.0] * 99
        scores = list(range(100))
        scores[0], scores[2] = scores[2], scores[0]  # fastest sample at position 3
        assert r_top1(times, scores) == pytest.approx(3.0)

    @given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=50, unique=True))
    def test_bounds(self, times):
        rng = np.random.default_rng(1)
        scores = rng.random(len(times))
        value = r_top1(times, scores)
        assert 100.0 / len(times) <= value <= 100.0


class TestQualityScores:
    def test_monotone_order_is_zero(self):
        times = [1.0, 2.0, 3.0, 4.0]
        scores = [1, 2, 3, 4]
        assert quality_scores(times, scores) == (0.0, 0.0)

    def test_inversion_penalised(self):
        times = [1.0, 2.0, 3.0, 4.0]
        scores = [1, 3, 2, 4]  # swaps the middle pair
        q_low, q_high = quality_scores(times, scores)
        assert q_low > 0.0 or q_high > 0.0

    def test_penalty_magnitude(self):
        # Prediction order: 2.0, 1.0 -> penalty (2-1)/2 = 0.5, scaled by 100/2.
        q_low, q_high = quality_scores([2.0, 1.0], [0.1, 0.2])
        assert q_low == pytest.approx(50.0 * 0.5)

    @given(
        st.lists(st.floats(0.1, 10.0), min_size=4, max_size=40),
    )
    def test_non_negative_and_bounded(self, times):
        rng = np.random.default_rng(0)
        scores = rng.random(len(times))
        q_low, q_high = quality_scores(times, scores)
        assert 0.0 <= q_low <= 100.0
        assert 0.0 <= q_high <= 100.0


class TestEvaluatePredictions:
    def test_returns_all_metrics(self):
        metrics = evaluate_predictions([1.0, 2.0, 3.0, 4.0], [4, 3, 2, 1])
        data = metrics.as_dict()
        assert set(data) == {"Etop1", "Qlow", "Qhigh", "Rtop1"}
        assert data["Rtop1"] == pytest.approx(100.0)

    def test_perfect_prediction_all_best(self):
        times = np.linspace(1, 2, 10)
        metrics = evaluate_predictions(times, np.arange(10))
        assert metrics.e_top1 == 0.0
        assert metrics.r_top1 == pytest.approx(10.0)
        assert metrics.q_low == 0.0 and metrics.q_high == 0.0


class TestSpeedup:
    def test_native_benchmarking_cost(self):
        assert native_benchmarking_seconds(0.5, n_exe=15, cooldown_s=1.0) == pytest.approx(22.5)

    def test_equation4(self):
        # t_sim = 100 s, native = (1 + 0.1) * 15 = 16.5 s -> K = ceil(6.06) = 7
        assert break_even_parallelism(100.0, 0.1) == 7

    def test_k_at_least_one(self):
        assert break_even_parallelism(0.001, 10.0) == 1

    def test_simulation_time_estimate(self):
        assert estimate_simulation_seconds(5e6, simulator_mips=5.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            native_benchmarking_seconds(-1.0)
        with pytest.raises(ValueError):
            break_even_parallelism(0.0, 1.0)
        with pytest.raises(ValueError):
            estimate_simulation_seconds(0.0)
        with pytest.raises(ValueError):
            SpeedupModel().k_range([])

    def test_model_range(self):
        model = SpeedupModel(simulator_mips=5.0)
        workloads = [(1e9, 0.05), (5e8, 0.5)]
        k_min, k_max = model.k_range(workloads)
        assert k_min <= k_max
        assert k_min == model.k_for(5e8, 0.5)

    def test_slower_board_needs_fewer_simulators(self):
        """The paper's observation: K is smallest for the slow RISC-V board."""
        model = SpeedupModel(simulator_mips=5.0)
        fast_board_k = model.k_for(1e9, 0.01)   # x86-like short native run time
        slow_board_k = model.k_for(1e9, 0.5)    # RISC-V-like long native run time
        assert slow_board_k < fast_board_k

    @given(st.floats(1e5, 1e10), st.floats(1e-4, 10.0))
    def test_k_matches_formula(self, instructions, t_ref):
        model = SpeedupModel(simulator_mips=5.0)
        expected = max(
            1, math.ceil((instructions / 5e6) / ((1.0 + t_ref) * 15))
        )
        assert model.k_for(instructions, t_ref) == expected

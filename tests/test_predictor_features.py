"""Tests for feature extraction, group normalisation and inference windows."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.predictor import (
    DynamicWindow,
    FeatureCache,
    FeatureExtractor,
    GroupStatistics,
    StaticWindow,
)


def fake_stats(loads=100.0, stores=50.0, branches=20.0, total=1000.0, l1d_hits=90.0,
               l1d_misses=10.0):
    return {
        "cpu.num_loads": loads,
        "cpu.num_stores": stores,
        "cpu.num_branches": branches,
        "cpu.num_insts": total,
        "l1d.read_hits": l1d_hits,
        "l1d.read_misses": l1d_misses,
        "l1d.read_accesses": l1d_hits + l1d_misses,
        "l1d.read_replacements": 2.0,
        "l1d.write_hits": 40.0,
        "l1d.write_misses": 10.0,
        "l1d.write_accesses": 50.0,
        "l1d.write_replacements": 1.0,
    }


class TestFeatureExtractor:
    def test_instruction_mix_ratios(self):
        extractor = FeatureExtractor()
        raw = extractor.raw_features(fake_stats())
        assert raw["load_ratio"] == pytest.approx(0.1)
        assert raw["store_ratio"] == pytest.approx(0.05)
        assert raw["branch_ratio"] == pytest.approx(0.02)
        assert raw["total_instructions"] == pytest.approx(1000.0)

    def test_cache_ratios_equation1(self):
        extractor = FeatureExtractor()
        raw = extractor.raw_features(fake_stats())
        assert raw["l1d_read_hits_per_read_access"] == pytest.approx(0.9)
        assert raw["l1d_write_misses_per_write_access"] == pytest.approx(0.2)

    def test_missing_levels_yield_zero(self):
        extractor = FeatureExtractor()
        raw = extractor.raw_features(fake_stats())
        assert raw["l3_read_hits_per_read_access"] == 0.0

    def test_empty_stats_all_zero(self):
        extractor = FeatureExtractor()
        raw = extractor.raw_features({})
        assert all(value == 0.0 for value in raw.values())

    def test_vector_layout_and_names(self):
        extractor = FeatureExtractor()
        means = extractor.group_means([fake_stats(), fake_stats(loads=200)])
        vector = extractor.vector(fake_stats(), means)
        names = extractor.vector_names()
        assert vector.shape[0] == len(names)
        # The raw (un-normalised) block excludes the absolute instruction count.
        assert "total_instructions" not in names[: len(names) // 2]
        assert "total_instructions_norm" in names

    def test_group_normalisation_equation2(self):
        extractor = FeatureExtractor()
        stats_a = fake_stats(loads=100)
        stats_b = fake_stats(loads=300)
        means = extractor.group_means([stats_a, stats_b])
        vector = extractor.vector(stats_a, means)
        names = extractor.vector_names()
        load_norm = vector[names.index("load_ratio_norm")]
        # load ratios are 0.1 and 0.3 -> mean 0.2 -> (0.1 - 0.2)/0.2 = -0.5
        assert load_norm == pytest.approx(-0.5)

    def test_group_means_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureExtractor().group_means([])

    @given(st.floats(1e-3, 1e3), st.floats(1e-3, 1e3))
    def test_normalised_mean_is_zero(self, a, b):
        extractor = FeatureExtractor()
        stats = [fake_stats(loads=a), fake_stats(loads=b)]
        means = extractor.group_means(stats)
        names = extractor.vector_names()
        idx = names.index("load_ratio_norm")
        normalized = [extractor.vector(s, means)[idx] for s in stats]
        assert np.mean(normalized) == pytest.approx(0.0, abs=1e-9)


class TestGroupStatistics:
    def test_time_normalisation(self):
        extractor = FeatureExtractor()
        stats = GroupStatistics.from_samples(extractor, [fake_stats()] * 2, [1.0, 3.0])
        assert stats.time_mean == pytest.approx(2.0)
        assert stats.normalize_time(3.0) == pytest.approx(0.5)
        assert stats.normalize_time(1.0) == pytest.approx(-0.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            GroupStatistics.from_samples(FeatureExtractor(), [fake_stats()], [1.0, 2.0])


class TestWindows:
    def test_static_window_freezes_after_fill(self):
        extractor = FeatureExtractor()
        window = StaticWindow(extractor, window_size=2)
        window.observe(fake_stats(loads=100))
        assert not window.ready
        window.observe(fake_stats(loads=300))
        assert window.ready
        frozen = window.means()["load_ratio"]
        window.observe(fake_stats(loads=900))
        assert window.means()["load_ratio"] == pytest.approx(frozen)

    def test_static_window_partial_estimate(self):
        window = StaticWindow(FeatureExtractor(), window_size=10)
        window.observe(fake_stats(loads=100))
        assert window.means()["load_ratio"] == pytest.approx(0.1)

    def test_static_window_requires_positive_size(self):
        with pytest.raises(ValueError):
            StaticWindow(FeatureExtractor(), window_size=0)

    def test_dynamic_window_tracks_running_mean(self):
        window = DynamicWindow(FeatureExtractor())
        assert not window.ready
        window.observe(fake_stats(loads=100))
        window.observe(fake_stats(loads=300))
        assert window.ready
        assert window.means()["load_ratio"] == pytest.approx(0.2)
        window.observe(fake_stats(loads=200))
        assert window.means()["load_ratio"] == pytest.approx(0.2, abs=1e-6)

    def test_empty_windows_return_empty_means(self):
        assert DynamicWindow(FeatureExtractor()).means() == {}
        assert StaticWindow(FeatureExtractor(), 4).means() == {}


class TestFeatureCache:
    def test_digest_hits_are_bit_identical(self):
        cache = FeatureCache(maxsize=4)
        extractor = FeatureExtractor(cache=cache)
        stats = fake_stats()
        first = extractor.raw_features(stats, digest="d1")
        second = extractor.raw_features(stats, digest="d1")
        assert first == second == extractor.raw_features(stats)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_no_digest_bypasses_the_cache(self):
        cache = FeatureCache()
        extractor = FeatureExtractor(cache=cache)
        extractor.raw_features(fake_stats())
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_returned_dicts_are_independent_copies(self):
        cache = FeatureCache()
        extractor = FeatureExtractor(cache=cache)
        first = extractor.raw_features(fake_stats(), digest="d1")
        first["load_ratio"] = -1.0
        assert extractor.raw_features(fake_stats(), digest="d1")["load_ratio"] != -1.0

    def test_levels_are_part_of_the_key(self):
        cache = FeatureCache()
        full = FeatureExtractor(cache=cache)
        l1_only = FeatureExtractor(cache_levels=("l1d",), cache=cache)
        stats = fake_stats()
        assert full.raw_features(stats, digest="d1") != l1_only.raw_features(stats, digest="d1")
        assert len(cache) == 2

    def test_lru_eviction_at_capacity(self):
        cache = FeatureCache(maxsize=2)
        extractor = FeatureExtractor(cache=cache)
        for digest in ("a", "b", "c"):
            extractor.raw_features(fake_stats(), digest=digest)
        assert len(cache) == 2
        assert cache.get("a", extractor.cache_levels) is None  # evicted first
        assert cache.get("c", extractor.cache_levels) is not None

    def test_clear_resets_counters(self):
        cache = FeatureCache()
        extractor = FeatureExtractor(cache=cache)
        extractor.raw_features(fake_stats(), digest="d1")
        extractor.raw_features(fake_stats(), digest="d1")
        cache.clear()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            FeatureCache(maxsize=0)

    def test_windows_route_digests_through_the_cache(self):
        cache = FeatureCache()
        extractor = FeatureExtractor(cache=cache)
        dynamic = DynamicWindow(extractor)
        uncached = DynamicWindow(FeatureExtractor(cache=FeatureCache()))
        for i in range(3):
            stats = fake_stats(loads=100.0 * (i % 2 + 1))
            dynamic.observe(stats, digest=f"d{i % 2}")
            uncached.observe(stats)
        assert dynamic.means() == uncached.means()
        assert cache.hits == 1  # the repeated digest

    def test_vector_from_raw_matches_vector(self):
        extractor = FeatureExtractor(cache=FeatureCache())
        stats = fake_stats()
        means = extractor.group_means([stats, fake_stats(loads=200.0)])
        raw = extractor.raw_features(stats)
        assert np.array_equal(
            extractor.vector(stats, means), extractor.vector_from_raw(raw, means)
        )

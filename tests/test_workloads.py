"""Tests for the workload definitions (Listing 5, Table II)."""

from __future__ import annotations

import pytest

from repro.codegen import Target, build_program
from repro.te.lower import lower
from repro.te.schedule import create_schedule
from repro.workloads import (
    Conv2DParams,
    MatmulParams,
    TABLE2_GROUPS,
    TABLE2_ROWS,
    conv2d_bias_relu_workload,
    group_params,
    matmul_workload,
    scaled_group_params,
)


class TestConv2DParams:
    def test_output_spatial(self):
        params = Conv2DParams(1, 224, 224, 64, 3, 7, 7, (2, 2), (3, 3))
        assert params.output_spatial == (112, 112)

    def test_macs(self):
        params = Conv2DParams(1, 8, 8, 4, 3, 3, 3, (1, 1), (1, 1))
        assert params.macs() == 8 * 8 * 4 * 3 * 3 * 3

    def test_as_args_round_trip(self):
        params = group_params(1)
        tensors = conv2d_bias_relu_workload(*params.as_args())
        assert len(tensors) == 4


class TestWorkloadFunctions:
    def test_conv_workload_returns_listing5_arguments(self):
        ifm, weights, bias, ofm = conv2d_bias_relu_workload(1, 8, 8, 4, 3, 3, 3, (1, 1), (1, 1))
        assert ifm.shape == (1, 3, 8, 8)
        assert weights.shape == (4, 3, 3, 3)
        assert bias.shape == (1, 4, 1, 1)
        assert ofm.shape == (1, 4, 8, 8)
        assert ofm.op.name == "relu"

    def test_matmul_workload(self):
        a, b, c = matmul_workload(4, 5, 6)
        assert c.shape == (4, 6)
        assert MatmulParams(4, 5, 6).macs() == 120

    def test_default_schedule_lowers_and_builds(self):
        tensors = conv2d_bias_relu_workload(1, 8, 8, 4, 3, 3, 3, (1, 1), (1, 1))
        schedule = create_schedule(tensors[-1])
        func = lower(schedule, tensors, name="default")
        program = build_program(func, Target.arm())
        assert program.total_instructions() > 0


class TestTable2:
    def test_five_groups(self):
        assert sorted(TABLE2_GROUPS) == [0, 1, 2, 3, 4]
        assert len(TABLE2_ROWS) == 5

    def test_group0_matches_paper(self):
        params = group_params(0)
        assert (params.h, params.w, params.co, params.ci) == (224, 224, 64, 3)
        assert (params.kh, params.kw) == (7, 7)
        assert params.stride == (2, 2) and params.padding == (3, 3)

    def test_group4_matches_paper_verbatim(self):
        params = group_params(4)
        assert (params.h, params.w, params.co, params.ci) == (14, 24, 512, 256)

    def test_unknown_group(self):
        with pytest.raises(KeyError):
            group_params(7)

    @pytest.mark.parametrize("group_id", [0, 1, 2, 3, 4])
    def test_scaled_groups_are_valid_convolutions(self, group_id):
        params = scaled_group_params(group_id, scale=0.2)
        oh, ow = params.output_spatial
        assert oh > 0 and ow > 0
        assert params.kh == group_params(group_id).kh
        assert params.stride == group_params(group_id).stride

    def test_scale_one_returns_paper_shapes(self):
        assert scaled_group_params(2, 1.0) == group_params(2)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            scaled_group_params(0, 0.0)
        with pytest.raises(ValueError):
            scaled_group_params(0, 1.5)

    def test_scaling_reduces_work(self):
        assert scaled_group_params(1, 0.25).macs() < group_params(1).macs()

"""Tests for targets, the abstract program representation and code generation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen import (
    LinearPredicate,
    Target,
    build_program,
    target_from_string,
)
from repro.codegen.isa import ISA_SPECS, InstructionCategory as IC
from repro.codegen.program import predicate_fraction
from tests.conftest import make_conv_func, make_matmul_func


class TestTargets:
    def test_shorthand_names(self):
        assert Target.from_name("x86").name == "x86"
        assert Target.from_name("aarch64").name == "arm"
        assert Target.from_name("rv64").name == "riscv"

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            Target.from_name("sparc")

    def test_llvm_triple_parsing(self):
        assert target_from_string("llvm").name == "x86"
        assert target_from_string("llvm -mtriple=riscv64-unknown-linux-gnu").name == "riscv"
        assert target_from_string("llvm -mtriple=aarch64-unknown-linux-gnu").name == "arm"

    def test_invalid_triple(self):
        with pytest.raises(ValueError):
            target_from_string("llvm -mtriple=powerpc64-unknown-linux-gnu")

    def test_vector_lanes(self):
        assert ISA_SPECS["x86"].vector_lanes(4) == 8
        assert ISA_SPECS["arm"].vector_lanes(4) == 4
        assert ISA_SPECS["riscv"].vector_lanes(4) == 0


class TestPredicates:
    def test_evaluate(self):
        predicate = LinearPredicate(coeffs={"i": 1}, const=-3, op="lt")  # i < 3
        env = {"i": np.arange(6)}
        np.testing.assert_array_equal(predicate.evaluate(env), [True] * 3 + [False] * 3)

    def test_invalid_op(self):
        with pytest.raises(ValueError):
            LinearPredicate(coeffs={}, const=0, op="lte")

    def test_fraction_exact(self):
        predicate = LinearPredicate(coeffs={"i": 1}, const=-3, op="lt")
        fraction = predicate_fraction([predicate], {"i": 6})
        assert fraction == pytest.approx(0.5)

    def test_fraction_joint(self):
        p1 = LinearPredicate(coeffs={"i": 1}, const=-2, op="lt")  # i < 2
        p2 = LinearPredicate(coeffs={"j": 1}, const=-2, op="ge")  # j >= 2
        fraction = predicate_fraction([p1, p2], {"i": 4, "j": 4})
        assert fraction == pytest.approx(0.25)

    def test_fraction_no_predicates(self):
        assert predicate_fraction([], {"i": 4}) == 1.0

    @given(st.integers(1, 30), st.integers(0, 30))
    def test_fraction_threshold(self, extent, threshold):
        predicate = LinearPredicate(coeffs={"i": 1}, const=-threshold, op="lt")
        fraction = predicate_fraction([predicate], {"i": extent})
        assert fraction == pytest.approx(min(threshold, extent) / extent)


class TestProgramStructure:
    def test_buffers_are_laid_out_disjoint(self, conv_program_x86):
        buffers = sorted(conv_program_x86.buffers, key=lambda b: b.base_address)
        for first, second in zip(buffers, buffers[1:]):
            assert first.base_address + first.size_bytes <= second.base_address

    def test_buffer_lookup(self, conv_program_x86):
        assert conv_program_x86.buffer_by_name("ifm").element_bytes == 4
        with pytest.raises(KeyError):
            conv_program_x86.buffer_by_name("nonexistent")

    def test_instruction_counts_positive(self, conv_program_x86):
        counts = conv_program_x86.instruction_counts()
        assert counts[IC.BRANCH] > 0
        assert counts[IC.INT_ALU] > 0
        assert conv_program_x86.total_instructions() == pytest.approx(sum(counts.values()))

    def test_memory_trace_addresses_inside_buffers(self, conv_program_x86):
        buffers = conv_program_x86.buffers
        for addresses, is_write in conv_program_x86.memory_trace(max_accesses=5000):
            assert addresses.size == is_write.size
            for address in addresses[:64]:
                assert any(b.contains(int(address)) for b in buffers)

    def test_memory_trace_max_accesses(self, conv_program_x86):
        total = sum(a.size for a, _ in conv_program_x86.memory_trace(max_accesses=1234))
        assert total <= 1234

    def test_memory_trace_sampling_reduces_volume(self, conv_program_x86):
        full = sum(a.size for a, _ in conv_program_x86.memory_trace(chunk_iterations=256))
        sampled = sum(
            a.size
            for a, _ in conv_program_x86.memory_trace(chunk_iterations=256, sample_fraction=0.3)
        )
        assert 0 < sampled < full

    def test_invalid_sample_fraction(self, conv_program_x86):
        with pytest.raises(ValueError):
            list(conv_program_x86.memory_trace(sample_fraction=0.0))

    def test_perfect_nests_cover_stages(self, conv_program_x86):
        nests = conv_program_x86.perfect_nests()
        assert len(nests) >= 3  # conv init, conv main, bias_add, relu
        for nest in nests:
            assert nest.iterations >= 1

    def test_code_footprint_positive(self, conv_program_x86):
        assert conv_program_x86.code_footprint_bytes() > 0


class TestCodegenSemantics:
    def test_fma_count_matches_macs_on_scalar_isa(self):
        func, _ = make_matmul_func(n=4, l=5, m=6)
        program = build_program(func, Target.riscv())
        counts = program.instruction_counts()
        assert counts[IC.FP_FMA] == pytest.approx(4 * 5 * 6)

    def test_store_count_matches_output_size_scalar(self):
        func, _ = make_matmul_func(n=4, l=5, m=6)
        program = build_program(func, Target.riscv())
        counts = program.instruction_counts()
        # init stores + one final store per output element (accumulator is
        # register-promoted across the innermost k loop).
        assert counts[IC.STORE] == pytest.approx(2 * 4 * 6)

    def test_vectorization_reduces_instructions(self):
        scalar_func, _ = make_matmul_func(n=8, l=8, m=16, tile_x=8, vectorize=False, name="s")
        vector_func, _ = make_matmul_func(n=8, l=8, m=16, tile_x=8, vectorize=True, name="v")
        scalar = build_program(scalar_func, Target.x86()).total_instructions()
        vector = build_program(vector_func, Target.x86()).total_instructions()
        assert vector < scalar

    def test_vectorize_ignored_without_simd(self):
        vector_func, _ = make_matmul_func(n=8, l=8, m=16, tile_x=8, vectorize=True, name="v2")
        scalar_func, _ = make_matmul_func(n=8, l=8, m=16, tile_x=8, vectorize=False, name="s2")
        riscv_vec = build_program(vector_func, Target.riscv()).instruction_counts()
        riscv_scalar = build_program(scalar_func, Target.riscv()).instruction_counts()
        assert riscv_vec[IC.VEC_FP] == 0
        assert riscv_vec[IC.FP_FMA] == riscv_scalar[IC.FP_FMA]

    def test_unroll_removes_loop_overhead(self):
        plain_func, _ = make_matmul_func(n=4, l=4, m=8, name="plain")
        unrolled_func, _ = make_matmul_func(n=4, l=4, m=8, unroll=True, name="unrolled")
        plain = build_program(plain_func, Target.riscv()).instruction_counts()
        unrolled = build_program(unrolled_func, Target.riscv()).instruction_counts()
        assert unrolled[IC.BRANCH] < plain[IC.BRANCH]

    def test_isa_differences(self):
        func, _ = make_conv_func()
        totals = {
            name: build_program(func, Target.from_name(name)).total_instructions()
            for name in ("x86", "arm", "riscv")
        }
        assert totals["x86"] < totals["arm"] < totals["riscv"]

    def test_trace_volume_is_schedule_dependent(self):
        small_func, _ = make_matmul_func(n=16, l=16, m=16, tile_k=2, name="k2")
        large_func, _ = make_matmul_func(n=16, l=16, m=16, name="k16")
        small = build_program(small_func, Target.riscv())
        large = build_program(large_func, Target.riscv())
        count_small = sum(a.size for a, _ in small.memory_trace())
        count_large = sum(a.size for a, _ in large.memory_trace())
        # Splitting the reduction loop forces extra accumulator traffic.
        assert count_small > count_large

    def test_scalar_replacement_can_be_disabled(self):
        func, _ = make_matmul_func(n=4, l=8, m=4, name="sr")
        promoted = build_program(func, Target.riscv())
        unpromoted = build_program(func, Target.riscv(enable_scalar_replacement=False))
        assert (
            unpromoted.instruction_counts()[IC.LOAD] > promoted.instruction_counts()[IC.LOAD]
        )

    def test_trace_matches_analytic_memory_instructions_without_vector(self):
        func, _ = make_matmul_func(n=5, l=3, m=4, name="exact")
        program = build_program(func, Target.riscv())
        counts = program.instruction_counts()
        analytic = counts[IC.LOAD] + counts[IC.STORE]
        traced = sum(a.size for a, _ in program.memory_trace())
        assert traced == pytest.approx(analytic)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 10), st.integers(2, 10), st.integers(2, 10))
    def test_fma_scales_with_shape(self, n, l, m):
        func, _ = make_matmul_func(n=n, l=l, m=m, name=f"mm{n}{l}{m}")
        counts = build_program(func, Target.riscv()).instruction_counts()
        assert counts[IC.FP_FMA] == pytest.approx(n * l * m)

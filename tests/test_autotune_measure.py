"""Tests for builders, runners (incl. the SimulatorRunner) and the registry."""

from __future__ import annotations

import pytest

import repro.workloads  # noqa: F401
from repro.autotune import (
    LocalBuilder,
    LocalRunner,
    MeasureErrorNo,
    MeasureInput,
    RunnerStatsCollector,
    SimulatorRunner,
    create_task,
    get_func,
    override_func,
    register_func,
)
from repro.autotune.measure import measure_batch
from repro.autotune.registry import remove_func
from repro.codegen import Target
from repro.hardware import TargetBoard
from repro.sim import TraceOptions

TRACE = TraceOptions(max_accesses=15_000)


@pytest.fixture(scope="module")
def matmul_task():
    return create_task("matmul", (8, 8, 8), Target.arm())


@pytest.fixture(scope="module")
def matmul_inputs(matmul_task):
    return [MeasureInput(matmul_task, matmul_task.config_space.get(i)) for i in (0, 1, 2)]


@pytest.fixture(scope="module")
def board():
    return TargetBoard("arm", trace_options=TRACE, seed=0)


class TestRegistry:
    def test_register_and_get(self):
        register_func("test.fn", lambda: 42)
        assert get_func("test.fn")() == 42
        remove_func("test.fn")

    def test_double_registration_requires_override(self):
        register_func("test.fn2", lambda: 1)
        with pytest.raises(ValueError):
            register_func("test.fn2", lambda: 2)
        override_func("test.fn2", lambda: 2)
        assert get_func("test.fn2")() == 2
        remove_func("test.fn2")

    def test_get_missing_returns_default(self):
        assert get_func("does.not.exist") is None


class TestBuilder:
    def test_build_success(self, matmul_inputs):
        results = LocalBuilder().build(matmul_inputs)
        assert all(result.ok for result in results)
        assert all(result.program is not None for result in results)

    def test_build_failure_is_captured(self, matmul_task):
        class BrokenConfig:
            index = -1

            def __getattr__(self, name):
                raise ValueError("broken configuration")

        results = LocalBuilder().build([MeasureInput(matmul_task, BrokenConfig())])
        assert not results[0].ok
        assert results[0].error_no in (
            MeasureErrorNo.COMPILE_ERROR,
            MeasureErrorNo.INSTANTIATION_ERROR,
        )


class TestLocalRunner:
    def test_costs_are_repetition_times(self, matmul_inputs, board):
        results = measure_batch(LocalBuilder(), LocalRunner(board), matmul_inputs)
        assert all(result.ok for result in results)
        assert all(len(result.costs) == 15 for result in results)
        assert all(result.extra["t_ref"] > 0 for result in results)

    def test_failed_build_propagates(self, matmul_inputs, board):
        builds = LocalBuilder().build(matmul_inputs)
        builds[1].program = None
        builds[1].error_no = MeasureErrorNo.COMPILE_ERROR
        results = LocalRunner(board).run(matmul_inputs, builds)
        assert results[0].ok and not results[1].ok
        assert results[1].mean_cost == float("inf")


class TestSimulatorRunner:
    def test_default_score_is_instruction_count(self, matmul_inputs):
        runner = SimulatorRunner("arm", trace_options=TRACE)
        results = measure_batch(LocalBuilder(), runner, matmul_inputs)
        assert all(result.ok for result in results)
        assert all(result.costs[0] > 0 for result in results)
        assert len(runner.simulation_results) == len(matmul_inputs)

    def test_custom_score_function(self, matmul_inputs):
        runner = SimulatorRunner(
            "arm",
            trace_options=TRACE,
            score_function=lambda sim, inp: 123.0,
        )
        results = measure_batch(LocalBuilder(), runner, matmul_inputs)
        assert all(result.costs == [123.0] for result in results)

    def test_score_function_failure_is_runtime_error(self, matmul_inputs):
        def bad_score(sim, inp):
            raise RuntimeError("no score")

        runner = SimulatorRunner("arm", trace_options=TRACE, score_function=bad_score)
        results = measure_batch(LocalBuilder(), runner, matmul_inputs)
        assert all(result.error_no == MeasureErrorNo.RUNTIME_ERROR for result in results)

    def test_registry_override_is_used(self, matmul_inputs):
        calls = {}

        def fake_simulator_run(programs, arch, n_parallel):
            calls["count"] = len(programs)
            from repro.sim import Simulator

            simulator = Simulator(arch, trace_options=TRACE)
            return [simulator.run(p) for p in programs]

        override_func("autotvm.simulator_run", fake_simulator_run)
        try:
            runner = SimulatorRunner("arm", trace_options=TRACE)
            results = measure_batch(LocalBuilder(), runner, matmul_inputs)
            assert calls["count"] == len(matmul_inputs)
            assert all(result.ok for result in results)
        finally:
            remove_func("autotvm.simulator_run")


class TestRunnerStatsCollector:
    def test_collects_paired_records(self, matmul_inputs, board):
        collector = RunnerStatsCollector(board, trace_options=TRACE)
        results = measure_batch(LocalBuilder(), collector, matmul_inputs)
        assert all(result.ok for result in results)
        assert len(collector.records) == len(matmul_inputs)
        measure_input, simulation, record = collector.records[0]
        assert simulation.stats.get("cpu.num_insts") > 0
        assert record.median_s > 0

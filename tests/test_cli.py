"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.arch == "riscv"
        assert args.group == 1
        assert args.command == "simulate"

    def test_table_arch_choice_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "--arch", "sparc"])

    def test_eq4_has_own_options(self):
        args = build_parser().parse_args(["eq4", "--scale", "0.5", "--count", "2"])
        assert args.scale == 0.5 and args.count == 2


class TestCommands:
    def test_simulate_prints_table(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--arch",
                "riscv",
                "--group",
                "1",
                "--scale",
                "0.1",
                "--count",
                "2",
                "--trace",
                "8000",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "t_ref [ms]" in output
        assert "group 1 on riscv" in output

    def test_eq4_prints_ranges(self, capsys):
        exit_code = main(["eq4", "--scale", "0.12", "--count", "1", "--trace", "8000"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "K min" in output and "riscv" in output

    def test_fig5_small_run(self, capsys, tmp_path):
        exit_code = main(
            [
                "fig5",
                "--arch",
                "riscv",
                "--group",
                "2",
                "--implementations",
                "10",
                "--scale",
                "0.1",
                "--repeats",
                "1",
                "--trace",
                "8000",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "included" in output and "excluded" in output

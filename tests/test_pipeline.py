"""Tests for the end-to-end pipeline: dataset generation, experiments, phases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pipeline import (
    DatasetConfig,
    ExecutionPhase,
    ExperimentConfig,
    TrainingPhase,
    format_comparison_table,
    generalization_curves,
    generate_group_samples,
    load_or_generate_dataset,
    predictor_comparison_table,
    speedup_summary,
)
from repro.autotune.sketch.auto_scheduler import TuningOptions
from repro.sim import TraceOptions
from repro.workloads import Conv2DParams

QUICK_EXPERIMENT = ExperimentConfig(
    implementations_per_group=14, test_fraction=0.3, n_training_repeats=2, groups=(1, 2), scale=0.1
)


class TestDatasetGeneration:
    def test_generate_group_samples(self):
        samples = generate_group_samples(
            "riscv",
            group_id=1,
            params=Conv2DParams(1, 6, 6, 4, 4, 3, 3, (1, 1), (1, 1)),
            n_implementations=6,
            seed=0,
            trace_options=TraceOptions(max_accesses=10_000),
        )
        assert len(samples) == 6
        assert all(sample.group_id == 1 for sample in samples)
        assert all(sample.measured_time_s > 0 for sample in samples)
        assert all("cpu.num_insts" in sample.flat_stats for sample in samples)
        # Different schedules must differ in time for the task to be learnable.
        times = [s.measured_time_s for s in samples]
        assert max(times) > min(times)

    def test_dataset_config_keys_differ(self):
        a = DatasetConfig(arch="arm", seed=0)
        b = DatasetConfig(arch="arm", seed=1)
        assert a.cache_key() != b.cache_key()

    def test_parallel_group_generation_matches_serial(self):
        from repro.pipeline.dataset import generate_dataset

        base = dict(
            arch="riscv",
            implementations_per_group=3,
            groups=(1, 2),
            scale=0.1,
            trace_max_accesses=6_000,
            n_exe=3,
            seed=5,
        )
        serial = generate_dataset(DatasetConfig(**base, n_parallel=1))
        threaded = generate_dataset(DatasetConfig(**base, n_parallel=2, backend="threads"))
        assert [s.implementation_id for s in serial.samples] == [
            s.implementation_id for s in threaded.samples
        ]
        for left, right in zip(serial.samples, threaded.samples):
            left_stats = {k: v for k, v in left.flat_stats.items() if k != "sim.host_seconds"}
            right_stats = {k: v for k, v in right.flat_stats.items() if k != "sim.host_seconds"}
            assert left_stats == right_stats
            assert left.measured_time_s == right.measured_time_s

    def test_parallel_config_excluded_from_cache_key(self):
        serial = DatasetConfig(arch="arm", n_parallel=1)
        parallel = DatasetConfig(arch="arm", n_parallel=4, backend="processes")
        assert serial.cache_key() == parallel.cache_key()

    def test_unknown_dataset_backend_rejected(self):
        with pytest.raises(ValueError):
            DatasetConfig(arch="arm", backend="fibers")

    def test_disk_cache_round_trip(self, tmp_path):
        config = DatasetConfig(
            arch="riscv",
            implementations_per_group=4,
            groups=(1,),
            scale=0.1,
            trace_max_accesses=8_000,
            seed=3,
        )
        first = load_or_generate_dataset(config, cache_dir=tmp_path)
        assert (tmp_path / f"dataset_riscv_{config.cache_key()}.json").exists()
        second = load_or_generate_dataset(config, cache_dir=tmp_path)
        assert len(first) == len(second)
        assert first.samples[0].flat_stats == second.samples[0].flat_stats


class TestExperiments:
    def test_comparison_table_structure(self, tiny_dataset):
        rows = predictor_comparison_table(
            tiny_dataset, QUICK_EXPERIMENT, predictor_names=("linreg", "xgboost")
        )
        assert len(rows) == 2 * len(tiny_dataset.group_ids())
        for row in rows:
            assert set(row) >= {"group", "predictor", "Etop1", "Qlow", "Qhigh", "Rtop1"}
            assert 0.0 <= row["Rtop1"] <= 100.0
            assert row["Etop1"] >= 0.0
        text = format_comparison_table(rows, title="test")
        assert "linreg.Etop1" in text and "xgboost.Rtop1" in text

    def test_generalization_curves(self, tiny_dataset):
        curves = generalization_curves(
            tiny_dataset, held_out_group=2, config=QUICK_EXPERIMENT, predictor_name="linreg"
        )
        assert set(curves) == {"included", "excluded"}
        for variant in curves.values():
            assert variant["t_ref"].shape == variant["t_pred"].shape
            # t_ref is sorted ascending.
            assert np.all(np.diff(variant["t_ref"]) >= 0)
            # Both series are permutations of the same measured times.
            np.testing.assert_allclose(
                np.sort(variant["t_pred"]), variant["t_ref"], rtol=1e-12
            )

    def test_generalization_requires_group(self, tiny_dataset):
        with pytest.raises(ValueError):
            generalization_curves(tiny_dataset, held_out_group=9, config=QUICK_EXPERIMENT)

    def test_speedup_summary_shape(self):
        summary = speedup_summary(
            archs=("x86", "riscv"),
            groups=(1,),
            scale=0.15,
            n_schedules=2,
            trace_max_accesses=20_000,
        )
        assert set(summary) == {"x86", "riscv"}
        for arch, data in summary.items():
            assert 1 <= data["k_min"] <= data["k_max"]
            assert len(data["workloads"]) >= 1

    def test_experiment_presets(self):
        paper = ExperimentConfig.paper()
        quick = ExperimentConfig.quick()
        assert paper.implementations_per_group == 500
        assert paper.n_training_repeats == 10
        assert quick.implementations_per_group < paper.implementations_per_group


class TestPhases:
    def test_training_phase(self, tmp_path):
        config = DatasetConfig(
            arch="riscv",
            implementations_per_group=6,
            groups=(1,),
            scale=0.1,
            trace_max_accesses=8_000,
            seed=5,
        )
        result = TrainingPhase(config, predictor_name="linreg", cache_dir=tmp_path).run()
        assert result.predictor.fitted
        assert len(result.dataset) == 6

    def test_execution_phase_with_validation(self, tmp_path):
        config = DatasetConfig(
            arch="riscv",
            implementations_per_group=8,
            groups=(1, 2),
            scale=0.1,
            trace_max_accesses=8_000,
            seed=6,
        )
        training = TrainingPhase(config, predictor_name="linreg", cache_dir=tmp_path).run()
        phase = ExecutionPhase(
            training.predictor,
            arch="riscv",
            params=Conv2DParams(1, 6, 6, 6, 4, 3, 3, (2, 2), (1, 1)),
            trace_options=TraceOptions(max_accesses=8_000),
            options=TuningOptions(num_measure_trials=6, num_measures_per_round=3, seed=0),
        )
        result = phase.run(validate_top_percent=40.0)
        assert result.best_candidate is not None
        assert len(result.records) == 6
        assert result.validated and result.best_validated_seconds > 0

"""Tests for the predictor model families and hyper-parameter search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.predictor import (
    BayesianGPModel,
    BayesianOptimizer,
    ConstantKernel,
    DNNRegressor,
    GaussianProcessRegressor,
    GradientBoostedTrees,
    LinearRegressionModel,
    RBF,
    WhiteKernel,
    get_loss,
    grid_search,
    mae,
    make_model,
    mse,
    rss,
)


def linear_data(n=200, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 4))
    weights = np.array([1.5, -2.0, 0.5, 3.0])
    targets = features @ weights + 0.7 + noise * rng.normal(size=n)
    return features, targets


def nonlinear_data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(-2, 2, size=(n, 3))
    targets = np.sin(features[:, 0]) + features[:, 1] ** 2 - 0.5 * features[:, 2]
    return features, targets


class TestLosses:
    def test_values(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.array([1.0, 3.0, 5.0])
        assert mse(y, p) == pytest.approx(5 / 3)
        assert mae(y, p) == pytest.approx(1.0)
        assert rss(y, p) == pytest.approx(5.0)

    def test_lookup(self):
        assert get_loss("MAE") is mae
        with pytest.raises(KeyError):
            get_loss("huber")


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        features, targets = linear_data()
        model = LinearRegressionModel().fit(features, targets)
        np.testing.assert_allclose(model.coefficients_, [1.5, -2.0, 0.5, 3.0], atol=1e-6)
        assert model.intercept_ == pytest.approx(0.7, abs=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            LinearRegressionModel().predict(np.zeros((1, 3)))

    def test_collinear_features_do_not_blow_up(self):
        features, targets = linear_data()
        doubled = np.hstack([features, features])
        predictions = LinearRegressionModel().fit(doubled, targets).predict(doubled)
        assert mse(targets, predictions) < 1e-6

    def test_rejects_unsupported_loss(self):
        with pytest.raises(ValueError):
            LinearRegressionModel(loss="mae")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            LinearRegressionModel().fit(np.zeros((5, 2)), np.zeros(4))


class TestDNN:
    def test_fits_linear_function(self):
        features, targets = linear_data(n=300)
        model = DNNRegressor(hidden_layers=(32, 16), epochs=120, patience=40, random_state=0)
        model.fit(features, targets)
        predictions = model.predict(features)
        assert mae(targets, predictions) < 0.4

    def test_reproducible_with_seed(self):
        features, targets = linear_data(n=80)
        a = DNNRegressor(hidden_layers=(16,), epochs=20, random_state=3).fit(features, targets)
        b = DNNRegressor(hidden_layers=(16,), epochs=20, random_state=3).fit(features, targets)
        np.testing.assert_allclose(a.predict(features), b.predict(features))

    def test_mse_loss_variant(self):
        features, targets = linear_data(n=100)
        model = DNNRegressor(hidden_layers=(16,), loss="mse", epochs=30).fit(features, targets)
        assert np.isfinite(model.predict(features)).all()

    def test_invalid_loss(self):
        with pytest.raises(ValueError):
            DNNRegressor(loss="rss")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DNNRegressor().predict(np.zeros((1, 4)))


class TestGaussianProcess:
    def test_interpolates_training_points(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(-1, 1, size=(30, 2))
        targets = np.sin(features[:, 0] * 3) + features[:, 1]
        kernel = ConstantKernel(1.0) * RBF(0.5) + WhiteKernel(1e-6)
        model = GaussianProcessRegressor(kernel).fit(features, targets)
        predictions = model.predict(features)
        assert mse(targets, predictions) < 1e-3

    def test_std_is_small_at_training_points(self):
        features = np.linspace(0, 1, 10)[:, None]
        targets = np.squeeze(features) ** 2
        model = GaussianProcessRegressor(ConstantKernel(1.0) * RBF(0.3) + WhiteKernel(1e-6))
        model.fit(features, targets)
        _, std_train = model.predict(features, return_std=True)
        _, std_far = model.predict(np.array([[5.0]]), return_std=True)
        assert std_train.mean() < std_far[0]

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            RBF(0.0)
        with pytest.raises(ValueError):
            ConstantKernel(-1.0)
        with pytest.raises(ValueError):
            WhiteKernel(-0.1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor(RBF(1.0)).predict(np.zeros((1, 2)))


class TestBayesianOptimizer:
    def test_finds_maximum_of_smooth_function(self):
        def objective(x, y):
            return -((x - 2.0) ** 2) - (y - 0.5) ** 2

        optimizer = BayesianOptimizer(
            objective, {"x": (0.1, 10.0), "y": (0.1, 10.0)}, n_initial=6, n_iterations=18, seed=0
        )
        best = optimizer.maximize()
        assert best.value > -1.0

    def test_requires_bounds(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(lambda: 0, {})

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(lambda x: 0, {"x": (2.0, 1.0)})

    def test_best_requires_run(self):
        optimizer = BayesianOptimizer(lambda x: x, {"x": (0.1, 1.0)})
        with pytest.raises(RuntimeError):
            _ = optimizer.best


class TestBayesianGPModel:
    def test_fit_predict_nonlinear(self):
        features, targets = nonlinear_data(n=120)
        model = BayesianGPModel(n_initial=4, n_iterations=6, random_state=0)
        model.fit(features, targets)
        predictions = model.predict(features)
        assert mse(targets, predictions) < np.var(targets)
        assert set(model.best_params_) == {"C", "RBF_scale", "noise"}

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            BayesianGPModel().predict(np.zeros((1, 3)))


class TestGradientBoostedTrees:
    def test_fits_nonlinear_function(self):
        features, targets = nonlinear_data(n=400)
        model = GradientBoostedTrees(
            n_estimators=150, learning_rate=0.1, max_depth=3, random_state=0
        )
        model.fit(features, targets)
        predictions = model.predict(features)
        assert mse(targets, predictions) < 0.15 * np.var(targets)

    def test_better_than_mean_baseline_out_of_sample(self):
        features, targets = nonlinear_data(n=500)
        model = GradientBoostedTrees(n_estimators=120, learning_rate=0.1, random_state=1)
        model.fit(features[:350], targets[:350])
        predictions = model.predict(features[350:])
        baseline = np.full(150, targets[:350].mean())
        assert mse(targets[350:], predictions) < 0.5 * mse(targets[350:], baseline)

    def test_deterministic_given_seed(self):
        features, targets = nonlinear_data(n=150)
        a = GradientBoostedTrees(n_estimators=40, random_state=7).fit(features, targets)
        b = GradientBoostedTrees(n_estimators=40, random_state=7).fit(features, targets)
        np.testing.assert_allclose(a.predict(features), b.predict(features))

    def test_constant_targets_give_constant_predictions(self):
        features = np.random.default_rng(0).normal(size=(50, 3))
        targets = np.full(50, 2.5)
        model = GradientBoostedTrees(n_estimators=20).fit(features, targets)
        np.testing.assert_allclose(model.predict(features), targets, atol=1e-9)

    def test_unsupported_loss(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(loss="mae")

    def test_get_params_round_trip(self):
        model = GradientBoostedTrees(max_depth=5)
        params = model.get_params()
        clone = GradientBoostedTrees(**params)
        assert clone.max_depth == 5

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostedTrees().predict(np.zeros((1, 2)))


class TestGridSearch:
    def test_picks_best_depth(self):
        features, targets = nonlinear_data(n=200)
        result = grid_search(
            lambda **p: GradientBoostedTrees(n_estimators=40, random_state=0, **p),
            {"max_depth": [1, 3]},
            features,
            targets,
            n_folds=3,
            seed=0,
        )
        assert result.best_params["max_depth"] == 3
        assert len(result.all_results) == 2

    def test_validation(self):
        features, targets = linear_data(n=10)
        with pytest.raises(ValueError):
            grid_search(lambda **p: LinearRegressionModel(), {}, features, targets)
        with pytest.raises(ValueError):
            grid_search(
                lambda **p: LinearRegressionModel(), {"ridge": [0.1]}, features[:2], targets[:2],
                n_folds=5,
            )


class TestMakeModel:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("linreg", LinearRegressionModel),
            ("dnn", DNNRegressor),
            ("bayes", BayesianGPModel),
            ("xgboost", GradientBoostedTrees),
        ],
    )
    def test_factory(self, name, expected):
        assert isinstance(make_model(name), expected)

    def test_paper_xgboost_configuration(self):
        model = make_model("xgboost")
        assert model.colsample_bytree == pytest.approx(0.6)
        assert model.learning_rate == pytest.approx(0.05)
        assert model.max_depth == 3
        assert model.n_estimators == 300

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_model("random_forest")

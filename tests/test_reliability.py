"""Chaos test harness: deadlines, retries, crash isolation, degradation.

Every test drives *real* production paths — the simulator pool, the
autotuning measure loop, the disk memo, the native kernel dispatch and the
dataset pipeline — under deterministic fault injection
(:mod:`repro.reliability.faults`).  The invariant checked throughout: a
fault-free run and a faulty-but-recovered run produce bit-identical
statistics (``sim.host_seconds``, a wall-clock observable, is excluded from
every comparison), and an unrecovered fault becomes a structured record —
never an unhandled exception, never a poisoned later batch.
"""

from __future__ import annotations

import json
import os
import time
import warnings

import pytest

import repro.workloads  # noqa: F401 — registers the schedule templates
from repro.autotune import (
    LocalBuilder,
    MeasureErrorNo,
    MeasureInput,
    MeasureResult,
    RunnerStatsCollector,
    SimulatorRunner,
    create_task,
    measure_batch,
)
from repro.codegen import Target
from repro.hardware import TargetBoard
from repro.pipeline.dataset import (
    DatasetConfig,
    DatasetGenerationError,
    generate_dataset,
)
from repro.reliability import (
    BackendDegradationWarning,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    InjectedFault,
    InjectedWorkerCrash,
    MemoQuarantineWarning,
    NativeKernelDemotionWarning,
    RetryPolicy,
    current_deadline,
    deadline_scope,
    fault_injection_enabled,
)
from repro.reliability import faults
from repro.sim import (
    SimulationCache,
    SimulationFailure,
    SimulationResult,
    Simulator,
    SimulatorPool,
    TraceOptions,
)
from repro.sim import _native
from repro.sim.memo import _encode_entry

TRACE = TraceOptions(max_accesses=15_000)
#: Enough work that the per-chunk deadline poll actually runs several times.
SLOW_TRACE = TraceOptions(max_accesses=200_000, chunk_iterations=64)


@pytest.fixture(autouse=True)
def _fault_free():
    """Every test starts and ends with injection fully disabled.

    An *empty override* (not a bare reset) shields the suite from any
    ambient ``REPRO_FAULT_INJECT`` — the CI chaos legs export one — so each
    test controls its own profile; only :class:`TestChaosAcceptance` opts
    into the ambient profile explicitly.
    """
    faults.configure("")
    yield
    faults.reset()


@pytest.fixture
def restore_native():
    """Undo a process-wide native-kernel demotion after the test."""
    yield
    _native._reset_for_tests()


@pytest.fixture(scope="module")
def matmul_task():
    return create_task("matmul", (8, 8, 8), Target.arm())


@pytest.fixture(scope="module")
def matmul_inputs(matmul_task):
    return [
        MeasureInput(matmul_task, matmul_task.config_space.get(i)) for i in (0, 1, 2, 3)
    ]


@pytest.fixture(scope="module")
def programs(matmul_inputs):
    builds = LocalBuilder().build(matmul_inputs)
    assert all(build.ok for build in builds)
    return [build.program for build in builds]


def flat(result):
    """Statistics of one simulation, minus the wall-clock observable."""
    stats = dict(result.stats.as_dict())
    stats.pop("sim.host_seconds", None)
    return stats


def norm(dataset):
    """Comparable view of a dataset, minus per-sample wall-clock stats."""
    out = []
    for sample in dataset.samples:
        stats = {k: v for k, v in sample.flat_stats.items() if k != "sim.host_seconds"}
        out.append((sample.group_id, sample.implementation_id, stats, sample.measured_time_s))
    return out


# ---------------------------------------------------------------------------
# Fault registry
# ---------------------------------------------------------------------------


class TestFaultRegistry:
    def test_disabled_by_default(self):
        assert not fault_injection_enabled()
        assert not faults.should_inject("worker_crash")
        faults.maybe_raise("worker_crash")  # no-op
        faults.maybe_crash_worker()  # no-op

    def test_parse_profile_clauses(self):
        registry = faults.parse_profile(
            "a:p=0.25;b:once;c:n=3,after=2;seed=99"
        )
        assert registry.seed == 99
        assert registry.specs["a"].probability == 0.25
        assert registry.specs["b"].max_fires == 1
        assert registry.specs["c"].max_fires == 3
        assert registry.specs["c"].skip_first == 2

    def test_parse_profile_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            faults.parse_profile("a:bogus=1")

    def test_once_fires_exactly_once(self):
        faults.configure("site:once")
        decisions = [faults.should_inject("site") for _ in range(10)]
        assert decisions == [True] + [False] * 9

    def test_fire_cap_and_skip(self):
        faults.configure("site:n=2,after=3")
        decisions = [faults.should_inject("site") for _ in range(10)]
        assert decisions == [False] * 3 + [True, True] + [False] * 5

    def test_probabilistic_draws_replay_exactly(self):
        faults.configure("site:p=0.3", seed=7)
        first = [faults.should_inject("site") for _ in range(200)]
        faults.configure("site:p=0.3", seed=7)
        second = [faults.should_inject("site") for _ in range(200)]
        assert first == second
        assert any(first) and not all(first)
        faults.configure("site:p=0.3", seed=8)
        assert [faults.should_inject("site") for _ in range(200)] != first

    def test_maybe_raise_carries_site(self):
        faults.configure("boom:once")
        with pytest.raises(InjectedFault, match="site 'boom'"):
            faults.maybe_raise("boom")
        faults.maybe_raise("boom")  # consumed

    def test_crash_in_main_process_raises(self):
        faults.configure("worker_crash:once")
        with pytest.raises(InjectedWorkerCrash):
            faults.maybe_crash_worker()

    def test_environment_profile(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "envsite:once;seed=3")
        faults.reset()
        assert fault_injection_enabled()
        assert faults.should_inject("envsite")
        assert not faults.should_inject("envsite")


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_attempts=9, base_delay_s=0.05, max_delay_s=0.3, jitter=0.0)
        delays = [policy.delay_s(attempt) for attempt in range(1, 6)]
        assert delays == [0.05, 0.1, 0.2, 0.3, 0.3]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, jitter=0.5, seed=11)
        first = [policy.delay_s(a, key="prog") for a in (1, 2, 3)]
        second = [policy.delay_s(a, key="prog") for a in (1, 2, 3)]
        assert first == second
        for attempt, delay in zip((1, 2, 3), first):
            raw = min(0.1 * 2.0 ** (attempt - 1), policy.max_delay_s)
            assert raw * 0.5 <= delay <= raw
        assert first != [policy.delay_s(a, key="other") for a in (1, 2, 3)]

    def test_call_retries_then_succeeds(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01)
        assert policy.call(flaky, key="k", sleep=slept.append) == "ok"
        assert len(attempts) == 3 and len(slept) == 2

    def test_call_exhausts_and_raises(self):
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.01)
        with pytest.raises(ValueError):
            policy.call(lambda: (_ for _ in ()).throw(ValueError("x")), sleep=lambda _: None)

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "4")
        monkeypatch.setenv("REPRO_RETRY_BASE_DELAY_S", "0.01")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 4 and policy.base_delay_s == 0.01


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class _FakeClock:
    """Hand-driven monotonic clock for deterministic breaker trajectories."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=5.0, clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # two in a row: not yet
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after_s() > 0.0

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=_FakeClock())
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=4.0, jitter=0.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()  # before the probe deadline
        clock.advance(4.0)
        assert breaker.allow()  # the single probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # probe in flight: everyone else refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_with_a_fresh_deadline(self):
        clock = _FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=2.0, jitter=0.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe faulted
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(2.0)
        clock.advance(2.0)
        assert breaker.allow()

    def test_probe_schedule_is_deterministic_and_jitter_bounded(self):
        def trajectory():
            clock = _FakeClock()
            breaker = CircuitBreaker(
                failure_threshold=1, reset_timeout_s=10.0, jitter=0.5,
                seed=3, key="svc", clock=clock,
            )
            delays = []
            for _ in range(4):
                breaker.record_failure()
                delays.append(breaker.retry_after_s())
                clock.advance(delays[-1])
                assert breaker.allow()
            return delays

        first, second = trajectory(), trajectory()
        assert first == second  # replayable: pure function of (seed, key, opens)
        assert all(5.0 <= delay <= 10.0 for delay in first)
        assert len(set(first)) > 1  # jitter actually varies per open

    def test_counters_and_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        breaker = CircuitBreaker(failure_threshold=1, clock=_FakeClock())
        breaker.record_failure()
        counters = breaker.counters()
        assert counters["state"] == CircuitBreaker.OPEN
        assert counters["opens"] == 1.0
        assert counters["failures"] == 1.0


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_no_ambient_deadline_by_default(self):
        assert current_deadline() is None

    def test_scope_installs_and_restores(self):
        deadline = Deadline.after(60.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
            deadline.check("inner work")  # far in the future: no-op
        assert current_deadline() is None

    def test_none_scope_is_transparent(self):
        with deadline_scope(None):
            assert current_deadline() is None

    def test_expired_deadline_raises_with_context(self):
        deadline = Deadline.after(-1.0)
        assert deadline.expired() and deadline.remaining() < 0
        with pytest.raises(DeadlineExceeded, match="during trace walk"):
            deadline.check("trace walk")

    def test_simulator_run_honours_timeout(self, programs):
        simulator = Simulator("arm", trace_options=SLOW_TRACE, memoize=False)
        with pytest.raises(DeadlineExceeded):
            simulator.run(programs[0], timeout_s=1e-9)
        # The same simulator still works once the budget is sane.
        result = simulator.run(programs[0], timeout_s=60.0)
        assert result.stats.get("cpu.num_insts") > 0


# ---------------------------------------------------------------------------
# Resilient simulator pool
# ---------------------------------------------------------------------------


class TestResilientPool:
    @pytest.fixture(scope="class")
    def baseline(self, programs):
        faults.configure("")  # class fixtures resolve before the autouse shield
        pool = SimulatorPool("arm", trace_options=TRACE, memoize=False)
        return [flat(r) for r in pool.run_many(programs)]

    @pytest.mark.parametrize(
        "backend,n_parallel", [("serial", 1), ("threads", 3), ("processes", 2)]
    )
    def test_fault_free_parity(self, programs, baseline, backend, n_parallel, monkeypatch):
        # Forked pool workers re-read the environment; keep them fault-free
        # even when a CI chaos leg exports an ambient profile.
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        pool = SimulatorPool(
            "arm", n_parallel=n_parallel, backend=backend, trace_options=TRACE, memoize=False
        )
        outcomes = pool.run_many_resilient(programs)
        assert all(isinstance(o, SimulationResult) for o in outcomes)
        assert [flat(o) for o in outcomes] == baseline

    def test_serial_crash_contained_without_retry(self, programs):
        faults.configure("worker_crash:n=1", seed=7)
        pool = SimulatorPool("arm", trace_options=TRACE, memoize=False)
        outcomes = pool.run_many_resilient(programs)
        failures = [o for o in outcomes if isinstance(o, SimulationFailure)]
        assert len(failures) == 1
        assert failures[0].kind == SimulationFailure.CRASH
        assert "worker_crash" in failures[0].error
        assert len([o for o in outcomes if isinstance(o, SimulationResult)]) == len(programs) - 1

    def test_serial_crash_retried_to_success(self, programs, baseline):
        faults.configure("worker_crash:n=2", seed=7)
        pool = SimulatorPool(
            "arm",
            trace_options=TRACE,
            memoize=False,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.001),
        )
        outcomes = pool.run_many_resilient(programs)
        assert all(isinstance(o, SimulationResult) for o in outcomes)
        assert [flat(o) for o in outcomes] == baseline

    def test_threads_crash_contained_per_program(self, programs):
        faults.configure("worker_crash:n=1", seed=3)
        pool = SimulatorPool(
            "arm", n_parallel=3, backend="threads", trace_options=TRACE, memoize=False
        )
        outcomes = pool.run_many_resilient(programs)
        failures = [o for o in outcomes if isinstance(o, SimulationFailure)]
        assert len(failures) == 1 and failures[0].kind == SimulationFailure.CRASH
        assert len(outcomes) == len(programs)

    def test_timeout_becomes_failure_record(self, programs):
        pool = SimulatorPool(
            "arm", trace_options=SLOW_TRACE, memoize=False, timeout_s=1e-9
        )
        outcomes = pool.run_many_resilient(programs[:2])
        assert all(
            isinstance(o, SimulationFailure) and o.kind == SimulationFailure.TIMEOUT
            for o in outcomes
        )
        assert "deadline" in outcomes[0].error

    def test_broken_process_pool_degrades_to_threads(self, programs, monkeypatch):
        # The profile travels to forked workers via the environment; each
        # fresh pool replays it from ordinal zero, so the crash re-fires on
        # every respawn until the budget degrades the backend to threads,
        # where the parent's own registry (n=1) fires once and is contained.
        monkeypatch.setenv(faults.ENV_VAR, "worker_crash:n=1;seed=3")
        faults.reset()
        pool = SimulatorPool(
            "arm",
            n_parallel=2,
            backend="processes",
            trace_options=TRACE,
            memoize=False,
            retry=RetryPolicy(max_attempts=1),
            max_pool_respawns=0,
        )
        with pytest.warns(BackendDegradationWarning):
            outcomes = pool.run_many_resilient(programs)
        assert len(outcomes) == len(programs)
        failures = [o for o in outcomes if isinstance(o, SimulationFailure)]
        assert len(failures) == 1 and failures[0].kind == SimulationFailure.CRASH
        assert len([o for o in outcomes if isinstance(o, SimulationResult)]) == len(programs) - 1

    def test_unknown_backend_still_rejected(self):
        pool = SimulatorPool("arm", backend="fibers")
        with pytest.raises(ValueError, match="unknown pool backend"):
            pool.run_many_resilient([])


# ---------------------------------------------------------------------------
# Autotune measure loop
# ---------------------------------------------------------------------------


class TestMeasureResilience:
    def test_crash_maps_to_worker_crash_error(self, matmul_inputs):
        faults.configure("worker_crash:n=1", seed=7)
        runner = SimulatorRunner("arm", trace_options=TRACE, memoize=False)
        results = measure_batch(LocalBuilder(), runner, matmul_inputs)
        assert len(results) == len(matmul_inputs)
        crashed = [r for r in results if r.error_no == MeasureErrorNo.WORKER_CRASH]
        assert len(crashed) == 1
        assert "crash" in crashed[0].error_msg
        assert crashed[0].costs == []
        assert sum(r.ok for r in results) == len(matmul_inputs) - 1

    def test_timeout_maps_to_run_timeout_without_poisoning(self, matmul_inputs):
        runner = SimulatorRunner(
            "arm", trace_options=SLOW_TRACE, memoize=False, timeout_s=1e-9
        )
        results = measure_batch(LocalBuilder(), runner, matmul_inputs)
        assert all(r.error_no == MeasureErrorNo.RUN_TIMEOUT for r in results)
        # A later batch on a healthy runner is unaffected.
        healthy = SimulatorRunner("arm", trace_options=TRACE, memoize=False)
        results = measure_batch(LocalBuilder(), healthy, matmul_inputs)
        assert all(r.ok for r in results)

    def test_measure_batch_retries_only_failed_slice(self, matmul_inputs):
        faults.configure("worker_crash:n=1", seed=7)
        runner = SimulatorRunner("arm", trace_options=TRACE, memoize=False)
        results = measure_batch(
            LocalBuilder(),
            runner,
            matmul_inputs,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.001),
        )
        assert all(r.error_no == MeasureErrorNo.NO_ERROR for r in results)
        assert all(r.costs and r.costs[0] > 0 for r in results)

    def test_stats_collector_skips_failed_candidates(self, matmul_inputs):
        faults.configure("worker_crash:n=1", seed=7)
        board = TargetBoard("arm", trace_options=TRACE, seed=0)
        collector = RunnerStatsCollector(board, trace_options=TRACE, memoize=False)
        results = measure_batch(LocalBuilder(), collector, matmul_inputs)
        assert len(results) == len(matmul_inputs)
        assert sum(r.error_no == MeasureErrorNo.WORKER_CRASH for r in results) == 1
        # No paired training record for the crashed candidate.
        assert len(collector.records) == len(matmul_inputs) - 1


# ---------------------------------------------------------------------------
# Native kernel degradation
# ---------------------------------------------------------------------------


def _native_available() -> bool:
    return _native.event_kernel() is not None


class TestNativeDegradation:
    def test_injected_fault_demotes_to_numpy_bit_identically(self, programs, restore_native):
        if not _native_available():
            pytest.skip("compiled native kernels unavailable in this environment")
        simulator = Simulator("arm", trace_options=TRACE, memoize=False)
        baseline = [flat(simulator.run(p)) for p in programs]
        faults.configure("native_fault:once")
        with pytest.warns(NativeKernelDemotionWarning):
            demoted = [flat(simulator.run(p)) for p in programs]
        assert demoted == baseline
        # The demotion is process-wide and sticky until reset.
        assert _native.event_kernel() is None

    def test_probe_failure_falls_back_to_numpy(self, programs, restore_native):
        if not _native_available():
            pytest.skip("compiled native kernels unavailable in this environment")
        simulator = Simulator("arm", trace_options=TRACE, memoize=False)
        baseline = [flat(simulator.run(p)) for p in programs]
        _native._reset_for_tests()  # force the next use through the probe
        faults.configure("native_probe:once")
        with pytest.warns(NativeKernelDemotionWarning, match="probe failed"):
            fallback = [flat(simulator.run(p)) for p in programs]
        assert fallback == baseline

    def test_reset_restores_native_kernels(self, restore_native):
        if not _native_available():
            pytest.skip("compiled native kernels unavailable in this environment")
        with pytest.warns(NativeKernelDemotionWarning):
            _native.demote("test-induced demotion")
        assert _native.event_kernel() is None
        _native._reset_for_tests()
        assert _native.event_kernel() is not None


# ---------------------------------------------------------------------------
# Disk memo hardening
# ---------------------------------------------------------------------------


class TestMemoResilience:
    @pytest.fixture(scope="class")
    def stats(self, programs):
        faults.configure("")  # class fixtures resolve before the autouse shield
        return Simulator("arm", trace_options=TRACE, memoize=False).run(programs[0]).stats

    def test_roundtrip_through_disk(self, tmp_path, stats):
        cache = SimulationCache(disk_dir=tmp_path)
        cache.put("k" * 64, stats)
        fresh = SimulationCache(disk_dir=tmp_path)
        assert fresh.get("k" * 64).as_dict() == stats.as_dict()
        assert fresh.quarantined == 0

    @pytest.mark.parametrize("flavour", [0, 1, 2], ids=["truncated", "garbage", "wrong-schema"])
    def test_read_corruption_quarantines_as_miss(self, tmp_path, stats, flavour):
        cache = SimulationCache(disk_dir=tmp_path)
        cache.put("k" * 64, stats)
        # Burn read-site ordinals so the rotating corruption flavour under
        # test is the one applied to the real read below.
        faults.configure("memo_corrupt_read")
        registry = faults.active_registry()
        for _ in range(flavour):
            registry.should_inject("memo_corrupt_read")
        fresh = SimulationCache(disk_dir=tmp_path)
        with pytest.warns(MemoQuarantineWarning):
            assert fresh.get("k" * 64) is None
        assert fresh.quarantined == 1
        quarantined = list(tmp_path.glob("*.quarantine"))
        assert len(quarantined) == 1  # renamed aside, never deleted
        assert not (tmp_path / ("k" * 64 + ".json")).exists()
        # The miss is recoverable: recompute, re-store, read back clean.
        faults.reset()
        fresh.put("k" * 64, stats)
        assert fresh.get("k" * 64).as_dict() == stats.as_dict()

    def test_write_corruption_detected_on_next_read(self, tmp_path, stats):
        faults.configure("memo_corrupt_write:once")
        cache = SimulationCache(disk_dir=tmp_path)
        cache.put("k" * 64, stats)
        faults.reset()
        fresh = SimulationCache(disk_dir=tmp_path)
        with pytest.warns(MemoQuarantineWarning):
            assert fresh.get("k" * 64) is None

    def test_checksum_mismatch_quarantined(self, tmp_path, stats):
        cache = SimulationCache(disk_dir=tmp_path)
        cache.put("k" * 64, stats)
        path = tmp_path / ("k" * 64 + ".json")
        entry = json.loads(path.read_text(encoding="utf-8"))
        first_key = next(iter(entry["stats"]))
        entry["stats"][first_key] += 1.0  # bit-rot without updating the digest
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = SimulationCache(disk_dir=tmp_path)
        with pytest.warns(MemoQuarantineWarning, match="checksum"):
            assert fresh.get("k" * 64) is None

    def test_legacy_flat_entries_still_accepted(self, tmp_path, stats):
        flat_stats = {k: float(v) for k, v in stats.as_dict().items()}
        (tmp_path / ("k" * 64 + ".json")).write_text(
            json.dumps(flat_stats), encoding="utf-8"
        )
        cache = SimulationCache(disk_dir=tmp_path)
        assert cache.get("k" * 64).as_dict() == stats.as_dict()
        assert cache.quarantined == 0

    def test_entries_are_checksummed_envelopes(self, stats):
        entry = json.loads(_encode_entry({k: float(v) for k, v in stats.as_dict().items()}))
        assert set(entry) == {"schema", "sha256", "stats"}

    def test_stale_tmp_swept_young_tmp_kept(self, tmp_path):
        stale = tmp_path / ".deadbeef.1234.tmp"
        young = tmp_path / ".cafef00d.5678.tmp"
        stale.write_text("{", encoding="utf-8")
        young.write_text("{", encoding="utf-8")
        old = time.time() - 3600.0
        os.utime(stale, (old, old))
        SimulationCache(disk_dir=tmp_path)
        assert not stale.exists()  # orphan from a killed worker
        assert young.exists()  # may belong to a live writer


# ---------------------------------------------------------------------------
# Dataset pipeline containment
# ---------------------------------------------------------------------------


DATASET_CONFIG = DatasetConfig(
    arch="arm",
    implementations_per_group=3,
    groups=(0, 1),
    scale=0.05,
    trace_max_accesses=4_000,
    n_exe=2,
    n_parallel=1,
)


class TestDatasetResilience:
    @pytest.fixture(scope="class")
    def baseline(self):
        faults.configure("")  # class fixtures resolve before the autouse shield
        return generate_dataset(DATASET_CONFIG)

    def test_fault_free_matches_strict_path(self, baseline):
        strict = generate_dataset(DATASET_CONFIG, strict=True)
        assert norm(strict) == norm(baseline)
        assert len(baseline.samples) == 6

    def test_failed_group_is_recorded_not_fatal(self, baseline):
        faults.configure("worker_crash:n=1", seed=5)
        with pytest.raises(DatasetGenerationError) as excinfo:
            generate_dataset(DATASET_CONFIG)
        error = excinfo.value
        assert len(error.failures) == 1
        assert error.failures[0].group_id in DATASET_CONFIG.groups
        assert "worker_crash" in error.failures[0].error
        # The partial dataset carries every surviving group's samples.
        assert len(error.dataset.samples) == 3
        assert [s for s in norm(error.dataset)] == [
            s for s in norm(baseline) if s[0] != error.failures[0].group_id
        ]

    def test_retry_recovers_bit_identically(self, baseline):
        faults.configure("worker_crash:n=1", seed=5)
        recovered = generate_dataset(
            DATASET_CONFIG, retry=RetryPolicy(max_attempts=2, base_delay_s=0.001)
        )
        assert norm(recovered) == norm(baseline)

    def test_strict_mode_propagates_first_error(self):
        faults.configure("worker_crash:n=1", seed=5)
        with pytest.raises(InjectedWorkerCrash):
            generate_dataset(DATASET_CONFIG, strict=True)

    def test_threads_backend_contains_failures(self, baseline):
        faults.configure("worker_crash:n=1", seed=5)
        config = DatasetConfig(
            arch="arm",
            implementations_per_group=3,
            groups=(0, 1),
            scale=0.05,
            trace_max_accesses=4_000,
            n_exe=2,
            n_parallel=2,
            backend="threads",
        )
        with pytest.raises(DatasetGenerationError) as excinfo:
            generate_dataset(config)
        assert len(excinfo.value.failures) == 1
        assert len(excinfo.value.dataset.samples) == 3


# ---------------------------------------------------------------------------
# Acceptance-scale chaos run
# ---------------------------------------------------------------------------


#: Default acceptance profile; a CI chaos leg overrides it through the
#: environment (``REPRO_FAULT_INJECT``) to stress different rates/seeds.
CHAOS_PROFILE = "worker_crash:p=0.2;memo_corrupt_read:p=0.2;native_fault:once;seed=42"


class TestChaosAcceptance:
    def test_chaos_batch_completes_with_structured_records(
        self, matmul_task, restore_native
    ):
        space = matmul_task.config_space
        inputs = [
            MeasureInput(matmul_task, space.get(i % len(space))) for i in range(32)
        ]
        builder = LocalBuilder()

        def run_batch(retry=None):
            runner = SimulatorRunner(
                "arm", trace_options=TRACE, memoize=False, timeout_s=30.0
            )
            return measure_batch(builder, runner, inputs, retry=retry)

        pristine = run_batch()
        assert all(r.ok for r in pristine)

        faults.configure(os.environ.get(faults.ENV_VAR) or CHAOS_PROFILE)
        with warnings.catch_warnings():
            # Native demotion / degradation warnings are expected noise here.
            warnings.simplefilter("ignore")
            chaotic = run_batch(retry=RetryPolicy(max_attempts=3, base_delay_s=0.001))
        faults.configure("")

        # Every candidate came back as a structured MeasureResult — the
        # interpreter survived ~20% crash injection plus a native fault.
        assert len(chaotic) == 32
        known = {
            MeasureErrorNo.NO_ERROR,
            MeasureErrorNo.RUNTIME_ERROR,
            MeasureErrorNo.RUN_TIMEOUT,
            MeasureErrorNo.WORKER_CRASH,
        }
        assert all(isinstance(r, MeasureResult) for r in chaotic)
        assert all(r.error_no in known for r in chaotic)
        for result in chaotic:
            if result.error_no != MeasureErrorNo.NO_ERROR:
                assert result.error_msg  # per-candidate error record
        # With three attempts against p=0.2 most candidates recover.
        recovered = [r for r in chaotic if r.ok]
        assert len(recovered) >= 16
        # Recovered candidates report costs identical to the pristine run.
        for before, after in zip(pristine, chaotic):
            if after.ok:
                assert after.costs == before.costs

        # A fault-free re-run is bit-identical to the pristine baseline.
        _native._reset_for_tests()
        clean = run_batch()
        assert [r.costs for r in clean] == [r.costs for r in pristine]
        assert all(r.error_no == MeasureErrorNo.NO_ERROR for r in clean)

"""Tests for tuning-record logging and history reuse."""

from __future__ import annotations

import pytest

import repro.workloads  # noqa: F401
from repro.autotune import LocalBuilder, RandomTuner, create_task
from repro.autotune.measure import MeasureInput, MeasureResult
from repro.autotune.record import (
    apply_history_best,
    best_record,
    load_records,
    logging_callback,
    record_to_dict,
    save_records,
)
from repro.codegen import Target
from tests.test_autotune_tuners import AnalyticRunner


@pytest.fixture(scope="module")
def task():
    return create_task("matmul", (8, 8, 8), Target.riscv())


def _measurement(task, index, cost):
    return (
        MeasureInput(task, task.config_space.get(index)),
        MeasureResult(costs=[cost]),
    )


class TestSerialization:
    def test_record_to_dict_fields(self, task):
        measure_input, result = _measurement(task, 3, 0.5)
        record = record_to_dict(measure_input, result)
        assert record["config_index"] == 3
        assert record["costs"] == [0.5]
        assert record["template"] == "matmul"
        assert record["target"] == "riscv"

    def test_save_and_load_round_trip(self, task, tmp_path):
        path = tmp_path / "log.jsonl"
        written = save_records(path, [_measurement(task, i, 0.1 * (i + 1)) for i in range(4)])
        assert written == 4
        records = load_records(path)
        assert len(records) == 4
        assert records[2]["config_index"] == 2

    def test_append_mode(self, task, tmp_path):
        path = tmp_path / "log.jsonl"
        save_records(path, [_measurement(task, 0, 1.0)])
        save_records(path, [_measurement(task, 1, 2.0)], append=True)
        assert len(load_records(path)) == 2

    def test_overwrite_mode(self, task, tmp_path):
        path = tmp_path / "log.jsonl"
        save_records(path, [_measurement(task, 0, 1.0)])
        save_records(path, [_measurement(task, 1, 2.0)], append=False)
        records = load_records(path)
        assert len(records) == 1 and records[0]["config_index"] == 1


class TestHistoryBest:
    def test_best_record_selects_lowest_cost(self, task):
        records = [
            record_to_dict(*_measurement(task, 0, 3.0)),
            record_to_dict(*_measurement(task, 1, 1.0)),
            record_to_dict(*_measurement(task, 2, 2.0)),
        ]
        assert best_record(records)["config_index"] == 1

    def test_best_record_skips_failures(self, task):
        failed_input, _ = _measurement(task, 0, 1.0)
        failed = record_to_dict(failed_input, MeasureResult(costs=[], error_no=2))
        good = record_to_dict(*_measurement(task, 1, 5.0))
        assert best_record([failed, good])["config_index"] == 1

    def test_best_record_filters_by_task(self, task):
        records = [record_to_dict(*_measurement(task, 0, 1.0))]
        assert best_record(records, task_name="other") is None

    def test_apply_history_best(self, task):
        records = [record_to_dict(*_measurement(task, 5, 0.25))]
        config = apply_history_best(task, records)
        assert config is not None and config.index == 5

    def test_apply_history_best_empty(self, task):
        assert apply_history_best(task, []) is None


class TestLoggingCallback:
    def test_tuner_writes_log(self, task, tmp_path):
        path = tmp_path / "tuning.jsonl"
        tuner = RandomTuner(task, seed=0)
        tuner.tune(
            n_trial=8,
            runner=AnalyticRunner(),
            builder=LocalBuilder(),
            batch_size=4,
            callbacks=[logging_callback(path)],
        )
        records = load_records(path)
        assert len(records) == 8
        best = apply_history_best(task, records)
        assert best is not None
        assert best.index == tuner.best_config.index

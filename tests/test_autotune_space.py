"""Tests for configuration spaces, templates and tasks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

import repro.workloads  # noqa: F401  - registers the built-in templates
from repro.autotune import (
    ConfigSpace,
    all_factorizations,
    create_task,
    get_template,
    list_templates,
)
from repro.autotune.space import OtherOptionEntity, SplitEntity, factorize
from repro.autotune.template import template
from repro.codegen import Target
from repro import te


class TestFactorization:
    def test_factorize(self):
        assert factorize(12) == [1, 2, 3, 4, 6, 12]

    def test_factorize_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)

    def test_all_factorizations_two_parts(self):
        pairs = all_factorizations(12, 2)
        assert (3, 4) in pairs and (12, 1) in pairs
        assert all(a * b == 12 for a, b in pairs)

    def test_all_factorizations_three_parts(self):
        triples = all_factorizations(8, 3)
        assert all(a * b * c == 8 for a, b, c in triples)
        assert len(triples) == len(set(triples))

    def test_max_factor_limits_inner(self):
        pairs = all_factorizations(16, 2, max_factor=4)
        assert all(inner <= 4 for _, inner in pairs)

    @given(st.integers(1, 64), st.integers(1, 3))
    def test_products_always_match(self, extent, parts):
        for combo in all_factorizations(extent, parts):
            assert int(np.prod(combo)) == extent


class TestConfigSpace:
    def _space(self):
        cfg = ConfigSpace()
        cfg.define_split("tile_x", 8, num_outputs=2)
        cfg.define_knob("vectorize", [True, False])
        return cfg

    def test_space_size(self):
        cfg = self._space()
        assert len(cfg) == len(all_factorizations(8, 2)) * 2

    def test_default_selection_is_first(self):
        cfg = self._space()
        assert isinstance(cfg["tile_x"], SplitEntity)
        assert isinstance(cfg["vectorize"], OtherOptionEntity)

    def test_get_round_trip(self):
        cfg = self._space()
        for index in range(len(cfg)):
            entity = cfg.get(index)
            assert entity.index == index

    def test_get_out_of_range(self):
        cfg = self._space()
        with pytest.raises(IndexError):
            cfg.get(len(cfg))

    def test_unknown_knob(self):
        cfg = self._space()
        with pytest.raises(KeyError):
            cfg["nope"]

    def test_duplicate_definition_ignored(self):
        cfg = self._space()
        size = len(cfg)
        cfg.define_knob("vectorize", [1, 2, 3])
        assert len(cfg) == size

    def test_empty_knob_rejected(self):
        cfg = ConfigSpace()
        with pytest.raises(ValueError):
            cfg.define_knob("bad", [])

    def test_sampling_unique(self):
        cfg = self._space()
        rng = np.random.default_rng(0)
        configs = cfg.sample(10, rng)
        indices = [c.index for c in configs]
        assert len(indices) == len(set(indices))

    def test_config_features_numeric(self):
        cfg = self._space()
        features = cfg.get(3).features()
        assert all(isinstance(v, float) for v in features)

    def test_config_to_dict(self):
        entity = self._space().get(0)
        assert set(entity.to_dict()) == {"tile_x", "vectorize"}

    def test_define_replacement_defaults_to_registry(self):
        from repro.sim import POLICY_NAMES

        cfg = ConfigSpace()
        cfg.define_replacement()
        assert [e.val for e in cfg.candidates("replacement")] == list(POLICY_NAMES)
        assert cfg["replacement"].val == POLICY_NAMES[0]

    def test_define_replacement_validates_explicit_policies(self):
        cfg = ConfigSpace()
        cfg.define_replacement(policies=["lru", "plru"])
        assert [e.val for e in cfg.candidates("replacement")] == ["lru", "plru"]
        with pytest.raises(ValueError):
            ConfigSpace().define_replacement(policies=["mru"])

    def test_split_entity_apply(self):
        a = te.placeholder((4, 12), name="a")
        b = te.compute((4, 12), lambda i, j: a[i, j] + 1, name="b")
        schedule = te.create_schedule(b)
        axes = SplitEntity((3, 4)).apply(schedule, b, b.op.axis[1])
        assert [ax.extent for ax in axes] == [3, 4]


class TestTemplatesAndTasks:
    def test_builtin_templates_registered(self):
        names = list_templates()
        assert "conv2d_bias_relu" in names and "matmul" in names

    def test_duplicate_template_rejected(self):
        with pytest.raises(ValueError):
            @template("matmul")
            def other(cfg):  # pragma: no cover - never called
                return None, []

    def test_unknown_template(self):
        with pytest.raises(KeyError):
            get_template("nonexistent")

    def test_create_task_builds_space(self):
        task = create_task("matmul", (16, 16, 16), Target.x86())
        assert len(task.config_space) > 10
        assert "matmul" in task.name

    def test_task_lower_produces_function(self):
        task = create_task("matmul", (8, 8, 8), Target.riscv())
        config = task.config_space.get(0)
        func = task.lower(config)
        assert [t.name for t in func.args] == ["A", "B", "matmul"]

    def test_conv_task_space_has_expected_knobs(self):
        task = create_task("conv2d_bias_relu", (1, 8, 8, 8, 4, 3, 3, (1, 1), (1, 1)), Target.arm())
        names = task.config_space.knob_names()
        assert {"tile_co", "tile_ow", "tile_ci", "vectorize"} <= set(names)

"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in editable mode on systems without the
``wheel`` package (pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()

"""repro: instruction-accurate simulators for autotuning performance estimation.

Reproduction of "Introducing Instruction-Accurate Simulators for Performance
Estimation of Autotuning Workloads" (DAC 2025).  The package couples a
tensor-expression autotuning framework with a gem5-style instruction-accurate
simulator and trains score predictors that rank schedule implementations by
their expected run time on a target CPU.
"""

__version__ = "1.0.0"

__all__ = [
    "te",
    "codegen",
    "sim",
    "hardware",
    "autotune",
    "predictor",
    "metrics",
    "workloads",
    "pipeline",
    "utils",
]

"""repro: instruction-accurate simulators for autotuning performance estimation.

Reproduction of "Introducing Instruction-Accurate Simulators for Performance
Estimation of Autotuning Workloads" (DAC 2025).  The package couples a
tensor-expression autotuning framework with a gem5-style instruction-accurate
simulator and trains score predictors that rank schedule implementations by
their expected run time on a target CPU.
"""

__version__ = "1.0.0"

__all__ = [
    "te",
    "codegen",
    "sim",
    "hardware",
    "autotune",
    "predictor",
    "metrics",
    "workloads",
    "pipeline",
    "service",
    "utils",
    "simulate",
    "simulate_batch",
]


def _resolve_target(program, hierarchy):
    """Split the facade's ``hierarchy`` argument into (arch, hierarchy_config).

    ``hierarchy`` may be an architecture name (Table I defaults looked up by
    name), an explicit ``CacheHierarchyConfig``, or ``None`` (the program's
    own target architecture with its default hierarchy).
    """
    if hierarchy is None:
        return program.target.name, None
    if isinstance(hierarchy, str):
        return hierarchy, None
    return program.target.name, hierarchy


def simulate(program, hierarchy=None, *, config=None, trace_options=None, timeout_s=None):
    """Simulate one program; the stable top-level entry point.

    Returns a :class:`repro.sim.SimulationResult` on success or a structured
    :class:`repro.sim.SimulationFailure` on timeout/crash/error — it never
    raises for a failed simulation.  ``hierarchy`` is an architecture name,
    a :class:`repro.sim.CacheHierarchyConfig`, or ``None`` (the program's own
    target); ``config`` is a :class:`repro.sim.RuntimeConfig` (defaults to
    the env-deferring ``RuntimeConfig()``).
    """
    outcomes = simulate_batch(
        [program],
        hierarchy,
        config=config,
        trace_options=trace_options,
        timeout_s=timeout_s,
    )
    return outcomes[0]


def simulate_batch(
    programs, hierarchy=None, *, config=None, trace_options=None, timeout_s=None
):
    """Simulate many programs on the candidate-batch fast path.

    Returns one :class:`repro.sim.SimulationResult` or
    :class:`repro.sim.SimulationFailure` per program, in input order, with
    per-candidate failure containment (one bad candidate never poisons the
    batch).  Statistics are bit-identical to per-program :func:`simulate`.
    """
    from repro.sim import BatchSimulator, TraceOptions

    programs = list(programs)
    if not programs:
        return []
    arch, hierarchy_config = _resolve_target(programs[0], hierarchy)
    batch = BatchSimulator(
        arch,
        hierarchy_config,
        trace_options if trace_options is not None else TraceOptions(),
        config=config,
    )
    return list(batch.iter_batch(programs, timeout_s=timeout_s))

"""Bounded retry with exponential backoff and deterministic jitter.

The jitter draw is a pure function of ``(seed, key, attempt)`` — the same
SplitMix64 mapping the fault registry uses — so two runs of the same retry
schedule sleep identical durations and chaos tests replay exactly.  A policy
with ``max_attempts=1`` disables retrying entirely, which is the default
unless ``REPRO_RETRY_ATTEMPTS`` says otherwise.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.reliability.faults import _unit_float


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and deterministic jitter."""

    #: Total attempts including the first one; 1 disables retrying.
    max_attempts: int = 1
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    #: Fraction of the backoff delay randomised away (0 = fixed delays).
    jitter: float = 0.5
    #: Seed of the deterministic jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``REPRO_RETRY_*`` (attempts default 1 = disabled)."""
        return cls(
            max_attempts=int(os.environ.get("REPRO_RETRY_ATTEMPTS", "1")),
            base_delay_s=float(os.environ.get("REPRO_RETRY_BASE_DELAY_S", "0.05")),
            max_delay_s=float(os.environ.get("REPRO_RETRY_MAX_DELAY_S", "2.0")),
            seed=int(os.environ.get("REPRO_RETRY_SEED", "0")),
        )

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Backoff before retrying after failed attempt ``attempt`` (1-based).

        Exponential in the attempt index, capped at ``max_delay_s``, with a
        deterministic jitter drawn from ``(seed, key, attempt)`` shaving off
        up to ``jitter`` of the raw delay.
        """
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * _unit_float(self.seed, f"retry:{key}", attempt))

    def call(self, fn, *, key: str = "", retry_on=(Exception,), sleep=time.sleep):
        """Run ``fn()`` with up to ``max_attempts`` attempts.

        Exceptions matching ``retry_on`` are retried after the backoff
        delay; the last attempt's exception propagates unchanged.
        """
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on:
                if attempt >= self.max_attempts:
                    raise
                sleep(self.delay_s(attempt, key))

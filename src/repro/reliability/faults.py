"""Deterministic fault injection for the chaos test harness.

Production code is sprinkled with *injection sites* — named points where a
fault can be provoked on demand: the simulator pool workers
(``worker_crash``), the disk-memo read/write path (``memo_corrupt_read`` /
``memo_corrupt_write``), the native kernel dispatch (``native_fault``), the
first-use library probe (``native_probe``), and the service layer — a
dropped client connection (``service_conn_drop``), a failing result-store
query (``store_io_error``), a dying service worker thread
(``worker_thread_crash``) and a garbled journaled program blob
(``journal_corrupt``).  With no profile configured every site is a no-op
costing one dictionary lookup, so the fault-free path is unchanged.

A profile is a semicolon-separated list of clauses::

    REPRO_FAULT_INJECT="worker_crash:p=0.2;memo_corrupt_read:p=0.2;native_fault:once;seed=42"

Each clause names a site plus parameters: ``p=<float>`` fires with that
probability per query (default 1.0), ``once`` fires on exactly the first
eligible query, ``n=<int>`` caps the total number of fires, ``after=<int>``
skips the first queries.  The ``seed=<int>`` clause seeds every decision.

Decisions are a pure function of ``(seed, site, per-site query ordinal)`` —
the SplitMix64 finalizer mapped to a unit float — so a failing run replays
exactly under the same profile and query order (serial backends are fully
deterministic; thread backends determine the *set* of fired ordinals but may
interleave which worker observes them).  Worker processes inherit the
environment and replay their own ordinal streams from zero.

Tests configure profiles explicitly with :func:`configure` (which overrides
the environment) and restore the fault-free default with :func:`reset`.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

ENV_VAR = "REPRO_FAULT_INJECT"

_MASK64 = (1 << 64) - 1


class InjectedFault(RuntimeError):
    """A fault raised by the injection registry (never by real code paths)."""

    def __init__(self, site: str, ordinal: int):
        super().__init__(f"injected fault at site {site!r} (query #{ordinal})")
        self.site = site
        self.ordinal = ordinal


class InjectedWorkerCrash(InjectedFault):
    """An injected simulator-worker crash (thread/serial flavour)."""


def _unit_float(seed: int, site: str, ordinal: int) -> float:
    """Deterministic uniform draw in [0, 1) for one site query."""
    key = seed & _MASK64
    for ch in site:
        key = (key * 0x100000001B3 ^ ord(ch)) & _MASK64
    key = (key ^ ordinal * 0x165667B19E3779F9) & _MASK64
    z = ((key ^ (key >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return (z >> 11) / float(1 << 53)


@dataclass
class FaultSpec:
    """Parsed parameters of one injection site."""

    site: str
    probability: float = 1.0
    max_fires: Optional[int] = None
    skip_first: int = 0


@dataclass
class FaultRegistry:
    """Per-process fault state: specs, per-site query/fire counters."""

    specs: Dict[str, FaultSpec] = field(default_factory=dict)
    seed: int = 0
    queries: Dict[str, int] = field(default_factory=dict)
    fires: Dict[str, int] = field(default_factory=dict)

    def should_inject(self, site: str) -> bool:
        """Whether the next query at ``site`` fires; advances the ordinal."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        with _LOCK:
            ordinal = self.queries.get(site, 0)
            self.queries[site] = ordinal + 1
            if ordinal < spec.skip_first:
                return False
            fired = self.fires.get(site, 0)
            if spec.max_fires is not None and fired >= spec.max_fires:
                return False
            if spec.probability < 1.0 and _unit_float(self.seed, site, ordinal) >= spec.probability:
                return False
            self.fires[site] = fired + 1
            return True


def parse_profile(text: str) -> FaultRegistry:
    """Parse a ``REPRO_FAULT_INJECT`` profile string into a registry."""
    registry = FaultRegistry()
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            registry.seed = int(clause[len("seed="):])
            continue
        site, _, params = clause.partition(":")
        spec = FaultSpec(site=site.strip())
        for param in params.split(","):
            param = param.strip()
            if not param:
                continue
            if param == "once":
                spec.max_fires = 1
            elif param.startswith("p="):
                spec.probability = float(param[2:])
            elif param.startswith("n="):
                spec.max_fires = int(param[2:])
            elif param.startswith("after="):
                spec.skip_first = int(param[6:])
            else:
                raise ValueError(f"unknown fault parameter {param!r} in clause {clause!r}")
        registry.specs[spec.site] = spec
    return registry


_LOCK = threading.Lock()
#: Explicit override installed by :func:`configure`; ``None`` defers to the
#: environment.  The env-derived registry is cached on the raw profile text.
_override: Optional[FaultRegistry] = None
_env_cache: tuple = ("", None)


def configure(profile: Optional[str], seed: Optional[int] = None) -> FaultRegistry:
    """Install a profile (overriding the environment) and return its registry."""
    global _override
    registry = parse_profile(profile or "")
    if seed is not None:
        registry.seed = seed
    _override = registry
    return registry


def reset() -> None:
    """Drop any configured override and forget the cached environment parse."""
    global _override, _env_cache
    _override = None
    _env_cache = ("", None)


def active_registry() -> Optional[FaultRegistry]:
    """The registry in effect, or ``None`` when injection is fully disabled."""
    global _env_cache
    if _override is not None:
        return _override if _override.specs else None
    text = os.environ.get(ENV_VAR, "")
    if not text:
        return None
    cached_text, cached = _env_cache
    if cached_text != text:
        cached = parse_profile(text)
        _env_cache = (text, cached)
    return cached


def fault_injection_enabled() -> bool:
    """Whether any injection site is armed in this process."""
    return active_registry() is not None


def should_inject(site: str) -> bool:
    """Whether ``site`` fires on this query (advances its ordinal)."""
    registry = active_registry()
    return registry is not None and registry.should_inject(site)


def maybe_raise(site: str) -> None:
    """Raise :class:`InjectedFault` when ``site`` fires; no-op otherwise."""
    registry = active_registry()
    if registry is not None and registry.should_inject(site):
        raise InjectedFault(site, registry.queries.get(site, 1) - 1)


def maybe_crash_worker(site: str = "worker_crash") -> None:
    """Simulate a dying pool worker when ``site`` fires.

    Inside a child process the worker hard-exits — exactly what a segfault
    looks like to the parent (``BrokenProcessPool``).  In the parent process
    (thread/serial backends) an :class:`InjectedWorkerCrash` is raised
    instead, which the resilient dispatch paths contain per program.
    """
    registry = active_registry()
    if registry is None or not registry.should_inject(site):
        return
    import multiprocessing

    if multiprocessing.parent_process() is not None:
        os._exit(70)
    raise InjectedWorkerCrash(site, registry.queries.get(site, 1) - 1)


def corrupt_text(site: str, text: str) -> str:
    """Deterministically garble ``text`` when ``site`` fires.

    Three corruption flavours rotate by fire ordinal: truncation (a torn
    write), byte garbage (a bad sector) and a wrong-schema JSON object —
    covering each branch of the memo validation path.
    """
    registry = active_registry()
    if registry is None or not registry.should_inject(site):
        return text
    ordinal = registry.queries.get(site, 1) - 1
    flavour = ordinal % 3
    if flavour == 0:
        return text[: max(len(text) // 2, 1)]
    if flavour == 1:
        return "\x00garbage\xff" + text[:8]
    return '{"schema": -1, "stats": {}}'

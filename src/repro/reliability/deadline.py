"""Cooperative deadlines for bounded simulation work.

A :class:`Deadline` is an absolute point on the monotonic clock.  Long
loops — the trace walk in :func:`repro.sim.cpu.run_data_trace` checks once
per descriptor/address chunk — poll the ambient deadline and raise
:class:`DeadlineExceeded` when it has passed, so a pathological candidate
costs one chunk of overshoot instead of hanging the tuner.  The ambient
deadline is a thread-local stack managed by :func:`deadline_scope`;
``Simulator.run(..., timeout_s=...)`` and the pool workers install one per
simulated program.  With no scope installed every check is a no-op.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional


class DeadlineExceeded(TimeoutError):
    """A cooperative deadline expired mid-simulation."""

    def __init__(self, budget_s: float, context: str = ""):
        where = f" during {context}" if context else ""
        super().__init__(f"simulation exceeded its {budget_s:.3g}s deadline{where}")
        self.budget_s = budget_s
        self.context = context


@dataclass(frozen=True)
class Deadline:
    """An absolute deadline on the monotonic clock."""

    expires_at: float
    budget_s: float

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(expires_at=time.monotonic() + seconds, budget_s=seconds)

    def remaining(self) -> float:
        """Seconds left (negative when expired)."""
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return time.monotonic() >= self.expires_at

    def check(self, context: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if time.monotonic() >= self.expires_at:
            raise DeadlineExceeded(self.budget_s, context)


class _DeadlineStack(threading.local):
    def __init__(self):
        self.stack = []


_SCOPES = _DeadlineStack()


def current_deadline() -> Optional[Deadline]:
    """The innermost ambient deadline of this thread, or ``None``."""
    stack = _SCOPES.stack
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Optional[Deadline]):
    """Install ``deadline`` as the ambient deadline for the duration.

    ``None`` installs nothing (so call sites can pass an optional budget
    through unconditionally).  Scopes nest; the innermost wins.
    """
    if deadline is None:
        yield None
        return
    _SCOPES.stack.append(deadline)
    try:
        yield deadline
    finally:
        _SCOPES.stack.pop()

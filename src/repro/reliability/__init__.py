"""Resilience substrate: deadlines, retries, fault injection, degradation.

The simulation/measure/pipeline stack imports this package for four
cross-cutting facilities (see the README's "Failure semantics" section):

* :mod:`repro.reliability.deadline` — cooperative deadlines, so
  ``Runner.timeout_s`` bounds a hung candidate instead of being ignored;
* :mod:`repro.reliability.retry` — bounded retry with exponential backoff
  and deterministic jitter;
* :mod:`repro.reliability.faults` — the ``REPRO_FAULT_INJECT`` registry
  behind the chaos test suite;
* the structured degradation warnings below, emitted when a layer falls
  back (process pool → threads → serial, native kernels → NumPy) so the
  degraded mode is visible without failing the run.

The package is a leaf: it imports nothing from the rest of ``repro``, so
every layer can depend on it without cycles.
"""

from repro.reliability.breaker import CircuitBreaker
from repro.reliability.deadline import (
    Deadline,
    DeadlineExceeded,
    current_deadline,
    deadline_scope,
)
from repro.reliability.faults import (
    FaultRegistry,
    FaultSpec,
    InjectedFault,
    InjectedWorkerCrash,
    fault_injection_enabled,
)
from repro.reliability.retry import RetryPolicy


class BackendDegradationWarning(RuntimeWarning):
    """A worker backend was demoted (e.g. ``processes`` → ``threads``)."""

    def __init__(self, from_backend: str, to_backend: str, reason: str):
        super().__init__(
            f"simulator pool degraded from {from_backend!r} to {to_backend!r}: {reason}"
        )
        self.from_backend = from_backend
        self.to_backend = to_backend
        self.reason = reason


class NativeKernelDemotionWarning(RuntimeWarning):
    """The compiled kernels were demoted to the NumPy fallback for this process."""

    def __init__(self, reason: str):
        super().__init__(f"native simulation kernels demoted to NumPy fallback: {reason}")
        self.reason = reason


class MemoQuarantineWarning(RuntimeWarning):
    """A corrupted disk-memo entry was quarantined and treated as a miss."""

    def __init__(self, path: str, reason: str):
        super().__init__(f"quarantined corrupted simulation-memo entry {path}: {reason}")
        self.path = path
        self.reason = reason


__all__ = [
    "BackendDegradationWarning",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "FaultRegistry",
    "FaultSpec",
    "InjectedFault",
    "InjectedWorkerCrash",
    "MemoQuarantineWarning",
    "NativeKernelDemotionWarning",
    "RetryPolicy",
    "current_deadline",
    "deadline_scope",
    "fault_injection_enabled",
]

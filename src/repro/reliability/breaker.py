"""Circuit breaker guarding the simulation backend behind the service.

:class:`CircuitBreaker` is the classic three-state machine:

* **closed** — traffic flows; consecutive whole-wave faults are counted and
  ``failure_threshold`` of them in a row trip the breaker;
* **open** — work is refused (the HTTP layer sheds misses with ``503`` and
  a ``Retry-After``) until the probe deadline passes;
* **half-open** — exactly one probe is let through; success closes the
  breaker, failure re-opens it with a fresh probe deadline.

Determinism follows the rest of :mod:`repro.reliability`: the probe delay
is ``reset_timeout_s`` shaved by a deterministic SplitMix64 jitter draw —
the same ``(seed, key, ordinal)`` mapping :class:`~repro.reliability.retry.
RetryPolicy` uses — and the clock is injectable, so breaker trajectories
replay exactly in tests (pass a fake ``clock`` and drive it by hand).

The breaker never raises; callers ask :meth:`CircuitBreaker.allow` before
doing guarded work and report outcomes with :meth:`record_success` /
:meth:`record_failure`.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

from repro.reliability.faults import _unit_float


class CircuitBreaker:
    """Closed/open/half-open breaker with a deterministic probe schedule."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 5.0,
        jitter: float = 0.5,
        seed: int = 0,
        key: str = "breaker",
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self.key = key
        self.clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._probe_at = 0.0
        #: Ordinal of the jitter draw: one per open transition, so repeated
        #: trips walk a deterministic, replayable probe schedule.
        self._opens = 0
        self.successes = 0
        self.failures = 0
        self.probes = 0

    # -- state machine ------------------------------------------------------
    def _probe_delay_s(self) -> float:
        """Jittered open→half-open delay; same shave-off shape as retry.py."""
        raw = self.reset_timeout_s
        if self.jitter <= 0.0:
            return raw
        draw = _unit_float(self.seed, f"breaker:{self.key}", self._opens)
        return raw * (1.0 - self.jitter * draw)

    def _open_locked(self) -> None:
        self._state = self.OPEN
        self._opens += 1
        self._probe_at = self.clock() + self._probe_delay_s()

    def allow(self) -> bool:
        """Whether guarded work may proceed right now.

        In the open state this flips to half-open once the probe deadline
        passes and admits exactly one probe; further calls are refused until
        the probe settles through :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN and self.clock() >= self._probe_at:
                self._state = self.HALF_OPEN
                self.probes += 1
                return True
            return False  # open before the deadline, or a probe in flight

    def record_success(self) -> None:
        """A guarded unit of work succeeded; closes a half-open breaker."""
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state != self.CLOSED:
                self._state = self.CLOSED

    def record_failure(self) -> None:
        """A guarded unit of work faulted wholesale; may trip the breaker."""
        with self._lock:
            self.failures += 1
            if self._state == self.HALF_OPEN:
                self._open_locked()  # failed probe: back to open, new deadline
                return
            if self._state == self.OPEN:
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._open_locked()

    # -- introspection ------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def retry_after_s(self) -> float:
        """Seconds until the next probe is due (0 when traffic flows)."""
        with self._lock:
            if self._state == self.CLOSED:
                return 0.0
            if self._state == self.HALF_OPEN:
                return self._probe_delay_s()  # a probe is in flight; come back soon
            return max(self._probe_at - self.clock(), 0.0)

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": float(self._consecutive_failures),
                "opens": float(self._opens),
                "probes": float(self.probes),
                "successes": float(self.successes),
                "failures": float(self.failures),
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.failure_threshold}, opens={self._opens})"
        )

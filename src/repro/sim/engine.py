"""Vectorized cache-simulation engine: array-based tag stores and a fused
chunk-level hierarchy walk.

The reference implementation in :mod:`repro.sim.cache` walks every memory
reference through a per-access Python loop over per-set lists.  That loop is
the hot path of the whole reproduction — every benchmark and every
dataset-generation run funnels the full memory trace through it — so this
module provides a drop-in engine that processes each trace chunk with
array-level operations instead.

State layout
------------
Each cache level keeps fixed-shape NumPy arrays:

* ``tags``  — ``(sets, associativity) int64``; ``-1`` marks an empty way.
* ``dirty`` — ``(sets, associativity) bool``; write-back state per way.
* ``age``   — ``(sets, associativity) int64``; last-use tick (LRU victims).
* ``order`` — ``(sets, associativity) int64``; insertion tick (FIFO victims).
* ``occupancy`` — ``(sets,) int64``; ways are filled in order before any
  eviction happens, so ways ``[0, occupancy)`` are exactly the valid ones.

Chunk algorithm
---------------
Accesses within one chunk are independent across sets; only accesses to the
*same* set form a dependency chain.  A chunk is therefore processed as:

1. **Stable sort by set** — groups each set's accesses while preserving
   program order inside the group.
2. **Run collapse** — consecutive same-line accesses within a set group are
   guaranteed hits after the first one (nothing can evict the line in
   between), so each run is collapsed to a single head access carrying two
   flags: the write flag of the head (statistics attribution) and whether any
   access of the run writes (dirty state).
3. **First-touch pre-resolution (LRU)** — for a set whose chunk touches at
   most ``associativity`` distinct lines, a line once touched can never be
   evicted before the chunk ends (an LRU victim is always the oldest way,
   and untouched ways are always older than touched ones), so every
   *re-touch* head is a guaranteed hit.  Only the first touch of each
   distinct line needs sequential processing, which bounds the dependency
   chain per set at ``associativity`` events.
4. **Rank rounds** — the remaining events are processed in rounds: round
   ``r`` handles the ``r``-th event of every set at once (all distinct sets,
   hence fully vectorizable).  When a round gets too narrow (a few heavily
   skewed sets), the tail is finished by a scalar loop over the array state —
   this is the intra-chunk same-set dependency fallback.
5. **Global reconstruction** — hit/miss outcomes are scattered back to trace
   positions to compute sequential-miss statistics and to materialize the
   forwarded fill/write-back stream *in program order* as two arrays, which
   the owning cache hands to the next level in one call.  The whole
   L1D→L2→(L3)→memory walk therefore runs as one chunk-level pass per level
   instead of per-access bookkeeping.

The random replacement policy is not vectorized: its victim choice consumes
one RNG draw per eviction *in trace order*, which a round-based schedule
cannot replay bit-identically.  :class:`repro.sim.cache.Cache` keeps the
reference engine for random-replacement caches.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

#: Engine identifiers, threaded through ``Cache`` / ``CacheHierarchy`` /
#: ``Simulator`` / ``SimulatorPool`` / ``TraceOptions``.
ENGINE_REFERENCE = "reference"
ENGINE_VECTORIZED = "vectorized"
ENGINES = (ENGINE_REFERENCE, ENGINE_VECTORIZED)

#: Chunks smaller than this are processed by the scalar loop directly; the
#: fixed cost of the vector path (sort, segment bookkeeping) does not pay off.
SCALAR_CHUNK_CUTOFF = 48
#: Rank rounds narrower than this finish through the per-set chain loop: a
#: round has a fixed cost of a few dozen NumPy calls, so below this width the
#: list-based tail is cheaper per event.
ROUND_WIDTH_CUTOFF = 24


def default_engine() -> str:
    """The engine used when none is requested (``REPRO_SIM_ENGINE`` overrides)."""
    return os.environ.get("REPRO_SIM_ENGINE", ENGINE_VECTORIZED)


def resolve_engine(engine: Optional[str]) -> str:
    """Validate ``engine``, substituting the default when ``None``."""
    engine = engine or default_engine()
    if engine not in ENGINES:
        raise ValueError(f"unknown simulation engine {engine!r}; expected one of {ENGINES}")
    return engine


@dataclass
class ChunkOutcome:
    """Statistics deltas and the forwarded stream of one processed chunk."""

    hits: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    read_replacements: int = 0
    write_replacements: int = 0
    writebacks: int = 0
    sequential_misses: int = 0
    last_miss_line: int = -2
    #: Fills and write-backs for the next level, in program order (fills are
    #: reads from below, write-backs are writes); ``None`` when nothing missed.
    forwarded_lines: Optional[np.ndarray] = None
    forwarded_writes: Optional[np.ndarray] = None


class VectorCacheState:
    """Array-based tag store and chunk processor for one cache level."""

    def __init__(self, sets: int, associativity: int, replacement: str):
        if replacement not in ("lru", "fifo"):
            raise ValueError(
                f"vectorized engine supports lru/fifo replacement, got {replacement!r}"
            )
        self.sets = sets
        self.associativity = associativity
        self.replacement = replacement
        self._set_mask = sets - 1
        self.reset()

    def reset(self) -> None:
        """Flush all resident lines."""
        sets, assoc = self.sets, self.associativity
        self.tags = np.full((sets, assoc), -1, dtype=np.int64)
        self.dirty = np.zeros((sets, assoc), dtype=bool)
        self.age = np.zeros((sets, assoc), dtype=np.int64)
        self.order = np.zeros((sets, assoc), dtype=np.int64)
        self.occupancy = np.zeros(sets, dtype=np.int64)
        # Monotone global tick; pre-chunk ages are always strictly smaller
        # than the ticks assigned inside the next chunk.
        self._tick = 1

    # -- introspection ------------------------------------------------------
    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        return int(self.occupancy.sum())

    def contains_line(self, line: int) -> bool:
        """Whether ``line`` is resident."""
        set_index = line & self._set_mask
        occupancy = int(self.occupancy[set_index])
        return bool((self.tags[set_index, :occupancy] == line).any())

    # -- scalar paths -------------------------------------------------------
    def _scalar_event(
        self,
        set_index: int,
        line: int,
        dirty_value: bool,
        age_value: int,
    ) -> Tuple[bool, int, bool]:
        """Process one access sequentially on the array state.

        Returns ``(hit, victim_line, victim_was_dirty)`` with ``victim_line``
        ``-1`` when no valid line was evicted.
        """
        tags = self.tags
        occupancy = int(self.occupancy[set_index])
        row = tags[set_index]
        way = -1
        for candidate in range(occupancy):
            if row[candidate] == line:
                way = candidate
                break
        lru = self.replacement == "lru"
        if way >= 0:
            if dirty_value:
                self.dirty[set_index, way] = True
            if lru:
                self.age[set_index, way] = age_value
            return True, -1, False
        victim_line = -1
        victim_dirty = False
        if occupancy < self.associativity:
            way = occupancy
            self.occupancy[set_index] = occupancy + 1
        else:
            if lru:
                way = int(self.age[set_index].argmin())
            else:
                way = int(self.order[set_index].argmin())
            victim_line = int(row[way])
            victim_dirty = bool(self.dirty[set_index, way])
        tags[set_index, way] = line
        self.dirty[set_index, way] = dirty_value
        if lru:
            self.age[set_index, way] = age_value
        else:
            self.order[set_index, way] = age_value
        return False, victim_line, victim_dirty

    def process_single(self, line: int, is_write: bool, last_miss_line: int) -> ChunkOutcome:
        """Scalar fast path for one access (no array allocations on hits)."""
        outcome = ChunkOutcome(last_miss_line=last_miss_line)
        set_index = line & self._set_mask
        tick = self._tick
        self._tick = tick + 1
        hit, victim_line, victim_dirty = self._scalar_event(set_index, line, is_write, tick)
        if hit:
            outcome.hits = 1
            if is_write:
                outcome.write_hits = 1
            else:
                outcome.read_hits = 1
            return outcome
        if is_write:
            outcome.write_misses = 1
        else:
            outcome.read_misses = 1
        if line == last_miss_line + 1:
            outcome.sequential_misses = 1
        outcome.last_miss_line = line
        forwarded: List[int] = [line]
        flags: List[bool] = [False]
        if victim_line >= 0:
            if is_write:
                outcome.write_replacements = 1
            else:
                outcome.read_replacements = 1
            if victim_dirty:
                outcome.writebacks = 1
                forwarded.append(victim_line)
                flags.append(True)
        outcome.forwarded_lines = np.asarray(forwarded, dtype=np.int64)
        outcome.forwarded_writes = np.asarray(flags, dtype=bool)
        return outcome

    def _process_scalar_chunk(
        self, lines: np.ndarray, is_write: np.ndarray, last_miss_line: int
    ) -> ChunkOutcome:
        """Reference-order scalar loop over the array state (small chunks)."""
        outcome = ChunkOutcome(last_miss_line=last_miss_line)
        forwarded: List[int] = []
        flags: List[bool] = []
        tick = self._tick
        for line, write in zip(lines.tolist(), is_write.tolist()):
            set_index = line & self._set_mask
            hit, victim_line, victim_dirty = self._scalar_event(set_index, line, write, tick)
            tick += 1
            if hit:
                outcome.hits += 1
                if write:
                    outcome.write_hits += 1
                else:
                    outcome.read_hits += 1
                continue
            if write:
                outcome.write_misses += 1
            else:
                outcome.read_misses += 1
            if line == outcome.last_miss_line + 1:
                outcome.sequential_misses += 1
            outcome.last_miss_line = line
            forwarded.append(line)
            flags.append(False)
            if victim_line >= 0:
                if write:
                    outcome.write_replacements += 1
                else:
                    outcome.read_replacements += 1
                if victim_dirty:
                    outcome.writebacks += 1
                    forwarded.append(victim_line)
                    flags.append(True)
        self._tick = tick
        if forwarded:
            outcome.forwarded_lines = np.asarray(forwarded, dtype=np.int64)
            outcome.forwarded_writes = np.asarray(flags, dtype=bool)
        return outcome

    # -- vectorized chunk path ---------------------------------------------
    def process_chunk(
        self, lines: np.ndarray, is_write: np.ndarray, last_miss_line: int
    ) -> ChunkOutcome:
        """Process one in-order chunk of line addresses; see the module docs."""
        n = int(lines.size)
        if n == 0:
            return ChunkOutcome(last_miss_line=last_miss_line)
        if n < SCALAR_CHUNK_CUTOFF:
            return self._process_scalar_chunk(lines, is_write, last_miss_line)

        lru = self.replacement == "lru"
        assoc = self.associativity
        set_idx = lines & self._set_mask
        # Stable integer argsort is a radix sort with one pass per key byte;
        # set indices fit one or two bytes, so narrowing the key dtype cuts
        # the dominant sort cost to 1-2 passes.
        if self.sets <= (1 << 8):
            sort_key = set_idx.astype(np.uint8)
        elif self.sets <= (1 << 16):
            sort_key = set_idx.astype(np.uint16)
        else:
            sort_key = set_idx
        perm = np.argsort(sort_key, kind="stable")
        sorted_lines = lines[perm]
        sorted_sets = set_idx[perm]
        sorted_writes = is_write[perm]

        # 2. collapse consecutive same-line runs within each set group
        head_flag = np.empty(n, dtype=bool)
        head_flag[0] = True
        np.logical_or(
            sorted_lines[1:] != sorted_lines[:-1],
            sorted_sets[1:] != sorted_sets[:-1],
            out=head_flag[1:],
        )
        head_pos = np.flatnonzero(head_flag)
        n_heads = int(head_pos.size)
        head_lines = sorted_lines[head_pos]
        head_sets = sorted_sets[head_pos]
        first_write = sorted_writes[head_pos]
        run_writes = np.add.reduceat(sorted_writes.astype(np.int64), head_pos)
        any_write = run_writes > 0
        run_len = np.empty(n_heads, dtype=np.int64)
        if n_heads > 1:
            run_len[:-1] = np.diff(head_pos)
        run_len[-1] = n - head_pos[-1]
        head_orig = perm[head_pos]
        last_orig = perm[head_pos + run_len - 1]

        # 3. first-touch pre-resolution (LRU): group heads by (set, line)
        if lru:
            group_perm = np.lexsort((head_lines, head_sets))
            grouped_sets = head_sets[group_perm]
            grouped_lines = head_lines[group_perm]
            group_flag = np.empty(n_heads, dtype=bool)
            group_flag[0] = True
            np.logical_or(
                grouped_sets[1:] != grouped_sets[:-1],
                grouped_lines[1:] != grouped_lines[:-1],
                out=group_flag[1:],
            )
            group_start = np.flatnonzero(group_flag)
            group_of_sorted = np.cumsum(group_flag) - 1
            group_any_write = np.add.reduceat(any_write[group_perm].astype(np.int64), group_start) > 0
            group_last = np.maximum.reduceat(last_orig[group_perm], group_start)
            first_touch = np.zeros(n_heads, dtype=bool)
            first_touch[group_perm[group_start]] = True
            agg_any_write = np.empty(n_heads, dtype=bool)
            agg_any_write[group_perm] = group_any_write[group_of_sorted]
            agg_last = np.empty(n_heads, dtype=np.int64)
            agg_last[group_perm] = group_last[group_of_sorted]
            distinct_per_set = np.bincount(grouped_sets[group_start], minlength=self.sets)
            compliant = (distinct_per_set <= assoc)[head_sets]
            use_agg = compliant & first_touch
            event_mask = first_touch | ~compliant
            dirty_value = np.where(use_agg, agg_any_write, any_write)
            age_value = np.where(use_agg, agg_last, last_orig)
        else:
            event_mask = np.ones(n_heads, dtype=bool)
            dirty_value = any_write
            age_value = head_orig  # FIFO: insertion order of the access

        event_pos = np.flatnonzero(event_mask)
        n_events = int(event_pos.size)
        event_sets = head_sets[event_pos]
        event_lines = head_lines[event_pos]
        event_dirty = dirty_value[event_pos]
        event_age = age_value[event_pos] + self._tick
        event_orig = head_orig[event_pos]
        hit_out = np.zeros(n_events, dtype=bool)
        victim_line = np.full(n_events, -1, dtype=np.int64)
        victim_wb = np.zeros(n_events, dtype=bool)

        if n_events:
            self._run_events(
                event_sets, event_lines, event_dirty, event_age, hit_out, victim_line, victim_wb
            )
        self._tick += n

        # 5. statistics and the forwarded stream, in program order
        outcome = ChunkOutcome(last_miss_line=last_miss_line)
        followers_total = n - n_heads
        followers_writes = int(run_writes.sum()) - int(np.count_nonzero(first_write))
        event_first_write = first_write[event_pos]
        miss_out = ~hit_out
        n_misses = int(np.count_nonzero(miss_out))
        write_misses = int(np.count_nonzero(miss_out & event_first_write))
        event_write_hits = int(np.count_nonzero(hit_out & event_first_write))
        head_write = int(np.count_nonzero(first_write))
        # Pre-resolved re-touch heads are hits; attribute them by their own flag.
        resolved_hits = n_heads - n_events
        resolved_write_hits = head_write - int(np.count_nonzero(event_first_write))
        outcome.hits = n - n_misses
        outcome.write_hits = followers_writes + event_write_hits + resolved_write_hits
        outcome.read_hits = outcome.hits - outcome.write_hits
        outcome.write_misses = write_misses
        outcome.read_misses = n_misses - write_misses
        replaced = miss_out & (victim_line >= 0)
        outcome.write_replacements = int(np.count_nonzero(replaced & event_first_write))
        outcome.read_replacements = int(np.count_nonzero(replaced)) - outcome.write_replacements
        outcome.writebacks = int(np.count_nonzero(victim_wb))
        del resolved_hits  # implied by the hit total; kept for readability above

        if n_misses:
            trace_order = np.argsort(event_orig[miss_out])
            miss_lines = event_lines[miss_out][trace_order]
            outcome.sequential_misses = int(np.count_nonzero(miss_lines[1:] == miss_lines[:-1] + 1))
            if miss_lines[0] == last_miss_line + 1:
                outcome.sequential_misses += 1
            outcome.last_miss_line = int(miss_lines[-1])

            writeback = victim_wb[miss_out][trace_order]
            victims = victim_line[miss_out][trace_order]
            total_forwarded = n_misses + int(np.count_nonzero(writeback))
            forwarded = np.empty(total_forwarded, dtype=np.int64)
            flags = np.zeros(total_forwarded, dtype=bool)
            slots = np.zeros(n_misses, dtype=np.int64)
            np.cumsum(1 + writeback[:-1], out=slots[1:])
            forwarded[slots] = miss_lines
            wb_slots = slots[writeback] + 1
            forwarded[wb_slots] = victims[writeback]
            flags[wb_slots] = True
            outcome.forwarded_lines = forwarded
            outcome.forwarded_writes = flags
        return outcome

    def _run_events(
        self,
        event_sets: np.ndarray,
        event_lines: np.ndarray,
        event_dirty: np.ndarray,
        event_age: np.ndarray,
        hit_out: np.ndarray,
        victim_line: np.ndarray,
        victim_wb: np.ndarray,
    ) -> None:
        """Rank rounds over per-set event chains (events are sorted by set)."""
        n_events = int(event_sets.size)
        boundary = np.empty(n_events, dtype=bool)
        boundary[0] = True
        np.not_equal(event_sets[1:], event_sets[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        sizes = np.empty(starts.size, dtype=np.int64)
        if starts.size > 1:
            sizes[:-1] = np.diff(starts)
        sizes[-1] = n_events - starts[-1]
        by_size = np.argsort(-sizes, kind="stable")
        starts_desc = starts[by_size]
        neg_sizes = -sizes[by_size]  # ascending

        tags, dirty, age, order = self.tags, self.dirty, self.age, self.order
        occupancy = self.occupancy
        lru = self.replacement == "lru"
        assoc = self.associativity
        rounds = int(sizes[by_size[0]])
        lanes = np.arange(min(int(starts.size), n_events))
        round_index = 0
        while round_index < rounds:
            # groups still alive in this round have size > round_index
            width = int(np.searchsorted(neg_sizes, -round_index, side="left"))
            if width < ROUND_WIDTH_CUTOFF:
                break
            idx = starts_desc[:width] + round_index
            sel = event_sets[idx]
            line = event_lines[idx]
            rows = tags[sel]
            match = rows == line[:, None]
            hit = match.any(axis=1)
            way_hit = match.argmax(axis=1)
            occ_sel = occupancy[sel]
            full = occ_sel == assoc
            if lru:
                victim_way = age[sel].argmin(axis=1)
            else:
                victim_way = order[sel].argmin(axis=1)
            way = np.where(hit, way_hit, np.where(full, victim_way, occ_sel))
            evicted = rows[lanes[:width], way]
            miss = ~hit
            evicting = miss & full
            hit_out[idx] = hit
            victim_line[idx] = np.where(evicting, evicted, -1)
            victim_wb[idx] = evicting & dirty[sel, way]
            tags[sel, way] = line
            dirty[sel, way] = (dirty[sel, way] & hit) | event_dirty[idx]
            if lru:
                age[sel, way] = event_age[idx]
            else:
                order[sel, way] = np.where(miss, event_age[idx], order[sel, way])
            occupancy[sel] = occ_sel + (miss & ~full)
            round_index += 1

        if round_index < rounds:
            # Chain tail: the few sets whose event chains outlive the wide
            # rounds (intra-chunk same-set dependency runs) are finished by
            # an ordered-list walk at reference-loop speed.
            remaining = int(np.searchsorted(neg_sizes, -round_index, side="left"))
            for lane in range(remaining):
                start = int(starts_desc[lane]) + round_index
                stop = int(starts_desc[lane]) - int(neg_sizes[lane])
                self._scalar_chain(
                    int(event_sets[start]),
                    event_lines[start:stop].tolist(),
                    event_dirty[start:stop].tolist(),
                    event_age[start:stop].tolist(),
                    start,
                    hit_out,
                    victim_line,
                    victim_wb,
                )

    def _scalar_chain(
        self,
        set_index: int,
        chain_lines: list,
        chain_dirty: list,
        chain_age: list,
        out_offset: int,
        hit_out: np.ndarray,
        victim_line: np.ndarray,
        victim_wb: np.ndarray,
    ) -> None:
        """Walk one set's remaining event chain on an ordered entry list.

        The set's array state is converted to a recency-ordered (LRU) or
        insertion-ordered (FIFO) list of ``[tag, dirty, tick]`` entries once
        and the chain is processed with the O(1)-victim reference algorithm.
        List order is only used for victim picks inside the chain (where it
        is exact, see the first-touch argument in the module docs); the final
        write-back uses the events' explicit ticks, which carry the
        aggregated last-touch position of pre-resolved re-touches.
        """
        lru = self.replacement == "lru"
        assoc = self.associativity
        occupancy = int(self.occupancy[set_index])
        recency = self.age if lru else self.order
        order_desc = np.argsort(-recency[set_index, :occupancy], kind="stable")
        tag_row = self.tags[set_index]
        dirty_row = self.dirty[set_index]
        entries = [
            [int(tag_row[way]), bool(dirty_row[way]), int(recency[set_index, way])]
            for way in order_desc
        ]
        for position, (line, dirty_value, tick) in enumerate(
            zip(chain_lines, chain_dirty, chain_age)
        ):
            found = None
            for slot, entry in enumerate(entries):
                if entry[0] == line:
                    found = slot
                    break
            if found is not None:
                hit_out[out_offset + position] = True
                if dirty_value:
                    entries[found][1] = True
                if lru:
                    entries[found][2] = tick
                    if found != 0:
                        entries.insert(0, entries.pop(found))
                continue
            if len(entries) >= assoc:
                victim = entries.pop()
                victim_line[out_offset + position] = victim[0]
                victim_wb[out_offset + position] = victim[1]
            entries.insert(0, [line, dirty_value, tick])
        occupancy = len(entries)
        self.occupancy[set_index] = occupancy
        for way, entry in enumerate(entries):
            tag_row[way] = entry[0]
            dirty_row[way] = entry[1]
            recency[set_index, way] = entry[2]
        tag_row[occupancy:] = -1
        dirty_row[occupancy:] = False

"""Vectorized cache-simulation engine: array-based tag stores and a fused
chunk-level hierarchy walk.

The reference implementation in :mod:`repro.sim.cache` walks every memory
reference through a per-access Python loop over per-set lists.  That loop is
the hot path of the whole reproduction — every benchmark and every
dataset-generation run funnels the full memory trace through it — so this
module provides a drop-in engine that processes each trace chunk with
array-level operations instead.

State layout
------------
Each cache level keeps fixed-shape NumPy arrays:

* ``tags``  — ``(sets, associativity) int64``; ``-1`` marks an empty way.
* ``dirty`` — ``(sets, associativity) bool``; write-back state per way.
* ``recency`` — ``(sets, associativity) int64``; the policy's tick plane —
  last-use tick under LRU (hits re-touch it), insertion tick otherwise.
* ``aux``   — the policy's extra state plane from
  :mod:`repro.sim.policies`: PLRU tree bits (``(sets,) int64``), RRIP
  re-reference counters (``(sets, associativity) int64``), or a one-element
  dummy for policies without one (uniform kernel ABI).
* ``occupancy`` — ``(sets,) int64``; ways are filled in order before any
  eviction happens, so ways ``[0, occupancy)`` are exactly the valid ones.

Replacement behaviour — victim selection and the touch/insert state-update
rule — comes from the :class:`repro.sim.policies.PolicySpec` registry: the
scalar event walk and the chain tails drive the spec's scalar hooks, the
rank rounds drive its vectorized hooks, and the compiled kernels dispatch
on the spec's stable ``wire_id``.  Policies with *exact stack gating*
(``exact_stack`` — LRU) additionally enable the re-touch pre-resolution of
step 3 below; every other policy (FIFO/random/PLRU/RRIP) degrades
gracefully to plain chain/event evaluation of the same collapsed heads.

Chunk algorithm
---------------
Accesses within one chunk are independent across sets; only accesses to the
*same* set form a dependency chain.  A chunk is therefore processed as:

1. **Stable sort by set** — groups each set's accesses while preserving
   program order inside the group.
2. **Run collapse** — consecutive same-line accesses within a set group are
   guaranteed hits after the first one (nothing can evict the line in
   between), so each run is collapsed to a single head access carrying two
   flags: the write flag of the head (statistics attribution) and whether any
   access of the run writes (dirty state).
3. **Re-touch pre-resolution (LRU)** — a head that re-touches a line is a
   *guaranteed* hit whenever fewer than ``associativity`` other heads of the
   same set lie between it and the previous head of the same line: at most
   that many distinct lines can have been touched in between, so the line's
   LRU stack distance is below the associativity and it cannot have been
   evicted.  Guaranteed re-touches are folded into the previous head of
   their line as a *chain* whose head carries the aggregated dirty flag and
   the chain's last-touch tick; a set whose chunk touches at most
   ``associativity`` distinct lines (the chunk-compliant case) pre-resolves
   every re-touch the same way regardless of gaps.  Only chain heads need
   sequential processing.
4. **Rank rounds** — the remaining events are processed in rounds: round
   ``r`` handles the ``r``-th event of every set at once (all distinct sets,
   hence fully vectorizable).  When a round gets too narrow (a few heavily
   skewed sets), the tail is finished by a scalar loop over the array state —
   this is the intra-chunk same-set dependency fallback.
5. **Global reconstruction** — hit/miss outcomes are scattered back to trace
   positions to compute sequential-miss statistics and to materialize the
   forwarded fill/write-back stream *in program order* as two arrays, which
   the owning cache hands to the next level in one call.  The whole
   L1D→L2→(L3)→memory walk therefore runs as one chunk-level pass per level
   instead of per-access bookkeeping.

Descriptor front-end
--------------------
:meth:`repro.codegen.program.Program.memory_trace_descriptors` emits the
trace as multi-level grid run batches ``(base, strides[], counts[])``
instead of address arrays: the innermost level is an affine run, and outer
levels replicate the stored runs across predicate-free loop variables (a
tiled inner window nested under outer loops is one descriptor).
:func:`chunk_heads` expands the replication levels transiently — one 1-D
run per innermost row — and maps each row to its collapsed per-line heads
in closed form: a run with ``|stride| < line_bytes`` touches a staircase of
consecutive lines whose per-line member ranges are pure interval
arithmetic, a zero-stride run is a single head, and a run with ``|stride|
>= line_bytes`` yields one head per access.  Adjacent rows landing on the
same line merge in the final same-(set, line) pass, so steps 1–2 above
never see the expanded stream and their cost scales with the number of
*distinct-line heads* rather than the number of accesses.  Closed-form
collapse is only exact while no *other* line of the same set is interleaved
with a head's members; heads whose position intervals overlap a
different-line head of the same set are therefore **segment-split** at the
overlap boundaries — clean prefix and suffix sub-runs stay collapsed, and
only remainders still conflicted after :data:`SEGMENT_SPLIT_PASSES` rounds
are exploded into exact singleton members (same-line overlap is harmless:
the chain machinery of step 3 aggregates it).  The resulting heads join the
pipeline at step 3 unchanged, which keeps descriptor statistics
bit-identical to the expanded engines.

Native pipeline and arena batching
----------------------------------
With the compiled kernels of :mod:`repro.sim._native` available, the whole
descriptor fast path runs below the Python line: descriptor chunks are
grouped into packed :class:`~repro.codegen.program.DescriptorArena` buffers
(:meth:`Cache.access_descriptor_stream`), and one foreign call per cache
level per group performs the head pipeline (or, for chunks whose head
estimate is poor, member expansion plus maximal collapse), the LRU
stack-distance pre-resolution, the event walk and the statistics /
forwarded-stream construction for every chunk of the group
(:meth:`VectorCacheState.process_descriptor_arena`).  The combined miss
stream reaches the next level as one batch; statistics are
chunking-invariant, so the coarser granularity never changes results.
:func:`chunk_heads` stays the bit-identity oracle (and the
``REPRO_SIM_NATIVE=0`` fallback); ``REPRO_SIM_ARENA=0`` restores per-chunk
dispatch on the native kernels.  Kernel scratch is pooled per thread
(:class:`_ArenaScratch`), so short-lived hierarchies reuse warm pages.

Replayable random replacement
-----------------------------
The random policy draws its victims from a *counter-based* stream instead of
a stateful RNG: the victim of the ``k``-th eviction in set ``s`` is
``victim_rank(rng_seed, s, k) = mix64(rng_seed, s, k) % associativity``,
a rank into the set's lines ordered by descending insertion tick (rank 0 is
the most recently inserted line, exactly the head of the reference engine's
per-set list).  Because the stream is keyed per set, victims do not depend on
how accesses of *different* sets interleave — any engine can compute the
victim of a set's ``k``-th eviction in closed form, in whatever schedule it
processes events (per-access loop, rank rounds, chain tails, or the compiled
kernel), and all of them stay bit-identical for the same ``rng_seed``.
Random-policy chunks skip only the LRU re-touch pre-resolution (a random
victim can evict any line, so re-touches are not guaranteed hits); run
collapse, descriptor head collapse and the whole event phase apply
unchanged.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.codegen.program import (
    DescriptorArena,
    DescriptorChunk,
    _ceil_div,
    _ragged_arange,
    pack_descriptor_arena,
)
from repro.reliability import faults
from repro.sim._native import (
    BATCH_STATS_SLOTS,
    chunk_heads_kernel,
    descriptor_batch_kernel,
    event_kernel,
    demote as demote_native,
    scratch_len,
)
from repro.sim.policies import (  # noqa: F401 — victim_rank/_victim_ranks re-exported
    _MASK64,
    _victim_ranks,
    get_policy,
    victim_rank,
)

#: Engine identifiers, threaded through ``Cache`` / ``CacheHierarchy`` /
#: ``Simulator`` / ``SimulatorPool`` / ``TraceOptions``.
ENGINE_REFERENCE = "reference"
ENGINE_VECTORIZED = "vectorized"
ENGINES = (ENGINE_REFERENCE, ENGINE_VECTORIZED)

#: Trace-representation identifiers: ``"expanded"`` materialises address
#: chunks (:meth:`Program.memory_trace`), ``"descriptor"`` streams affine run
#: descriptors (:meth:`Program.memory_trace_descriptors`).  Both produce
#: bit-identical statistics; the choice only affects host throughput and
#: peak trace memory.
TRACE_EXPANDED = "expanded"
TRACE_DESCRIPTOR = "descriptor"
TRACE_MODES = (TRACE_EXPANDED, TRACE_DESCRIPTOR)

#: Chunks smaller than this are processed by the scalar loop directly; the
#: fixed cost of the vector path (sort, segment bookkeeping) does not pay off.
SCALAR_CHUNK_CUTOFF = 48
#: Rank rounds narrower than this finish through the per-set chain loop: a
#: round has a fixed cost of a few dozen NumPy calls, so below this width the
#: list-based tail is cheaper per event.
ROUND_WIDTH_CUTOFF = 24
#: Above this ratio of estimated heads to accesses the descriptor front-end
#: expands the chunk instead: without real run collapse, per-head
#: bookkeeping cannot beat the expanded path's narrow-key radix sort.
DESCRIPTOR_HEAD_FRACTION = 0.35
#: Number of passes in which :func:`chunk_heads` segment-splits conflicted
#: collapsed heads (clean prefix/suffix kept collapsed, covered middle
#: exploded) instead of exploding whole runs.  One pass resolves every
#: conflict — sub-runs stay inside their head's original interval — so this
#: is a safety bound; ``0`` restores pure singleton explosion (the
#: split-vs-explode equivalence tests pin this).  The native head pipeline
#: receives the value per call, so overrides apply to both implementations.
SEGMENT_SPLIT_PASSES = 2

#: Cross-chunk arena batching: descriptor chunks are grouped into
#: :class:`~repro.codegen.program.DescriptorArena` packings of at most this
#: many chunks / accesses, and each group is walked through the L1 front-end
#: in **one** native call (``repro_descriptor_batch``), with the whole
#: group's fill/write-back stream forwarded to the next level in one batch.
#: The access bound also caps the forwarded-stream scratch (two entries per
#: access worst case).  Statistics are chunking-invariant, so grouping never
#: changes results — only dispatch overhead.
ARENA_CHUNK_BATCH = 64
ARENA_ACCESS_BATCH = 1 << 21

#: Deepest grid nesting the native pipeline's fixed odometer supports;
#: deeper (hand-built) batches fall back to the per-chunk NumPy path.
ARENA_MAX_GRID_LEVELS = 62

def default_engine() -> str:
    """The engine used when none is requested (``REPRO_SIM_ENGINE`` overrides)."""
    return os.environ.get("REPRO_SIM_ENGINE", ENGINE_VECTORIZED)


def resolve_engine(engine: Optional[str]) -> str:
    """Validate ``engine``, substituting the default when ``None``."""
    engine = engine or default_engine()
    if engine not in ENGINES:
        raise ValueError(f"unknown simulation engine {engine!r}; expected one of {ENGINES}")
    return engine


def default_trace_mode(engine: str) -> str:
    """The trace representation used when none is requested.

    ``REPRO_SIM_TRACE`` overrides; otherwise the vectorized engine consumes
    descriptors and the reference engine consumes expanded chunks.
    """
    mode = os.environ.get("REPRO_SIM_TRACE")
    if mode:
        return mode
    return TRACE_DESCRIPTOR if engine == ENGINE_VECTORIZED else TRACE_EXPANDED


def resolve_trace_mode(trace: Optional[str], engine: str) -> str:
    """Validate ``trace``, substituting the engine-appropriate default."""
    trace = trace or default_trace_mode(engine)
    if trace not in TRACE_MODES:
        raise ValueError(f"unknown trace mode {trace!r}; expected one of {TRACE_MODES}")
    return trace


class _ArenaScratch(threading.local):
    """Per-thread native-pipeline scratch, shared across cache instances.

    The batch kernel's workspace is sized by the largest chunk, not by the
    cache, so every ``VectorCacheState`` in a thread can run over the same
    block — and short-lived hierarchies (one per ``Simulator.run``) reuse
    warm pages instead of fault-in'ing a fresh allocation per run.  The
    kernel keeps two stateful tables inside the block (the position
    scatter table and the hash stamps); ``stamp`` carries the process-
    monotone stamp base between calls and ``layout`` tracks the carve so
    a grown or re-carved buffer is re-initialised exactly once.
    """

    def __init__(self):
        self.buffer: Optional[np.ndarray] = None
        self.forwarded_lines: Optional[np.ndarray] = None
        self.forwarded_writes: Optional[np.ndarray] = None
        self.layout: Optional[Tuple[int, int]] = None
        self.stamp = 0


_ARENA_SCRATCH = _ArenaScratch()


def arena_batching_enabled() -> bool:
    """Whether cross-chunk arena batching is requested (``REPRO_SIM_ARENA``).

    The toggle only affects dispatch granularity: arena-batched and
    per-chunk processing are bit-identical (CI runs both).
    """
    return os.environ.get("REPRO_SIM_ARENA", "1") != "0"


def arena_batching_available() -> bool:
    """Whether the descriptor front-end should group chunks into arenas.

    True exactly when batching is enabled and the compiled batch driver is
    loadable — without the native kernel, packing would only add overhead
    on top of the per-chunk NumPy pipeline.
    """
    return arena_batching_enabled() and descriptor_batch_kernel() is not None


def native_chunk_heads(
    chunk: DescriptorChunk,
    offset_bits: int,
    set_mask: int,
    split_passes: Optional[int] = None,
):
    """Native counterpart of :func:`chunk_heads`, or ``None`` if unavailable.

    Packs ``chunk`` into a one-chunk arena and runs the compiled head
    pipeline; the result tuple is bit-identical to :func:`chunk_heads`
    (the equivalence suite pins this).  This is the oracle entry point —
    the hot path goes through :meth:`VectorCacheState.process_descriptor_arena`,
    which amortizes packing and scratch across many chunks.
    """
    kernel = chunk_heads_kernel()
    if kernel is None:
        return None
    if faults.should_inject("native_fault"):
        # Demote *before* the call: this entry point is pure (fresh scratch
        # and outputs, no cache state), so the NumPy fallback recomputes the
        # identical heads from the same chunk.
        demote_native("injected fault at site 'native_fault' (head pipeline)")
        return None
    arena = pack_descriptor_arena([chunk])
    if arena.max_grid_levels > ARENA_MAX_GRID_LEVELS:
        return None
    cap = max(arena.max_chunk_total, 1)
    pos_cap = max(arena.max_pos_bound, 1)
    words = scratch_len(cap, pos_cap)
    scratch = np.empty(words, dtype=np.int64)
    outputs = [np.empty(cap, dtype=np.int64) for _ in range(6)]
    if split_passes is None:
        split_passes = SEGMENT_SPLIT_PASSES
    n_heads = kernel(
        arena.chunk_meta,
        0,
        arena.batch_meta,
        arena.bases,
        arena.counts,
        arena.first_pos,
        arena.grids,
        arena.explicit_addresses,
        arena.explicit_writes,
        arena.explicit_positions,
        offset_bits,
        set_mask,
        split_passes,
        cap,
        pos_cap,
        scratch,
        words,
        *outputs,
    )
    if n_heads < 0:
        return None
    sets, lines, first_write, write_counts, head_orig, last_orig = (
        array[:n_heads] for array in outputs
    )
    return sets, lines, first_write.astype(bool), write_counts, head_orig, last_orig


def estimated_heads(chunk: DescriptorChunk, offset_bits: int) -> int:
    """Pre-explosion head count of a chunk, without building heads.

    Exact for plain batches; for grid batches the stored rows' head counts
    are scaled by the grid multiplicity (a replicated row shares its stored
    row's span up to one line of alignment shift), which keeps the estimate
    O(stored rows) instead of materialising the grid.
    """
    line_bytes = 1 << offset_bits
    total = 0
    for batch in chunk.batches:
        multiplicity = batch.grid_multiplicity
        if batch.stride == 0:
            total += int(batch.bases.size) * multiplicity
        elif abs(batch.stride) >= line_bytes:
            total += batch.total  # grid multiplicity already included
        else:
            counts = batch.run_counts()
            first = batch.bases >> offset_bits
            last = (batch.bases + (counts - 1) * batch.stride) >> offset_bits
            per_row = int(np.abs(last - first).sum()) + int(counts.size)
            total += per_row * multiplicity
    if chunk.addresses is not None:
        total += int(chunk.addresses.size)
    return total


def _batch_heads(batch, offset_bits: int):
    """Collapse one run batch to per-line heads in closed form.

    Returns ``(lines, run_len, head_orig)``.  A head's members sit at
    positions ``head_orig + k * batch.pos_stride`` for ``k < run_len`` (the
    position stride is uniform across a chunk's batches), so its last
    position is derivable and heads can later be exploded into exact
    singleton members.
    """
    line_bytes = 1 << offset_bits
    bases = batch.bases
    counts = batch.run_counts()
    stride = batch.stride
    pos_stride = batch.pos_stride
    if stride == 0:
        return bases >> offset_bits, counts, batch.run_first_pos()
    if abs(stride) < line_bytes:
        # The line sequence of a short-strided run is a monotone staircase:
        # every line between the first and last is touched, and the members
        # on each line form a closed-form index interval.
        first_line = bases >> offset_bits
        last_line = (bases + (counts - 1) * stride) >> offset_bits
        span = np.abs(last_line - first_line) + 1
        first_pos = batch.run_first_pos()
        if not (span > 1).any():
            return first_line, counts, first_pos  # every run fits one line
        rep = np.repeat(np.arange(bases.size, dtype=np.int64), span)
        j = _ragged_arange(span)
        base_rep = bases[rep]
        if stride > 0:
            line = first_line[rep] + j
            i_first = np.maximum(0, _ceil_div(line * line_bytes - base_rep, stride))
            i_last = np.minimum(
                counts[rep] - 1, ((line + 1) * line_bytes - 1 - base_rep) // stride
            )
        else:
            line = first_line[rep] - j
            i_first = np.maximum(
                0, _ceil_div((line + 1) * line_bytes - 1 - base_rep, stride)
            )
            i_last = np.minimum(counts[rep] - 1, (line * line_bytes - base_rep) // stride)
        return line, i_last - i_first + 1, first_pos[rep] + i_first * pos_stride
    # |stride| >= line size: every access is its own line; no collapse.
    if batch.counts is None:
        count = batch.uniform_count
        k = np.arange(count, dtype=np.int64)
        lines = ((bases[:, None] + stride * k) >> offset_bits).reshape(-1)
        positions = (batch.run_first_pos()[:, None] + pos_stride * k).reshape(-1)
    else:
        k = _ragged_arange(counts)
        lines = (np.repeat(bases, counts) + stride * k) >> offset_bits
        positions = np.repeat(batch.run_first_pos(), counts) + pos_stride * k
    return lines, np.ones(lines.size, dtype=np.int64), positions


def chunk_heads(chunk: DescriptorChunk, offset_bits: int, set_mask: int):
    """Build the collapsed, set-sorted head arrays of one descriptor chunk.

    Heads come out sorted by ``(set, position)`` — the order
    :meth:`VectorCacheState.process_descriptor_heads` expects.  Grid batches
    are collapsed per innermost row: the replication levels are expanded
    transiently (one 1-D run per innermost row) and each row collapses to
    line heads in closed form; adjacent rows landing on the same line merge
    in the final same-(set, line) pass.  Closed-form collapse is exact only
    while no other line of the same set interleaves with a head's members,
    so conflicted heads — those whose position intervals overlap a
    *different-line* head of the same set — are **segment-split**: the run
    is cut at the overlap boundaries into at most three sub-runs (clean
    prefix, conflicted middle, clean suffix) and re-tested, and only
    remainders still irreducible after :data:`SEGMENT_SPLIT_PASSES` passes
    are exploded into singleton members.
    """
    explicit = chunk.addresses is not None and chunk.addresses.size
    parts = [_batch_heads(batch.degrid(), offset_bits) for batch in chunk.batches]
    n_parts = sum(part[0].size for part in parts) + (
        int(chunk.addresses.size) if explicit else 0
    )
    lines = np.empty(n_parts, dtype=np.int64)
    run_len = np.empty(n_parts, dtype=np.int64)
    head_orig = np.empty(n_parts, dtype=np.int64)
    first_write = np.empty(n_parts, dtype=bool)
    at = 0
    pos_stride = chunk.batches[0].pos_stride if chunk.batches else 1
    for batch, (part_lines, part_len, part_orig) in zip(chunk.batches, parts):
        stop = at + part_lines.size
        lines[at:stop] = part_lines
        run_len[at:stop] = part_len
        head_orig[at:stop] = part_orig
        first_write[at:stop] = batch.is_write
        at = stop
    if explicit:
        stop = at + chunk.addresses.size
        lines[at:stop] = chunk.addresses >> offset_bits
        run_len[at:stop] = 1
        head_orig[at:stop] = chunk.positions
        first_write[at:stop] = chunk.writes

    bound = max(int(chunk.pos_bound), 1)
    collapsed_any = bool((run_len > 1).any())
    split_passes = SEGMENT_SPLIT_PASSES
    while True:  # splitting shrinks runs every pass; explosion then ends it
        order = _head_order(lines & set_mask, head_orig, bound, set_mask)
        lines = lines[order]
        run_len = run_len[order]
        head_orig = head_orig[order]
        first_write = first_write[order]
        sets = lines & set_mask
        if not collapsed_any:
            break

        n_heads = int(lines.size)
        key = sets * bound + head_orig
        last_key = key + (run_len - 1) * pos_stride
        interval_end = np.maximum.accumulate(last_key)
        clean = np.empty(n_heads, dtype=bool)
        clean[0] = True
        np.greater(key[1:], interval_end[:-1], out=clean[1:])
        if clean.all():
            break
        cluster_starts = np.flatnonzero(clean)
        cluster_of = np.cumsum(clean) - 1
        conflicted = (
            np.minimum.reduceat(lines, cluster_starts)
            != np.maximum.reduceat(lines, cluster_starts)
        )[cluster_of]
        target = conflicted & (run_len > 1)
        if not target.any():
            break  # conflicted heads are all singletons, which are exact
        cut = np.flatnonzero(target)
        if split_passes > 0:
            split_passes -= 1
            # Overlap bounds are needed only inside conflicted clusters —
            # typically a small fraction of the heads — so the reduceat
            # machinery runs on the compacted conflicted subset.
            sub = np.flatnonzero(conflicted)
            sub_clean = clean[sub]
            prefix_sub, suffix_sub = _split_lengths(
                key[sub],
                last_key[sub],
                run_len[sub],
                np.flatnonzero(sub_clean),
                np.cumsum(sub_clean) - 1,
                pos_stride,
            )
            position_in_sub = np.cumsum(conflicted) - 1
            cut_prefix = prefix_sub[position_in_sub[cut]]
            cut_suffix = suffix_sub[position_in_sub[cut]]
        else:
            cut_prefix = np.zeros(cut.size, dtype=np.int64)
            cut_suffix = cut_prefix
        # Members strictly before/after the foreign overlap stay collapsed
        # sub-runs; the covered middle is the irreducible remainder and is
        # exploded right away.  Every piece lies inside its head's original
        # interval, so the next pass finds the sub-runs clean (or conflicted
        # only with singletons) and the loop ends — like pure explosion, but
        # without materialising the clean prefix/suffix members.
        cut_middle = run_len[cut] - cut_prefix - cut_suffix
        keep = ~target
        pieces_lines = [lines[keep]]
        pieces_len = [run_len[keep]]
        pieces_orig = [head_orig[keep]]
        pieces_write = [first_write[keep]]
        for offset, length in (
            (np.zeros(cut.size, dtype=np.int64), cut_prefix),
            (run_len[cut] - cut_suffix, cut_suffix),
        ):
            alive = length > 0
            if not alive.any():
                continue
            pieces_lines.append(lines[cut][alive])
            pieces_len.append(length[alive])
            pieces_orig.append(head_orig[cut][alive] + offset[alive] * pos_stride)
            pieces_write.append(first_write[cut][alive])
        if cut_middle.any():
            rep = np.repeat(cut, cut_middle)
            k = _ragged_arange(cut_middle) + np.repeat(cut_prefix, cut_middle)
            pieces_lines.append(lines[rep])
            pieces_len.append(np.ones(rep.size, dtype=np.int64))
            pieces_orig.append(head_orig[rep] + k * pos_stride)
            pieces_write.append(first_write[rep])  # members share the head's flag
        lines = np.concatenate(pieces_lines)
        run_len = np.concatenate(pieces_len)
        head_orig = np.concatenate(pieces_orig)
        first_write = np.concatenate(pieces_write)
        collapsed_any = bool((run_len > 1).any())
    write_counts = run_len * first_write
    last_orig = head_orig + (run_len - 1) * pos_stride
    # Merge adjacent same-(set, line) heads: their members are consecutive
    # in the set timeline (any interposed different-line head would sit
    # between them in the sort, and post-explosion overlaps are same-line
    # only), so they form one collapsed run exactly like the expanded
    # path's maximal collapse.  This folds interleaved load/store pairs and
    # repeated zero-stride runs into single heads.
    same = np.zeros(lines.size, dtype=bool)
    if lines.size > 1:
        np.logical_and(sets[1:] == sets[:-1], lines[1:] == lines[:-1], out=same[1:])
    if same.any():
        starts = np.flatnonzero(~same)
        write_counts = np.add.reduceat(write_counts, starts)
        last_orig = np.maximum.reduceat(last_orig, starts)
        sets = sets[starts]
        lines = lines[starts]
        first_write = first_write[starts]
        head_orig = head_orig[starts]
    return sets, lines, first_write, write_counts, head_orig, last_orig


def _split_lengths(
    key: np.ndarray,
    last_key: np.ndarray,
    run_len: np.ndarray,
    cluster_starts: np.ndarray,
    cluster_of: np.ndarray,
    pos_stride: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-head clean prefix/suffix member counts within overlap clusters.

    For every head, the members strictly before the earliest start — and
    strictly after the latest end — of the *other* intervals of its cluster
    cannot have foreign members interleaved (every other head's members lie
    inside its own interval), so those sub-runs stay exactly collapsible.
    Exclusive minima/maxima are derived from the cluster's two smallest
    starts and two largest ends; using all other heads (not only
    different-line ones) is conservative — it can only over-split, never
    produce an inexact sub-run.
    """
    sentinel = np.iinfo(np.int64).max // 2
    min1 = np.minimum.reduceat(key, cluster_starts)
    at_min = key == min1[cluster_of]
    min_dup = np.add.reduceat(at_min.astype(np.int64), cluster_starts) > 1
    min2 = np.minimum.reduceat(np.where(at_min, sentinel, key), cluster_starts)
    other_start = np.where(
        at_min & ~min_dup[cluster_of], min2[cluster_of], min1[cluster_of]
    )
    max1 = np.maximum.reduceat(last_key, cluster_starts)
    at_max = last_key == max1[cluster_of]
    max_dup = np.add.reduceat(at_max.astype(np.int64), cluster_starts) > 1
    max2 = np.maximum.reduceat(np.where(at_max, -sentinel, last_key), cluster_starts)
    other_end = np.where(
        at_max & ~max_dup[cluster_of], max2[cluster_of], max1[cluster_of]
    )
    # Members sit at key + t * pos_stride for t < run_len; count those below
    # the exclusive-other start and above the exclusive-other end.
    prefix_len = np.clip(_ceil_div(other_start - key, pos_stride), 0, run_len)
    suffix_len = np.clip(run_len - 1 - (other_end - key) // pos_stride, 0, run_len)
    # Single-head clusters see sentinel bounds; they are never conflicted,
    # so their (nonsense) lengths are masked out by the caller.
    return prefix_len, suffix_len


def _head_order(head_sets: np.ndarray, head_orig: np.ndarray, pos_bound: int, set_mask: int):
    """Permutation sorting heads by ``(set, position)``.

    Positions are unique and bounded, so trace order is recovered with a
    counting scatter (two linear passes); the set grouping then uses the
    narrow-key stable radix argsort, mirroring the expanded path's sort.
    """
    if head_orig.size * 16 < pos_bound:
        by_pos = np.argsort(head_orig)
    else:
        slot_of = np.full(pos_bound, -1, dtype=np.int64)
        slot_of[head_orig] = np.arange(head_orig.size, dtype=np.int64)
        by_pos = slot_of[slot_of >= 0]
    sets_by_pos = head_sets[by_pos]
    if set_mask < (1 << 8):
        sort_key = sets_by_pos.astype(np.uint8)
    elif set_mask < (1 << 16):
        sort_key = sets_by_pos.astype(np.uint16)
    else:
        sort_key = sets_by_pos
    return by_pos[np.argsort(sort_key, kind="stable")]


@dataclass
class ChunkOutcome:
    """Statistics deltas and the forwarded stream of one processed chunk."""

    hits: int = 0
    read_hits: int = 0
    write_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    read_replacements: int = 0
    write_replacements: int = 0
    writebacks: int = 0
    sequential_misses: int = 0
    last_miss_line: int = -2
    #: Fills and write-backs for the next level, in program order (fills are
    #: reads from below, write-backs are writes); ``None`` when nothing missed.
    forwarded_lines: Optional[np.ndarray] = None
    forwarded_writes: Optional[np.ndarray] = None


class VectorCacheState:
    """Array-based tag store and chunk processor for one cache level."""

    def __init__(self, sets: int, associativity: int, replacement: str, rng_seed: int = 0):
        self.policy = get_policy(replacement)
        self.policy.validate_geometry(associativity)
        self.sets = sets
        self.associativity = associativity
        self.replacement = replacement
        self.rng_seed = int(rng_seed)
        self._set_mask = sets - 1
        # Reusable scratch arrays, grown on demand and shared across chunks:
        # per-chunk allocation churn dominates on small-chunk workloads.
        # Views handed out by _buffer are only valid until the next request
        # for the same name; every consumer is within one chunk dispatch.
        self._buffers: dict = {}
        self.reset()

    def reset(self) -> None:
        """Flush all resident lines."""
        sets, assoc = self.sets, self.associativity
        self.tags = np.full((sets, assoc), -1, dtype=np.int64)
        self.dirty = np.zeros((sets, assoc), dtype=bool)
        # Policy tick plane (last-use under LRU, insertion tick otherwise)
        # and the policy's aux plane (PLRU bits / RRIP counters / dummy).
        self.recency = np.zeros((sets, assoc), dtype=np.int64)
        self.aux = self.policy.new_aux_arrays(sets, assoc)
        self.occupancy = np.zeros(sets, dtype=np.int64)
        # Per-set eviction ordinals: the counter half of the replayable
        # random-replacement victim stream (maintained for every policy so
        # the kernel ABI stays uniform; only random consumes it).
        self.evictions = np.zeros(sets, dtype=np.int64)
        # Monotone global tick; pre-chunk ages are always strictly smaller
        # than the ticks assigned inside the next chunk.
        self._tick = 1

    def _buffer(self, name: str, size: int, dtype) -> np.ndarray:
        """A reusable scratch view of at least ``size`` elements.

        Contents are undefined on return; callers initialise what they use.
        The backing array is kept on the state and grown geometrically, so
        steady-state chunk processing performs no scratch allocations.
        """
        backing = self._buffers.get(name)
        if backing is None or backing.size < size:
            grown = max(size, 64, 2 * (backing.size if backing is not None else 0))
            backing = np.empty(grown, dtype=dtype)
            self._buffers[name] = backing
        return backing[:size]

    # -- native arena path --------------------------------------------------
    def process_descriptor_arena(
        self, arena: DescriptorArena, offset_bits: int, last_miss_line: int
    ) -> Optional[ChunkOutcome]:
        """Process a whole packed descriptor arena in one native call.

        Runs the compiled head pipeline, the LRU stack-distance
        pre-resolution and the event walk for every chunk of ``arena``
        without returning to Python in between, and returns the aggregated
        :class:`ChunkOutcome` (forwarded stream in program order, ready for
        the next level in one batch).  Returns ``None`` when the batch
        kernel is unavailable or the arena exceeds its grid-depth limit —
        callers fall back to the bit-identical per-chunk path.

        The outcome's forwarded arrays are views of reused scratch: they
        are only valid until the next arena is processed, which matches
        their single consumer (the owning cache forwards them immediately).
        """
        kernel = descriptor_batch_kernel()
        if kernel is None or arena.max_grid_levels > ARENA_MAX_GRID_LEVELS:
            return None
        if faults.should_inject("native_fault"):
            # Demote *before* the kernel mutates the tag store: the caller
            # falls back to the per-chunk path on the untouched state, so
            # statistics stay bit-identical.
            demote_native("injected fault at site 'native_fault' (batch driver)")
            return None
        pool = _ARENA_SCRATCH
        cap = max(arena.max_chunk_total, 1)
        pos_cap = max(arena.max_pos_bound, 1)
        # The carve is monotone in (cap, pos_cap): growing either only when
        # the current layout is too small keeps re-initialisation (and the
        # page faults of a fresh block) a once-per-growth event.
        if pool.layout is not None:
            cap = max(cap, pool.layout[0])
            pos_cap = max(pos_cap, pool.layout[1])
        words = scratch_len(cap, pos_cap)
        init_tables = pool.buffer is None or pool.layout != (cap, pos_cap)
        if pool.buffer is None or pool.buffer.size < words:
            pool.buffer = np.empty(words, dtype=np.int64)
            init_tables = True
        if init_tables:
            pool.layout = (cap, pos_cap)
            pool.stamp = 0
        bound = 2 * arena.total
        if pool.forwarded_lines is None or pool.forwarded_lines.size < bound:
            pool.forwarded_lines = np.empty(bound, dtype=np.int64)
            pool.forwarded_writes = np.empty(bound, dtype=np.bool_)
        forwarded_lines = pool.forwarded_lines
        forwarded_writes = pool.forwarded_writes
        stats = np.zeros(BATCH_STATS_SLOTS, dtype=np.int64)
        n_forwarded = kernel(
            arena.n_chunks,
            arena.chunk_meta,
            arena.batch_meta,
            arena.bases,
            arena.counts,
            arena.first_pos,
            arena.grids,
            arena.explicit_addresses,
            arena.explicit_writes,
            arena.explicit_positions,
            offset_bits,
            self.sets,
            self.associativity,
            self.policy.wire_id,
            self.rng_seed & _MASK64,
            SEGMENT_SPLIT_PASSES,
            round(DESCRIPTOR_HEAD_FRACTION * 1000),
            cap,
            pos_cap,
            1 if init_tables else 0,
            pool.stamp,
            self._tick,
            last_miss_line,
            self.tags,
            self.dirty,
            self.recency,
            self.aux,
            self.occupancy,
            self.evictions,
            pool.buffer,
            pool.buffer.size,
            stats,
            forwarded_lines,
            forwarded_writes,
        )
        if n_forwarded < 0:  # cannot happen with pack-validated arenas
            raise RuntimeError(f"native descriptor batch failed ({n_forwarded})")
        pool.stamp = int(stats[12])
        self._tick = int(stats[10])
        outcome = ChunkOutcome(
            hits=int(stats[0]),
            read_hits=int(stats[1]),
            write_hits=int(stats[2]),
            read_misses=int(stats[3]),
            write_misses=int(stats[4]),
            read_replacements=int(stats[5]),
            write_replacements=int(stats[6]),
            writebacks=int(stats[7]),
            sequential_misses=int(stats[8]),
            last_miss_line=int(stats[9]),
        )
        if n_forwarded:
            outcome.forwarded_lines = forwarded_lines[:n_forwarded]
            outcome.forwarded_writes = forwarded_writes[:n_forwarded]
        return outcome

    # -- introspection ------------------------------------------------------
    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        return int(self.occupancy.sum())

    def contains_line(self, line: int) -> bool:
        """Whether ``line`` is resident."""
        set_index = line & self._set_mask
        occupancy = int(self.occupancy[set_index])
        return bool((self.tags[set_index, :occupancy] == line).any())

    # -- scalar paths -------------------------------------------------------
    def _scalar_event(
        self,
        set_index: int,
        line: int,
        dirty_value: bool,
        age_value: int,
        retouch: bool = False,
    ) -> Tuple[bool, int, bool]:
        """Process one access sequentially on the array state.

        Returns ``(hit, victim_line, victim_was_dirty)`` with ``victim_line``
        ``-1`` when no valid line was evicted.  Victim selection and the
        touch/insert rule come from the policy's scalar hooks, which operate
        on this state's arrays directly.  ``retouch`` marks an event standing
        for a collapsed multi-access run (see :meth:`PolicySpec.touch`).
        """
        tags = self.tags
        occupancy = int(self.occupancy[set_index])
        row = tags[set_index]
        way = -1
        for candidate in range(occupancy):
            if row[candidate] == line:
                way = candidate
                break
        spec = self.policy
        if way >= 0:
            if dirty_value:
                self.dirty[set_index, way] = True
            spec.touch(self, set_index, way, age_value, True, retouch)
            return True, -1, False
        victim_line = -1
        victim_dirty = False
        if occupancy < self.associativity:
            way = occupancy
            self.occupancy[set_index] = occupancy + 1
        else:
            way = spec.victim_way(self, set_index)
            victim_line = int(row[way])
            victim_dirty = bool(self.dirty[set_index, way])
        tags[set_index, way] = line
        self.dirty[set_index, way] = dirty_value
        spec.touch(self, set_index, way, age_value, False, retouch)
        return False, victim_line, victim_dirty

    def process_single(self, line: int, is_write: bool, last_miss_line: int) -> ChunkOutcome:
        """Scalar fast path for one access (no array allocations on hits)."""
        outcome = ChunkOutcome(last_miss_line=last_miss_line)
        set_index = line & self._set_mask
        tick = self._tick
        self._tick = tick + 1
        hit, victim_line, victim_dirty = self._scalar_event(set_index, line, is_write, tick)
        if hit:
            outcome.hits = 1
            if is_write:
                outcome.write_hits = 1
            else:
                outcome.read_hits = 1
            return outcome
        if is_write:
            outcome.write_misses = 1
        else:
            outcome.read_misses = 1
        if line == last_miss_line + 1:
            outcome.sequential_misses = 1
        outcome.last_miss_line = line
        forwarded: List[int] = [line]
        flags: List[bool] = [False]
        if victim_line >= 0:
            if is_write:
                outcome.write_replacements = 1
            else:
                outcome.read_replacements = 1
            if victim_dirty:
                outcome.writebacks = 1
                forwarded.append(victim_line)
                flags.append(True)
        outcome.forwarded_lines = np.asarray(forwarded, dtype=np.int64)
        outcome.forwarded_writes = np.asarray(flags, dtype=bool)
        return outcome

    def _process_scalar_chunk(
        self, lines: np.ndarray, is_write: np.ndarray, last_miss_line: int
    ) -> ChunkOutcome:
        """Reference-order scalar loop over the array state (small chunks)."""
        outcome = ChunkOutcome(last_miss_line=last_miss_line)
        forwarded: List[int] = []
        flags: List[bool] = []
        tick = self._tick
        for line, write in zip(lines.tolist(), is_write.tolist()):
            set_index = line & self._set_mask
            hit, victim_line, victim_dirty = self._scalar_event(set_index, line, write, tick)
            tick += 1
            if hit:
                outcome.hits += 1
                if write:
                    outcome.write_hits += 1
                else:
                    outcome.read_hits += 1
                continue
            if write:
                outcome.write_misses += 1
            else:
                outcome.read_misses += 1
            if line == outcome.last_miss_line + 1:
                outcome.sequential_misses += 1
            outcome.last_miss_line = line
            forwarded.append(line)
            flags.append(False)
            if victim_line >= 0:
                if write:
                    outcome.write_replacements += 1
                else:
                    outcome.read_replacements += 1
                if victim_dirty:
                    outcome.writebacks += 1
                    forwarded.append(victim_line)
                    flags.append(True)
        self._tick = tick
        if forwarded:
            outcome.forwarded_lines = np.asarray(forwarded, dtype=np.int64)
            outcome.forwarded_writes = np.asarray(flags, dtype=bool)
        return outcome

    # -- vectorized chunk path ---------------------------------------------
    def process_chunk(
        self, lines: np.ndarray, is_write: np.ndarray, last_miss_line: int
    ) -> ChunkOutcome:
        """Process one in-order chunk of line addresses; see the module docs."""
        n = int(lines.size)
        if n == 0:
            return ChunkOutcome(last_miss_line=last_miss_line)
        if n < SCALAR_CHUNK_CUTOFF:
            return self._process_scalar_chunk(lines, is_write, last_miss_line)

        set_idx = lines & self._set_mask
        # Stable integer argsort is a radix sort with one pass per key byte;
        # set indices fit one or two bytes, so narrowing the key dtype cuts
        # the dominant sort cost to 1-2 passes.
        if self.sets <= (1 << 8):
            sort_key = set_idx.astype(np.uint8)
        elif self.sets <= (1 << 16):
            sort_key = set_idx.astype(np.uint16)
        else:
            sort_key = set_idx
        perm = np.argsort(sort_key, kind="stable")
        sorted_lines = lines[perm]
        sorted_sets = set_idx[perm]
        sorted_writes = is_write[perm]

        # 2. collapse consecutive same-line runs within each set group
        head_flag = self._buffer("head_flag", n, np.bool_)
        head_flag[0] = True
        np.logical_or(
            sorted_lines[1:] != sorted_lines[:-1],
            sorted_sets[1:] != sorted_sets[:-1],
            out=head_flag[1:],
        )
        head_pos = np.flatnonzero(head_flag)
        n_heads = int(head_pos.size)
        head_lines = sorted_lines[head_pos]
        head_sets = sorted_sets[head_pos]
        first_write = sorted_writes[head_pos]
        run_writes = np.add.reduceat(sorted_writes.astype(np.int64), head_pos)
        run_len = self._buffer("run_len", n_heads, np.int64)
        if n_heads > 1:
            run_len[:-1] = np.diff(head_pos)
        run_len[-1] = n - head_pos[-1]
        head_orig = perm[head_pos]
        last_orig = perm[head_pos + run_len - 1]
        return self._process_heads(
            n, n, head_sets, head_lines, first_write, run_writes, head_orig, last_orig,
            last_miss_line,
        )

    def process_descriptor_heads(
        self,
        n_total: int,
        tick_span: int,
        head_sets: np.ndarray,
        head_lines: np.ndarray,
        first_write: np.ndarray,
        write_counts: np.ndarray,
        head_orig: np.ndarray,
        last_orig: np.ndarray,
        last_miss_line: int,
    ) -> ChunkOutcome:
        """Process one chunk given pre-built descriptor heads.

        The head arrays come from :func:`chunk_heads` (sorted by set with
        trace order inside each set); ``n_total`` is the number of accesses
        the heads describe and ``tick_span`` the exclusive position bound of
        the chunk (positions are uncompacted for descriptor chunks).
        """
        return self._process_heads(
            n_total, tick_span, head_sets, head_lines, first_write, write_counts,
            head_orig, last_orig, last_miss_line,
        )

    def _process_heads(
        self,
        n: int,
        tick_span: int,
        head_sets: np.ndarray,
        head_lines: np.ndarray,
        first_write: np.ndarray,
        write_counts: np.ndarray,
        head_orig: np.ndarray,
        last_orig: np.ndarray,
        last_miss_line: int,
    ) -> ChunkOutcome:
        """Steps 3–5 of the chunk algorithm on collapsed head arrays.

        Heads must be sorted by set with trace order preserved inside each
        set; every head stands for ``write_counts``-aggregated consecutive
        accesses to one line whose first access carries ``first_write`` and
        sits at chunk position ``head_orig`` (last at ``last_orig``).
        """
        assoc = self.associativity
        n_heads = int(head_sets.size)
        any_write = write_counts > 0

        # 3. re-touch pre-resolution: group heads by (set, line) and fold
        # guaranteed-hit re-touches into chains (see the module docs).  Only
        # exact-stack policies (LRU) can guarantee the re-touch hit.
        if self.policy.exact_stack:
            group_perm = np.lexsort((head_lines, head_sets))
            grouped_sets = head_sets[group_perm]
            grouped_lines = head_lines[group_perm]
            group_flag = np.empty(n_heads, dtype=bool)
            group_flag[0] = True
            np.logical_or(
                grouped_sets[1:] != grouped_sets[:-1],
                grouped_lines[1:] != grouped_lines[:-1],
                out=group_flag[1:],
            )
            group_start = np.flatnonzero(group_flag)
            # Rank of each head inside its set (heads are set-sorted).
            set_flag = np.empty(n_heads, dtype=bool)
            set_flag[0] = True
            np.not_equal(head_sets[1:], head_sets[:-1], out=set_flag[1:])
            set_starts = np.flatnonzero(set_flag)
            rank = np.arange(n_heads, dtype=np.int64) - set_starts[np.cumsum(set_flag) - 1]
            # A re-touch with at most `assoc` ranks since the previous head
            # of its line has seen < assoc distinct other lines in between:
            # its stack distance is below the associativity, so it is a
            # guaranteed hit.  Chunk-compliant sets (<= assoc distinct lines
            # in the whole chunk) pre-resolve every re-touch regardless.
            grouped_rank = rank[group_perm]
            gap_ok = np.zeros(n_heads, dtype=bool)
            if n_heads > 1:
                gap_ok[1:] = grouped_rank[1:] - grouped_rank[:-1] <= assoc
            distinct_per_set = np.bincount(grouped_sets[group_start], minlength=self.sets)
            compliant = (distinct_per_set <= assoc)[grouped_sets]
            follower = ~group_flag & (compliant | gap_ok)
            chain_flag = ~follower
            chain_start = np.flatnonzero(chain_flag)
            chain_of = np.cumsum(chain_flag) - 1
            chain_any_write = (
                np.add.reduceat(any_write[group_perm].astype(np.int64), chain_start) > 0
            )
            chain_last = np.maximum.reduceat(last_orig[group_perm], chain_start)
            event_mask = np.empty(n_heads, dtype=bool)
            event_mask[group_perm] = chain_flag
            dirty_value = np.empty(n_heads, dtype=bool)
            dirty_value[group_perm] = chain_any_write[chain_of]
            age_value = np.empty(n_heads, dtype=np.int64)
            age_value[group_perm] = chain_last[chain_of]
            # Re-touches are folded into chains; chain heads never need the
            # collapsed-run promotion flag (LRU re-touches only move ticks,
            # which ``age_value`` already carries).
            retouch_value = np.zeros(n_heads, dtype=bool)
        else:
            # Policies without exact stack gating (FIFO ignores recency, a
            # random/PLRU/RRIP victim can be any line): a re-touch is not a
            # guaranteed hit, so every head is an event.  The tick records
            # insertion order only.  Multi-member heads carry the retouch
            # flag so policies whose hit rule is not idempotent with the
            # fill (RRIP's promotion) still land on the reference state.
            event_mask = np.ones(n_heads, dtype=bool)
            dirty_value = any_write
            age_value = head_orig
            retouch_value = last_orig > head_orig

        event_pos = np.flatnonzero(event_mask)
        n_events = int(event_pos.size)
        event_sets = head_sets[event_pos]
        event_lines = head_lines[event_pos]
        event_dirty = dirty_value[event_pos]
        event_age = age_value[event_pos] + self._tick
        event_retouch = retouch_value[event_pos]
        event_orig = head_orig[event_pos]
        # Event outcome arrays come from the reusable scratch pool: they are
        # consumed below (statistics + forwarded stream) before this method
        # returns, and per-chunk allocation churn dominates on small chunks.
        hit_out = self._buffer("hit_out", n_events, np.bool_)
        hit_out[:] = False
        victim_line = self._buffer("victim_line", n_events, np.int64)
        victim_line[:] = -1
        victim_wb = self._buffer("victim_wb", n_events, np.bool_)
        victim_wb[:] = False

        if n_events:
            self._run_events(
                event_sets, event_lines, event_dirty, event_age, event_retouch,
                hit_out, victim_line, victim_wb,
            )
        self._tick += tick_span

        # 5. statistics and the forwarded stream, in program order
        outcome = ChunkOutcome(last_miss_line=last_miss_line)
        followers_writes = int(write_counts.sum()) - int(np.count_nonzero(first_write))
        event_first_write = first_write[event_pos]
        miss_out = ~hit_out
        n_misses = int(np.count_nonzero(miss_out))
        write_misses = int(np.count_nonzero(miss_out & event_first_write))
        event_write_hits = int(np.count_nonzero(hit_out & event_first_write))
        head_write = int(np.count_nonzero(first_write))
        # Pre-resolved re-touch heads are hits; attribute them by their own flag.
        resolved_write_hits = head_write - int(np.count_nonzero(event_first_write))
        outcome.hits = n - n_misses
        outcome.write_hits = followers_writes + event_write_hits + resolved_write_hits
        outcome.read_hits = outcome.hits - outcome.write_hits
        outcome.write_misses = write_misses
        outcome.read_misses = n_misses - write_misses
        replaced = miss_out & (victim_line >= 0)
        outcome.write_replacements = int(np.count_nonzero(replaced & event_first_write))
        outcome.read_replacements = int(np.count_nonzero(replaced)) - outcome.write_replacements
        outcome.writebacks = int(np.count_nonzero(victim_wb))

        if n_misses:
            trace_order = np.argsort(event_orig[miss_out])
            miss_lines = event_lines[miss_out][trace_order]
            outcome.sequential_misses = int(np.count_nonzero(miss_lines[1:] == miss_lines[:-1] + 1))
            if miss_lines[0] == last_miss_line + 1:
                outcome.sequential_misses += 1
            outcome.last_miss_line = int(miss_lines[-1])

            writeback = victim_wb[miss_out][trace_order]
            victims = victim_line[miss_out][trace_order]
            total_forwarded = n_misses + int(np.count_nonzero(writeback))
            forwarded = np.empty(total_forwarded, dtype=np.int64)
            flags = np.zeros(total_forwarded, dtype=bool)
            slots = np.zeros(n_misses, dtype=np.int64)
            np.cumsum(1 + writeback[:-1], out=slots[1:])
            forwarded[slots] = miss_lines
            wb_slots = slots[writeback] + 1
            forwarded[wb_slots] = victims[writeback]
            flags[wb_slots] = True
            outcome.forwarded_lines = forwarded
            outcome.forwarded_writes = flags
        return outcome

    def _run_events(
        self,
        event_sets: np.ndarray,
        event_lines: np.ndarray,
        event_dirty: np.ndarray,
        event_age: np.ndarray,
        event_retouch: np.ndarray,
        hit_out: np.ndarray,
        victim_line: np.ndarray,
        victim_wb: np.ndarray,
    ) -> None:
        """Rank rounds over per-set event chains (events are sorted by set).

        When the compiled kernel of :mod:`repro.sim._native` is available the
        whole phase runs as one foreign call instead (bit-identical, no
        per-round dispatch cost, GIL released).
        """
        kernel = event_kernel()
        if kernel is not None and faults.should_inject("native_fault"):
            # The NumPy rank rounds below consume the same event arrays and
            # mutate the same state, so demotion here is invisible in the
            # statistics.
            demote_native("injected fault at site 'native_fault' (event walk)")
            kernel = None
        if kernel is not None:
            kernel(
                event_sets.size,
                np.ascontiguousarray(event_sets),
                np.ascontiguousarray(event_lines),
                np.ascontiguousarray(event_dirty),
                np.ascontiguousarray(event_age),
                np.ascontiguousarray(event_retouch),
                hit_out,
                victim_line,
                victim_wb,
                self.associativity,
                self.policy.wire_id,
                self.rng_seed & _MASK64,
                self.tags,
                self.dirty,
                self.recency,
                self.aux,
                self.occupancy,
                self.evictions,
            )
            return
        n_events = int(event_sets.size)
        boundary = np.empty(n_events, dtype=bool)
        boundary[0] = True
        np.not_equal(event_sets[1:], event_sets[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        sizes = np.empty(starts.size, dtype=np.int64)
        if starts.size > 1:
            sizes[:-1] = np.diff(starts)
        sizes[-1] = n_events - starts[-1]
        by_size = np.argsort(-sizes, kind="stable")
        starts_desc = starts[by_size]
        neg_sizes = -sizes[by_size]  # ascending

        tags, dirty = self.tags, self.dirty
        occupancy = self.occupancy
        spec = self.policy
        assoc = self.associativity
        rounds = int(sizes[by_size[0]])
        lanes = np.arange(min(int(starts.size), n_events))
        round_index = 0
        while round_index < rounds:
            # groups still alive in this round have size > round_index
            width = int(np.searchsorted(neg_sizes, -round_index, side="left"))
            if width < ROUND_WIDTH_CUTOFF:
                break
            idx = starts_desc[:width] + round_index
            sel = event_sets[idx]
            line = event_lines[idx]
            rows = tags[sel]
            match = rows == line[:, None]
            hit = match.any(axis=1)
            way_hit = match.argmax(axis=1)
            occ_sel = occupancy[sel]
            full = occ_sel == assoc
            miss = ~hit
            evicting = miss & full
            # Lanes are distinct sets, so the policy's vectorized hooks see
            # one independent set per lane (victim state mutations — random
            # eviction ordinals, RRIP aging — apply to evicting lanes only).
            victim_way = spec.vector_victims(self, sel, evicting)
            way = np.where(hit, way_hit, np.where(full, victim_way, occ_sel))
            evicted = rows[lanes[:width], way]
            hit_out[idx] = hit
            victim_line[idx] = np.where(evicting, evicted, -1)
            victim_wb[idx] = evicting & dirty[sel, way]
            tags[sel, way] = line
            dirty[sel, way] = (dirty[sel, way] & hit) | event_dirty[idx]
            spec.vector_touch(self, sel, way, hit, miss, event_age[idx], event_retouch[idx])
            occupancy[sel] = occ_sel + (miss & ~full)
            round_index += 1

        if round_index < rounds:
            # Chain tail: the few sets whose event chains outlive the wide
            # rounds (intra-chunk same-set dependency runs) are finished by
            # an ordered-list walk at reference-loop speed.
            remaining = int(np.searchsorted(neg_sizes, -round_index, side="left"))
            for lane in range(remaining):
                start = int(starts_desc[lane]) + round_index
                stop = int(starts_desc[lane]) - int(neg_sizes[lane])
                self._scalar_chain(
                    int(event_sets[start]),
                    event_lines[start:stop].tolist(),
                    event_dirty[start:stop].tolist(),
                    event_age[start:stop].tolist(),
                    event_retouch[start:stop].tolist(),
                    start,
                    hit_out,
                    victim_line,
                    victim_wb,
                )

    def _scalar_chain(
        self,
        set_index: int,
        chain_lines: list,
        chain_dirty: list,
        chain_age: list,
        chain_retouch: list,
        out_offset: int,
        hit_out: np.ndarray,
        victim_line: np.ndarray,
        victim_wb: np.ndarray,
    ) -> None:
        """Walk one set's remaining event chain through the scalar event path.

        Each event runs :meth:`_scalar_event`, so victim selection and the
        touch/insert rule come from the same policy hooks as every other
        path.  Chain heads may carry aggregated last-touch ticks that
        postdate later events of the same set; ticks stay unique within a
        set, so tick-based victim selection stays deterministic.
        """
        for position, (line, dirty_value, tick, retouch) in enumerate(
            zip(chain_lines, chain_dirty, chain_age, chain_retouch)
        ):
            hit, evicted_line, evicted_dirty = self._scalar_event(
                set_index, line, dirty_value, tick, retouch
            )
            if hit:
                hit_out[out_offset + position] = True
            elif evicted_line >= 0:
                victim_line[out_offset + position] = evicted_line
                victim_wb[out_offset + position] = evicted_dirty

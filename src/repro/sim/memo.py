"""Simulation-result memoization.

The autotuning loop re-simulates identical schedules across rounds — the
tuner proposes a configuration, measures it, and frequently proposes it (or a
behaviourally identical sibling) again later.  Because the simulator is a
pure function of ``(program content, hierarchy configuration, trace
options, engine)``, its results can be cached on that key.

:class:`SimulationCache` is an LRU-bounded in-memory store with an optional
on-disk layer (the ``processes`` pool backend points every worker at one
shared directory, see :func:`shared_disk_cache_dir`).  Keys hash the
program's cached content digest — computed once per program — together with
the hierarchy and trace options, normalising out the trace representation,
which does not affect results.  Values are stored as flat statistics snapshots and
reconstructed into fresh :class:`~repro.sim.stats.SimulationStats` objects on
every lookup, so callers can never mutate a cached entry through an alias.
The store is thread-safe: the ``threads`` backend of
:class:`~repro.sim.simulator.SimulatorPool` shares one cache across workers,
and :meth:`SimulationCache.get_or_compute` coalesces concurrent requests for
one key onto a single in-flight computation.

Memoized statistics match a fresh simulation bit-for-bit except for
``sim.host_seconds``, which is rewritten by the caller to the (much smaller)
lookup time — reporting the original walk time for a served-from-cache run
would misstate simulation cost, e.g. in the Eq. 4 speedup accounting.

The on-disk layer is shared by many processes that can die at any point, so
it is hardened against the resulting debris: entries are written as
schema-versioned, checksummed envelopes; a truncated, garbled or
wrong-schema entry is **quarantined** (renamed, never deleted — the bytes
stay available for post-mortems) and served as a miss, emitting a
:class:`~repro.reliability.MemoQuarantineWarning`; and stale ``.*.tmp``
scratch files left behind by workers killed mid-write are swept on cache
construction.  The chaos suite drives these paths through the
``memo_corrupt_read`` / ``memo_corrupt_write`` fault-injection sites.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.reliability import MemoQuarantineWarning, current_deadline
from repro.reliability import faults
from repro.sim.stats import SimulationStats


#: Version tag of the default shared cache directory.  Bump whenever a
#: change alters simulation *results* (not just speed) or the key payload
#: shape: the memoization key hashes only inputs, so cached statistics from
#: an older behaviour would otherwise be served silently across upgrades.
#: v3: replacement policy per hierarchy level and the random-replacement
#: ``rng_seed`` joined the key (the seed only when a random level is
#: present — it cannot affect deterministic-policy results).
#: v4: the unified policy registry added PLRU and RRIP (new aux state
#: planes join the simulated behaviour, and new policy names must never
#: alias a digest computed before they existed).
CACHE_SCHEMA_VERSION = 4

#: Orphaned write scratch (``.{key}.{pid}.tmp``) older than this is removed
#: when a cache attaches to a disk directory; younger files may belong to a
#: live writer mid-``os.replace``.  ``REPRO_MEMO_TMP_MAX_AGE_S`` overrides.
STALE_TMP_MAX_AGE_S = 600.0


def _has_victim_stream_level(hierarchy: dict) -> bool:
    """Whether any level of an ``asdict``-ed hierarchy config uses a policy
    that consumes the replayable victim stream
    (:attr:`repro.sim.policies.PolicySpec.uses_victim_stream`), making the
    ``rng_seed`` result-relevant.
    """
    from repro.sim.policies import POLICIES

    return any(
        isinstance(level, dict)
        and level.get("replacement") in POLICIES
        and POLICIES[level["replacement"]].uses_victim_stream
        for level in hierarchy.values()
    )


def shared_disk_cache_dir() -> Path:
    """The default on-disk cache directory shared across worker processes.

    ``REPRO_SIM_MEMO_DIR`` overrides; otherwise a per-user, per-schema
    directory under the system temp root is used (created ``0o700``).
    Entries are content-addressed by the memoization key, so sharing the
    directory across runs and processes of one schema version is safe — a
    stale entry is by construction bit-identical to a fresh simulation of
    the same key.
    """
    override = os.environ.get("REPRO_SIM_MEMO_DIR")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    path = Path(tempfile.gettempdir()) / f"repro-sim-memo-v{CACHE_SCHEMA_VERSION}-{uid}"
    try:
        path.mkdir(mode=0o700, parents=True, exist_ok=True)
    except OSError:
        pass  # SimulationCache creates (or fails on) it with context
    return path


class SimulationCache:
    """LRU-bounded memoization store for simulation statistics."""

    def __init__(
        self,
        maxsize: int = 128,
        disk_dir: Optional[Union[str, Path]] = None,
        store=None,
    ):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        #: Optional shared backing store (duck-typed, e.g.
        #: :class:`repro.service.ResultStore`): ``get(key) -> flat dict | None``
        #: and ``put(key, flat)``.  Consulted after the in-memory LRU and the
        #: disk layer, written through on every :meth:`put`.  Store errors are
        #: contained as misses — a degraded backend never breaks a run.
        self.store = store
        self._entries: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
        self._lock = threading.Lock()
        #: In-flight computations keyed by memo key: concurrent
        #: :meth:`get_or_compute` callers for one key block on one event
        #: instead of racing to simulate the same candidate.
        self._inflight: Dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        #: Requests served by waiting on another thread's in-flight
        #: computation instead of simulating redundantly.
        self.coalesced = 0
        #: Corrupted disk entries renamed aside (never deleted) by this cache.
        self.quarantined = 0
        if self.disk_dir is not None:
            self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> None:
        """Remove orphaned ``.*.tmp`` write scratch left by killed workers.

        Only files older than :data:`STALE_TMP_MAX_AGE_S` go — a younger
        scratch file may belong to a live writer about to ``os.replace`` it.
        """
        max_age = float(os.environ.get("REPRO_MEMO_TMP_MAX_AGE_S", STALE_TMP_MAX_AGE_S))
        now = time.time()
        try:
            candidates = list(self.disk_dir.glob(".*.tmp"))
        except OSError:
            return
        for path in candidates:
            try:
                if now - path.stat().st_mtime > max_age:
                    path.unlink(missing_ok=True)
            except OSError:  # raced with another sweeper or the writer
                continue

    # -- keys ---------------------------------------------------------------
    @staticmethod
    def make_key(program, hierarchy_config, trace_options, engine: str) -> str:
        """The memoization key of one simulation request.

        ``program.content_digest()`` is cached on the program, so repeated
        lookups do not re-serialise the tree.  The trace *representation*
        (descriptor/expanded) is deliberately normalised out of the key —
        like the two engines, both representations produce bit-identical
        statistics, so results memoized under one serve the other.  The
        random-replacement ``rng_seed`` is part of the key whenever any
        hierarchy level uses a victim-stream policy — two runs with
        different seeds can never share a cached result — and is normalised
        out otherwise, where the replayable victim stream is never consumed
        and the seed provably cannot affect statistics.
        """
        hierarchy = asdict(hierarchy_config)
        trace = asdict(trace_options)
        trace.pop("engine", None)  # resolved and keyed separately
        trace.pop("trace", None)  # representation-neutral results
        if not _has_victim_stream_level(hierarchy):
            trace.pop("rng_seed", None)  # seed-neutral results
        payload = {
            "program": program.content_digest(),
            "hierarchy": hierarchy,
            "trace": trace,
            "engine": engine,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- store --------------------------------------------------------------
    def get(self, key: str) -> Optional[SimulationStats]:
        """Look up a cached result; returns a fresh stats object or ``None``."""
        with self._lock:
            flat = self._entries.get(key)
            if flat is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return _stats_from_flat(flat)
        # The disk read happens outside the lock so concurrent workers are
        # not serialized behind file I/O (mirroring ``put``); the re-locked
        # insert is a double-checked write — entries are content-addressed,
        # so a racing inserter of the same key wrote identical data.
        flat = self._load_from_disk(key)
        if flat is None:
            flat = self._load_from_store(key)
        with self._lock:
            if flat is not None:
                self._insert(key, flat)
                self.hits += 1
                return _stats_from_flat(flat)
            self.misses += 1
            return None

    def get_or_compute(self, key, compute):
        """Serve ``key`` from the cache, computing it at most once per process.

        Returns ``(stats, computed)`` where ``computed`` is True when *this*
        call ran ``compute``.  Concurrent callers for the same key (e.g. the
        threads backend of the simulator pool evaluating a batch containing
        duplicate candidates) coalesce onto one in-flight computation: the
        first caller becomes the **leader** and simulates; the rest block on
        the leader's event and are then served the freshly cached result.
        If the leader raises, waiters wake, observe the miss, and compete to
        become the next leader — a failed computation never wedges the key.

        Waiters poll the ambient cooperative deadline while blocked, so a
        candidate's ``timeout_s`` budget keeps its meaning even when the
        candidate spends it waiting on a twin.
        """
        while True:
            stats = self.get(key)
            if stats is not None:
                return stats, False
            with self._lock:
                flight = self._inflight.get(key)
                leader = flight is None
                if leader:
                    flight = self._inflight[key] = threading.Event()
            if not leader:
                deadline = current_deadline()
                while not flight.wait(timeout=0.05):
                    if deadline is not None:
                        deadline.check("coalesced memo wait")
                with self._lock:
                    self.coalesced += 1
                continue  # leader finished: a cache hit, or compete to lead
            try:
                stats = compute()
            except BaseException:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.set()
                raise
            self.put(key, stats)
            with self._lock:
                self._inflight.pop(key, None)
            flight.set()
            return stats, True

    def put(self, key: str, stats: SimulationStats) -> None:
        """Store one simulation result."""
        flat = dict(stats.as_dict())
        with self._lock:
            self._insert(key, flat)
        if self.disk_dir is not None:
            # File I/O happens outside the lock so concurrent workers are
            # not serialized behind a disk write; the write-then-rename makes
            # concurrent writers of the same key (which produce identical
            # payloads) safe for readers.
            path = self.disk_dir / f"{key}.json"
            scratch = self.disk_dir / f".{key}.{os.getpid()}.tmp"
            body = faults.corrupt_text("memo_corrupt_write", _encode_entry(flat))
            try:
                scratch.write_text(body, encoding="utf-8")
                os.replace(scratch, path)
            except OSError:  # a full or read-only disk never breaks the run
                scratch.unlink(missing_ok=True)
        if self.store is not None:
            try:
                self.store.put(key, flat)
            except Exception:  # noqa: BLE001 — a degraded store never breaks a run
                pass

    def _insert(self, key: str, flat: Dict[str, float]) -> None:
        self._entries[key] = flat
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _load_from_disk(self, key: str) -> Optional[Dict[str, float]]:
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{key}.json"
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:  # unreadable but present: leave it for a post-mortem
            return None
        text = faults.corrupt_text("memo_corrupt_read", text)
        flat, reason = _decode_entry(text)
        if flat is None:
            self._quarantine(path, reason)
            return None
        return flat

    def _load_from_store(self, key: str) -> Optional[Dict[str, float]]:
        """Consult the shared backing store; errors are contained as misses."""
        if self.store is None:
            return None
        try:
            flat = self.store.get(key)
        except Exception:  # noqa: BLE001 — a degraded store never breaks a run
            return None
        if flat is None:
            return None
        try:
            return {str(k): float(v) for k, v in flat.items()}
        except (AttributeError, TypeError, ValueError):
            return None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupted entry aside (rename, never delete) and warn."""
        self.quarantined += 1
        target = path.with_name(path.name + ".quarantine")
        try:
            os.replace(path, target)
        except OSError:
            pass  # raced with another quarantiner or a fresh overwrite
        warnings.warn(MemoQuarantineWarning(str(path), reason), stacklevel=3)

    # -- management ---------------------------------------------------------
    def clear(self) -> None:
        """Drop all in-memory entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.coalesced = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SimulationCache({len(self)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


def _canonical_stats_json(flat: Dict[str, float]) -> str:
    return json.dumps(flat, sort_keys=True, separators=(",", ":"))


def _encode_entry(flat: Dict[str, float]) -> str:
    """Serialise one entry as a schema-versioned, checksummed envelope.

    Values are normalised to floats first so the checksum computed here
    matches the one recomputed after a JSON round trip (which turns every
    number into a float).
    """
    normalised = {str(k): float(v) for k, v in flat.items()}
    stats_json = _canonical_stats_json(normalised)
    checksum = hashlib.sha256(stats_json.encode("utf-8")).hexdigest()
    return json.dumps(
        {"schema": CACHE_SCHEMA_VERSION, "sha256": checksum, "stats": normalised},
        sort_keys=True,
    )


def _decode_entry(text: str):
    """Parse and validate one disk entry.

    Returns ``(flat_stats, "")`` on success or ``(None, reason)`` when the
    entry must be quarantined.  Legacy flat-dictionary entries (written
    before the envelope format, within the same schema directory) are still
    accepted; everything else must carry the schema tag and a matching
    checksum.
    """
    try:
        payload = json.loads(text)
    except ValueError:
        return None, "not valid JSON (truncated or garbled)"
    if not isinstance(payload, dict):
        return None, f"unexpected payload type {type(payload).__name__}"
    if "schema" in payload:
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None, (
                f"schema {payload.get('schema')!r} != expected {CACHE_SCHEMA_VERSION}"
            )
        stats = payload.get("stats")
        if not isinstance(stats, dict):
            return None, "missing stats object"
        try:
            flat = {str(k): float(v) for k, v in stats.items()}
        except (TypeError, ValueError):
            return None, "non-numeric statistics values"
        checksum = hashlib.sha256(
            _canonical_stats_json(flat).encode("utf-8")
        ).hexdigest()
        if payload.get("sha256") != checksum:
            return None, "checksum mismatch"
        return flat, ""
    try:  # legacy pre-envelope entry: a flat {"group.key": value} dict
        return {str(k): float(v) for k, v in payload.items()}, ""
    except (TypeError, ValueError):
        return None, "non-numeric statistics values"


def stats_from_flat(flat: Dict[str, float]) -> SimulationStats:
    """Rebuild a :class:`SimulationStats` from its flat snapshot.

    The inverse of ``SimulationStats.as_dict()``; used by the memo layer and
    by service clients reconstructing results from transported flat stats.
    """
    stats = SimulationStats()
    for flat_key, value in flat.items():
        group_name, _, key = flat_key.rpartition(".")
        stats.group(group_name).set(key, value)
    return stats


#: Backwards-compatible private alias (pre-service internal name).
_stats_from_flat = stats_from_flat


#: Process-wide default cache shared by all memoizing simulators.
_DEFAULT_CACHE = SimulationCache(maxsize=128)


def default_simulation_cache() -> SimulationCache:
    """The process-wide cache used when a simulator enables memoization."""
    return _DEFAULT_CACHE

"""Simulation-result memoization.

The autotuning loop re-simulates identical schedules across rounds — the
tuner proposes a configuration, measures it, and frequently proposes it (or a
behaviourally identical sibling) again later.  Because the simulator is a
pure function of ``(program content, hierarchy configuration, trace
options, engine)``, its results can be cached on that key.

:class:`SimulationCache` is an LRU-bounded in-memory store with an optional
on-disk layer.  Values are stored as flat statistics snapshots and
reconstructed into fresh :class:`~repro.sim.stats.SimulationStats` objects on
every lookup, so callers can never mutate a cached entry through an alias.
The store is thread-safe: the ``threads`` backend of
:class:`~repro.sim.simulator.SimulatorPool` shares one cache across workers.

Memoized statistics match a fresh simulation bit-for-bit except for
``sim.host_seconds``, which is rewritten by the caller to the (much smaller)
lookup time — reporting the original walk time for a served-from-cache run
would misstate simulation cost, e.g. in the Eq. 4 speedup accounting.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.sim.stats import SimulationStats


class SimulationCache:
    """LRU-bounded memoization store for simulation statistics."""

    def __init__(self, maxsize: int = 128, disk_dir: Optional[Union[str, Path]] = None):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------------
    @staticmethod
    def make_key(program, hierarchy_config, trace_options, engine: str) -> str:
        """The memoization key of one simulation request."""
        payload = {
            "program": program.content_digest(),
            "hierarchy": asdict(hierarchy_config),
            "trace": asdict(trace_options),
            "engine": engine,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- store --------------------------------------------------------------
    def get(self, key: str) -> Optional[SimulationStats]:
        """Look up a cached result; returns a fresh stats object or ``None``."""
        with self._lock:
            flat = self._entries.get(key)
            if flat is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return _stats_from_flat(flat)
            flat = self._load_from_disk(key)
            if flat is not None:
                self._insert(key, flat)
                self.hits += 1
                return _stats_from_flat(flat)
            self.misses += 1
            return None

    def put(self, key: str, stats: SimulationStats) -> None:
        """Store one simulation result."""
        flat = dict(stats.as_dict())
        with self._lock:
            self._insert(key, flat)
        if self.disk_dir is not None:
            # File I/O happens outside the lock so concurrent workers are
            # not serialized behind a disk write.
            path = self.disk_dir / f"{key}.json"
            path.write_text(json.dumps(flat, sort_keys=True), encoding="utf-8")

    def _insert(self, key: str, flat: Dict[str, float]) -> None:
        self._entries[key] = flat
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _load_from_disk(self, key: str) -> Optional[Dict[str, float]]:
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):  # corrupted entry: treat as a miss
            return None
        return {str(k): float(v) for k, v in payload.items()}

    # -- management ---------------------------------------------------------
    def clear(self) -> None:
        """Drop all in-memory entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SimulationCache({len(self._entries)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


def _stats_from_flat(flat: Dict[str, float]) -> SimulationStats:
    """Rebuild a :class:`SimulationStats` from its flat snapshot."""
    stats = SimulationStats()
    for flat_key, value in flat.items():
        group_name, _, key = flat_key.rpartition(".")
        stats.group(group_name).set(key, value)
    return stats


#: Process-wide default cache shared by all memoizing simulators.
_DEFAULT_CACHE = SimulationCache(maxsize=128)


def default_simulation_cache() -> SimulationCache:
    """The process-wide cache used when a simulator enables memoization."""
    return _DEFAULT_CACHE

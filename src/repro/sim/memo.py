"""Simulation-result memoization.

The autotuning loop re-simulates identical schedules across rounds — the
tuner proposes a configuration, measures it, and frequently proposes it (or a
behaviourally identical sibling) again later.  Because the simulator is a
pure function of ``(program content, hierarchy configuration, trace
options, engine)``, its results can be cached on that key.

:class:`SimulationCache` is an LRU-bounded in-memory store with an optional
on-disk layer (the ``processes`` pool backend points every worker at one
shared directory, see :func:`shared_disk_cache_dir`).  Keys hash the
program's cached content digest — computed once per program — together with
the hierarchy and trace options, normalising out the trace representation,
which does not affect results.  Values are stored as flat statistics snapshots and
reconstructed into fresh :class:`~repro.sim.stats.SimulationStats` objects on
every lookup, so callers can never mutate a cached entry through an alias.
The store is thread-safe: the ``threads`` backend of
:class:`~repro.sim.simulator.SimulatorPool` shares one cache across workers.

Memoized statistics match a fresh simulation bit-for-bit except for
``sim.host_seconds``, which is rewritten by the caller to the (much smaller)
lookup time — reporting the original walk time for a served-from-cache run
would misstate simulation cost, e.g. in the Eq. 4 speedup accounting.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.sim.stats import SimulationStats


#: Version tag of the default shared cache directory.  Bump whenever a
#: change alters simulation *results* (not just speed) or the key payload
#: shape: the memoization key hashes only inputs, so cached statistics from
#: an older behaviour would otherwise be served silently across upgrades.
#: v3: replacement policy per hierarchy level and the random-replacement
#: ``rng_seed`` joined the key (the seed only when a random level is
#: present — it cannot affect deterministic-policy results).
CACHE_SCHEMA_VERSION = 3


def _has_random_level(hierarchy: dict) -> bool:
    """Whether any level of an ``asdict``-ed hierarchy config is random-replacement."""
    return any(
        isinstance(level, dict) and level.get("replacement") == "random"
        for level in hierarchy.values()
    )


def shared_disk_cache_dir() -> Path:
    """The default on-disk cache directory shared across worker processes.

    ``REPRO_SIM_MEMO_DIR`` overrides; otherwise a per-user, per-schema
    directory under the system temp root is used (created ``0o700``).
    Entries are content-addressed by the memoization key, so sharing the
    directory across runs and processes of one schema version is safe — a
    stale entry is by construction bit-identical to a fresh simulation of
    the same key.
    """
    override = os.environ.get("REPRO_SIM_MEMO_DIR")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    path = Path(tempfile.gettempdir()) / f"repro-sim-memo-v{CACHE_SCHEMA_VERSION}-{uid}"
    try:
        path.mkdir(mode=0o700, parents=True, exist_ok=True)
    except OSError:
        pass  # SimulationCache creates (or fails on) it with context
    return path


class SimulationCache:
    """LRU-bounded memoization store for simulation statistics."""

    def __init__(self, maxsize: int = 128, disk_dir: Optional[Union[str, Path]] = None):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        self._entries: "OrderedDict[str, Dict[str, float]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- keys ---------------------------------------------------------------
    @staticmethod
    def make_key(program, hierarchy_config, trace_options, engine: str) -> str:
        """The memoization key of one simulation request.

        ``program.content_digest()`` is cached on the program, so repeated
        lookups do not re-serialise the tree.  The trace *representation*
        (descriptor/expanded) is deliberately normalised out of the key —
        like the two engines, both representations produce bit-identical
        statistics, so results memoized under one serve the other.  The
        random-replacement ``rng_seed`` is part of the key whenever any
        hierarchy level uses the random policy — two runs with different
        seeds can never share a cached result — and is normalised out
        otherwise, where the replayable victim stream is never consumed and
        the seed provably cannot affect statistics.
        """
        hierarchy = asdict(hierarchy_config)
        trace = asdict(trace_options)
        trace.pop("engine", None)  # resolved and keyed separately
        trace.pop("trace", None)  # representation-neutral results
        if not _has_random_level(hierarchy):
            trace.pop("rng_seed", None)  # seed-neutral results
        payload = {
            "program": program.content_digest(),
            "hierarchy": hierarchy,
            "trace": trace,
            "engine": engine,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- store --------------------------------------------------------------
    def get(self, key: str) -> Optional[SimulationStats]:
        """Look up a cached result; returns a fresh stats object or ``None``."""
        with self._lock:
            flat = self._entries.get(key)
            if flat is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return _stats_from_flat(flat)
        # The disk read happens outside the lock so concurrent workers are
        # not serialized behind file I/O (mirroring ``put``); the re-locked
        # insert is a double-checked write — entries are content-addressed,
        # so a racing inserter of the same key wrote identical data.
        flat = self._load_from_disk(key)
        with self._lock:
            if flat is not None:
                self._insert(key, flat)
                self.hits += 1
                return _stats_from_flat(flat)
            self.misses += 1
            return None

    def put(self, key: str, stats: SimulationStats) -> None:
        """Store one simulation result."""
        flat = dict(stats.as_dict())
        with self._lock:
            self._insert(key, flat)
        if self.disk_dir is not None:
            # File I/O happens outside the lock so concurrent workers are
            # not serialized behind a disk write; the write-then-rename makes
            # concurrent writers of the same key (which produce identical
            # payloads) safe for readers.
            path = self.disk_dir / f"{key}.json"
            scratch = self.disk_dir / f".{key}.{os.getpid()}.tmp"
            try:
                scratch.write_text(json.dumps(flat, sort_keys=True), encoding="utf-8")
                os.replace(scratch, path)
            except OSError:  # a full or read-only disk never breaks the run
                scratch.unlink(missing_ok=True)

    def _insert(self, key: str, flat: Dict[str, float]) -> None:
        self._entries[key] = flat
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _load_from_disk(self, key: str) -> Optional[Dict[str, float]]:
        if self.disk_dir is None:
            return None
        path = self.disk_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):  # corrupted entry: treat as a miss
            return None
        return {str(k): float(v) for k, v in payload.items()}

    # -- management ---------------------------------------------------------
    def clear(self) -> None:
        """Drop all in-memory entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"SimulationCache({len(self)}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


def _stats_from_flat(flat: Dict[str, float]) -> SimulationStats:
    """Rebuild a :class:`SimulationStats` from its flat snapshot."""
    stats = SimulationStats()
    for flat_key, value in flat.items():
        group_name, _, key = flat_key.rpartition(".")
        stats.group(group_name).set(key, value)
    return stats


#: Process-wide default cache shared by all memoizing simulators.
_DEFAULT_CACHE = SimulationCache(maxsize=128)


def default_simulation_cache() -> SimulationCache:
    """The process-wide cache used when a simulator enables memoization."""
    return _DEFAULT_CACHE

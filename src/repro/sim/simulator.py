"""Simulator facade and parallel simulation pool.

A :class:`Simulator` instance corresponds to one gem5 process: an atomic CPU
with a cold, Table I-parameterised cache hierarchy for the selected
architecture.  The :class:`SimulatorPool` mirrors the paper's ``n_parallel``
setting: many independent simulator instances executing different schedule
implementations concurrently (processes or threads) or back to back (serial
fallback).

Two cross-cutting performance features live here:

* **Engine selection** — ``engine`` picks the cache-simulation engine
  (``"reference"`` or ``"vectorized"``, see :mod:`repro.sim.engine`) and is
  threaded down through the hierarchy; ``TraceOptions.engine`` is honoured
  when no explicit engine is given.  ``TraceOptions.trace`` likewise picks
  the trace representation (descriptor runs by default on the vectorized
  engine, expanded address chunks otherwise); all combinations are
  bit-identical.
* **Result memoization** — ``Simulator.run`` is a pure function of
  ``(program content, hierarchy config, trace options, engine)``, so results
  are served from an LRU-bounded :class:`~repro.sim.memo.SimulationCache`
  when the same triple is simulated again (the tuner re-simulates identical
  schedules across rounds).  Cached statistics are bit-identical to a fresh
  run except ``sim.host_seconds``, which reports the cache-lookup time.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.codegen.program import Program
from repro.reliability import (
    BackendDegradationWarning,
    Deadline,
    DeadlineExceeded,
    InjectedWorkerCrash,
    RetryPolicy,
    deadline_scope,
)
from repro.reliability import faults
from repro.sim.configs import CACHE_HIERARCHIES
from repro.sim.cpu import AtomicSimpleCPU, TraceOptions
from repro.sim.engine import resolve_engine, resolve_trace_mode
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig
from repro.sim.memo import SimulationCache, default_simulation_cache, shared_disk_cache_dir
from repro.sim.stats import SimulationStats


@dataclass
class SimulationResult:
    """Outcome of simulating one program."""

    program_name: str
    arch: str
    stats: SimulationStats
    trace_accesses: int
    host_seconds: float
    #: Whether the statistics were served from the memoization cache.
    cached: bool = False

    def flat_stats(self) -> Dict[str, float]:
        """All statistics as a flat ``{"group.key": value}`` dictionary."""
        return self.stats.as_dict()

    def dump(self) -> str:
        """gem5-style ``stats.txt`` rendering."""
        return self.stats.dump()


@dataclass
class SimulationFailure:
    """Structured record of one candidate that could not be simulated.

    Returned (never raised) by :meth:`SimulatorPool.run_many_resilient` in
    place of a :class:`SimulationResult`, so one bad candidate cannot poison
    the rest of a batch.  ``kind`` is one of the class constants below;
    ``attempts`` counts every execution attempt including retries and pool
    respawns.
    """

    #: The candidate exceeded its simulation deadline (``timeout_s``).
    TIMEOUT = "timeout"
    #: The worker executing the candidate died (e.g. a broken process pool).
    CRASH = "crash"
    #: The simulation raised an ordinary exception.
    ERROR = "error"

    program_name: str
    kind: str
    error: str
    attempts: int = 1
    host_seconds: float = 0.0


class Simulator:
    """One instruction-accurate simulator instance for a target architecture."""

    def __init__(
        self,
        arch: str,
        hierarchy_config: Optional[CacheHierarchyConfig] = None,
        trace_options: TraceOptions = TraceOptions(),
        engine: Optional[str] = None,
        memoize: bool = True,
        memo_cache: Optional[SimulationCache] = None,
    ):
        self.arch = arch.strip().lower()
        if hierarchy_config is None:
            if self.arch not in CACHE_HIERARCHIES:
                raise KeyError(f"no default cache hierarchy for architecture {arch!r}")
            hierarchy_config = CACHE_HIERARCHIES[self.arch]
        self.hierarchy_config = hierarchy_config
        self.engine = resolve_engine(engine or trace_options.engine)
        # Pin the trace representation at construction so later environment
        # changes cannot make runs disagree with the inspected attribute.
        self.trace = resolve_trace_mode(trace_options.trace, self.engine)
        self.trace_options = replace(trace_options, trace=self.trace)
        self.memoize = memoize
        self.memo_cache = memo_cache if memo_cache is not None else (
            default_simulation_cache() if memoize else None
        )

    def run(
        self, program: Program, timeout_s: Optional[float] = None
    ) -> SimulationResult:
        """Simulate ``program`` on a cold cache hierarchy (or serve it cached).

        A positive ``timeout_s`` installs a cooperative deadline for the
        duration of the run: the trace walk polls it once per chunk and
        raises :class:`~repro.reliability.DeadlineExceeded` when the budget
        is spent, so a pathological candidate overshoots by at most one
        chunk of work.
        """
        if timeout_s is not None and timeout_s > 0:
            with deadline_scope(Deadline.after(timeout_s)):
                return self._run(program)
        return self._run(program)

    def _run(self, program: Program) -> SimulationResult:
        key = None
        if self.memoize and self.memo_cache is not None:
            start = time.perf_counter()
            key = self.memo_cache.make_key(
                program, self.hierarchy_config, self.trace_options, self.engine
            )
            stats = self.memo_cache.get(key)
            if stats is not None:
                elapsed = time.perf_counter() - start
                stats.group("sim").set("host_seconds", elapsed)
                return SimulationResult(
                    program_name=program.name,
                    arch=self.arch,
                    stats=stats,
                    trace_accesses=int(stats.get("sim.trace_accesses")),
                    host_seconds=elapsed,
                    cached=True,
                )
        hierarchy = CacheHierarchy(
            self.hierarchy_config, engine=self.engine, rng_seed=self.trace_options.rng_seed
        )
        cpu = AtomicSimpleCPU(hierarchy)
        stats = cpu.run(program, self.trace_options)
        if key is not None:
            self.memo_cache.put(key, stats)
        return SimulationResult(
            program_name=program.name,
            arch=self.arch,
            stats=stats,
            trace_accesses=int(stats.get("sim.trace_accesses")),
            host_seconds=stats.get("sim.host_seconds"),
        )


#: Per-process disk-backed caches, keyed by directory: pool workers are
#: reused across submitted programs, so the in-memory LRU layer stays warm
#: instead of being rebuilt (and re-reading disk) for every task.
_WORKER_CACHES: Dict[str, SimulationCache] = {}


def _worker_cache(memo_dir: str) -> SimulationCache:
    cache = _WORKER_CACHES.get(memo_dir)
    if cache is None:
        cache = _WORKER_CACHES[memo_dir] = SimulationCache(disk_dir=memo_dir)
    return cache


def _run_single(
    arch, hierarchy_config, trace_options, program, engine, memoize, memo_dir=None
) -> SimulationResult:
    memo_cache = None
    if memoize and memo_dir is not None:
        # Worker processes memoize through a shared on-disk layer: results
        # computed by any worker (or an earlier run) are served to all.
        memo_cache = _worker_cache(memo_dir)
    simulator = Simulator(
        arch, hierarchy_config, trace_options, engine=engine, memoize=memoize,
        memo_cache=memo_cache,
    )
    return simulator.run(program)


def _run_slice(
    arch, hierarchy_config, trace_options, programs, engine, memoize
) -> List[SimulationResult]:
    simulator = Simulator(arch, hierarchy_config, trace_options, engine=engine, memoize=memoize)
    return [simulator.run(program) for program in programs]


#: Union returned by the resilient pool API: one entry per program, in input
#: order, each either a result or a structured failure record.
ResilientOutcome = Union[SimulationResult, SimulationFailure]


def _attempt_program(
    simulator: Simulator,
    program: Program,
    timeout_s: float,
    retry: RetryPolicy,
) -> ResilientOutcome:
    """Run one program with containment: failures become records, not raises.

    Timeouts are final (retrying a deterministic overrun just doubles the
    damage); crashes and ordinary errors are retried per ``retry`` with
    deterministic backoff.
    """
    start = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            faults.maybe_crash_worker()
            return simulator.run(program, timeout_s=timeout_s if timeout_s > 0 else None)
        except DeadlineExceeded as error:
            return SimulationFailure(
                program_name=program.name,
                kind=SimulationFailure.TIMEOUT,
                error=str(error),
                attempts=attempt,
                host_seconds=time.perf_counter() - start,
            )
        except Exception as error:  # noqa: BLE001 — containment boundary
            kind = (
                SimulationFailure.CRASH
                if isinstance(error, InjectedWorkerCrash)
                else SimulationFailure.ERROR
            )
            if attempt >= retry.max_attempts:
                return SimulationFailure(
                    program_name=program.name,
                    kind=kind,
                    error=f"{type(error).__name__}: {error}",
                    attempts=attempt,
                    host_seconds=time.perf_counter() - start,
                )
            time.sleep(retry.delay_s(attempt, key=program.name))


def _run_slice_resilient(
    arch, hierarchy_config, trace_options, programs, engine, memoize, timeout_s, retry
) -> List[ResilientOutcome]:
    simulator = Simulator(arch, hierarchy_config, trace_options, engine=engine, memoize=memoize)
    return [_attempt_program(simulator, program, timeout_s, retry) for program in programs]


def _run_single_resilient(
    arch, hierarchy_config, trace_options, program, engine, memoize, memo_dir, timeout_s
) -> ResilientOutcome:
    """Process-pool worker entry: converts in-worker failures into records.

    Deadline overruns and ordinary exceptions come back as picklable
    :class:`SimulationFailure` values so the parent never has to unpickle an
    arbitrary exception; only a genuine worker death (or the injected
    ``worker_crash`` hard exit below) surfaces as ``BrokenProcessPool``.
    """
    faults.maybe_crash_worker()
    start = time.perf_counter()
    try:
        memo_cache = None
        if memoize and memo_dir is not None:
            memo_cache = _worker_cache(memo_dir)
        simulator = Simulator(
            arch, hierarchy_config, trace_options, engine=engine, memoize=memoize,
            memo_cache=memo_cache,
        )
        return simulator.run(program, timeout_s=timeout_s if timeout_s > 0 else None)
    except DeadlineExceeded as error:
        return SimulationFailure(
            program_name=program.name,
            kind=SimulationFailure.TIMEOUT,
            error=str(error),
            host_seconds=time.perf_counter() - start,
        )
    except Exception as error:  # noqa: BLE001 — containment boundary
        return SimulationFailure(
            program_name=program.name,
            kind=SimulationFailure.ERROR,
            error=f"{type(error).__name__}: {error}",
            host_seconds=time.perf_counter() - start,
        )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a process pool down without waiting on hung or dead workers."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 — best-effort teardown
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class SimulatorPool:
    """Run many simulations, up to ``n_parallel`` at a time.

    The paper's simulator interface exposes exactly this knob: each schedule
    implementation runs in its own simulator instance, and ``n_parallel``
    instances run concurrently on the host.  Three backends are available:

    * ``"serial"`` — one simulator, programs back to back (the default).
    * ``"threads"`` — ``n_parallel`` worker threads, each owning one
      simulator and a contiguous chunk of the program list.  The vectorized
      engine spends its time inside NumPy kernels that release the
      interpreter lock, so threads deliver parallelism without the
      process-spawn and pickling overhead of ``"processes"``.  All workers
      share the process-wide memoization cache.
    * ``"processes"`` — one OS process per concurrent simulation.  Workers
      share the memoization cache through an on-disk layer (``memo_dir``,
      defaulting to :func:`repro.sim.memo.shared_disk_cache_dir`), so a
      result computed by any worker — or by a previous run — is served to
      all of them.
    """

    arch: str
    n_parallel: int = 1
    hierarchy_config: Optional[CacheHierarchyConfig] = None
    trace_options: TraceOptions = field(default_factory=TraceOptions)
    backend: str = "serial"  # "serial", "threads" or "processes"
    engine: Optional[str] = None
    memoize: bool = True
    #: Shared disk cache directory for the ``processes`` backend; ``None``
    #: selects the per-user default.
    memo_dir: Optional[str] = None
    #: Per-candidate simulation budget in seconds for the resilient API
    #: (0 = unlimited).  Enforced cooperatively inside the trace walk, with a
    #: process-kill backstop on the ``processes`` backend.
    timeout_s: float = 0.0
    #: Retry policy for crashed or erroring candidates in the resilient API;
    #: ``None`` reads ``REPRO_RETRY_*`` (retries disabled by default).
    retry: Optional[RetryPolicy] = None
    #: How many times a broken process pool is respawned before the
    #: remaining work degrades to the ``threads`` backend.
    max_pool_respawns: int = 2

    BACKENDS = ("serial", "threads", "processes")

    def run_many(self, programs: Sequence[Program]) -> List[SimulationResult]:
        """Simulate all ``programs`` and return results in input order."""
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.backend!r}; expected one of {self.BACKENDS}"
            )
        memo_dir = None
        if self.backend == "processes" and self.memoize:
            memo_dir = str(self.memo_dir) if self.memo_dir else str(shared_disk_cache_dir())
        if self.backend == "serial" or self.n_parallel <= 1 or len(programs) <= 1:
            memo_cache = _worker_cache(memo_dir) if memo_dir else None
            simulator = Simulator(
                self.arch,
                self.hierarchy_config,
                self.trace_options,
                engine=self.engine,
                memoize=self.memoize,
                memo_cache=memo_cache,
            )
            return [simulator.run(program) for program in programs]
        if self.backend == "threads":
            return self._run_threaded(programs)
        with ProcessPoolExecutor(max_workers=self.n_parallel) as pool:
            futures = [
                pool.submit(
                    _run_single,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    program,
                    self.engine,
                    self.memoize,
                    memo_dir,
                )
                for program in programs
            ]
            return [future.result() for future in futures]

    def _run_threaded(self, programs: Sequence[Program]) -> List[SimulationResult]:
        """Chunked thread dispatch: each worker runs one contiguous slice."""
        workers = min(self.n_parallel, len(programs))
        base, extra = divmod(len(programs), workers)
        slices: List[Sequence[Program]] = []
        position = 0
        for worker in range(workers):
            size = base + (1 if worker < extra else 0)
            slices.append(programs[position : position + size])
            position += size
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_slice,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    chunk,
                    self.engine,
                    self.memoize,
                )
                for chunk in slices
            ]
            results: List[SimulationResult] = []
            for future in futures:
                results.extend(future.result())
        return results

    # -- resilient execution ----------------------------------------------

    def run_many_resilient(self, programs: Sequence[Program]) -> List[ResilientOutcome]:
        """Simulate all ``programs``; failures become records, never raises.

        Same dispatch as :meth:`run_many`, plus four containment layers:

        * each candidate runs under the pool's ``timeout_s`` deadline, so a
          hung candidate yields a ``timeout`` failure instead of blocking;
        * crashed or erroring candidates are retried per ``retry`` (with
          deterministic exponential backoff), then recorded as failures;
        * a broken process pool is respawned up to ``max_pool_respawns``
          times and only the unfinished slice is re-run;
        * when the respawn budget is spent, the remaining work degrades
          ``processes`` → ``threads`` → ``serial`` with a
          :class:`~repro.reliability.BackendDegradationWarning` at each step.

        Returns one entry per program, in input order, each either a
        :class:`SimulationResult` or a :class:`SimulationFailure`.
        Fault-free runs produce statistics bit-identical to
        :meth:`run_many`.
        """
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.backend!r}; expected one of {self.BACKENDS}"
            )
        retry = self.retry if self.retry is not None else RetryPolicy.from_env()
        timeout_s = float(self.timeout_s or 0.0)
        memo_dir = None
        if self.backend == "processes" and self.memoize:
            memo_dir = str(self.memo_dir) if self.memo_dir else str(shared_disk_cache_dir())
        if self.backend == "serial" or self.n_parallel <= 1 or len(programs) <= 1:
            return self._run_serial_resilient(programs, memo_dir, timeout_s, retry)
        if self.backend == "threads":
            return self._run_threads_resilient(programs, timeout_s, retry)
        return self._run_processes_resilient(programs, memo_dir, timeout_s, retry)

    def _run_serial_resilient(
        self,
        programs: Sequence[Program],
        memo_dir: Optional[str],
        timeout_s: float,
        retry: RetryPolicy,
    ) -> List[ResilientOutcome]:
        memo_cache = _worker_cache(memo_dir) if memo_dir else None
        simulator = Simulator(
            self.arch,
            self.hierarchy_config,
            self.trace_options,
            engine=self.engine,
            memoize=self.memoize,
            memo_cache=memo_cache,
        )
        return [_attempt_program(simulator, program, timeout_s, retry) for program in programs]

    def _run_threads_resilient(
        self, programs: Sequence[Program], timeout_s: float, retry: RetryPolicy
    ) -> List[ResilientOutcome]:
        """Chunked thread dispatch with per-program containment in each slice."""
        workers = min(self.n_parallel, len(programs))
        base, extra = divmod(len(programs), workers)
        slices: List[Sequence[Program]] = []
        position = 0
        for worker in range(workers):
            size = base + (1 if worker < extra else 0)
            slices.append(programs[position : position + size])
            position += size
        results: List[ResilientOutcome] = []
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_slice_resilient,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    chunk,
                    self.engine,
                    self.memoize,
                    timeout_s,
                    retry,
                )
                for chunk in slices
            ]
            for chunk, future in zip(slices, futures):
                try:
                    results.extend(future.result())
                except Exception as error:  # noqa: BLE001 — degrade, not die
                    warnings.warn(
                        BackendDegradationWarning(
                            "threads", "serial", f"{type(error).__name__}: {error}"
                        ),
                        stacklevel=2,
                    )
                    results.extend(
                        self._run_serial_resilient(chunk, None, timeout_s, retry)
                    )
        return results

    def _run_processes_resilient(
        self,
        programs: Sequence[Program],
        memo_dir: Optional[str],
        timeout_s: float,
        retry: RetryPolicy,
    ) -> List[ResilientOutcome]:
        """Process dispatch with crash isolation and pool respawn.

        Workers convert their own timeouts and exceptions into
        :class:`SimulationFailure` records, so the parent only has to handle
        two hard failure modes: a dead worker (``BrokenProcessPool`` — the
        pool is respawned and the unfinished slice re-runs) and a hung
        worker (parent-side result timeout backstop — the pool is killed and
        the candidate recorded as a timeout).
        """
        n = len(programs)
        results: List[Optional[ResilientOutcome]] = [None] * n
        attempts = [0] * n
        pending = list(range(n))
        respawns = 0
        # Workers enforce timeout_s cooperatively and come back on their own;
        # the parent-side backstop only trips for a truly wedged worker.
        backstop = timeout_s * 2.0 + 5.0 if timeout_s > 0 else None
        while pending:
            pool = ProcessPoolExecutor(max_workers=min(self.n_parallel, len(pending)))
            futures = {}
            for i in pending:
                attempts[i] += 1
                futures[i] = pool.submit(
                    _run_single_resilient,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    programs[i],
                    self.engine,
                    self.memoize,
                    memo_dir,
                    timeout_s,
                )
            broke = hung = False
            for i, future in futures.items():
                try:
                    outcome = future.result(timeout=backstop)
                except FuturesTimeoutError:
                    results[i] = SimulationFailure(
                        program_name=programs[i].name,
                        kind=SimulationFailure.TIMEOUT,
                        error=(
                            f"worker did not return within {backstop:.3g}s "
                            f"(budget {timeout_s:.3g}s plus grace); pool terminated"
                        ),
                        attempts=attempts[i],
                        host_seconds=backstop or 0.0,
                    )
                    hung = True
                    break
                except BrokenProcessPool:
                    broke = True
                    break
                except Exception as error:  # noqa: BLE001 — containment boundary
                    outcome = SimulationFailure(
                        program_name=programs[i].name,
                        kind=SimulationFailure.ERROR,
                        error=f"{type(error).__name__}: {error}",
                    )
                if isinstance(outcome, SimulationFailure):
                    outcome.attempts = attempts[i]
                    if (
                        outcome.kind == SimulationFailure.ERROR
                        and attempts[i] < retry.max_attempts
                    ):
                        time.sleep(retry.delay_s(attempts[i], key=programs[i].name))
                        continue  # leave pending: resubmitted next round
                results[i] = outcome
            if broke or hung:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
            if hung:
                # Innocent bystanders were killed with the pool; refund the
                # attempt so the backstop victim alone pays for the hang.
                for i in pending:
                    if results[i] is None:
                        attempts[i] -= 1
            if broke:
                respawns += 1
            pending = [i for i in pending if results[i] is None]
            if broke and respawns > self.max_pool_respawns and pending:
                warnings.warn(
                    BackendDegradationWarning(
                        "processes",
                        "threads",
                        f"process pool broke {respawns} times "
                        f"(respawn budget {self.max_pool_respawns})",
                    ),
                    stacklevel=3,
                )
                remaining = [programs[i] for i in pending]
                if self.n_parallel > 1 and len(remaining) > 1:
                    fallback = self._run_threads_resilient(remaining, timeout_s, retry)
                else:
                    fallback = self._run_serial_resilient(remaining, None, timeout_s, retry)
                for i, outcome in zip(pending, fallback):
                    results[i] = outcome
                pending = []
        return [outcome for outcome in results if outcome is not None]

"""Simulator facade and parallel simulation pool.

A :class:`Simulator` instance corresponds to one gem5 process: an atomic CPU
with a cold, Table I-parameterised cache hierarchy for the selected
architecture.  The :class:`SimulatorPool` mirrors the paper's ``n_parallel``
setting: many independent simulator instances executing different schedule
implementations concurrently (processes or threads) or back to back (serial
fallback).

Two cross-cutting performance features live here:

* **Engine selection** — ``engine`` picks the cache-simulation engine
  (``"reference"`` or ``"vectorized"``, see :mod:`repro.sim.engine`) and is
  threaded down through the hierarchy; ``TraceOptions.engine`` is honoured
  when no explicit engine is given.  ``TraceOptions.trace`` likewise picks
  the trace representation (descriptor runs by default on the vectorized
  engine, expanded address chunks otherwise); all combinations are
  bit-identical.
* **Result memoization** — ``Simulator.run`` is a pure function of
  ``(program content, hierarchy config, trace options, engine)``, so results
  are served from an LRU-bounded :class:`~repro.sim.memo.SimulationCache`
  when the same triple is simulated again (the tuner re-simulates identical
  schedules across rounds).  Cached statistics are bit-identical to a fresh
  run except ``sim.host_seconds``, which reports the cache-lookup time.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.codegen.program import DescriptorChunk, Program, pack_descriptor_arena
from repro.reliability import (
    BackendDegradationWarning,
    Deadline,
    DeadlineExceeded,
    InjectedWorkerCrash,
    RetryPolicy,
    deadline_scope,
)
from repro.reliability import faults
from repro.sim.configs import CACHE_HIERARCHIES, hierarchy_with_replacement
from repro.sim.cpu import AtomicSimpleCPU, TraceOptions
from repro.sim.engine import (
    ARENA_ACCESS_BATCH,
    ARENA_CHUNK_BATCH,
    TRACE_DESCRIPTOR,
    resolve_engine,
    resolve_trace_mode,
)
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig
from repro.sim.memo import SimulationCache, default_simulation_cache
from repro.sim.runtime_config import RuntimeConfig
from repro.sim.stats import SimulationStats

#: Sentinel distinguishing "kwarg not passed" from an explicit ``None``/value,
#: so the deprecated ``engine=``/``memoize=`` kwargs warn only when used.
_UNSET = object()


@dataclass
class SimulationResult:
    """Outcome of simulating one program."""

    program_name: str
    arch: str
    stats: SimulationStats
    trace_accesses: int
    host_seconds: float
    #: Whether the statistics were served from the memoization cache.
    cached: bool = False
    #: Stable digest of the full simulation identity — the program's
    #: :meth:`~repro.codegen.program.Program.content_digest` combined with the
    #: hierarchy, trace options and engine via
    #: :meth:`~repro.sim.memo.SimulationCache.make_key`.  Two results with the
    #: same digest carry bit-identical statistics, so downstream consumers key
    #: derived caches on it (e.g. the feature cache in
    #: :mod:`repro.predictor.features`).  Empty when unknown.
    sim_digest: str = ""

    def flat_stats(self) -> Dict[str, float]:
        """All statistics as a flat ``{"group.key": value}`` dictionary."""
        return self.stats.as_dict()

    def dump(self) -> str:
        """gem5-style ``stats.txt`` rendering."""
        return self.stats.dump()


@dataclass
class SimulationFailure:
    """Structured record of one candidate that could not be simulated.

    Returned (never raised) by :meth:`SimulatorPool.run_many_resilient` in
    place of a :class:`SimulationResult`, so one bad candidate cannot poison
    the rest of a batch.  ``kind`` is one of the class constants below;
    ``attempts`` counts every execution attempt including retries and pool
    respawns.
    """

    #: The candidate exceeded its simulation deadline (``timeout_s``).
    TIMEOUT = "timeout"
    #: The worker executing the candidate died (e.g. a broken process pool).
    CRASH = "crash"
    #: The simulation raised an ordinary exception.
    ERROR = "error"

    program_name: str
    kind: str
    error: str
    attempts: int = 1
    host_seconds: float = 0.0


class Simulator:
    """One instruction-accurate simulator instance for a target architecture."""

    def __init__(
        self,
        arch: str,
        hierarchy_config: Optional[CacheHierarchyConfig] = None,
        trace_options: TraceOptions = TraceOptions(),
        engine=_UNSET,
        memoize=_UNSET,
        memo_cache: Optional[SimulationCache] = None,
        *,
        config: Optional[RuntimeConfig] = None,
    ):
        """Build a simulator for ``arch``.

        Runtime toggles (engine, trace representation, memoization, retry,
        memo directory) come from ``config`` — a
        :class:`~repro.sim.runtime_config.RuntimeConfig`, defaulting to the
        env-deferring ``RuntimeConfig()``.  The per-toggle ``engine=`` and
        ``memoize=`` kwargs are **deprecated** (still honoured, with a
        :class:`DeprecationWarning`, for one release): pass
        ``config=RuntimeConfig(engine=..., memoize=...)`` instead.

        Resolution precedence, most specific first: deprecated kwarg >
        ``config`` field > ``TraceOptions`` field > environment > default.
        """
        self.arch = arch.strip().lower()
        self.config = config if config is not None else RuntimeConfig()
        if hierarchy_config is None:
            if self.arch not in CACHE_HIERARCHIES:
                raise KeyError(f"no default cache hierarchy for architecture {arch!r}")
            # A uniform replacement override swaps the policy of every Table I
            # level while keeping the geometry; an explicit hierarchy_config
            # is authoritative and never rewritten.
            replacement = self.config.resolved_replacement()
            if replacement is not None:
                hierarchy_config = hierarchy_with_replacement(self.arch, replacement)
            else:
                hierarchy_config = CACHE_HIERARCHIES[self.arch]
        self.hierarchy_config = hierarchy_config
        if engine is _UNSET:
            engine = None
        else:
            warnings.warn(
                "Simulator(engine=...) is deprecated; pass "
                "config=RuntimeConfig(engine=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if memoize is _UNSET:
            memoize = self.config.resolved_memoize()
        else:
            warnings.warn(
                "Simulator(memoize=...) is deprecated; pass "
                "config=RuntimeConfig(memoize=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self.engine = resolve_engine(engine or self.config.engine or trace_options.engine)
        # Pin the trace representation at construction so later environment
        # changes cannot make runs disagree with the inspected attribute.
        self.trace = resolve_trace_mode(
            self.config.trace or trace_options.trace, self.engine
        )
        self.trace_options = replace(trace_options, trace=self.trace)
        self.memoize = bool(memoize)
        self.memo_cache = memo_cache if memo_cache is not None else (
            default_simulation_cache() if self.memoize else None
        )

    def run(
        self, program: Program, timeout_s: Optional[float] = None
    ) -> SimulationResult:
        """Simulate ``program`` on a cold cache hierarchy (or serve it cached).

        A positive ``timeout_s`` installs a cooperative deadline for the
        duration of the run: the trace walk polls it once per chunk and
        raises :class:`~repro.reliability.DeadlineExceeded` when the budget
        is spent, so a pathological candidate overshoots by at most one
        chunk of work.  ``None`` falls back to the config's ``timeout_s``
        (0 = unlimited).
        """
        if timeout_s is None:
            timeout_s = self.config.timeout_s
        if timeout_s is not None and timeout_s > 0:
            with deadline_scope(Deadline.after(timeout_s)):
                return self._run(program)
        return self._run(program)

    def _run(self, program: Program) -> SimulationResult:
        if self.memoize and self.memo_cache is not None:
            start = time.perf_counter()
            key = self.memo_cache.make_key(
                program, self.hierarchy_config, self.trace_options, self.engine
            )
            # Coalesced lookup: concurrent requests for the same key (threads
            # backend, duplicate candidates across slices) block on one
            # computation instead of simulating redundantly.
            stats, computed = self.memo_cache.get_or_compute(
                key, lambda: self._simulate(program)
            )
            if not computed:
                elapsed = time.perf_counter() - start
                stats.group("sim").set("host_seconds", elapsed)
                return SimulationResult(
                    program_name=program.name,
                    arch=self.arch,
                    stats=stats,
                    trace_accesses=int(stats.get("sim.trace_accesses")),
                    host_seconds=elapsed,
                    cached=True,
                    sim_digest=key,
                )
        else:
            stats = self._simulate(program)
            key = SimulationCache.make_key(
                program, self.hierarchy_config, self.trace_options, self.engine
            )
        return SimulationResult(
            program_name=program.name,
            arch=self.arch,
            stats=stats,
            trace_accesses=int(stats.get("sim.trace_accesses")),
            host_seconds=stats.get("sim.host_seconds"),
            sim_digest=key,
        )

    def _simulate(self, program: Program) -> SimulationStats:
        """Uncached simulation of ``program`` on a cold hierarchy."""
        hierarchy = CacheHierarchy(
            self.hierarchy_config, engine=self.engine, rng_seed=self.trace_options.rng_seed
        )
        cpu = AtomicSimpleCPU(hierarchy)
        return cpu.run(program, self.trace_options)


#: Candidates lowered and packed together per wave of the batch simulator.
#: Bounds the peak memory of materialised descriptor chunks (a wave's chunks
#: are held until its shared arenas are packed) while keeping enough
#: programs in flight to fill arena segments across candidate boundaries.
BATCH_WAVE_CANDIDATES = 64


@dataclass
class _BatchCandidate:
    """Book-keeping for one program travelling through a batch wave."""

    index: int
    program: Program
    key: Optional[str] = None
    counts: Optional[dict] = None
    chunks: Optional[List[DescriptorChunk]] = None
    trace_accesses: int = 0
    lower_seconds: float = 0.0
    started_at: float = 0.0
    error: Optional[BaseException] = None
    outcome: Optional[ResilientOutcome] = None


class BatchSimulator(Simulator):
    """Candidate-batch scheduler: many programs through one shared simulator.

    Where :class:`Simulator` builds a cold :class:`CacheHierarchy` per call,
    the batch simulator constructs the hierarchy **once** and resets it
    between candidates (:meth:`CacheHierarchy.reset_state` restores the
    exact cold start: flushed contents, rewound victim stream, zeroed
    counters), eliminating the dominant per-candidate setup cost of the
    tuning loop.  In descriptor trace mode it additionally lowers a whole
    *wave* of candidates up front, packs their chunks into shared
    :class:`~repro.codegen.program.DescriptorArena` segments with
    per-candidate chunk-group boundaries, and sweeps each candidate's group
    slice against the reset hierarchy — one dispatch per cache level per
    group instead of per chunk, with the pooled arena scratch staying warm
    across the whole wave.

    Statistics are **bit-identical** to per-candidate :meth:`Simulator.run`
    for every engine/trace combination (``sim.host_seconds`` excepted, as
    with memoized results): every candidate still observes a cold
    hierarchy, and statistics are chunking-invariant, so shared-arena
    grouping cannot change them.  Reliability semantics survive batching:
    each candidate carries its own cooperative deadline budget across the
    lowering and sweep phases, failures are contained per candidate — a
    crash or deadline inside a wave never poisons its neighbours — and
    crashed or erroring candidates are re-attempted in isolation under the
    same retry accounting as the serial resilient path.

    Results stream back in input order as candidates complete
    (:meth:`iter_batch`), so a tuner's ``update()`` or a dataset builder
    can consume them incrementally instead of at a generation barrier.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cpu: Optional[AtomicSimpleCPU] = None

    def _shared_cpu(self) -> AtomicSimpleCPU:
        if self._cpu is None:
            hierarchy = CacheHierarchy(
                self.hierarchy_config,
                engine=self.engine,
                rng_seed=self.trace_options.rng_seed,
            )
            self._cpu = AtomicSimpleCPU(hierarchy)
        return self._cpu

    def _simulate(self, program: Program) -> SimulationStats:
        """Cold-identical simulation on the shared, reset hierarchy."""
        cpu = self._shared_cpu()
        cpu.hierarchy.reset_state()
        return cpu.run(program, self.trace_options)

    # -- batch execution ---------------------------------------------------

    def run_batch(
        self, programs: Sequence[Program], timeout_s: Optional[float] = None
    ) -> List[SimulationResult]:
        """Simulate ``programs`` in order on the batch path; raises on failure.

        The strict counterpart of :meth:`iter_batch` (no retries): the first
        candidate that cannot be simulated raises ``RuntimeError`` carrying
        the contained failure's kind and message.
        """
        results: List[SimulationResult] = []
        for outcome in self.iter_batch(
            programs, timeout_s=timeout_s, retry=RetryPolicy()
        ):
            if isinstance(outcome, SimulationFailure):
                raise RuntimeError(
                    f"batched simulation of {outcome.program_name!r} failed "
                    f"({outcome.kind}): {outcome.error}"
                )
            results.append(outcome)
        return results

    def iter_batch(
        self,
        programs: Sequence[Program],
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Iterator[ResilientOutcome]:
        """Stream one outcome per program, in input order, as they complete.

        Failures become :class:`SimulationFailure` records, never raises —
        the batched equivalent of per-candidate
        :func:`_attempt_program` containment.  Expanded-trace runs have no
        packable descriptor form; they keep per-candidate trace walks and
        still benefit from hierarchy reuse.
        """
        retry = retry if retry is not None else self.config.resolved_retry()
        timeout = float(timeout_s if timeout_s is not None else self.config.timeout_s or 0.0)
        if self.trace != TRACE_DESCRIPTOR:
            for program in programs:
                yield _attempt_program(self, program, timeout, retry)
            return
        wave: List[_BatchCandidate] = []
        for index, program in enumerate(programs):
            wave.append(_BatchCandidate(index=index, program=program))
            if len(wave) >= BATCH_WAVE_CANDIDATES:
                yield from self._flush_wave(wave, timeout, retry)
                wave = []
        if wave:
            yield from self._flush_wave(wave, timeout, retry)

    def _flush_wave(
        self, wave: List[_BatchCandidate], timeout: float, retry: RetryPolicy
    ) -> Iterator[ResilientOutcome]:
        """Run one wave: memo → lower → pack shared arenas → sweep → retry."""
        sweepable = [cand for cand in wave if self._prepare_candidate(cand, timeout)]
        views = self._pack_wave(sweepable)
        for cand in sweepable:
            self._sweep_candidate(cand, views.get(cand.index, []), timeout)
        for cand in wave:
            if cand.outcome is None:
                cand.outcome = self._retry_isolated(cand, timeout, retry)
            yield cand.outcome

    def _prepare_candidate(self, cand: _BatchCandidate, timeout: float) -> bool:
        """Memo lookup and descriptor lowering; True when a sweep is due.

        Lowering runs under the candidate's own deadline (polled per
        lowered chunk); whatever budget it consumes is deducted from the
        candidate's sweep-phase deadline, so the total stays ``timeout``.
        """
        cand.started_at = time.perf_counter()
        options = self.trace_options
        try:
            faults.maybe_crash_worker()
            if self.memoize and self.memo_cache is not None:
                cand.key = self.memo_cache.make_key(
                    cand.program, self.hierarchy_config, options, self.engine
                )
                stats = self.memo_cache.get(cand.key)
                if stats is not None:
                    elapsed = time.perf_counter() - cand.started_at
                    stats.group("sim").set("host_seconds", elapsed)
                    cand.outcome = SimulationResult(
                        program_name=cand.program.name,
                        arch=self.arch,
                        stats=stats,
                        trace_accesses=int(stats.get("sim.trace_accesses")),
                        host_seconds=elapsed,
                        cached=True,
                        sim_digest=cand.key,
                    )
                    return False
            deadline = Deadline.after(timeout) if timeout > 0 else None
            with deadline_scope(deadline):
                cand.counts = cand.program.instruction_counts()
                chunks: List[DescriptorChunk] = []
                total = 0
                for chunk in cand.program.memory_trace_descriptors(
                    chunk_iterations=options.chunk_iterations,
                    max_accesses=options.max_accesses,
                    sample_fraction=options.sample_fraction,
                    seed=options.seed,
                ):
                    if deadline is not None:
                        deadline.check("batched descriptor lowering")
                    chunks.append(chunk)
                    total += chunk.total
            cand.chunks = chunks
            cand.trace_accesses = total
            cand.lower_seconds = time.perf_counter() - cand.started_at
            return True
        except DeadlineExceeded as error:
            cand.outcome = SimulationFailure(
                program_name=cand.program.name,
                kind=SimulationFailure.TIMEOUT,
                error=str(error),
                attempts=1,
                host_seconds=time.perf_counter() - cand.started_at,
            )
            return False
        except Exception as error:  # noqa: BLE001 — containment boundary
            cand.error = error
            return False

    def _pack_wave(
        self, sweepable: List[_BatchCandidate]
    ) -> Dict[int, List["DescriptorArena"]]:
        """Pack the wave's chunks into shared arenas with candidate groups.

        Arena segments fill across candidate boundaries up to the same
        :data:`~repro.sim.engine.ARENA_CHUNK_BATCH` /
        :data:`~repro.sim.engine.ARENA_ACCESS_BATCH` limits as the
        single-candidate stream path; a large candidate simply spans
        several groups in consecutive segments.  Returns each candidate's
        group views keyed by candidate index, in sweep order.
        """
        views: Dict[int, List["DescriptorArena"]] = {}
        cur_chunks: List[DescriptorChunk] = []
        cur_sizes: List[int] = []
        cur_cands: List[_BatchCandidate] = []
        cur_accesses = 0

        def flush() -> None:
            nonlocal cur_chunks, cur_sizes, cur_cands, cur_accesses
            if not cur_chunks:
                return
            arena = pack_descriptor_arena(cur_chunks, group_sizes=cur_sizes)
            for group, cand in enumerate(cur_cands):
                views.setdefault(cand.index, []).append(arena.group_view(group))
            cur_chunks, cur_sizes, cur_cands, cur_accesses = [], [], [], 0

        for cand in sweepable:
            views.setdefault(cand.index, [])  # zero-access candidates sweep empty
            new_group = True
            for chunk in cand.chunks or []:
                if cur_chunks and (
                    len(cur_chunks) >= ARENA_CHUNK_BATCH
                    or cur_accesses >= ARENA_ACCESS_BATCH
                ):
                    flush()
                    new_group = True
                if new_group:
                    cur_sizes.append(0)
                    cur_cands.append(cand)
                    new_group = False
                cur_chunks.append(chunk)
                cur_sizes[-1] += 1
                cur_accesses += chunk.total
        flush()
        return views

    def _sweep_candidate(
        self, cand: _BatchCandidate, views: List["DescriptorArena"], timeout: float
    ) -> None:
        """Replay one candidate's group slices against the reset hierarchy."""
        cpu = self._shared_cpu()
        sweep_start = time.perf_counter()
        try:
            deadline = None
            if timeout > 0:
                deadline = Deadline.after(timeout - cand.lower_seconds)
                deadline.check("batched arena sweep")
            cpu.hierarchy.reset_state()
            with deadline_scope(deadline):
                for view in views:
                    if deadline is not None:
                        deadline.check("batched arena sweep")
                    cpu.hierarchy.access_data_descriptor_arena(view)
                cpu._model_instruction_fetches(cand.program, cand.counts)
            host = cand.lower_seconds + (time.perf_counter() - sweep_start)
            stats = cpu.assemble_stats(cand.counts, cand.trace_accesses, host)
            if cand.key is not None:
                self.memo_cache.put(cand.key, stats)
            cand.outcome = SimulationResult(
                program_name=cand.program.name,
                arch=self.arch,
                stats=stats,
                trace_accesses=cand.trace_accesses,
                host_seconds=host,
                sim_digest=cand.key
                or SimulationCache.make_key(
                    cand.program, self.hierarchy_config, self.trace_options, self.engine
                ),
            )
        except DeadlineExceeded as error:
            cand.outcome = SimulationFailure(
                program_name=cand.program.name,
                kind=SimulationFailure.TIMEOUT,
                error=str(error),
                attempts=1,
                host_seconds=cand.lower_seconds + (time.perf_counter() - sweep_start),
            )
        except Exception as error:  # noqa: BLE001 — containment boundary
            cand.error = error  # isolated retry decides kind and accounting

    def _retry_isolated(
        self, cand: _BatchCandidate, timeout: float, retry: RetryPolicy
    ) -> ResilientOutcome:
        """Re-attempt a crashed or erroring candidate alone, serial-style.

        The batch pass was attempt 1; attempt numbering, backoff delays and
        the final ``attempts`` count match :func:`_attempt_program` on a
        deterministic failure, so batched retry accounting is
        indistinguishable from the per-candidate path.  Timeouts stay
        final, crashes and errors are retried.
        """
        error = cand.error
        attempt = 1
        while True:
            kind = (
                SimulationFailure.CRASH
                if isinstance(error, InjectedWorkerCrash)
                else SimulationFailure.ERROR
            )
            if attempt >= retry.max_attempts:
                return SimulationFailure(
                    program_name=cand.program.name,
                    kind=kind,
                    error=f"{type(error).__name__}: {error}",
                    attempts=attempt,
                    host_seconds=time.perf_counter() - cand.started_at,
                )
            time.sleep(retry.delay_s(attempt, key=cand.program.name))
            attempt += 1
            try:
                faults.maybe_crash_worker()
                return self.run(
                    cand.program, timeout_s=timeout if timeout > 0 else None
                )
            except DeadlineExceeded as deadline_error:
                return SimulationFailure(
                    program_name=cand.program.name,
                    kind=SimulationFailure.TIMEOUT,
                    error=str(deadline_error),
                    attempts=attempt,
                    host_seconds=time.perf_counter() - cand.started_at,
                )
            except Exception as next_error:  # noqa: BLE001 — containment boundary
                error = next_error


#: Per-process disk-backed caches, keyed by directory: pool workers are
#: reused across submitted programs, so the in-memory LRU layer stays warm
#: instead of being rebuilt (and re-reading disk) for every task.
_WORKER_CACHES: Dict[str, SimulationCache] = {}


def _worker_cache(memo_dir: str) -> SimulationCache:
    cache = _WORKER_CACHES.get(memo_dir)
    if cache is None:
        cache = _WORKER_CACHES[memo_dir] = SimulationCache(disk_dir=memo_dir)
    return cache


def _run_single(
    arch, hierarchy_config, trace_options, program, config, memo_dir=None
) -> SimulationResult:
    memo_cache = None
    if config.resolved_memoize() and memo_dir is not None:
        # Worker processes memoize through a shared on-disk layer: results
        # computed by any worker (or an earlier run) are served to all.
        memo_cache = _worker_cache(memo_dir)
    simulator = Simulator(
        arch, hierarchy_config, trace_options, memo_cache=memo_cache, config=config
    )
    return simulator.run(program)


def _run_slice(
    arch, hierarchy_config, trace_options, programs, config
) -> List[SimulationResult]:
    simulator = Simulator(arch, hierarchy_config, trace_options, config=config)
    return [simulator.run(program) for program in programs]


#: Union returned by the resilient pool API: one entry per program, in input
#: order, each either a result or a structured failure record.
ResilientOutcome = Union[SimulationResult, SimulationFailure]


def _attempt_program(
    simulator: Simulator,
    program: Program,
    timeout_s: float,
    retry: RetryPolicy,
) -> ResilientOutcome:
    """Run one program with containment: failures become records, not raises.

    Timeouts are final (retrying a deterministic overrun just doubles the
    damage); crashes and ordinary errors are retried per ``retry`` with
    deterministic backoff.
    """
    start = time.perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            faults.maybe_crash_worker()
            return simulator.run(program, timeout_s=timeout_s if timeout_s > 0 else None)
        except DeadlineExceeded as error:
            return SimulationFailure(
                program_name=program.name,
                kind=SimulationFailure.TIMEOUT,
                error=str(error),
                attempts=attempt,
                host_seconds=time.perf_counter() - start,
            )
        except Exception as error:  # noqa: BLE001 — containment boundary
            kind = (
                SimulationFailure.CRASH
                if isinstance(error, InjectedWorkerCrash)
                else SimulationFailure.ERROR
            )
            if attempt >= retry.max_attempts:
                return SimulationFailure(
                    program_name=program.name,
                    kind=kind,
                    error=f"{type(error).__name__}: {error}",
                    attempts=attempt,
                    host_seconds=time.perf_counter() - start,
                )
            time.sleep(retry.delay_s(attempt, key=program.name))


def _run_slice_resilient(
    arch, hierarchy_config, trace_options, programs, config, timeout_s, retry
) -> List[ResilientOutcome]:
    simulator = Simulator(arch, hierarchy_config, trace_options, config=config)
    return [_attempt_program(simulator, program, timeout_s, retry) for program in programs]


def _run_batch_slice_resilient(
    arch, hierarchy_config, trace_options, programs, config, memo_dir,
    timeout_s, retry
) -> List[ResilientOutcome]:
    """Worker entry for one batch slice: a shared-hierarchy batch simulator.

    Used by both the threads backend (``memo_dir=None`` — the process-wide
    cache is shared directly) and the processes backend (workers memoize
    through the shared on-disk layer).  Containment happens inside
    :meth:`BatchSimulator.iter_batch`, so the returned list always has one
    entry per program; only a hard worker death surfaces to the parent.
    """
    faults.maybe_crash_worker()
    memo_cache = None
    if config.resolved_memoize() and memo_dir is not None:
        memo_cache = _worker_cache(memo_dir)
    batch = BatchSimulator(
        arch, hierarchy_config, trace_options, memo_cache=memo_cache, config=config
    )
    return list(batch.iter_batch(programs, timeout_s=timeout_s, retry=retry))


def _run_single_resilient(
    arch, hierarchy_config, trace_options, program, config, memo_dir, timeout_s
) -> ResilientOutcome:
    """Process-pool worker entry: converts in-worker failures into records.

    Deadline overruns and ordinary exceptions come back as picklable
    :class:`SimulationFailure` values so the parent never has to unpickle an
    arbitrary exception; only a genuine worker death (or the injected
    ``worker_crash`` hard exit below) surfaces as ``BrokenProcessPool``.
    """
    faults.maybe_crash_worker()
    start = time.perf_counter()
    try:
        memo_cache = None
        if config.resolved_memoize() and memo_dir is not None:
            memo_cache = _worker_cache(memo_dir)
        simulator = Simulator(
            arch, hierarchy_config, trace_options, memo_cache=memo_cache, config=config
        )
        return simulator.run(program, timeout_s=timeout_s if timeout_s > 0 else None)
    except DeadlineExceeded as error:
        return SimulationFailure(
            program_name=program.name,
            kind=SimulationFailure.TIMEOUT,
            error=str(error),
            host_seconds=time.perf_counter() - start,
        )
    except Exception as error:  # noqa: BLE001 — containment boundary
        return SimulationFailure(
            program_name=program.name,
            kind=SimulationFailure.ERROR,
            error=f"{type(error).__name__}: {error}",
            host_seconds=time.perf_counter() - start,
        )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a process pool down without waiting on hung or dead workers."""
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 — best-effort teardown
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class SimulatorPool:
    """Run many simulations, up to ``n_parallel`` at a time.

    The paper's simulator interface exposes exactly this knob: each schedule
    implementation runs in its own simulator instance, and ``n_parallel``
    instances run concurrently on the host.  Three backends are available:

    * ``"serial"`` — one simulator, programs back to back (the default).
    * ``"threads"`` — ``n_parallel`` worker threads, each owning one
      simulator and a contiguous chunk of the program list.  The vectorized
      engine spends its time inside NumPy kernels that release the
      interpreter lock, so threads deliver parallelism without the
      process-spawn and pickling overhead of ``"processes"``.  All workers
      share the process-wide memoization cache.
    * ``"processes"`` — one OS process per concurrent simulation.  Workers
      share the memoization cache through an on-disk layer (``memo_dir``,
      defaulting to :func:`repro.sim.memo.shared_disk_cache_dir`), so a
      result computed by any worker — or by a previous run — is served to
      all of them.
    """

    arch: str
    n_parallel: int = 1
    hierarchy_config: Optional[CacheHierarchyConfig] = None
    trace_options: TraceOptions = field(default_factory=TraceOptions)
    backend: str = "serial"  # "serial", "threads" or "processes"
    engine: Optional[str] = None
    memoize: bool = True
    #: Shared disk cache directory for the ``processes`` backend; ``None``
    #: selects the per-user default.
    memo_dir: Optional[str] = None
    #: Per-candidate simulation budget in seconds for the resilient API
    #: (0 = unlimited).  Enforced cooperatively inside the trace walk, with a
    #: process-kill backstop on the ``processes`` backend.
    timeout_s: float = 0.0
    #: Retry policy for crashed or erroring candidates in the resilient API;
    #: ``None`` reads ``REPRO_RETRY_*`` (retries disabled by default).
    retry: Optional[RetryPolicy] = None
    #: How many times a broken process pool is respawned before the
    #: remaining work degrades to the ``threads`` backend.
    max_pool_respawns: int = 2
    #: Consolidated runtime configuration.  Per-field dataclass knobs above
    #: (``engine``/``memoize``/``memo_dir``/``timeout_s``/``retry``) override
    #: the corresponding config fields when set, so legacy call sites keep
    #: their exact semantics; new call sites should pass ``config`` alone.
    config: Optional[RuntimeConfig] = None

    BACKENDS = ("serial", "threads", "processes")

    def _runtime(self) -> RuntimeConfig:
        """The pool's effective config: legacy per-field knobs folded in."""
        cfg = self.config if self.config is not None else RuntimeConfig()
        return cfg.with_overrides(
            engine=self.engine or cfg.engine,
            memoize=cfg.resolved_memoize() and self.memoize,
            memo_dir=self.memo_dir or cfg.memo_dir,
            timeout_s=self.timeout_s or cfg.timeout_s,
            retry=self.retry or cfg.retry,
        )

    def run_many(self, programs: Sequence[Program]) -> List[SimulationResult]:
        """Simulate all ``programs`` and return results in input order."""
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.backend!r}; expected one of {self.BACKENDS}"
            )
        cfg = self._runtime()
        memo_dir = None
        if self.backend == "processes" and cfg.resolved_memoize():
            memo_dir = cfg.resolved_memo_dir()
        if self.backend == "serial" or self.n_parallel <= 1 or len(programs) <= 1:
            memo_cache = _worker_cache(memo_dir) if memo_dir else None
            simulator = Simulator(
                self.arch,
                self.hierarchy_config,
                self.trace_options,
                memo_cache=memo_cache,
                config=cfg,
            )
            return [simulator.run(program) for program in programs]
        if self.backend == "threads":
            return self._run_threaded(programs)
        with ProcessPoolExecutor(max_workers=self.n_parallel) as pool:
            futures = [
                pool.submit(
                    _run_single,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    program,
                    cfg,
                    memo_dir,
                )
                for program in programs
            ]
            return [future.result() for future in futures]

    def _contiguous_slices(self, programs: Sequence[Program]) -> List[Sequence[Program]]:
        """Split ``programs`` into up to ``n_parallel`` contiguous slices."""
        workers = min(self.n_parallel, len(programs))
        base, extra = divmod(len(programs), workers)
        slices: List[Sequence[Program]] = []
        position = 0
        for worker in range(workers):
            size = base + (1 if worker < extra else 0)
            slices.append(programs[position : position + size])
            position += size
        return slices

    def _run_threaded(self, programs: Sequence[Program]) -> List[SimulationResult]:
        """Chunked thread dispatch: each worker runs one contiguous slice."""
        slices = self._contiguous_slices(programs)
        cfg = self._runtime()
        with ThreadPoolExecutor(max_workers=len(slices)) as pool:
            futures = [
                pool.submit(
                    _run_slice,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    chunk,
                    cfg,
                )
                for chunk in slices
            ]
            results: List[SimulationResult] = []
            for future in futures:
                results.extend(future.result())
        return results

    # -- resilient execution ----------------------------------------------

    def run_many_resilient(self, programs: Sequence[Program]) -> List[ResilientOutcome]:
        """Simulate all ``programs``; failures become records, never raises.

        Same dispatch as :meth:`run_many`, plus four containment layers:

        * each candidate runs under the pool's ``timeout_s`` deadline, so a
          hung candidate yields a ``timeout`` failure instead of blocking;
        * crashed or erroring candidates are retried per ``retry`` (with
          deterministic exponential backoff), then recorded as failures;
        * a broken process pool is respawned up to ``max_pool_respawns``
          times and only the unfinished slice is re-run;
        * when the respawn budget is spent, the remaining work degrades
          ``processes`` → ``threads`` → ``serial`` with a
          :class:`~repro.reliability.BackendDegradationWarning` at each step.

        Returns one entry per program, in input order, each either a
        :class:`SimulationResult` or a :class:`SimulationFailure`.
        Fault-free runs produce statistics bit-identical to
        :meth:`run_many`.
        """
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.backend!r}; expected one of {self.BACKENDS}"
            )
        cfg = self._runtime()
        retry = cfg.resolved_retry()
        timeout_s = float(cfg.timeout_s or 0.0)
        memo_dir = None
        if self.backend == "processes" and cfg.resolved_memoize():
            memo_dir = cfg.resolved_memo_dir()
        if self.backend == "serial" or self.n_parallel <= 1 or len(programs) <= 1:
            return self._run_serial_resilient(programs, memo_dir, timeout_s, retry)
        if self.backend == "threads":
            return self._run_threads_resilient(programs, timeout_s, retry)
        return self._run_processes_resilient(programs, memo_dir, timeout_s, retry)

    def _run_serial_resilient(
        self,
        programs: Sequence[Program],
        memo_dir: Optional[str],
        timeout_s: float,
        retry: RetryPolicy,
    ) -> List[ResilientOutcome]:
        memo_cache = _worker_cache(memo_dir) if memo_dir else None
        simulator = Simulator(
            self.arch,
            self.hierarchy_config,
            self.trace_options,
            memo_cache=memo_cache,
            config=self._runtime(),
        )
        return [_attempt_program(simulator, program, timeout_s, retry) for program in programs]

    def _run_threads_resilient(
        self, programs: Sequence[Program], timeout_s: float, retry: RetryPolicy
    ) -> List[ResilientOutcome]:
        """Chunked thread dispatch with per-program containment in each slice."""
        slices = self._contiguous_slices(programs)
        cfg = self._runtime()
        results: List[ResilientOutcome] = []
        with ThreadPoolExecutor(max_workers=len(slices)) as pool:
            futures = [
                pool.submit(
                    _run_slice_resilient,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    chunk,
                    cfg,
                    timeout_s,
                    retry,
                )
                for chunk in slices
            ]
            for chunk, future in zip(slices, futures):
                try:
                    results.extend(future.result())
                except Exception as error:  # noqa: BLE001 — degrade, not die
                    warnings.warn(
                        BackendDegradationWarning(
                            "threads", "serial", f"{type(error).__name__}: {error}"
                        ),
                        stacklevel=2,
                    )
                    results.extend(
                        self._run_serial_resilient(chunk, None, timeout_s, retry)
                    )
        return results

    def _run_processes_resilient(
        self,
        programs: Sequence[Program],
        memo_dir: Optional[str],
        timeout_s: float,
        retry: RetryPolicy,
    ) -> List[ResilientOutcome]:
        """Process dispatch with crash isolation and pool respawn.

        Workers convert their own timeouts and exceptions into
        :class:`SimulationFailure` records, so the parent only has to handle
        two hard failure modes: a dead worker (``BrokenProcessPool`` — the
        pool is respawned and the unfinished slice re-runs) and a hung
        worker (parent-side result timeout backstop — the pool is killed and
        the candidate recorded as a timeout).
        """
        n = len(programs)
        results: List[Optional[ResilientOutcome]] = [None] * n
        attempts = [0] * n
        pending = list(range(n))
        respawns = 0
        # Workers enforce timeout_s cooperatively and come back on their own;
        # the parent-side backstop only trips for a truly wedged worker.
        backstop = timeout_s * 2.0 + 5.0 if timeout_s > 0 else None
        cfg = self._runtime()
        while pending:
            pool = ProcessPoolExecutor(max_workers=min(self.n_parallel, len(pending)))
            futures = {}
            for i in pending:
                attempts[i] += 1
                futures[i] = pool.submit(
                    _run_single_resilient,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    programs[i],
                    cfg,
                    memo_dir,
                    timeout_s,
                )
            broke = hung = False
            for i, future in futures.items():
                try:
                    outcome = future.result(timeout=backstop)
                except FuturesTimeoutError:
                    results[i] = SimulationFailure(
                        program_name=programs[i].name,
                        kind=SimulationFailure.TIMEOUT,
                        error=(
                            f"worker did not return within {backstop:.3g}s "
                            f"(budget {timeout_s:.3g}s plus grace); pool terminated"
                        ),
                        attempts=attempts[i],
                        host_seconds=backstop or 0.0,
                    )
                    hung = True
                    break
                except BrokenProcessPool:
                    broke = True
                    break
                except Exception as error:  # noqa: BLE001 — containment boundary
                    outcome = SimulationFailure(
                        program_name=programs[i].name,
                        kind=SimulationFailure.ERROR,
                        error=f"{type(error).__name__}: {error}",
                    )
                if isinstance(outcome, SimulationFailure):
                    outcome.attempts = attempts[i]
                    if (
                        outcome.kind == SimulationFailure.ERROR
                        and attempts[i] < retry.max_attempts
                    ):
                        time.sleep(retry.delay_s(attempts[i], key=programs[i].name))
                        continue  # leave pending: resubmitted next round
                results[i] = outcome
            if broke or hung:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True)
            if hung:
                # Innocent bystanders were killed with the pool; refund the
                # attempt so the backstop victim alone pays for the hang.
                for i in pending:
                    if results[i] is None:
                        attempts[i] -= 1
            if broke:
                respawns += 1
            pending = [i for i in pending if results[i] is None]
            if broke and respawns > self.max_pool_respawns and pending:
                warnings.warn(
                    BackendDegradationWarning(
                        "processes",
                        "threads",
                        f"process pool broke {respawns} times "
                        f"(respawn budget {self.max_pool_respawns})",
                    ),
                    stacklevel=3,
                )
                remaining = [programs[i] for i in pending]
                if self.n_parallel > 1 and len(remaining) > 1:
                    fallback = self._run_threads_resilient(remaining, timeout_s, retry)
                else:
                    fallback = self._run_serial_resilient(remaining, None, timeout_s, retry)
                for i, outcome in zip(pending, fallback):
                    results[i] = outcome
                pending = []
        return [outcome for outcome in results if outcome is not None]

    # -- batched execution (candidate-batch scheduler) ---------------------

    def run_batch_resilient(self, programs: Sequence[Program]) -> List[ResilientOutcome]:
        """Batched :meth:`run_many_resilient`: same outcomes, arena fast path.

        Dispatches through :class:`BatchSimulator` so every worker reuses
        one hierarchy and sweeps shared descriptor arenas instead of paying
        per-candidate setup.  Outcomes (results, failure records, retry
        accounting) are bit-identical to :meth:`run_many_resilient` for the
        same inputs, ``sim.host_seconds`` excepted.
        """
        return list(self.iter_batch_resilient(programs))

    def iter_batch_resilient(
        self, programs: Sequence[Program]
    ) -> Iterator[ResilientOutcome]:
        """Stream batched outcomes in input order as candidates complete.

        The ``serial`` backend streams per candidate (wave-buffered); the
        ``threads`` backend streams slice by slice as workers finish; the
        ``processes`` backend yields after its respawn loop settles.  A
        broken worker pool respawns and re-runs only its unfinished slices,
        degrading ``processes`` → ``threads`` → ``serial`` with a
        :class:`~repro.reliability.BackendDegradationWarning`, exactly like
        the per-candidate resilient path.
        """
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.backend!r}; expected one of {self.BACKENDS}"
            )
        cfg = self._runtime()
        retry = cfg.resolved_retry()
        timeout_s = float(cfg.timeout_s or 0.0)
        memo_dir = None
        if self.backend == "processes" and cfg.resolved_memoize():
            memo_dir = cfg.resolved_memo_dir()
        if self.backend == "serial" or self.n_parallel <= 1 or len(programs) <= 1:
            memo_cache = _worker_cache(memo_dir) if memo_dir else None
            batch = BatchSimulator(
                self.arch,
                self.hierarchy_config,
                self.trace_options,
                memo_cache=memo_cache,
                config=cfg,
            )
            yield from batch.iter_batch(programs, timeout_s=timeout_s, retry=retry)
            return
        slices = self._contiguous_slices(programs)
        if self.backend == "threads":
            yield from self._iter_batch_threads(slices, timeout_s, retry)
            return
        yield from self._iter_batch_processes(slices, memo_dir, timeout_s, retry)

    def _iter_batch_threads(
        self,
        slices: List[Sequence[Program]],
        timeout_s: float,
        retry: RetryPolicy,
    ) -> Iterator[ResilientOutcome]:
        """One batch simulator per thread slice; yields slices in order."""
        cfg = self._runtime()
        with ThreadPoolExecutor(max_workers=len(slices)) as pool:
            futures = [
                pool.submit(
                    _run_batch_slice_resilient,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    chunk,
                    cfg,
                    None,
                    timeout_s,
                    retry,
                )
                for chunk in slices
            ]
            for chunk, future in zip(slices, futures):
                try:
                    outcomes = future.result()
                except Exception as error:  # noqa: BLE001 — degrade, not die
                    warnings.warn(
                        BackendDegradationWarning(
                            "threads", "serial", f"{type(error).__name__}: {error}"
                        ),
                        stacklevel=2,
                    )
                    outcomes = _run_batch_slice_resilient(
                        self.arch,
                        self.hierarchy_config,
                        self.trace_options,
                        chunk,
                        cfg,
                        None,
                        timeout_s,
                        retry,
                    )
                yield from outcomes

    def _iter_batch_processes(
        self,
        slices: List[Sequence[Program]],
        memo_dir: Optional[str],
        timeout_s: float,
        retry: RetryPolicy,
    ) -> Iterator[ResilientOutcome]:
        """Batch slices on worker processes with respawn and degradation.

        Workers contain per-candidate failures themselves, so the parent
        only handles hard worker deaths: a broken or wedged pool is
        terminated and only the unfinished slices re-run, up to
        ``max_pool_respawns`` respawns, after which the remaining slices
        degrade to the threads backend (whose cooperative deadlines keep
        per-candidate isolation).
        """
        n = len(slices)
        results: List[Optional[List[ResilientOutcome]]] = [None] * n
        pending = list(range(n))
        respawns = 0
        emitted = 0
        cfg = self._runtime()
        while pending:
            pool = ProcessPoolExecutor(max_workers=min(self.n_parallel, len(pending)))
            futures = {}
            for s in pending:
                futures[s] = pool.submit(
                    _run_batch_slice_resilient,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    slices[s],
                    cfg,
                    memo_dir,
                    timeout_s,
                    retry,
                )
            broke = False
            for s, future in futures.items():
                # Workers enforce timeout_s per candidate cooperatively; the
                # parent backstop covers a truly wedged worker and scales
                # with the slice it is waiting for.
                backstop = (
                    (timeout_s * 2.0 + 5.0) * len(slices[s]) if timeout_s > 0 else None
                )
                try:
                    results[s] = future.result(timeout=backstop)
                except (BrokenProcessPool, FuturesTimeoutError):
                    broke = True
                    break
                except Exception as error:  # noqa: BLE001 — containment boundary
                    results[s] = [
                        SimulationFailure(
                            program_name=program.name,
                            kind=SimulationFailure.ERROR,
                            error=f"{type(error).__name__}: {error}",
                        )
                        for program in slices[s]
                    ]
            if broke:
                _terminate_pool(pool)
                respawns += 1
            else:
                pool.shutdown(wait=True)
            pending = [s for s in pending if results[s] is None]
            if broke and respawns > self.max_pool_respawns and pending:
                warnings.warn(
                    BackendDegradationWarning(
                        "processes",
                        "threads",
                        f"process pool broke {respawns} times "
                        f"(respawn budget {self.max_pool_respawns})",
                    ),
                    stacklevel=3,
                )
                flattened = list(
                    self._iter_batch_threads(
                        [slices[s] for s in pending], timeout_s, retry
                    )
                )
                at = 0
                for s in pending:
                    size = len(slices[s])
                    results[s] = flattened[at : at + size]
                    at += size
                pending = []
            while emitted < n and results[emitted] is not None:
                yield from results[emitted]
                emitted += 1

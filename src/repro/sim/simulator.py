"""Simulator facade and parallel simulation pool.

A :class:`Simulator` instance corresponds to one gem5 process: an atomic CPU
with a cold, Table I-parameterised cache hierarchy for the selected
architecture.  The :class:`SimulatorPool` mirrors the paper's ``n_parallel``
setting: many independent simulator instances executing different schedule
implementations concurrently (processes) or back to back (serial fallback).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.codegen.program import Program
from repro.sim.configs import CACHE_HIERARCHIES
from repro.sim.cpu import AtomicSimpleCPU, TraceOptions
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig
from repro.sim.stats import SimulationStats


@dataclass
class SimulationResult:
    """Outcome of simulating one program."""

    program_name: str
    arch: str
    stats: SimulationStats
    trace_accesses: int
    host_seconds: float

    def flat_stats(self) -> Dict[str, float]:
        """All statistics as a flat ``{"group.key": value}`` dictionary."""
        return self.stats.as_dict()

    def dump(self) -> str:
        """gem5-style ``stats.txt`` rendering."""
        return self.stats.dump()


class Simulator:
    """One instruction-accurate simulator instance for a target architecture."""

    def __init__(
        self,
        arch: str,
        hierarchy_config: Optional[CacheHierarchyConfig] = None,
        trace_options: TraceOptions = TraceOptions(),
    ):
        self.arch = arch.strip().lower()
        if hierarchy_config is None:
            if self.arch not in CACHE_HIERARCHIES:
                raise KeyError(f"no default cache hierarchy for architecture {arch!r}")
            hierarchy_config = CACHE_HIERARCHIES[self.arch]
        self.hierarchy_config = hierarchy_config
        self.trace_options = trace_options

    def run(self, program: Program) -> SimulationResult:
        """Simulate ``program`` on a cold cache hierarchy."""
        hierarchy = CacheHierarchy(self.hierarchy_config)
        cpu = AtomicSimpleCPU(hierarchy)
        stats = cpu.run(program, self.trace_options)
        return SimulationResult(
            program_name=program.name,
            arch=self.arch,
            stats=stats,
            trace_accesses=int(stats.get("sim.trace_accesses")),
            host_seconds=stats.get("sim.host_seconds"),
        )


def _run_single(arch: str, hierarchy_config, trace_options, program) -> SimulationResult:
    simulator = Simulator(arch, hierarchy_config, trace_options)
    return simulator.run(program)


@dataclass
class SimulatorPool:
    """Run many simulations, up to ``n_parallel`` at a time.

    The paper's simulator interface exposes exactly this knob: each schedule
    implementation runs in its own simulator instance, and ``n_parallel``
    instances run concurrently on the host.
    """

    arch: str
    n_parallel: int = 1
    hierarchy_config: Optional[CacheHierarchyConfig] = None
    trace_options: TraceOptions = field(default_factory=TraceOptions)
    backend: str = "serial"  # "serial" or "processes"

    def run_many(self, programs: Sequence[Program]) -> List[SimulationResult]:
        """Simulate all ``programs`` and return results in input order."""
        if self.backend not in ("serial", "processes"):
            raise ValueError(f"unknown pool backend {self.backend!r}")
        if self.backend == "serial" or self.n_parallel <= 1 or len(programs) <= 1:
            simulator = Simulator(self.arch, self.hierarchy_config, self.trace_options)
            return [simulator.run(program) for program in programs]
        with ProcessPoolExecutor(max_workers=self.n_parallel) as pool:
            futures = [
                pool.submit(_run_single, self.arch, self.hierarchy_config, self.trace_options, p)
                for p in programs
            ]
            return [future.result() for future in futures]

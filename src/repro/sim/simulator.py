"""Simulator facade and parallel simulation pool.

A :class:`Simulator` instance corresponds to one gem5 process: an atomic CPU
with a cold, Table I-parameterised cache hierarchy for the selected
architecture.  The :class:`SimulatorPool` mirrors the paper's ``n_parallel``
setting: many independent simulator instances executing different schedule
implementations concurrently (processes or threads) or back to back (serial
fallback).

Two cross-cutting performance features live here:

* **Engine selection** — ``engine`` picks the cache-simulation engine
  (``"reference"`` or ``"vectorized"``, see :mod:`repro.sim.engine`) and is
  threaded down through the hierarchy; ``TraceOptions.engine`` is honoured
  when no explicit engine is given.  ``TraceOptions.trace`` likewise picks
  the trace representation (descriptor runs by default on the vectorized
  engine, expanded address chunks otherwise); all combinations are
  bit-identical.
* **Result memoization** — ``Simulator.run`` is a pure function of
  ``(program content, hierarchy config, trace options, engine)``, so results
  are served from an LRU-bounded :class:`~repro.sim.memo.SimulationCache`
  when the same triple is simulated again (the tuner re-simulates identical
  schedules across rounds).  Cached statistics are bit-identical to a fresh
  run except ``sim.host_seconds``, which reports the cache-lookup time.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.codegen.program import Program
from repro.sim.configs import CACHE_HIERARCHIES
from repro.sim.cpu import AtomicSimpleCPU, TraceOptions
from repro.sim.engine import resolve_engine, resolve_trace_mode
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig
from repro.sim.memo import SimulationCache, default_simulation_cache, shared_disk_cache_dir
from repro.sim.stats import SimulationStats


@dataclass
class SimulationResult:
    """Outcome of simulating one program."""

    program_name: str
    arch: str
    stats: SimulationStats
    trace_accesses: int
    host_seconds: float
    #: Whether the statistics were served from the memoization cache.
    cached: bool = False

    def flat_stats(self) -> Dict[str, float]:
        """All statistics as a flat ``{"group.key": value}`` dictionary."""
        return self.stats.as_dict()

    def dump(self) -> str:
        """gem5-style ``stats.txt`` rendering."""
        return self.stats.dump()


class Simulator:
    """One instruction-accurate simulator instance for a target architecture."""

    def __init__(
        self,
        arch: str,
        hierarchy_config: Optional[CacheHierarchyConfig] = None,
        trace_options: TraceOptions = TraceOptions(),
        engine: Optional[str] = None,
        memoize: bool = True,
        memo_cache: Optional[SimulationCache] = None,
    ):
        self.arch = arch.strip().lower()
        if hierarchy_config is None:
            if self.arch not in CACHE_HIERARCHIES:
                raise KeyError(f"no default cache hierarchy for architecture {arch!r}")
            hierarchy_config = CACHE_HIERARCHIES[self.arch]
        self.hierarchy_config = hierarchy_config
        self.engine = resolve_engine(engine or trace_options.engine)
        # Pin the trace representation at construction so later environment
        # changes cannot make runs disagree with the inspected attribute.
        self.trace = resolve_trace_mode(trace_options.trace, self.engine)
        self.trace_options = replace(trace_options, trace=self.trace)
        self.memoize = memoize
        self.memo_cache = memo_cache if memo_cache is not None else (
            default_simulation_cache() if memoize else None
        )

    def run(self, program: Program) -> SimulationResult:
        """Simulate ``program`` on a cold cache hierarchy (or serve it cached)."""
        key = None
        if self.memoize and self.memo_cache is not None:
            start = time.perf_counter()
            key = self.memo_cache.make_key(
                program, self.hierarchy_config, self.trace_options, self.engine
            )
            stats = self.memo_cache.get(key)
            if stats is not None:
                elapsed = time.perf_counter() - start
                stats.group("sim").set("host_seconds", elapsed)
                return SimulationResult(
                    program_name=program.name,
                    arch=self.arch,
                    stats=stats,
                    trace_accesses=int(stats.get("sim.trace_accesses")),
                    host_seconds=elapsed,
                    cached=True,
                )
        hierarchy = CacheHierarchy(
            self.hierarchy_config, engine=self.engine, rng_seed=self.trace_options.rng_seed
        )
        cpu = AtomicSimpleCPU(hierarchy)
        stats = cpu.run(program, self.trace_options)
        if key is not None:
            self.memo_cache.put(key, stats)
        return SimulationResult(
            program_name=program.name,
            arch=self.arch,
            stats=stats,
            trace_accesses=int(stats.get("sim.trace_accesses")),
            host_seconds=stats.get("sim.host_seconds"),
        )


#: Per-process disk-backed caches, keyed by directory: pool workers are
#: reused across submitted programs, so the in-memory LRU layer stays warm
#: instead of being rebuilt (and re-reading disk) for every task.
_WORKER_CACHES: Dict[str, SimulationCache] = {}


def _worker_cache(memo_dir: str) -> SimulationCache:
    cache = _WORKER_CACHES.get(memo_dir)
    if cache is None:
        cache = _WORKER_CACHES[memo_dir] = SimulationCache(disk_dir=memo_dir)
    return cache


def _run_single(
    arch, hierarchy_config, trace_options, program, engine, memoize, memo_dir=None
) -> SimulationResult:
    memo_cache = None
    if memoize and memo_dir is not None:
        # Worker processes memoize through a shared on-disk layer: results
        # computed by any worker (or an earlier run) are served to all.
        memo_cache = _worker_cache(memo_dir)
    simulator = Simulator(
        arch, hierarchy_config, trace_options, engine=engine, memoize=memoize,
        memo_cache=memo_cache,
    )
    return simulator.run(program)


def _run_slice(
    arch, hierarchy_config, trace_options, programs, engine, memoize
) -> List[SimulationResult]:
    simulator = Simulator(arch, hierarchy_config, trace_options, engine=engine, memoize=memoize)
    return [simulator.run(program) for program in programs]


@dataclass
class SimulatorPool:
    """Run many simulations, up to ``n_parallel`` at a time.

    The paper's simulator interface exposes exactly this knob: each schedule
    implementation runs in its own simulator instance, and ``n_parallel``
    instances run concurrently on the host.  Three backends are available:

    * ``"serial"`` — one simulator, programs back to back (the default).
    * ``"threads"`` — ``n_parallel`` worker threads, each owning one
      simulator and a contiguous chunk of the program list.  The vectorized
      engine spends its time inside NumPy kernels that release the
      interpreter lock, so threads deliver parallelism without the
      process-spawn and pickling overhead of ``"processes"``.  All workers
      share the process-wide memoization cache.
    * ``"processes"`` — one OS process per concurrent simulation.  Workers
      share the memoization cache through an on-disk layer (``memo_dir``,
      defaulting to :func:`repro.sim.memo.shared_disk_cache_dir`), so a
      result computed by any worker — or by a previous run — is served to
      all of them.
    """

    arch: str
    n_parallel: int = 1
    hierarchy_config: Optional[CacheHierarchyConfig] = None
    trace_options: TraceOptions = field(default_factory=TraceOptions)
    backend: str = "serial"  # "serial", "threads" or "processes"
    engine: Optional[str] = None
    memoize: bool = True
    #: Shared disk cache directory for the ``processes`` backend; ``None``
    #: selects the per-user default.
    memo_dir: Optional[str] = None

    BACKENDS = ("serial", "threads", "processes")

    def run_many(self, programs: Sequence[Program]) -> List[SimulationResult]:
        """Simulate all ``programs`` and return results in input order."""
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown pool backend {self.backend!r}; expected one of {self.BACKENDS}"
            )
        memo_dir = None
        if self.backend == "processes" and self.memoize:
            memo_dir = str(self.memo_dir) if self.memo_dir else str(shared_disk_cache_dir())
        if self.backend == "serial" or self.n_parallel <= 1 or len(programs) <= 1:
            memo_cache = _worker_cache(memo_dir) if memo_dir else None
            simulator = Simulator(
                self.arch,
                self.hierarchy_config,
                self.trace_options,
                engine=self.engine,
                memoize=self.memoize,
                memo_cache=memo_cache,
            )
            return [simulator.run(program) for program in programs]
        if self.backend == "threads":
            return self._run_threaded(programs)
        with ProcessPoolExecutor(max_workers=self.n_parallel) as pool:
            futures = [
                pool.submit(
                    _run_single,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    program,
                    self.engine,
                    self.memoize,
                    memo_dir,
                )
                for program in programs
            ]
            return [future.result() for future in futures]

    def _run_threaded(self, programs: Sequence[Program]) -> List[SimulationResult]:
        """Chunked thread dispatch: each worker runs one contiguous slice."""
        workers = min(self.n_parallel, len(programs))
        base, extra = divmod(len(programs), workers)
        slices: List[Sequence[Program]] = []
        position = 0
        for worker in range(workers):
            size = base + (1 if worker < extra else 0)
            slices.append(programs[position : position + size])
            position += size
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_slice,
                    self.arch,
                    self.hierarchy_config,
                    self.trace_options,
                    chunk,
                    self.engine,
                    self.memoize,
                )
                for chunk in slices
            ]
            results: List[SimulationResult] = []
            for future in futures:
                results.extend(future.result())
        return results

"""Optional compiled kernel for per-set event chains.

The vectorized engine's event phase (rank rounds plus scalar chain tails,
see :mod:`repro.sim.engine`) pays a fixed NumPy-dispatch cost per round,
which dominates on workloads whose chunks concentrate events in few sets.
The per-set walk itself is the trivial reference algorithm — a linear tag
scan and a min-tick (LRU/FIFO) or replayable-stream (random) victim pick —
so when a C compiler is available the
whole phase is compiled once per interpreter installation and executed as a
single foreign call (the GIL is released for the duration, which also helps
the ``threads`` pool backend).

Availability is strictly optional: if no compiler is present, compilation
fails, or ``REPRO_SIM_NATIVE=0`` is set, :func:`event_kernel` returns
``None`` and the engine keeps its pure-NumPy rank-round path.  Both
implementations are bit-identical; the equivalence suite runs against
whichever is active.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

import numpy as np

_SOURCE = r"""
#include <stdint.h>

/* Sequential per-set event walk on the engine's array tag store.
 *
 * Events must arrive grouped so that events of one set appear in trace
 * order (any interleaving across sets is fine).  Mirrors
 * VectorCacheState._run_events / _scalar_chain semantics exactly:
 *  - hit: mark, OR the dirty flag in, update the recency tick (LRU only);
 *  - miss with a free way: fill it;
 *  - miss in a full set: evict a victim, reporting its line and dirty
 *    state.  LRU/FIFO evict the minimum-tick way (ticks are unique);
 *    random draws a rank from the replayable victim stream — the SplitMix64
 *    finalizer over the (seed, set, per-set eviction ordinal) key, the same
 *    constants as repro.sim.engine.victim_rank — and evicts the way holding
 *    the rank-th most recently inserted line.
 *
 * policy: 0 = fifo, 1 = lru, 2 = random.
 */
static uint64_t repro_victim_hash(uint64_t key)
{
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
    key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
    return key ^ (key >> 31);
}

void repro_run_events(
    int64_t n_events,
    const int64_t *event_sets,
    const int64_t *event_lines,
    const uint8_t *event_dirty,
    const int64_t *event_age,
    uint8_t *hit_out,
    int64_t *victim_line,
    uint8_t *victim_wb,
    int64_t assoc,
    int32_t policy,
    uint64_t rng_seed,
    int64_t *tags,
    uint8_t *dirty,
    int64_t *recency,
    int64_t *occupancy,
    int64_t *evictions)
{
    const int32_t lru = policy == 1;
    const uint64_t seed_term = rng_seed * 0x9E3779B97F4A7C15ULL;
    for (int64_t i = 0; i < n_events; i++) {
        const int64_t set = event_sets[i];
        const int64_t line = event_lines[i];
        int64_t *row = tags + set * assoc;
        uint8_t *drow = dirty + set * assoc;
        int64_t *rrow = recency + set * assoc;
        const int64_t occ = occupancy[set];
        int64_t way = -1;
        for (int64_t w = 0; w < occ; w++) {
            if (row[w] == line) { way = w; break; }
        }
        if (way >= 0) {
            hit_out[i] = 1;
            drow[way] |= event_dirty[i];
            if (lru) rrow[way] = event_age[i];
            continue;
        }
        if (occ < assoc) {
            way = occ;
            occupancy[set] = occ + 1;
        } else {
            if (policy == 2) {
                const uint64_t key = seed_term
                    ^ ((uint64_t)set * 0xC2B2AE3D27D4EB4FULL)
                    ^ ((uint64_t)evictions[set] * 0x165667B19E3779F9ULL);
                const int64_t rank = (int64_t)(repro_victim_hash(key) % (uint64_t)assoc);
                evictions[set] += 1;
                way = 0;
                for (int64_t w = 0; w < assoc; w++) {
                    int64_t newer = 0;
                    for (int64_t v = 0; v < assoc; v++) newer += rrow[v] > rrow[w];
                    if (newer == rank) { way = w; break; }
                }
            } else {
                way = 0;
                for (int64_t w = 1; w < assoc; w++) {
                    if (rrow[w] < rrow[way]) way = w;
                }
            }
            victim_line[i] = row[way];
            victim_wb[i] = drow[way];
        }
        row[way] = line;
        drow[way] = event_dirty[i];
        rrow[way] = event_age[i];
    }
}
"""

_kernel: Optional[ctypes.CDLL] = None
_attempted = False


def _library_path() -> str:
    digest = hashlib.sha256(_SOURCE.encode("utf-8")).hexdigest()[:16]
    tag = f"repro-sim-{digest}-py{sys.version_info[0]}{sys.version_info[1]}"
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        cache_root = os.path.join(xdg, "repro")
    else:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        cache_root = os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")
    return os.path.join(cache_root, f"{tag}.so")


def _compile() -> Optional[str]:
    path = _library_path()
    if os.path.exists(path):
        return path
    compiler = os.environ.get("CC", "cc")
    directory = os.path.dirname(path)
    source_path = None
    try:
        os.makedirs(directory, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            "w", suffix=".c", dir=directory, delete=False
        ) as handle:
            handle.write(_SOURCE)
            source_path = handle.name
        scratch = source_path + ".so"
        result = subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", scratch, source_path],
            capture_output=True,
            timeout=60,
        )
        if result.returncode != 0:
            return None
        os.replace(scratch, path)  # atomic: concurrent builders agree on content
        return path
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        if source_path is not None:
            try:
                os.unlink(source_path)
            except OSError:
                pass


def event_kernel():
    """The compiled event-chain kernel, or ``None`` when unavailable."""
    global _kernel, _attempted
    if _attempted:
        return _kernel
    _attempted = True
    if os.environ.get("REPRO_SIM_NATIVE", "1") == "0":
        return None
    path = _compile()
    if path is None:
        return None
    try:
        library = ctypes.CDLL(path)
        function = library.repro_run_events
    except (OSError, AttributeError):
        return None
    pointer = np.ctypeslib.ndpointer
    function.restype = None
    function.argtypes = [
        ctypes.c_int64,
        pointer(np.int64, flags="C_CONTIGUOUS"),
        pointer(np.int64, flags="C_CONTIGUOUS"),
        pointer(np.bool_, flags="C_CONTIGUOUS"),
        pointer(np.int64, flags="C_CONTIGUOUS"),
        pointer(np.bool_, flags="C_CONTIGUOUS"),
        pointer(np.int64, flags="C_CONTIGUOUS"),
        pointer(np.bool_, flags="C_CONTIGUOUS"),
        ctypes.c_int64,
        ctypes.c_int32,
        ctypes.c_uint64,
        pointer(np.int64, flags="C_CONTIGUOUS"),
        pointer(np.bool_, flags="C_CONTIGUOUS"),
        pointer(np.int64, flags="C_CONTIGUOUS"),
        pointer(np.int64, flags="C_CONTIGUOUS"),
        pointer(np.int64, flags="C_CONTIGUOUS"),
    ]
    _kernel = function
    return _kernel

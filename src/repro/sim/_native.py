"""Optional compiled kernels for the vectorized cache engine.

Three entry points are built from one C translation unit, compiled once per
interpreter installation with the system compiler and loaded via ctypes:

* ``repro_run_events`` — the per-set event walk on the engine's array tag
  store (rank-round replacement; see :mod:`repro.sim.engine`).  The GIL is
  released for the duration, which also helps the ``threads`` pool backend.
* ``repro_chunk_heads`` — the descriptor **head pipeline**: consumes one
  packed chunk of grid run batches ``(base, strides[], counts[], grid
  levels)`` directly from a :class:`~repro.codegen.program.DescriptorArena`
  and produces the collapsed, set-sorted, segment-split, adjacency-merged
  head arrays — bit-identical to :func:`repro.sim.engine.chunk_heads`,
  which stays as the pure-NumPy fallback and the equivalence oracle.
* ``repro_descriptor_batch`` — the cross-chunk batch driver: runs the head
  pipeline, the LRU stack-distance pre-resolution and the event walk for a
  whole arena of chunks in **one foreign call per cache level**, emitting
  aggregated statistics plus the program-ordered fill/write-back stream for
  the next level.  Scratch buffers are caller-owned and reused across
  batches (``repro_scratch_len`` sizes them).

Availability is strictly optional: if no compiler is present, compilation
fails, or ``REPRO_SIM_NATIVE=0`` is set, every loader returns ``None`` and
the engine keeps its pure-NumPy paths.  A failed compile is cached for the
process — the compiler is invoked at most once per interpreter, never per
call.  ``REPRO_SIM_NATIVE_CFLAGS`` appends extra compiler flags after
``-O2`` (the flags join the library cache key, so flag changes rebuild).
All implementations are bit-identical; the equivalence suites run against
whichever is active.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import warnings
from typing import Dict, Optional

import numpy as np

from repro.reliability import NativeKernelDemotionWarning
from repro.reliability import faults

#: ``int64`` slots in the ``stats_out`` array of ``repro_descriptor_batch``:
#: hits, read_hits, write_hits, read_misses, write_misses,
#: read_replacements, write_replacements, writebacks, sequential_misses,
#: last_miss_line, tick, forwarded count, final hash stamp.
BATCH_STATS_SLOTS = 13

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ *
 * Shared helpers
 * ------------------------------------------------------------------ */

/* Python floor division (the C `/` truncates toward zero). */
static int64_t repro_fdiv(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0))) q -= 1;
    return q;
}

/* Python -(-a // b): ceiling division for any non-zero divisor. */
static int64_t repro_cdiv(int64_t a, int64_t b)
{
    return -repro_fdiv(-a, b);
}

static uint64_t repro_victim_hash(uint64_t key)
{
    key = (key ^ (key >> 30)) * 0xBF58476D1CE4E5B9ULL;
    key = (key ^ (key >> 27)) * 0x94D049BB133111EBULL;
    return key ^ (key >> 31);
}

/* ------------------------------------------------------------------ *
 * Replacement-policy dispatch
 *
 * Wire ids are the stable integers of repro.sim.policies (PolicySpec
 * .wire_id): 0 = fifo, 1 = lru, 2 = random, 3 = plru, 4 = rrip.  The
 * traits table mirrors the registry's behavioural flags:
 *  - touch_hit_recency: hits re-touch the recency tick (LRU only; every
 *    policy writes the insertion tick on fills);
 *  - exact_stack: a re-touch within `assoc` set events is a guaranteed
 *    hit, enabling the stack-distance pre-resolution in the batch driver.
 * ------------------------------------------------------------------ */
typedef struct {
    int32_t touch_hit_recency;
    int32_t exact_stack;
} repro_policy_traits;

static const repro_policy_traits REPRO_POLICIES[5] = {
    {0, 0},  /* 0 fifo */
    {1, 1},  /* 1 lru */
    {0, 0},  /* 2 random */
    {0, 0},  /* 3 plru */
    {0, 0},  /* 4 rrip */
};

/* Tree-PLRU over next_pow2(assoc) leaves: one int64 of node bits per set
 * (node i's children are 2i+1 / 2i+2; bit 1 points the victim walk right).
 * Mirrors repro.sim.policies._plru_touch_bits / _plru_victim_way. */
static int64_t repro_plru_leaves(int64_t assoc)
{
    int64_t size = 1;
    while (size < assoc) size <<= 1;
    return size;
}

static void repro_plru_touch(int64_t *bits_slot, int64_t way, int64_t assoc)
{
    int64_t bits = *bits_slot;
    int64_t size = repro_plru_leaves(assoc);
    int64_t node = 0, lo = 0;
    while (size > 1) {
        const int64_t half = size >> 1;
        if (way < lo + half) {
            bits |= (int64_t)1 << node;
            node = 2 * node + 1;
        } else {
            bits &= ~((int64_t)1 << node);
            node = 2 * node + 2;
            lo += half;
        }
        size = half;
    }
    *bits_slot = bits;
}

static int64_t repro_plru_victim(int64_t bits, int64_t assoc)
{
    int64_t size = repro_plru_leaves(assoc);
    int64_t node = 0, lo = 0;
    while (size > 1) {
        const int64_t half = size >> 1;
        int64_t dir = (bits >> node) & 1;
        if (dir && lo + half >= assoc) dir = 0;  /* empty right half */
        node = 2 * node + 1 + dir;
        if (dir) lo += half;
        size = half;
    }
    return lo;
}

/* SRRIP victim: age the whole set in closed form until a way reaches
 * RRPV 3, then take the lowest-index such way.  Mirrors
 * repro.sim.policies._RripSpec.victim_way (insert 2, hit promotes to 0). */
static int64_t repro_rrip_victim(int64_t *arow, int64_t assoc)
{
    int64_t highest = arow[0];
    for (int64_t w = 1; w < assoc; w++) {
        if (arow[w] > highest) highest = arow[w];
    }
    if (highest < 3) {
        const int64_t inc = 3 - highest;
        for (int64_t w = 0; w < assoc; w++) arow[w] += inc;
    }
    for (int64_t w = 0; w < assoc; w++) {
        if (arow[w] == 3) return w;
    }
    return 0;  /* unreachable: aging leaves a way at 3 */
}

/* ------------------------------------------------------------------ *
 * Event walk core
 *
 * Sequential per-set event walk on the engine's array tag store.  Events
 * must arrive grouped so that events of one set appear in trace order (any
 * interleaving across sets is fine).  Mirrors
 * VectorCacheState._run_events / _scalar_chain semantics exactly:
 *  - hit: mark, OR the dirty flag in, update the recency tick (LRU only);
 *  - miss with a free way: fill it;
 *  - miss in a full set: evict a victim, reporting its line and dirty
 *    state.  LRU/FIFO evict the minimum-tick way (ticks are unique);
 *    random draws a rank from the replayable victim stream -- the SplitMix64
 *    finalizer over the (seed, set, per-set eviction ordinal) key, the same
 *    constants as repro.sim.engine.victim_rank -- and evicts the way holding
 *    the rank-th most recently inserted line.
 *
 * policy: 0 = fifo, 1 = lru, 2 = random, 3 = plru, 4 = rrip (the stable
 * wire ids of repro.sim.policies).  `aux` is the registry's auxiliary
 * state plane: PLRU tree bits (one int64 per set) or RRIP re-reference
 * counters (one int64 per way); unused by the other policies.
 * `event_retouch` marks events standing for a collapsed multi-access run
 * (the later members are guaranteed hits, so RRIP leaves the line
 * promoted, not at the insertion RRPV).  hit_out / victim_line /
 * victim_wb must arrive initialised to 0 / -1 / 0.
 * ------------------------------------------------------------------ */
static void repro_events_core(
    int64_t n_events,
    const int64_t *event_sets,
    const int64_t *event_lines,
    const uint8_t *event_dirty,
    const int64_t *event_age,
    const uint8_t *event_retouch,
    uint8_t *hit_out,
    int64_t *victim_line,
    uint8_t *victim_wb,
    int64_t assoc,
    int32_t policy,
    uint64_t seed_term,
    int64_t *tags,
    uint8_t *dirty,
    int64_t *recency,
    int64_t *aux,
    int64_t *occupancy,
    int64_t *evictions)
{
    const int32_t touch_hit = REPRO_POLICIES[policy].touch_hit_recency;
    for (int64_t i = 0; i < n_events; i++) {
        const int64_t set = event_sets[i];
        const int64_t line = event_lines[i];
        int64_t *row = tags + set * assoc;
        uint8_t *drow = dirty + set * assoc;
        int64_t *rrow = recency + set * assoc;
        const int64_t occ = occupancy[set];
        int64_t way = -1;
        for (int64_t w = 0; w < occ; w++) {
            if (row[w] == line) { way = w; break; }
        }
        if (way >= 0) {
            hit_out[i] = 1;
            drow[way] |= event_dirty[i];
            if (touch_hit) rrow[way] = event_age[i];
            else if (policy == 3) repro_plru_touch(aux + set, way, assoc);
            else if (policy == 4) aux[set * assoc + way] = 0;
            continue;
        }
        if (occ < assoc) {
            way = occ;
            occupancy[set] = occ + 1;
        } else {
            if (policy == 2) {
                const uint64_t key = seed_term
                    ^ ((uint64_t)set * 0xC2B2AE3D27D4EB4FULL)
                    ^ ((uint64_t)evictions[set] * 0x165667B19E3779F9ULL);
                const int64_t rank = (int64_t)(repro_victim_hash(key) % (uint64_t)assoc);
                evictions[set] += 1;
                way = 0;
                for (int64_t w = 0; w < assoc; w++) {
                    int64_t newer = 0;
                    for (int64_t v = 0; v < assoc; v++) newer += rrow[v] > rrow[w];
                    if (newer == rank) { way = w; break; }
                }
            } else if (policy == 3) {
                way = repro_plru_victim(aux[set], assoc);
            } else if (policy == 4) {
                way = repro_rrip_victim(aux + set * assoc, assoc);
            } else {
                way = 0;
                for (int64_t w = 1; w < assoc; w++) {
                    if (rrow[w] < rrow[way]) way = w;
                }
            }
            victim_line[i] = row[way];
            victim_wb[i] = drow[way];
        }
        row[way] = line;
        drow[way] = event_dirty[i];
        rrow[way] = event_age[i];
        if (policy == 3) repro_plru_touch(aux + set, way, assoc);
        else if (policy == 4) aux[set * assoc + way] = event_retouch[i] ? 0 : 2;
    }
}

void repro_run_events(
    int64_t n_events,
    const int64_t *event_sets,
    const int64_t *event_lines,
    const uint8_t *event_dirty,
    const int64_t *event_age,
    const uint8_t *event_retouch,
    uint8_t *hit_out,
    int64_t *victim_line,
    uint8_t *victim_wb,
    int64_t assoc,
    int32_t policy,
    uint64_t rng_seed,
    int64_t *tags,
    uint8_t *dirty,
    int64_t *recency,
    int64_t *aux,
    int64_t *occupancy,
    int64_t *evictions)
{
    repro_events_core(
        n_events, event_sets, event_lines, event_dirty, event_age, event_retouch,
        hit_out, victim_line, victim_wb, assoc, policy,
        rng_seed * 0x9E3779B97F4A7C15ULL,
        tags, dirty, recency, aux, occupancy, evictions);
}

/* ------------------------------------------------------------------ *
 * Workspace
 *
 * One caller-owned int64 block carved into regions.  `cap` bounds the
 * head count of any single chunk (heads never outnumber members, and
 * segment splitting conserves member coverage, so `cap = max chunk total`
 * is exact).  Arrays with a `cl_` prefix are per conflict cluster
 * (clusters never outnumber heads).
 *
 * Regions with disjoint lifetimes alias each other, keeping the block --
 * and, more importantly, the pages actually touched -- small: the event
 * arrays overlay the head ping-pong sides (dead once the merged heads
 * are final), and the merged heads plus the chain aggregates overlay the
 * conflict-pass block (dead once the split loop exits).  The caller owns
 * the block across calls; `init_tables` must be 1 exactly when the
 * memory is new (or the layout changed), which seeds the two stateful
 * tables: the position scatter table (kept all -1 between uses) and the
 * hash stamps (call-unique via the caller's monotone `stamp_base`, so
 * they are never cleared again).
 * ------------------------------------------------------------------ */
#define REPRO_SENTINEL (INT64_MAX / 2)

typedef struct {
    int64_t cap;
    int64_t hash_cap;
    /* head ping-pong sides: line, run length, first position, write flag */
    int64_t *a_line, *a_len, *a_orig, *a_write;
    int64_t *b_line, *b_len, *b_orig, *b_write;
    /* final merged heads (alias the conflict block) */
    int64_t *f_set, *f_line, *f_fw, *f_wc, *f_orig, *f_last;
    /* radix sort machinery */
    int64_t *key_a, *key_b, *idx_a, *idx_b, *radix_count;
    /* conflict pass */
    int64_t *last_key, *cluster_of, *target;
    int64_t *cl_min_line, *cl_max_line;
    int64_t *cl_min1, *cl_min2, *cl_min_count;
    int64_t *cl_max1, *cl_max2, *cl_max_count;
    /* chains (alias the conflict block) and events (alias the sides) */
    int64_t *chain_write, *chain_last;
    int64_t *ev_set, *ev_line, *ev_age, *ev_orig, *ev_fw, *ev_victim;
    uint8_t *ev_dirty, *ev_hit, *ev_vwb, *ev_retouch;
    /* line hash (LRU pre-resolution); probed within a per-segment
     * power-of-two window so touched pages track real segment sizes */
    int64_t *h_line, *h_rank, *h_chain, *h_stamp;
    /* position scatter table (dense sorts); kept all -1 between uses */
    int64_t *slot_of;
    int64_t pos_cap;
} repro_ws;

int64_t repro_scratch_len(int64_t cap, int64_t pos_cap)
{
    if (cap < 1) cap = 1;
    if (pos_cap < 1) pos_cap = 1;
    int64_t hash_cap = 16;
    while (hash_cap < 2 * cap) hash_cap <<= 1;
    return 23 * cap + 65536 + 4 * ((cap + 7) / 8) + 4 * hash_cap + pos_cap + 8;
}

static int repro_ws_init(
    repro_ws *ws, int64_t *scratch, int64_t scratch_len,
    int64_t cap, int64_t pos_cap, int32_t init_tables)
{
    if (cap < 1) cap = 1;
    if (pos_cap < 1) pos_cap = 1;
    if (scratch_len < repro_scratch_len(cap, pos_cap)) return -1;
    int64_t hash_cap = 16;
    while (hash_cap < 2 * cap) hash_cap <<= 1;
    ws->cap = cap;
    ws->pos_cap = pos_cap;
    ws->hash_cap = hash_cap;
    int64_t *p = scratch;
    ws->a_line = p; p += cap;
    ws->a_len = p; p += cap;
    ws->a_orig = p; p += cap;
    ws->a_write = p; p += cap;
    ws->b_line = p; p += cap;
    ws->b_len = p; p += cap;
    ws->b_orig = p; p += cap;
    ws->b_write = p; p += cap;
    /* events overlay the sides: sides are dead once merged heads exist */
    ws->ev_set = ws->a_line;
    ws->ev_line = ws->a_len;
    ws->ev_age = ws->a_orig;
    ws->ev_orig = ws->a_write;
    ws->ev_fw = ws->b_line;
    ws->ev_victim = ws->b_len;
    ws->key_a = p; p += cap;
    ws->key_b = p; p += cap;
    ws->idx_a = p; p += cap;
    ws->idx_b = p; p += cap;
    ws->radix_count = p; p += 65536;
    /* conflict block; merged heads and chain aggregates overlay it
     * (conflict machinery is dead once the split loop exits) */
    ws->last_key = p; p += cap;
    ws->cluster_of = p; p += cap;
    ws->target = p; p += cap;
    ws->cl_min_line = p; p += cap;
    ws->cl_max_line = p; p += cap;
    ws->cl_min1 = p; p += cap;
    ws->cl_min2 = p; p += cap;
    ws->cl_min_count = p; p += cap;
    ws->cl_max1 = p; p += cap;
    ws->cl_max2 = p; p += cap;
    ws->cl_max_count = p; p += cap;
    ws->f_set = ws->last_key;
    ws->f_line = ws->cluster_of;
    ws->f_fw = ws->target;
    ws->f_wc = ws->cl_min_line;
    ws->f_orig = ws->cl_max_line;
    ws->f_last = ws->cl_min1;
    ws->chain_write = ws->cl_min2;
    ws->chain_last = ws->cl_min_count;
    ws->h_line = p; p += hash_cap;
    ws->h_rank = p; p += hash_cap;
    ws->h_chain = p; p += hash_cap;
    ws->h_stamp = p; p += hash_cap;
    ws->slot_of = p; p += pos_cap;
    ws->ev_dirty = (uint8_t *)p; p += (cap + 7) / 8;
    ws->ev_hit = (uint8_t *)p; p += (cap + 7) / 8;
    ws->ev_vwb = (uint8_t *)p; p += (cap + 7) / 8;
    ws->ev_retouch = (uint8_t *)p; p += (cap + 7) / 8;
    if (init_tables) {
        for (int64_t i = 0; i < pos_cap; i++) ws->slot_of[i] = -1;
        memset(ws->h_stamp, 0, (size_t)hash_cap * sizeof(int64_t));
    }
    return 0;
}

/* Ascending stable LSD radix sort of 0..n-1 by the non-negative keys the
 * caller placed in ws->key_a; returns the sorted index array (ws-owned).
 * Keys here are unique (trace positions / set-position composites), so
 * stability never matters for bit-identity -- only determinism does. */
static int64_t *repro_sort_indices(repro_ws *ws, int64_t n)
{
    int64_t *key = ws->key_a, *key_alt = ws->key_b;
    int64_t *idx = ws->idx_a, *idx_alt = ws->idx_b;
    int64_t maxk = 0;
    for (int64_t i = 0; i < n; i++) {
        idx[i] = i;
        if (key[i] > maxk) maxk = key[i];
    }
    /* Wide digits amortise passes on big chunks; narrow digits keep the
     * counter clear cheap on small ones.  Digit width never affects the
     * result -- keys are unique, the order is their total order. */
    const int64_t bits = n >= (1 << 14) ? 16 : 8;
    const int64_t radix = (int64_t)1 << bits;
    const int64_t mask = radix - 1;
    int64_t shift = 0;
    while (maxk >> shift) {
        int64_t *cnt = ws->radix_count;
        memset(cnt, 0, (size_t)radix * sizeof(int64_t));
        for (int64_t i = 0; i < n; i++) cnt[(key[i] >> shift) & mask]++;
        int64_t run = 0;
        for (int64_t d = 0; d < radix; d++) {
            const int64_t c = cnt[d];
            cnt[d] = run;
            run += c;
        }
        for (int64_t i = 0; i < n; i++) {
            const int64_t d = (key[i] >> shift) & mask;
            const int64_t at = cnt[d]++;
            key_alt[at] = key[i];
            idx_alt[at] = idx[i];
        }
        int64_t *swap = key; key = key_alt; key_alt = swap;
        swap = idx; idx = idx_alt; idx_alt = swap;
        shift += bits;
    }
    return idx;
}

/* Permutation ordering heads (or members) by (set, position), mirroring
 * repro.sim.engine._head_order: positions are unique and bounded, so a
 * dense chunk recovers trace order with a counting scatter (the table is
 * reset while it is scanned, preserving the all -1 invariant) followed by
 * one stable counting pass by set; sparse chunks -- and set counts beyond
 * the counter block -- fall back to the composite-key radix sort.  Both
 * branches produce the identical unique-key ascending order. */
static int64_t *repro_order_by_set_pos(
    repro_ws *ws, int64_t n, int64_t pos_bound, int64_t bound,
    int64_t set_mask, const int64_t *L, const int64_t *O)
{
    const int64_t n_sets = set_mask + 1;
    if (n * 16 < pos_bound || n_sets > 65536 || pos_bound > ws->pos_cap) {
        for (int64_t i = 0; i < n; i++) {
            ws->key_a[i] = (L[i] & set_mask) * bound + O[i];
        }
        return repro_sort_indices(ws, n);
    }
    int64_t *slot = ws->slot_of;
    for (int64_t i = 0; i < n; i++) slot[O[i]] = i;
    int64_t *by_pos = ws->idx_b;
    int64_t k = 0;
    for (int64_t p = 0; p < pos_bound; p++) {
        const int64_t h = slot[p];
        if (h >= 0) {
            by_pos[k++] = h;
            slot[p] = -1;
        }
    }
    int64_t *cnt = ws->radix_count;
    memset(cnt, 0, (size_t)n_sets * sizeof(int64_t));
    for (int64_t i = 0; i < n; i++) cnt[L[by_pos[i]] & set_mask]++;
    int64_t run = 0;
    for (int64_t s = 0; s < n_sets; s++) {
        const int64_t c = cnt[s];
        cnt[s] = run;
        run += c;
    }
    int64_t *idx = ws->idx_a;
    for (int64_t i = 0; i < n; i++) {
        const int64_t h = by_pos[i];
        idx[cnt[L[h] & set_mask]++] = h;
    }
    return idx;
}

/* ------------------------------------------------------------------ *
 * Grid odometer: advance the per-level digits of a grid batch (outermost
 * level slowest), accumulating the address/position offsets of the next
 * grid point into *oaddr / *opos.  Returns 0 when the grid is exhausted.
 * Shared by both emitters so the replication semantics live in one place.
 * ------------------------------------------------------------------ */
static int repro_grid_advance(
    int64_t *d, const int64_t *grids, int64_t g0, int64_t levels,
    int64_t *oaddr, int64_t *opos)
{
    int64_t l = levels - 1;
    for (; l >= 0; l--) {
        const int64_t *g = grids + (g0 + l) * 3;
        d[l] += 1;
        *oaddr += g[0];
        *opos += g[2];
        if (d[l] < g[1]) return 1;
        *oaddr -= g[0] * d[l];
        *opos -= g[2] * d[l];
        d[l] = 0;
    }
    return 0;
}

/* ------------------------------------------------------------------ *
 * Head emission: one packed chunk -> raw per-line heads.
 *
 * Grid batches are walked with an odometer over the replication levels
 * (outermost slowest), one stored run at a time -- the transient degrid of
 * the NumPy path without ever materialising the expanded run list.  Each
 * 1-D run collapses to line heads in closed form exactly like
 * repro.sim.engine._batch_heads: zero stride is one head, |stride| below
 * the line size walks the monotone line staircase with interval
 * arithmetic, |stride| at or above the line size is one head per access.
 * ------------------------------------------------------------------ */
static int64_t repro_emit_heads(
    const int64_t *cm,
    const int64_t *batch_meta,
    const int64_t *bases,
    const int64_t *counts,
    const int64_t *first_pos,
    const int64_t *grids,
    const int64_t *ex_addr,
    const uint8_t *ex_write,
    const int64_t *ex_pos,
    int64_t offset_bits,
    int64_t *L, int64_t *RL, int64_t *O, int64_t *W)
{
    const int64_t line_bytes = (int64_t)1 << offset_bits;
    int64_t n = 0;
    for (int64_t b = cm[2]; b < cm[3]; b++) {
        const int64_t *bm = batch_meta + b * 7;
        const int64_t is_write = bm[0];
        const int64_t stride = bm[1];
        const int64_t bps = bm[2];
        const int64_t r0 = bm[3], r1 = bm[4];
        const int64_t g0 = bm[5];
        const int64_t levels = bm[6] - g0;
        if (levels > 62) return -2;
        int64_t d[64];
        for (int64_t l = 0; l < levels; l++) d[l] = 0;
        int64_t oaddr = 0, opos = 0;
        for (;;) {
            for (int64_t r = r0; r < r1; r++) {
                const int64_t base = bases[r] + oaddr;
                const int64_t cnt = counts[r];
                const int64_t fpos = first_pos[r] + opos;
                if (stride == 0) {
                    L[n] = base >> offset_bits;
                    RL[n] = cnt;
                    O[n] = fpos;
                    W[n] = is_write;
                    n++;
                } else if ((stride < 0 ? -stride : stride) < line_bytes) {
                    const int64_t first_line = base >> offset_bits;
                    const int64_t last_line = (base + (cnt - 1) * stride) >> offset_bits;
                    if (stride > 0) {
                        for (int64_t line = first_line; line <= last_line; line++) {
                            int64_t i_first = repro_cdiv(line * line_bytes - base, stride);
                            if (i_first < 0) i_first = 0;
                            int64_t i_last =
                                repro_fdiv((line + 1) * line_bytes - 1 - base, stride);
                            if (i_last > cnt - 1) i_last = cnt - 1;
                            L[n] = line;
                            RL[n] = i_last - i_first + 1;
                            O[n] = fpos + i_first * bps;
                            W[n] = is_write;
                            n++;
                        }
                    } else {
                        for (int64_t line = first_line; line >= last_line; line--) {
                            int64_t i_first =
                                repro_cdiv((line + 1) * line_bytes - 1 - base, stride);
                            if (i_first < 0) i_first = 0;
                            int64_t i_last = repro_fdiv(line * line_bytes - base, stride);
                            if (i_last > cnt - 1) i_last = cnt - 1;
                            L[n] = line;
                            RL[n] = i_last - i_first + 1;
                            O[n] = fpos + i_first * bps;
                            W[n] = is_write;
                            n++;
                        }
                    }
                } else {
                    for (int64_t k = 0; k < cnt; k++) {
                        L[n] = (base + stride * k) >> offset_bits;
                        RL[n] = 1;
                        O[n] = fpos + bps * k;
                        W[n] = is_write;
                        n++;
                    }
                }
            }
            if (levels == 0) break;
            if (!repro_grid_advance(d, grids, g0, levels, &oaddr, &opos)) break;
        }
    }
    for (int64_t e = cm[4]; e < cm[5]; e++) {
        L[n] = ex_addr[e] >> offset_bits;
        RL[n] = 1;
        O[n] = ex_pos[e];
        W[n] = ex_write[e] ? 1 : 0;
        n++;
    }
    return n;
}

/* ------------------------------------------------------------------ *
 * Head pipeline: emission, (set, position) sort, conflicted-head segment
 * splitting and the adjacent same-(set, line) merge -- bit-identical to
 * repro.sim.engine.chunk_heads (see its docstring for the algorithm).
 * Writes the merged heads to the out_* arrays and returns their count.
 * ------------------------------------------------------------------ */
static int64_t repro_chunk_head_pipeline(
    const int64_t *cm,
    const int64_t *batch_meta,
    const int64_t *bases,
    const int64_t *counts,
    const int64_t *first_pos,
    const int64_t *grids,
    const int64_t *ex_addr,
    const uint8_t *ex_write,
    const int64_t *ex_pos,
    int64_t offset_bits,
    int64_t set_mask,
    int64_t split_passes,
    repro_ws *ws,
    int64_t *out_set, int64_t *out_line, int64_t *out_fw,
    int64_t *out_wc, int64_t *out_orig, int64_t *out_last)
{
    int64_t *L = ws->a_line, *RL = ws->a_len, *O = ws->a_orig, *W = ws->a_write;
    int64_t n = repro_emit_heads(
        cm, batch_meta, bases, counts, first_pos, grids,
        ex_addr, ex_write, ex_pos, offset_bits, L, RL, O, W);
    if (n < 0) return n;
    const int64_t bound = cm[1] > 1 ? cm[1] : 1;
    const int64_t ps = cm[6];
    int collapsed_any = 0;
    for (int64_t i = 0; i < n; i++) {
        if (RL[i] > 1) { collapsed_any = 1; break; }
    }
    for (;;) {
        /* sort by (set, position); positions are unique so the composite
         * key is a strict total order */
        int64_t *idx = repro_order_by_set_pos(ws, n, cm[1], bound, set_mask, L, O);
        int64_t *L2, *RL2, *O2, *W2;
        if (L == ws->a_line) {
            L2 = ws->b_line; RL2 = ws->b_len; O2 = ws->b_orig; W2 = ws->b_write;
        } else {
            L2 = ws->a_line; RL2 = ws->a_len; O2 = ws->a_orig; W2 = ws->a_write;
        }
        for (int64_t i = 0; i < n; i++) {
            const int64_t h = idx[i];
            L2[i] = L[h]; RL2[i] = RL[h]; O2[i] = O[h]; W2[i] = W[h];
        }
        L = L2; RL = RL2; O = O2; W = W2;
        if (!collapsed_any) break;

        /* clean flags and conflict clusters over the sorted heads */
        int64_t run_max = 0;
        int64_t cluster = -1;
        int any_unclean = 0;
        for (int64_t i = 0; i < n; i++) {
            const int64_t key = (L[i] & set_mask) * bound + O[i];
            const int64_t last_key = key + (RL[i] - 1) * ps;
            const int clean = (i == 0) || (key > run_max);
            if (!clean) any_unclean = 1;
            cluster += clean ? 1 : 0;
            ws->cluster_of[i] = cluster;
            ws->key_a[i] = key;
            ws->last_key[i] = last_key;
            if (i == 0 || last_key > run_max) run_max = last_key;
        }
        if (!any_unclean) break;
        const int64_t n_clusters = cluster + 1;
        for (int64_t c = 0; c < n_clusters; c++) {
            ws->cl_min_line[c] = INT64_MAX;
            ws->cl_max_line[c] = INT64_MIN;
            ws->cl_min1[c] = REPRO_SENTINEL;
            ws->cl_min2[c] = REPRO_SENTINEL;
            ws->cl_min_count[c] = 0;
            ws->cl_max1[c] = -REPRO_SENTINEL;
            ws->cl_max2[c] = -REPRO_SENTINEL;
            ws->cl_max_count[c] = 0;
        }
        for (int64_t i = 0; i < n; i++) {
            const int64_t c = ws->cluster_of[i];
            if (L[i] < ws->cl_min_line[c]) ws->cl_min_line[c] = L[i];
            if (L[i] > ws->cl_max_line[c]) ws->cl_max_line[c] = L[i];
            const int64_t k = ws->key_a[i];
            if (k < ws->cl_min1[c]) {
                ws->cl_min2[c] = ws->cl_min1[c];
                ws->cl_min1[c] = k;
                ws->cl_min_count[c] = 1;
            } else if (k == ws->cl_min1[c]) {
                ws->cl_min_count[c] += 1;
            } else if (k < ws->cl_min2[c]) {
                ws->cl_min2[c] = k;
            }
            const int64_t lk = ws->last_key[i];
            if (lk > ws->cl_max1[c]) {
                ws->cl_max2[c] = ws->cl_max1[c];
                ws->cl_max1[c] = lk;
                ws->cl_max_count[c] = 1;
            } else if (lk == ws->cl_max1[c]) {
                ws->cl_max_count[c] += 1;
            } else if (lk > ws->cl_max2[c]) {
                ws->cl_max2[c] = lk;
            }
        }
        int any_target = 0;
        for (int64_t i = 0; i < n; i++) {
            const int64_t c = ws->cluster_of[i];
            ws->target[i] =
                (ws->cl_min_line[c] != ws->cl_max_line[c]) && (RL[i] > 1);
            if (ws->target[i]) any_target = 1;
        }
        if (!any_target) break;  /* conflicted heads are all singletons */
        const int use_split = split_passes > 0;
        if (use_split) split_passes -= 1;

        /* rebuild: clean prefix/suffix sub-runs stay collapsed, the covered
         * middle is exploded into singleton members */
        if (L == ws->a_line) {
            L2 = ws->b_line; RL2 = ws->b_len; O2 = ws->b_orig; W2 = ws->b_write;
        } else {
            L2 = ws->a_line; RL2 = ws->a_len; O2 = ws->a_orig; W2 = ws->a_write;
        }
        int64_t m = 0;
        collapsed_any = 0;
        for (int64_t i = 0; i < n; i++) {
            if (!ws->target[i]) {
                L2[m] = L[i]; RL2[m] = RL[i]; O2[m] = O[i]; W2[m] = W[i];
                if (RL[i] > 1) collapsed_any = 1;
                m++;
                continue;
            }
            int64_t prefix = 0, suffix = 0;
            if (use_split) {
                const int64_t c = ws->cluster_of[i];
                const int64_t other_start =
                    (ws->key_a[i] == ws->cl_min1[c] && ws->cl_min_count[c] == 1)
                        ? ws->cl_min2[c] : ws->cl_min1[c];
                const int64_t other_end =
                    (ws->last_key[i] == ws->cl_max1[c] && ws->cl_max_count[c] == 1)
                        ? ws->cl_max2[c] : ws->cl_max1[c];
                prefix = repro_cdiv(other_start - ws->key_a[i], ps);
                if (prefix < 0) prefix = 0;
                if (prefix > RL[i]) prefix = RL[i];
                suffix = RL[i] - 1 - repro_fdiv(other_end - ws->key_a[i], ps);
                if (suffix < 0) suffix = 0;
                if (suffix > RL[i]) suffix = RL[i];
            }
            if (prefix > 0) {
                L2[m] = L[i]; RL2[m] = prefix; O2[m] = O[i]; W2[m] = W[i];
                if (prefix > 1) collapsed_any = 1;
                m++;
            }
            if (suffix > 0) {
                L2[m] = L[i]; RL2[m] = suffix;
                O2[m] = O[i] + (RL[i] - suffix) * ps;
                W2[m] = W[i];
                if (suffix > 1) collapsed_any = 1;
                m++;
            }
            for (int64_t k = prefix; k < RL[i] - suffix; k++) {
                L2[m] = L[i]; RL2[m] = 1; O2[m] = O[i] + k * ps; W2[m] = W[i];
                m++;
            }
        }
        L = L2; RL = RL2; O = O2; W = W2;
        n = m;
    }

    /* adjacent same-(set, line) merge on the sorted heads */
    int64_t m = 0;
    for (int64_t i = 0; i < n; i++) {
        const int64_t set = L[i] & set_mask;
        const int64_t wc = W[i] ? RL[i] : 0;
        const int64_t last = O[i] + (RL[i] - 1) * ps;
        if (m > 0 && out_set[m - 1] == set && out_line[m - 1] == L[i]) {
            out_wc[m - 1] += wc;
            if (last > out_last[m - 1]) out_last[m - 1] = last;
        } else {
            out_set[m] = set;
            out_line[m] = L[i];
            out_fw[m] = W[i];
            out_wc[m] = wc;
            out_orig[m] = O[i];
            out_last[m] = last;
            m++;
        }
    }
    return m;
}

/* Pre-explosion head-count estimate of one packed chunk -- the C
 * counterpart of repro.sim.engine.estimated_heads, used to pick the
 * per-chunk processing mode (closed-form head collapse vs member
 * expansion).  The choice only affects throughput, never statistics. */
static int64_t repro_estimate_heads(
    const int64_t *cm,
    const int64_t *batch_meta,
    const int64_t *bases,
    const int64_t *counts,
    const int64_t *grids,
    int64_t offset_bits)
{
    const int64_t line_bytes = (int64_t)1 << offset_bits;
    int64_t est = 0;
    for (int64_t b = cm[2]; b < cm[3]; b++) {
        const int64_t *bm = batch_meta + b * 7;
        const int64_t stride = bm[1];
        const int64_t r0 = bm[3], r1 = bm[4];
        int64_t mult = 1;
        for (int64_t g = bm[5]; g < bm[6]; g++) mult *= grids[g * 3 + 1];
        if (stride == 0) {
            est += (r1 - r0) * mult;
        } else if ((stride < 0 ? -stride : stride) >= line_bytes) {
            int64_t members = 0;
            for (int64_t r = r0; r < r1; r++) members += counts[r];
            est += members * mult;
        } else {
            int64_t per_row = r1 - r0;
            for (int64_t r = r0; r < r1; r++) {
                const int64_t first = bases[r] >> offset_bits;
                const int64_t last =
                    (bases[r] + (counts[r] - 1) * stride) >> offset_bits;
                per_row += last > first ? last - first : first - last;
            }
            est += per_row * mult;
        }
    }
    est += cm[5] - cm[4];
    return est;
}

/* Expansion-mode emission: one record per *member* (run length 1), walked
 * with the same grid odometer as repro_emit_heads.  The dense route writes
 * `(line << 1) | write` straight into the position table (the member's
 * trace position is the slot, recovered for free by the compaction scan);
 * the sparse route fills the L/O/W arrays for a composite-key sort. */
static int64_t repro_emit_members(
    const int64_t *cm,
    const int64_t *batch_meta,
    const int64_t *bases,
    const int64_t *counts,
    const int64_t *first_pos,
    const int64_t *grids,
    const int64_t *ex_addr,
    const uint8_t *ex_write,
    const int64_t *ex_pos,
    int64_t offset_bits,
    int64_t *pos_table,
    int64_t *L, int64_t *O, int64_t *W)
{
    int64_t n = 0;
    for (int64_t b = cm[2]; b < cm[3]; b++) {
        const int64_t *bm = batch_meta + b * 7;
        const int64_t is_write = bm[0];
        const int64_t stride = bm[1];
        const int64_t bps = bm[2];
        const int64_t r0 = bm[3], r1 = bm[4];
        const int64_t g0 = bm[5];
        const int64_t levels = bm[6] - g0;
        if (levels > 62) return -2;
        int64_t d[64];
        for (int64_t l = 0; l < levels; l++) d[l] = 0;
        int64_t oaddr = 0, opos = 0;
        for (;;) {
            for (int64_t r = r0; r < r1; r++) {
                const int64_t base = bases[r] + oaddr;
                const int64_t cnt = counts[r];
                const int64_t fpos = first_pos[r] + opos;
                if (pos_table) {
                    for (int64_t k = 0; k < cnt; k++) {
                        pos_table[fpos + bps * k] =
                            (((base + stride * k) >> offset_bits) << 1) | is_write;
                    }
                    n += cnt;
                } else {
                    for (int64_t k = 0; k < cnt; k++) {
                        L[n] = (base + stride * k) >> offset_bits;
                        O[n] = fpos + bps * k;
                        W[n] = is_write;
                        n++;
                    }
                }
            }
            if (levels == 0) break;
            if (!repro_grid_advance(d, grids, g0, levels, &oaddr, &opos)) break;
        }
    }
    for (int64_t e = cm[4]; e < cm[5]; e++) {
        if (pos_table) {
            pos_table[ex_pos[e]] =
                ((ex_addr[e] >> offset_bits) << 1) | (ex_write[e] ? 1 : 0);
            n++;
        } else {
            L[n] = ex_addr[e] >> offset_bits;
            O[n] = ex_pos[e];
            W[n] = ex_write[e] ? 1 : 0;
            n++;
        }
    }
    return n;
}

/* Expansion-mode pipeline: member emission, (set, position) sort and the
 * maximal adjacent same-(set, line) collapse.  Produces the same merged
 * head arrays as repro_chunk_head_pipeline (the segment-splitting loop
 * exists precisely to make the closed-form route land on this collapse).
 *
 * The dense route keeps every pass sequential except three scattered
 * writes per member (position-table emission and the set placement):
 * members are compacted from the position table in trace order, counted
 * by set on the contiguous copy, and placed once into (set, position)
 * order.  Sparse chunks (members far below the position bound) take the
 * composite-key radix sort instead; both orders are identical. */
static int64_t repro_chunk_expand_pipeline(
    const int64_t *cm,
    const int64_t *batch_meta,
    const int64_t *bases,
    const int64_t *counts,
    const int64_t *first_pos,
    const int64_t *grids,
    const int64_t *ex_addr,
    const uint8_t *ex_write,
    const int64_t *ex_pos,
    int64_t offset_bits,
    int64_t set_mask,
    repro_ws *ws,
    int64_t *out_set, int64_t *out_line, int64_t *out_fw,
    int64_t *out_wc, int64_t *out_orig, int64_t *out_last)
{
    const int64_t pos_bound = cm[1];
    const int64_t n_sets = set_mask + 1;
    const int64_t total = cm[0];
    const int dense =
        total * 16 >= pos_bound && n_sets <= 65536 && pos_bound <= ws->pos_cap;
    if (dense) {
        const int64_t n = repro_emit_members(
            cm, batch_meta, bases, counts, first_pos, grids,
            ex_addr, ex_write, ex_pos, offset_bits, ws->slot_of,
            (int64_t *)0, (int64_t *)0, (int64_t *)0);
        if (n < 0) return n;
        /* compact the table into trace order (restoring the -1 invariant) */
        int64_t *tagged = ws->a_line, *pos = ws->a_orig;
        int64_t k = 0;
        for (int64_t p = 0; p < pos_bound; p++) {
            const int64_t v = ws->slot_of[p];
            if (v >= 0) {
                tagged[k] = v;
                pos[k] = p;
                ws->slot_of[p] = -1;
                k++;
            }
        }
        /* stable counting sort by set over the contiguous copy */
        int64_t *cnt = ws->radix_count;
        memset(cnt, 0, (size_t)n_sets * sizeof(int64_t));
        for (int64_t i = 0; i < k; i++) cnt[(tagged[i] >> 1) & set_mask]++;
        int64_t run = 0;
        for (int64_t s = 0; s < n_sets; s++) {
            const int64_t c = cnt[s];
            cnt[s] = run;
            run += c;
        }
        int64_t *tagged_s = ws->b_line, *pos_s = ws->b_orig;
        for (int64_t i = 0; i < k; i++) {
            const int64_t at = cnt[(tagged[i] >> 1) & set_mask]++;
            tagged_s[at] = tagged[i];
            pos_s[at] = pos[i];
        }
        /* maximal adjacent same-(set, line) collapse */
        int64_t m = 0;
        for (int64_t i = 0; i < k; i++) {
            const int64_t line = tagged_s[i] >> 1;
            const int64_t write = tagged_s[i] & 1;
            if (m > 0 && out_line[m - 1] == line
                && out_set[m - 1] == (line & set_mask)) {
                out_wc[m - 1] += write;
                out_last[m - 1] = pos_s[i];
            } else {
                out_set[m] = line & set_mask;
                out_line[m] = line;
                out_fw[m] = write;
                out_wc[m] = write;
                out_orig[m] = pos_s[i];
                out_last[m] = pos_s[i];
                m++;
            }
        }
        return m;
    }
    int64_t *L = ws->a_line, *O = ws->a_orig, *W = ws->a_write;
    const int64_t n = repro_emit_members(
        cm, batch_meta, bases, counts, first_pos, grids,
        ex_addr, ex_write, ex_pos, offset_bits, (int64_t *)0, L, O, W);
    if (n < 0) return n;
    const int64_t bound = pos_bound > 1 ? pos_bound : 1;
    for (int64_t i = 0; i < n; i++) {
        ws->key_a[i] = (L[i] & set_mask) * bound + O[i];
    }
    int64_t *idx = repro_sort_indices(ws, n);
    int64_t m = 0;
    for (int64_t i = 0; i < n; i++) {
        const int64_t h = idx[i];
        const int64_t line = L[h];
        const int64_t set = line & set_mask;
        const int64_t write = W[h];
        if (m > 0 && out_set[m - 1] == set && out_line[m - 1] == line) {
            out_wc[m - 1] += write;
            out_last[m - 1] = O[h];
        } else {
            out_set[m] = set;
            out_line[m] = line;
            out_fw[m] = write;
            out_wc[m] = write;
            out_orig[m] = O[h];
            out_last[m] = O[h];
            m++;
        }
    }
    return m;
}

int64_t repro_chunk_heads(
    const int64_t *chunk_meta,
    int64_t chunk_index,
    const int64_t *batch_meta,
    const int64_t *bases,
    const int64_t *counts,
    const int64_t *first_pos,
    const int64_t *grids,
    const int64_t *ex_addr,
    const uint8_t *ex_write,
    const int64_t *ex_pos,
    int64_t offset_bits,
    int64_t set_mask,
    int64_t split_passes,
    int64_t cap,
    int64_t pos_cap,
    int64_t *scratch,
    int64_t scratch_len,
    int64_t *out_set, int64_t *out_line, int64_t *out_fw,
    int64_t *out_wc, int64_t *out_orig, int64_t *out_last)
{
    repro_ws ws;
    if (repro_ws_init(&ws, scratch, scratch_len, cap, pos_cap, 1)) return -1;
    /* split_passes < 0 selects the expansion-mode pipeline: member
     * emission plus maximal collapse, which must land on the same merged
     * heads -- the equivalence tests drive both entries. */
    if (split_passes < 0) {
        return repro_chunk_expand_pipeline(
            chunk_meta + chunk_index * 7, batch_meta, bases, counts, first_pos,
            grids, ex_addr, ex_write, ex_pos, offset_bits, set_mask,
            &ws, out_set, out_line, out_fw, out_wc, out_orig, out_last);
    }
    return repro_chunk_head_pipeline(
        chunk_meta + chunk_index * 7, batch_meta, bases, counts, first_pos,
        grids, ex_addr, ex_write, ex_pos, offset_bits, set_mask, split_passes,
        &ws, out_set, out_line, out_fw, out_wc, out_orig, out_last);
}

/* ------------------------------------------------------------------ *
 * Line hash for the LRU pre-resolution: open addressing with stamps, so
 * reuse needs no clearing -- the caller passes a process-monotone stamp
 * per probe generation, and only the first `hmask + 1` entries (a
 * power-of-two window sized to the current set segment) are ever probed,
 * keeping touched pages proportional to real segment sizes.  Returns the
 * slot of `line`, inserting it if absent; *found reports which.
 * ------------------------------------------------------------------ */
static int64_t repro_hash_slot(
    repro_ws *ws, int64_t line, int64_t stamp, int64_t hmask, int *found)
{
    uint64_t mix = (uint64_t)line * 0x9E3779B97F4A7C15ULL;
    int64_t slot = (int64_t)((mix ^ (mix >> 31)) & (uint64_t)hmask);
    for (;;) {
        if (ws->h_stamp[slot] != stamp) {
            ws->h_stamp[slot] = stamp;
            ws->h_line[slot] = line;
            *found = 0;
            return slot;
        }
        if (ws->h_line[slot] == line) {
            *found = 1;
            return slot;
        }
        slot = (slot + 1) & hmask;
    }
}

/* ------------------------------------------------------------------ *
 * Cross-chunk batch driver: head pipeline -> LRU stack-distance
 * pre-resolution -> event walk -> statistics and the program-ordered
 * forwarded stream, for every chunk of a packed arena in one call.
 *
 * stats_out (int64[13]): hits, read_hits, write_hits, read_misses,
 * write_misses, read_replacements, write_replacements, writebacks,
 * sequential_misses, last_miss_line, tick, forwarded count, final hash
 * stamp (feed back as the next call's stamp_base).  Returns the
 * forwarded count, or a negative error (-1 scratch too small, -2 grid
 * nesting too deep).
 * ------------------------------------------------------------------ */
int64_t repro_descriptor_batch(
    int64_t n_chunks,
    const int64_t *chunk_meta,
    const int64_t *batch_meta,
    const int64_t *bases,
    const int64_t *counts,
    const int64_t *first_pos,
    const int64_t *grids,
    const int64_t *ex_addr,
    const uint8_t *ex_write,
    const int64_t *ex_pos,
    int64_t offset_bits,
    int64_t n_sets,
    int64_t assoc,
    int32_t policy,
    uint64_t rng_seed,
    int64_t split_passes,
    int64_t head_fraction_millis,
    int64_t cap,
    int64_t pos_cap,
    int32_t init_tables,
    int64_t stamp_base,
    int64_t tick,
    int64_t last_miss_line,
    int64_t *tags,
    uint8_t *dirty,
    int64_t *recency,
    int64_t *aux,
    int64_t *occupancy,
    int64_t *evictions,
    int64_t *scratch,
    int64_t scratch_len,
    int64_t *stats_out,
    int64_t *fwd_lines,
    uint8_t *fwd_writes)
{
    repro_ws ws;
    if (repro_ws_init(&ws, scratch, scratch_len, cap, pos_cap, init_tables)) return -1;
    const int64_t set_mask = n_sets - 1;
    const uint64_t seed_term = rng_seed * 0x9E3779B97F4A7C15ULL;
    const int exact_stack = REPRO_POLICIES[policy].exact_stack;
    int64_t stamp = stamp_base;
    int64_t fwd = 0;
    int64_t hits = 0, read_hits = 0, write_hits = 0;
    int64_t read_misses = 0, write_misses = 0;
    int64_t read_repl = 0, write_repl = 0, writebacks = 0, seq = 0;
    for (int64_t c = 0; c < n_chunks; c++) {
        const int64_t *cm = chunk_meta + c * 7;
        const int64_t total = cm[0];
        /* Per-chunk mode: closed-form head collapse when the estimate says
         * runs really collapse, member expansion otherwise (same fraction
         * gate as the per-chunk Python path; both modes produce identical
         * merged heads, so the choice is throughput-only). */
        const int64_t estimate = repro_estimate_heads(
            cm, batch_meta, bases, counts, grids, offset_bits);
        int64_t n_heads;
        if (estimate * 1000 <= head_fraction_millis * total) {
            n_heads = repro_chunk_head_pipeline(
                cm, batch_meta, bases, counts, first_pos, grids,
                ex_addr, ex_write, ex_pos, offset_bits, set_mask, split_passes,
                &ws, ws.f_set, ws.f_line, ws.f_fw, ws.f_wc, ws.f_orig, ws.f_last);
        } else {
            n_heads = repro_chunk_expand_pipeline(
                cm, batch_meta, bases, counts, first_pos, grids,
                ex_addr, ex_write, ex_pos, offset_bits, set_mask,
                &ws, ws.f_set, ws.f_line, ws.f_fw, ws.f_wc, ws.f_orig, ws.f_last);
        }
        if (n_heads < 0) return n_heads;

        /* build the event list: exact-stack policies (LRU) fold guaranteed
         * re-touches into chains (see VectorCacheState._process_heads);
         * FIFO/random/PLRU/RRIP make every head an event */
        int64_t n_events = 0;
        if (exact_stack) {
            int64_t i = 0;
            while (i < n_heads) {
                const int64_t set = ws.f_set[i];
                int64_t j = i;
                while (j < n_heads && ws.f_set[j] == set) j++;
                int64_t hmask = 15;
                while (hmask + 1 < 2 * (j - i)) hmask = (hmask << 1) | 1;
                stamp++;
                int64_t distinct = 0;
                for (int64_t h = i; h < j; h++) {
                    int found;
                    repro_hash_slot(&ws, ws.f_line[h], stamp, hmask, &found);
                    if (!found) distinct++;
                }
                const int compliant = distinct <= assoc;
                stamp++;
                const int64_t ev_base = n_events;
                for (int64_t h = i; h < j; h++) {
                    const int64_t rank = h - i;
                    const int64_t line = ws.f_line[h];
                    const int64_t any_write = ws.f_wc[h] > 0;
                    int found;
                    const int64_t slot = repro_hash_slot(&ws, line, stamp, hmask, &found);
                    if (found && (compliant || rank - ws.h_rank[slot] <= assoc)) {
                        /* guaranteed re-touch: join the previous chain */
                        const int64_t ch = ws.h_chain[slot];
                        ws.chain_write[ch] |= any_write;
                        if (ws.f_last[h] > ws.chain_last[ch])
                            ws.chain_last[ch] = ws.f_last[h];
                        ws.h_rank[slot] = rank;
                        continue;
                    }
                    ws.h_rank[slot] = rank;
                    ws.h_chain[slot] = n_events;
                    ws.chain_write[n_events] = any_write;
                    ws.chain_last[n_events] = ws.f_last[h];
                    ws.ev_set[n_events] = set;
                    ws.ev_line[n_events] = line;
                    ws.ev_orig[n_events] = ws.f_orig[h];
                    ws.ev_fw[n_events] = ws.f_fw[h];
                    n_events++;
                }
                for (int64_t e = ev_base; e < n_events; e++) {
                    ws.ev_dirty[e] = ws.chain_write[e] ? 1 : 0;
                    ws.ev_age[e] = ws.chain_last[e] + tick;
                    ws.ev_retouch[e] = 0;  /* re-touches folded into chains */
                }
                i = j;
            }
        } else {
            for (int64_t h = 0; h < n_heads; h++) {
                ws.ev_set[h] = ws.f_set[h];
                ws.ev_line[h] = ws.f_line[h];
                ws.ev_dirty[h] = ws.f_wc[h] > 0;
                ws.ev_age[h] = ws.f_orig[h] + tick;
                ws.ev_orig[h] = ws.f_orig[h];
                ws.ev_fw[h] = ws.f_fw[h];
                ws.ev_retouch[h] = ws.f_last[h] > ws.f_orig[h];
            }
            n_events = n_heads;
        }
        for (int64_t e = 0; e < n_events; e++) {
            ws.ev_hit[e] = 0;
            ws.ev_victim[e] = -1;
            ws.ev_vwb[e] = 0;
        }
        repro_events_core(
            n_events, ws.ev_set, ws.ev_line, ws.ev_dirty, ws.ev_age, ws.ev_retouch,
            ws.ev_hit, ws.ev_victim, ws.ev_vwb, assoc, policy, seed_term,
            tags, dirty, recency, aux, occupancy, evictions);
        tick += cm[1];

        /* statistics (mirrors VectorCacheState._process_heads step 5) */
        int64_t head_write = 0, sum_wc = 0;
        for (int64_t h = 0; h < n_heads; h++) {
            head_write += ws.f_fw[h] ? 1 : 0;
            sum_wc += ws.f_wc[h];
        }
        int64_t ev_fw_count = 0, n_misses = 0, w_miss = 0, ev_w_hits = 0;
        for (int64_t e = 0; e < n_events; e++) {
            if (ws.ev_fw[e]) ev_fw_count++;
            if (!ws.ev_hit[e]) {
                n_misses++;
                if (ws.ev_fw[e]) w_miss++;
                if (ws.ev_victim[e] >= 0) {
                    if (ws.ev_fw[e]) write_repl++;
                    else read_repl++;
                }
                if (ws.ev_vwb[e]) writebacks++;
            } else if (ws.ev_fw[e]) {
                ev_w_hits++;
            }
        }
        const int64_t chunk_hits = total - n_misses;
        const int64_t w_hits = (sum_wc - head_write) + ev_w_hits
            + (head_write - ev_fw_count);
        hits += chunk_hits;
        write_hits += w_hits;
        read_hits += chunk_hits - w_hits;
        write_misses += w_miss;
        read_misses += n_misses - w_miss;

        /* forwarded stream and sequential misses, in trace order */
        if (n_misses) {
            int64_t nm = 0;
            for (int64_t e = 0; e < n_events; e++) {
                if (!ws.ev_hit[e]) {
                    ws.key_a[nm] = ws.ev_orig[e];
                    ws.cluster_of[nm] = e;
                    nm++;
                }
            }
            int64_t *ord = repro_sort_indices(&ws, nm);
            for (int64_t t = 0; t < nm; t++) {
                const int64_t e = ws.cluster_of[ord[t]];
                const int64_t line = ws.ev_line[e];
                if (line == last_miss_line + 1) seq++;
                last_miss_line = line;
                fwd_lines[fwd] = line;
                fwd_writes[fwd] = 0;
                fwd++;
                if (ws.ev_vwb[e]) {
                    fwd_lines[fwd] = ws.ev_victim[e];
                    fwd_writes[fwd] = 1;
                    fwd++;
                }
            }
        }
    }
    stats_out[0] = hits;
    stats_out[1] = read_hits;
    stats_out[2] = write_hits;
    stats_out[3] = read_misses;
    stats_out[4] = write_misses;
    stats_out[5] = read_repl;
    stats_out[6] = write_repl;
    stats_out[7] = writebacks;
    stats_out[8] = seq;
    stats_out[9] = last_miss_line;
    stats_out[10] = tick;
    stats_out[11] = fwd;
    stats_out[12] = stamp;
    return fwd;
}
"""


def _extra_cflags() -> list:
    """Extra compiler flags from ``REPRO_SIM_NATIVE_CFLAGS`` (whitespace-split)."""
    return os.environ.get("REPRO_SIM_NATIVE_CFLAGS", "").split()


def _library_path() -> str:
    payload = _SOURCE + "\0" + " ".join(_extra_cflags())
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    tag = f"repro-sim-{digest}-py{sys.version_info[0]}{sys.version_info[1]}"
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        cache_root = os.path.join(xdg, "repro")
    else:
        uid = os.getuid() if hasattr(os, "getuid") else 0
        cache_root = os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")
    return os.path.join(cache_root, f"{tag}.so")


#: Process-wide compile memo: ``None`` means "not attempted yet"; ``(path,)``
#: holds the outcome (``path`` is ``None`` after a failed compile, so the
#: compiler is invoked at most once per interpreter, never per call).
_compile_memo: Optional[tuple] = None


def _compile() -> Optional[str]:
    global _compile_memo
    if _compile_memo is not None:
        return _compile_memo[0]
    _compile_memo = (None,)
    path = _library_path()
    if os.path.exists(path):
        _compile_memo = (path,)
        return path
    compiler = os.environ.get("CC", "cc")
    directory = os.path.dirname(path)
    source_path = None
    try:
        os.makedirs(directory, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            "w", suffix=".c", dir=directory, delete=False
        ) as handle:
            handle.write(_SOURCE)
            source_path = handle.name
        scratch = source_path + ".so"
        command = [compiler, "-O2", *_extra_cflags(), "-fPIC", "-shared"]
        command += ["-o", scratch, source_path]
        result = subprocess.run(command, capture_output=True, timeout=60)
        if result.returncode != 0:
            return None
        os.replace(scratch, path)  # atomic: concurrent builders agree on content
        _compile_memo = (path,)
        return path
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        if source_path is not None:
            try:
                os.unlink(source_path)
            except OSError:
                pass


_functions: Optional[Dict[str, object]] = None


def _bind(library: ctypes.CDLL) -> Dict[str, object]:
    pointer = np.ctypeslib.ndpointer
    p64 = pointer(np.int64, flags="C_CONTIGUOUS")
    pbool = pointer(np.bool_, flags="C_CONTIGUOUS")

    run_events = library.repro_run_events
    run_events.restype = None
    run_events.argtypes = [
        ctypes.c_int64,
        p64, p64, pbool, p64, pbool,  # event sets / lines / dirty / age / retouch
        pbool, p64, pbool,  # hit / victim line / victim writeback
        ctypes.c_int64,  # associativity
        ctypes.c_int32,  # policy
        ctypes.c_uint64,  # rng seed
        p64, pbool, p64, p64, p64, p64,  # tags / dirty / recency / aux / occupancy / evictions
    ]

    chunk_heads = library.repro_chunk_heads
    chunk_heads.restype = ctypes.c_int64
    chunk_heads.argtypes = [
        p64, ctypes.c_int64,  # chunk_meta, chunk index
        p64, p64, p64, p64, p64,  # batch_meta, bases, counts, first_pos, grids
        p64, pbool, p64,  # explicit addresses / writes / positions
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,  # offset bits, set mask, split passes
        ctypes.c_int64, ctypes.c_int64,  # cap, position-table capacity
        p64, ctypes.c_int64,  # scratch, scratch length
        p64, p64, p64, p64, p64, p64,  # out: set, line, first_write, write_counts, orig, last
    ]

    descriptor_batch = library.repro_descriptor_batch
    descriptor_batch.restype = ctypes.c_int64
    descriptor_batch.argtypes = [
        ctypes.c_int64,  # n_chunks
        p64, p64, p64, p64, p64, p64,  # chunk_meta, batch_meta, bases, counts, first_pos, grids
        p64, pbool, p64,  # explicit addresses / writes / positions
        ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,  # offset bits, n_sets, associativity
        ctypes.c_int32, ctypes.c_uint64, ctypes.c_int64,  # policy, rng seed, split passes
        ctypes.c_int64,  # head-fraction gate (thousandths)
        ctypes.c_int64, ctypes.c_int64,  # cap, position-table capacity
        ctypes.c_int32, ctypes.c_int64,  # init tables flag, stamp base
        ctypes.c_int64, ctypes.c_int64,  # tick, last_miss_line
        p64, pbool, p64, p64, p64, p64,  # tags / dirty / recency / aux / occupancy / evictions
        p64, ctypes.c_int64,  # scratch, scratch length
        p64,  # stats_out
        p64, pbool,  # forwarded lines / writes
    ]

    scratch_len = library.repro_scratch_len
    scratch_len.restype = ctypes.c_int64
    scratch_len.argtypes = [ctypes.c_int64, ctypes.c_int64]

    return {
        "run_events": run_events,
        "chunk_heads": chunk_heads,
        "descriptor_batch": descriptor_batch,
        "scratch_len": scratch_len,
    }


def _probe(path: str) -> bool:
    """One-time subprocess sanity check of the compiled library.

    A fresh interpreter loads the library and calls its simplest entry
    point, so a binary that would crash or fail to resolve takes down the
    probe child instead of the first simulation worker.  Success is
    recorded in a ``<library>.ok`` stamp next to the binary, so the probe
    runs once per compiled artefact, not once per process.  The
    ``native_probe`` fault-injection site simulates a probe failure.
    """
    if faults.should_inject("native_probe"):
        return False
    stamp = path + ".ok"
    if os.path.exists(stamp):
        return True
    code = (
        "import ctypes\n"
        f"library = ctypes.CDLL({path!r})\n"
        "library.repro_scratch_len.restype = ctypes.c_int64\n"
        "library.repro_scratch_len.argtypes = [ctypes.c_int64, ctypes.c_int64]\n"
        "assert library.repro_scratch_len(1, 1) > 0\n"
    )
    try:
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, timeout=60
        )
        if result.returncode != 0:
            return False
        with open(stamp, "w", encoding="utf-8"):
            pass
        return True
    except (OSError, subprocess.SubprocessError):
        return False


def demote(reason: str) -> None:
    """Demote this process to the NumPy fallback paths (with a warning).

    Called when a bound kernel misbehaves at runtime; every subsequent
    ``*_kernel()`` accessor returns ``None``, so the engine's pure-NumPy
    implementations — bit-identical by construction — take over for the
    rest of the process.
    """
    global _functions
    previously_active = bool(_functions)
    _functions = {}
    if previously_active:
        warnings.warn(NativeKernelDemotionWarning(reason), stacklevel=3)


def _reset_for_tests(remove_stamp: bool = False) -> None:
    """Forget load/compile state so tests can exercise probe and demotion."""
    global _functions, _compile_memo
    _functions = None
    _compile_memo = None
    if remove_stamp:
        try:
            os.unlink(_library_path() + ".ok")
        except OSError:
            pass


def _load() -> Dict[str, object]:
    """Compile (once), probe, load and bind the kernels; cached per process."""
    global _functions
    if _functions is not None:
        return _functions
    _functions = {}
    if os.environ.get("REPRO_SIM_NATIVE", "1") == "0":
        return _functions
    path = _compile()
    if path is None:
        return _functions
    if not _probe(path):
        warnings.warn(
            NativeKernelDemotionWarning(
                f"library probe failed for {path}; using NumPy fallback"
            ),
            stacklevel=3,
        )
        return _functions
    try:
        library = ctypes.CDLL(path)
        _functions = _bind(library)
    except (OSError, AttributeError):
        _functions = {}
    return _functions


def event_kernel():
    """The compiled event-chain kernel, or ``None`` when unavailable."""
    return _load().get("run_events")


def chunk_heads_kernel():
    """The compiled descriptor head pipeline, or ``None`` when unavailable."""
    return _load().get("chunk_heads")


def descriptor_batch_kernel():
    """The compiled cross-chunk batch driver, or ``None`` when unavailable."""
    return _load().get("descriptor_batch")


def scratch_len(cap: int, pos_cap: int) -> Optional[int]:
    """int64 scratch words the kernels need for per-chunk capacity ``cap``
    and position-table capacity ``pos_cap``."""
    function = _load().get("scratch_len")
    if function is None:
        return None
    return int(function(cap, pos_cap))

"""Unified replacement-policy registry shared by every simulation engine.

One :class:`PolicySpec` per policy defines everything the four execution
layers need to agree on:

* the **wire id** — the stable integer the compiled C kernels dispatch on
  (``fifo=0, lru=1, random=2, plru=3, rrip=4``; ids are append-only, they
  join the native ABI and the memoization contract);
* the **per-set state** the policy carries beyond the shared tag store —
  recency ticks (all policies write the insertion tick; LRU also touches it
  on hits), per-set eviction ordinals (consumed only by the replayable
  random victim stream), and an optional ``aux`` plane: one int64 of
  tree-PLRU node bits per set, or one 2-bit RRIP re-reference counter per
  way (stored in an int64 each);
* the **touch/insert rule** (:meth:`PolicySpec.touch` and the vectorized
  :meth:`PolicySpec.vector_touch`) updating that state on hits and fills;
* the **victim rule** (:meth:`PolicySpec.victim_way` /
  :meth:`PolicySpec.vector_victims`) selecting the way to evict from a
  full set.

The scalar hooks run against a duck-typed state (``associativity``,
``rng_seed``, ``recency[set][way]``, ``aux``, ``evictions[set]``), so the
same rule drives the reference engine's pure-Python
:class:`ReferenceCacheState` *and* the vectorized engine's NumPy arrays
(:class:`repro.sim.engine.VectorCacheState` — its scalar event walk and
chain tails).  The vectorized hooks operate on whole lanes of distinct
sets at once (rank rounds).  The compiled kernels in
:mod:`repro.sim._native` hard-code the same rules behind a policy-traits
dispatch table keyed on the wire id; the reference-loop implementations
here are the equivalence oracle, and the hypothesis suites in
``tests/test_policies.py`` pin all five paths bit-identical.

Policies
--------
``lru``
    Evicts the minimum recency tick; hits re-touch the tick.  The only
    policy with *exact* stack gating (``exact_stack``): a re-touch within
    ``associativity`` set events is a guaranteed hit, which the chunk
    engines exploit to pre-resolve re-touch chains.
``fifo``
    Evicts the minimum insertion tick; hits leave state untouched.
``random``
    Draws a rank from the replayable counter-based victim stream
    (:func:`victim_rank`) keyed on ``(rng_seed, set, eviction ordinal)``
    and evicts the rank-th most recently *inserted* line.
``plru``
    Tree-PLRU: each set keeps one bit per internal node of a binary tree
    over ``next_pow2(associativity)`` leaves, packed into a single int64
    (node ``i``'s children are ``2i+1``/``2i+2``; bit ``1`` points the
    victim walk right).  Touching way ``w`` flips every node on its
    root-to-leaf path to point *away* from ``w``; the victim walk follows
    the bits, forced left whenever the right half holds no valid way
    (non-power-of-two associativities, e.g. the ARM L1I's 3 ways).
``rrip``
    SRRIP with 2-bit re-reference prediction values: lines insert at RRPV
    ``2``, hits promote to ``0``, and the victim is the lowest-index way
    at RRPV ``3`` — when none is, every way of the set ages by the same
    increment until one is (computed in closed form as ``3 - max(rrpv)``).

Adding a policy is one registry entry: subclass :class:`PolicySpec`,
assign the next wire id, implement the four hooks, extend the C kernel's
dispatch table, and the config validation, plumbing, equivalence suites
and benchmark matrix pick it up by name.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

#: Mixing constants of the replayable random-replacement victim stream
#: (SplitMix64 finalizer over a product-combined ``(seed, set, ordinal)``
#: key).  The C event kernel in :mod:`repro.sim._native` hard-codes the same
#: constants; change them only together.
_MASK64 = (1 << 64) - 1
_MIX_SEED = 0x9E3779B97F4A7C15
_MIX_SET = 0xC2B2AE3D27D4EB4F
_MIX_ORDINAL = 0x165667B19E3779F9
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB

#: SRRIP re-reference prediction values (2-bit): the distant-future value
#: evicted at, the long-interval value inserted at, and the near-immediate
#: value hits promote to.  The C kernels hard-code the same constants.
RRIP_MAX = 3
RRIP_INSERT = 2
RRIP_HIT = 0


def victim_rank(rng_seed: int, set_index: int, ordinal: int, associativity: int) -> int:
    """Victim rank of the ``ordinal``-th eviction in ``set_index``.

    The rank indexes the set's resident lines by descending insertion tick:
    rank 0 evicts the most recently inserted line (the head of the reference
    engine's per-set list).  The stream is a pure function of its key, so
    every engine — and every schedule inside the vectorized engine — draws
    identical victims for the same seed without sharing RNG state.
    """
    key = (
        (rng_seed & _MASK64) * _MIX_SEED
        ^ set_index * _MIX_SET
        ^ ordinal * _MIX_ORDINAL
    ) & _MASK64
    z = ((key ^ (key >> 30)) * _MIX_A) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_B) & _MASK64
    z ^= z >> 31
    return z % associativity


def _victim_ranks(
    rng_seed: int, set_indices: np.ndarray, ordinals: np.ndarray, associativity: int
) -> np.ndarray:
    """Vectorized :func:`victim_rank` over parallel set/ordinal arrays."""
    key = (
        np.uint64((rng_seed & _MASK64) * _MIX_SEED & _MASK64)
        ^ set_indices.astype(np.uint64) * np.uint64(_MIX_SET)
        ^ ordinals.astype(np.uint64) * np.uint64(_MIX_ORDINAL)
    )
    z = (key ^ (key >> np.uint64(30))) * np.uint64(_MIX_A)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_B)
    z ^= z >> np.uint64(31)
    return (z % np.uint64(associativity)).astype(np.int64)


def _tree_leaves(associativity: int) -> int:
    """Leaf count of the PLRU tree: the next power of two >= associativity."""
    return 1 << (associativity - 1).bit_length() if associativity > 1 else 1


def _plru_touch_bits(bits: int, way: int, associativity: int) -> int:
    """Walk the root-to-leaf path of ``way``, pointing every node away from it."""
    size = _tree_leaves(associativity)
    node = 0
    lo = 0
    while size > 1:
        half = size >> 1
        if way < lo + half:
            bits |= 1 << node  # touched left; victim walk goes right
            node = 2 * node + 1
        else:
            bits &= ~(1 << node)
            node = 2 * node + 2
            lo += half
        size = half
    return bits


def _plru_victim_way(bits: int, associativity: int) -> int:
    """Follow the tree bits to the victim leaf, forced left over empty halves."""
    size = _tree_leaves(associativity)
    node = 0
    lo = 0
    while size > 1:
        half = size >> 1
        direction = (bits >> node) & 1
        if direction and lo + half >= associativity:
            direction = 0  # the right half holds no valid way
        node = 2 * node + 1 + direction
        if direction:
            lo += half
        size = half
    return lo


class PolicySpec:
    """Behaviour of one replacement policy across every execution layer.

    Subclasses override the class attributes and the four hooks; one frozen
    instance per policy lives in :data:`POLICIES`.  ``state`` arguments are
    duck-typed: scalar hooks need ``associativity``, ``rng_seed``,
    ``recency[set][way]`` (read/write), ``evictions[set]`` and — for
    policies with ``aux_kind`` — ``aux``; vectorized hooks additionally
    assume NumPy arrays (``recency``/``aux`` 2-D or 1-D, lanes of distinct
    sets).
    """

    #: Registry name (also the config-facing string).
    name: str = ""
    #: Stable integer the C kernels dispatch on (append-only ABI).
    wire_id: int = -1
    #: Whether a re-touch within ``associativity`` set events is a
    #: *guaranteed* hit — exact LRU stack gating.  Enables the chunk
    #: engines' re-touch chain pre-resolution; policies without it degrade
    #: gracefully to plain chain/event evaluation.
    exact_stack: bool = False
    #: Whether hits re-touch the recency tick (LRU only; everything else
    #: records insertion order only).
    touch_on_hit: bool = False
    #: Whether victims consume the per-set eviction ordinals of the
    #: replayable victim stream (random only) — and hence whether results
    #: depend on ``rng_seed``.
    uses_victim_stream: bool = False
    #: Extra per-set state plane: ``None``, ``"set"`` (one int64 per set,
    #: PLRU tree bits) or ``"way"`` (one int64 per way, RRIP counters).
    aux_kind: Optional[str] = None
    #: Associativity ceiling, when the state packing imposes one.
    max_associativity: Optional[int] = None

    # -- geometry / state construction --------------------------------------
    def validate_geometry(self, associativity: int) -> None:
        """Raise ``ValueError`` when the policy cannot represent the geometry."""
        limit = self.max_associativity
        if limit is not None and associativity > limit:
            raise ValueError(
                f"{self.name} replacement supports at most {limit} ways, "
                f"got {associativity}"
            )

    def new_aux_arrays(self, sets: int, associativity: int) -> np.ndarray:
        """Fresh NumPy aux plane (a 1-element dummy when the policy has none,
        so the native-kernel ABI stays uniform)."""
        if self.aux_kind == "set":
            return np.zeros(sets, dtype=np.int64)
        if self.aux_kind == "way":
            return np.zeros((sets, associativity), dtype=np.int64)
        return np.zeros(1, dtype=np.int64)

    def new_aux_lists(self, sets: int, associativity: int):
        """Fresh pure-Python aux plane for the reference engine."""
        if self.aux_kind == "set":
            return [0] * sets
        if self.aux_kind == "way":
            return [[0] * associativity for _ in range(sets)]
        return None

    # -- scalar rules --------------------------------------------------------
    def victim_way(self, state, set_index: int) -> int:
        """Way to evict from the full set ``set_index`` (may consume state)."""
        raise NotImplementedError

    def touch(
        self, state, set_index: int, way: int, tick: int, hit: bool,
        retouch: bool = False,
    ) -> None:
        """Update policy state after an access to ``way`` (hit or fill).

        ``retouch`` marks an access standing for a collapsed run of
        consecutive same-line accesses: the later members are guaranteed
        hits, so state must end as if the line was hit right after the
        fill (RRIP leaves the line promoted instead of at the insertion
        RRPV; the other policies' hit rules are no-ops or idempotent with
        the fill touch, so they ignore the flag).
        """
        raise NotImplementedError

    # -- vectorized rules (lanes of distinct sets) ---------------------------
    def vector_victims(
        self, state, sel: np.ndarray, evicting: np.ndarray
    ) -> np.ndarray:
        """Victim ways per lane; state mutations apply to evicting lanes only.

        Values of non-evicting lanes are unspecified (the caller masks them).
        """
        raise NotImplementedError

    def vector_touch(
        self,
        state,
        sel: np.ndarray,
        way: np.ndarray,
        hit: np.ndarray,
        miss: np.ndarray,
        ticks: np.ndarray,
        retouch: np.ndarray,
    ) -> None:
        """Vectorized :meth:`touch` over one rank round."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"PolicySpec({self.name!r}, wire_id={self.wire_id})"


class _LruSpec(PolicySpec):
    name = "lru"
    wire_id = 1
    exact_stack = True
    touch_on_hit = True

    def victim_way(self, state, set_index):
        row = state.recency[set_index]
        best = 0
        for way in range(1, state.associativity):
            if row[way] < row[best]:
                best = way
        return best

    def touch(self, state, set_index, way, tick, hit, retouch=False):
        state.recency[set_index][way] = tick

    def vector_victims(self, state, sel, evicting):
        return state.recency[sel].argmin(axis=1)

    def vector_touch(self, state, sel, way, hit, miss, ticks, retouch):
        state.recency[sel, way] = ticks


class _FifoSpec(PolicySpec):
    name = "fifo"
    wire_id = 0

    def victim_way(self, state, set_index):
        row = state.recency[set_index]
        best = 0
        for way in range(1, state.associativity):
            if row[way] < row[best]:
                best = way
        return best

    def touch(self, state, set_index, way, tick, hit, retouch=False):
        if not hit:
            state.recency[set_index][way] = tick

    def vector_victims(self, state, sel, evicting):
        return state.recency[sel].argmin(axis=1)

    def vector_touch(self, state, sel, way, hit, miss, ticks, retouch):
        recency = state.recency
        recency[sel, way] = np.where(miss, ticks, recency[sel, way])


class _RandomSpec(PolicySpec):
    name = "random"
    wire_id = 2
    uses_victim_stream = True

    def victim_way(self, state, set_index):
        ordinal = int(state.evictions[set_index])
        state.evictions[set_index] = ordinal + 1
        assoc = state.associativity
        rank = victim_rank(state.rng_seed, set_index, ordinal, assoc)
        row = state.recency[set_index]
        # Rank 0 is the most recently inserted line; insertion ticks are
        # unique within a set, so the descending-tick order is total.
        by_tick = sorted(range(assoc), key=lambda w: -int(row[w]))
        return by_tick[rank]

    def touch(self, state, set_index, way, tick, hit, retouch=False):
        if not hit:
            state.recency[set_index][way] = tick

    def vector_victims(self, state, sel, evicting):
        # Replayable victim stream: each lane is a distinct set, so drawing
        # with the set's current eviction ordinal — and advancing only the
        # ordinals of lanes that actually evict — consumes the per-set
        # stream exactly as the scalar paths do.
        assoc = state.associativity
        ranks = _victim_ranks(state.rng_seed, sel, state.evictions[sel], assoc)
        by_tick = np.argsort(state.recency[sel], axis=1)
        lanes = np.arange(sel.size)
        victims = by_tick[lanes, assoc - 1 - ranks]
        state.evictions[sel[evicting]] += 1
        return victims

    def vector_touch(self, state, sel, way, hit, miss, ticks, retouch):
        recency = state.recency
        recency[sel, way] = np.where(miss, ticks, recency[sel, way])


class _PlruSpec(PolicySpec):
    name = "plru"
    wire_id = 3
    aux_kind = "set"
    #: One int64 packs the bits of a tree over <= 64 leaves (63 nodes).
    max_associativity = 64

    def victim_way(self, state, set_index):
        return _plru_victim_way(int(state.aux[set_index]), state.associativity)

    def touch(self, state, set_index, way, tick, hit, retouch=False):
        if not hit:
            state.recency[set_index][way] = tick
        state.aux[set_index] = _plru_touch_bits(
            int(state.aux[set_index]), way, state.associativity
        )

    def vector_victims(self, state, sel, evicting):
        assoc = state.associativity
        bits = state.aux[sel]
        size = _tree_leaves(assoc)
        node = np.zeros(sel.size, dtype=np.int64)
        lo = np.zeros(sel.size, dtype=np.int64)
        one = np.int64(1)
        while size > 1:
            half = size >> 1
            direction = (bits >> node) & one
            if lo.size and half:
                direction = np.where(lo + half >= assoc, 0, direction)
            node = 2 * node + 1 + direction
            lo += direction * half
            size = half
        return lo

    def vector_touch(self, state, sel, way, hit, miss, ticks, retouch):
        recency = state.recency
        recency[sel, way] = np.where(miss, ticks, recency[sel, way])
        assoc = state.associativity
        bits = state.aux[sel]
        size = _tree_leaves(assoc)
        node = np.zeros(sel.size, dtype=np.int64)
        lo = np.zeros(sel.size, dtype=np.int64)
        one = np.int64(1)
        while size > 1:
            half = size >> 1
            go_right = way >= lo + half
            mask = one << node
            bits = np.where(go_right, bits & ~mask, bits | mask)
            node = 2 * node + 1 + go_right
            lo += go_right * half
            size = half
        state.aux[sel] = bits


class _RripSpec(PolicySpec):
    name = "rrip"
    wire_id = 4
    aux_kind = "way"

    def victim_way(self, state, set_index):
        row = state.aux[set_index]
        assoc = state.associativity
        highest = int(row[0])
        for way in range(1, assoc):
            value = int(row[way])
            if value > highest:
                highest = value
        if highest < RRIP_MAX:
            increment = RRIP_MAX - highest
            for way in range(assoc):
                row[way] += increment
        for way in range(assoc):
            if row[way] == RRIP_MAX:
                return way
        raise AssertionError("unreachable: aging leaves a way at RRIP_MAX")

    def touch(self, state, set_index, way, tick, hit, retouch=False):
        if hit:
            state.aux[set_index][way] = RRIP_HIT
        else:
            state.recency[set_index][way] = tick
            # A collapsed run's later members are guaranteed hits right
            # after the fill: the line ends promoted, not at insertion RRPV.
            state.aux[set_index][way] = RRIP_HIT if retouch else RRIP_INSERT

    def vector_victims(self, state, sel, evicting):
        rows = state.aux[sel]  # fancy indexing copies; scatter aging back
        highest = rows.max(axis=1)
        need = np.where(evicting & (highest < RRIP_MAX), RRIP_MAX - highest, 0)
        rows = rows + need[:, None]
        if evicting.any():
            state.aux[sel[evicting]] = rows[evicting]
        return (rows == RRIP_MAX).argmax(axis=1)

    def vector_touch(self, state, sel, way, hit, miss, ticks, retouch):
        recency = state.recency
        recency[sel, way] = np.where(miss, ticks, recency[sel, way])
        aux = state.aux
        aux[sel, way] = np.where(hit | retouch, RRIP_HIT, RRIP_INSERT)


#: The registry: one immutable spec per policy, keyed by name.  Iteration
#: order is the wire-id order, which the CLI/choice surfaces reuse.
POLICIES: Dict[str, PolicySpec] = {
    spec.name: spec
    for spec in sorted(
        (_LruSpec(), _FifoSpec(), _RandomSpec(), _PlruSpec(), _RripSpec()),
        key=lambda spec: spec.wire_id,
    )
}

#: Registry names in wire-id order (``fifo, lru, random, plru, rrip``).
POLICY_NAMES: Tuple[str, ...] = tuple(POLICIES)


class ReplacementPolicy:
    """Replacement policy identifiers (mirrors the registry names)."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"
    PLRU = "plru"
    RRIP = "rrip"

    ALL = (LRU, FIFO, RANDOM, PLRU, RRIP)


def get_policy(name: str) -> PolicySpec:
    """The :class:`PolicySpec` registered under ``name`` (raises ``ValueError``)."""
    spec = POLICIES.get(name)
    if spec is None:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of {POLICY_NAMES}"
        )
    return spec


def policy_wire_id(name: str) -> int:
    """The stable kernel-facing integer id of policy ``name``."""
    return get_policy(name).wire_id


class ReferenceCacheState:
    """Pure-Python way-slot state of the reference engine.

    The reference loop in :mod:`repro.sim.cache` drives this through the
    registry's scalar hooks: parallel per-set lists indexed by way (``-1``
    tags mark empty ways; ways fill in order, so ``occupancy[set]`` ways
    are exactly the valid ones), a monotone access tick, and the policy's
    aux plane.  It is the equivalence oracle for every fast path.
    """

    __slots__ = (
        "associativity",
        "rng_seed",
        "tags",
        "dirty",
        "recency",
        "occupancy",
        "evictions",
        "aux",
        "tick",
    )

    def __init__(self, spec: PolicySpec, sets: int, associativity: int, rng_seed: int):
        self.associativity = associativity
        self.rng_seed = rng_seed
        self.tags: List[List[int]] = [[-1] * associativity for _ in range(sets)]
        self.dirty: List[List[int]] = [[0] * associativity for _ in range(sets)]
        self.recency: List[List[int]] = [[0] * associativity for _ in range(sets)]
        self.occupancy: List[int] = [0] * sets
        self.evictions: List[int] = [0] * sets
        self.aux = spec.new_aux_lists(sets, associativity)
        self.tick = 1

    def resident_lines(self) -> int:
        return sum(self.occupancy)

    def contains_line(self, line: int, set_index: int) -> bool:
        row = self.tags[set_index]
        return any(row[way] == line for way in range(self.occupancy[set_index]))

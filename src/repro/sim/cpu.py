"""Atomic CPU model: executes abstract instruction programs without timing.

The model mirrors gem5's ``AtomicSimpleCPU``: every instruction completes in a
single step and every memory access is a single blocking transaction.  The
observable output is therefore purely quantitative — instruction counts per
category and the cache behaviour of the access stream — which is exactly the
information the paper's score predictors consume.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from repro.codegen.isa import InstructionCategory as IC
from repro.codegen.program import Loop, Program
from repro.reliability import current_deadline
from repro.sim.engine import TRACE_DESCRIPTOR, resolve_trace_mode
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.stats import SimulationStats


@dataclass(frozen=True)
class TraceOptions:
    """Controls the size and representation of the simulated memory trace.

    ``max_accesses`` bounds the total number of simulated data references;
    ``sample_fraction`` keeps a systematic random sample of trace chunks.
    Both keep large kernels tractable; instruction counts stay exact because
    they are computed analytically, and the predictor features are ratios, so
    sampling the trace does not bias them.

    ``engine`` selects the cache-simulation engine (``"reference"`` or
    ``"vectorized"``, see :mod:`repro.sim.engine`); ``None`` uses the
    process-wide default.  ``trace`` selects the trace representation:
    ``"descriptor"`` streams compressed affine run descriptors from
    :meth:`~repro.codegen.program.Program.memory_trace_descriptors` (the
    default for the vectorized engine — it skips address materialisation
    entirely), ``"expanded"`` materialises address chunks (the reference
    engine's default); ``REPRO_SIM_TRACE`` overrides the default.  All
    engine/trace combinations produce bit-identical statistics, so the
    choices only affect host throughput and peak trace memory.
    ``chunk_iterations`` trades a few MB of trace buffering for
    vectorization width: larger chunks amortize the fixed per-chunk cost of
    the vectorized engine.  Statistics are chunking-invariant when
    ``sample_fraction`` is 1; sampled traces keep or drop whole chunks, so
    pin ``chunk_iterations`` explicitly when a sampled run must stay
    reproducible across releases.

    ``seed`` drives trace *sampling* only.  ``rng_seed`` seeds the
    replayable random-replacement victim stream of the simulated caches
    (see :mod:`repro.sim.engine`); it is ignored by hierarchies without a
    random-replacement level, and the memoization key normalises it away in
    that case.  Runs with equal seeds are bit-identical across engines,
    trace representations and chunk schedules; runs with different seeds
    draw independent victim sequences.
    """

    max_accesses: Optional[int] = None
    sample_fraction: float = 1.0
    chunk_iterations: int = 1 << 16
    seed: int = 0
    rng_seed: int = 0
    engine: Optional[str] = None
    trace: Optional[str] = None


def run_data_trace(
    hierarchy: CacheHierarchy, program: Program, options: TraceOptions
) -> int:
    """Drive ``program``'s data trace through ``hierarchy``; returns accesses.

    Honours ``options.trace``, defaulting by the hierarchy's L1D engine:
    descriptor chunks feed
    :meth:`CacheHierarchy.access_data_descriptor_stream` — grouped into
    packed arenas for the native batch kernel when it is available,
    per-chunk otherwise — without ever materialising the address stream;
    expanded chunks go through :meth:`CacheHierarchy.access_data_batch`.
    """
    mode = resolve_trace_mode(options.trace, hierarchy.l1d.engine)
    # Cooperative deadline: polled once per trace chunk, so a hung or
    # pathological candidate overshoots its budget by at most one chunk of
    # work instead of blocking the caller indefinitely.  With no ambient
    # deadline installed the check costs one comparison per chunk.
    deadline = current_deadline()
    total = 0
    if mode == TRACE_DESCRIPTOR:
        chunks = program.memory_trace_descriptors(
            chunk_iterations=options.chunk_iterations,
            max_accesses=options.max_accesses,
            sample_fraction=options.sample_fraction,
            seed=options.seed,
        )

        def counted():
            nonlocal total
            for chunk in chunks:
                if deadline is not None:
                    deadline.check("descriptor trace walk")
                total += chunk.total
                yield chunk

        # Cross-chunk arena batching happens inside the stream walk: groups
        # of head-friendly chunks become one native call per cache level
        # (``REPRO_SIM_ARENA=0`` or a missing kernel restores per-chunk
        # dispatch; statistics are identical either way).
        hierarchy.access_data_descriptor_stream(counted())
    else:
        for addresses, is_write in program.memory_trace(
            chunk_iterations=options.chunk_iterations,
            max_accesses=options.max_accesses,
            sample_fraction=options.sample_fraction,
            seed=options.seed,
        ):
            if deadline is not None:
                deadline.check("expanded trace walk")
            hierarchy.access_data_batch(addresses, is_write)
            total += int(addresses.size)
    return total


class AtomicSimpleCPU:
    """Single-core atomic CPU attached to a cache hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy, name: str = "cpu"):
        self.hierarchy = hierarchy
        self.name = name

    def run(self, program: Program, options: TraceOptions = TraceOptions()) -> SimulationStats:
        """Execute ``program`` and return gem5-style statistics."""
        start = time.perf_counter()
        counts = program.instruction_counts()
        trace_accesses = run_data_trace(self.hierarchy, program, options)
        self._model_instruction_fetches(program, counts)
        elapsed = time.perf_counter() - start
        return self.assemble_stats(counts, trace_accesses, elapsed)

    def assemble_stats(
        self, counts: dict, trace_accesses: int, host_seconds: float
    ) -> SimulationStats:
        """Build gem5-style statistics from ``counts`` + current cache state.

        Split out of :meth:`run` so batched execution paths that drive the
        trace themselves (e.g. the candidate-batch scheduler's shared-arena
        sweep) assemble identical statistics from the same code.  The
        hierarchy's counters must reflect exactly one candidate's trace
        (plus :meth:`_model_instruction_fetches`) when this is called.
        """
        stats = SimulationStats()
        sim_group = stats.group("sim")
        sim_group.set("host_seconds", host_seconds)
        sim_group.set("trace_accesses", trace_accesses)

        cpu = stats.group(self.name)
        total = 0.0
        for category, value in counts.items():
            cpu.set(f"num_{category}", value)
            total += value
        cpu.set("num_insts", total)
        cpu.set("num_loads", counts[IC.LOAD] + counts[IC.VEC_LOAD])
        cpu.set("num_stores", counts[IC.STORE] + counts[IC.VEC_STORE])
        cpu.set("num_branches", counts[IC.BRANCH])
        cpu.set(
            "num_fp",
            counts[IC.FP_ADD]
            + counts[IC.FP_MUL]
            + counts[IC.FP_FMA]
            + counts[IC.FP_OTHER]
            + counts[IC.VEC_FP],
        )
        cpu.set("num_int_alu", counts[IC.INT_ALU])
        cpu.set("num_mem_refs", cpu.get("num_loads") + cpu.get("num_stores"))

        for level, level_stats in self.hierarchy.stats_dict().items():
            group = stats.group(level)
            for key, value in level_stats.items():
                group.set(key, value)
            if level != "mem":
                accesses = level_stats["read_accesses"] + level_stats["write_accesses"]
                misses = level_stats["read_misses"] + level_stats["write_misses"]
                group.set("accesses", accesses)
                group.set("misses", misses)
                group.set("hits", accesses - misses)
                group.set("miss_rate", misses / accesses if accesses else 0.0)
        return stats

    # -- instruction-side modelling ---------------------------------------
    def _model_instruction_fetches(self, program: Program, counts: dict) -> None:
        """Approximate L1I behaviour from the program's code footprint.

        Kernel code is tiny compared to data, so a full fetch trace is not
        simulated; instead each loop-nest root contributes its code lines as
        compulsory misses, plus capacity misses when an (unrolled) body
        exceeds the L1I capacity.
        """
        l1i = self.hierarchy.l1i
        line_bytes = l1i.config.line_bytes
        capacity_lines = l1i.config.sets * l1i.config.associativity

        total_fetches = sum(counts.values())
        misses = math.ceil(program.static_code_bytes / line_bytes)
        for root in program.roots:
            footprint_lines = math.ceil(max(program.code_bytes(root), 1.0) / line_bytes)
            misses += footprint_lines
            if footprint_lines > capacity_lines and isinstance(root, Loop):
                overflow = footprint_lines - capacity_lines
                misses += overflow * max(root.extent - 1, 0)
        misses = min(misses, total_fetches)
        l1i.read_accesses += int(total_fetches)
        l1i.read_misses += int(misses)
        l1i.read_hits += int(total_fetches - misses)

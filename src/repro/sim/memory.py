"""Main-memory model: the terminal level of the cache hierarchy."""

from __future__ import annotations

import numpy as np


class MainMemory:
    """Counts the requests that reach DRAM; always 'hits'."""

    def __init__(self, name: str = "mem"):
        self.name = name
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the request counters."""
        self.read_accesses = 0
        self.write_accesses = 0

    @property
    def accesses(self) -> int:
        """Total number of requests."""
        return self.read_accesses + self.write_accesses

    def access(self, address: int, is_write: bool) -> bool:
        """Process one request (always succeeds)."""
        if is_write:
            self.write_accesses += 1
        else:
            self.read_accesses += 1
        return True

    def access_batch(self, addresses: np.ndarray, is_write: np.ndarray) -> int:
        """Process a batch of requests; returns the batch size."""
        writes = int(np.count_nonzero(is_write))
        self.write_accesses += writes
        self.read_accesses += int(addresses.size - writes)
        return int(addresses.size)

    def stats_dict(self) -> dict:
        """Statistics in the shape the feature extractor consumes."""
        return {
            "read_accesses": self.read_accesses,
            "write_accesses": self.write_accesses,
        }

    def __repr__(self) -> str:
        return f"MainMemory({self.name})"

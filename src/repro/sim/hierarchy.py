"""Cache hierarchies: composition of cache levels as in Figure 3 / Table I."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sim.cache import Cache, CacheConfig
from repro.sim.memory import MainMemory


@dataclass(frozen=True)
class CacheLevelConfig:
    """Geometry and policy of one cache level, as listed in Table I.

    ``replacement`` selects the level's replacement policy (LRU by default,
    matching the paper's gem5 configuration); random-replacement levels draw
    their victims from the replayable stream seeded by the hierarchy-level
    ``rng_seed`` (see :meth:`to_cache_config`).
    """

    size_bytes: int
    sets: int
    associativity: int
    replacement: str = "lru"

    def to_cache_config(self, name: str, line_bytes: int, rng_seed: int = 0) -> CacheConfig:
        """Convert to a full :class:`CacheConfig`."""
        return CacheConfig(
            name=name,
            size_bytes=self.size_bytes,
            sets=self.sets,
            associativity=self.associativity,
            line_bytes=line_bytes,
            replacement=self.replacement,
            rng_seed=rng_seed,
        )


@dataclass(frozen=True)
class CacheHierarchyConfig:
    """A complete hierarchy: split L1, unified L2 and optional L3 (LLC)."""

    name: str
    l1d: CacheLevelConfig
    l1i: CacheLevelConfig
    l2: CacheLevelConfig
    l3: Optional[CacheLevelConfig] = None
    line_bytes: int = 64

    def levels(self) -> Dict[str, CacheLevelConfig]:
        """Present levels keyed by their conventional names."""
        levels = {"l1d": self.l1d, "l1i": self.l1i, "l2": self.l2}
        if self.l3 is not None:
            levels["l3"] = self.l3
        return levels


class CacheHierarchy:
    """An instantiated hierarchy with separate data and instruction paths.

    Data requests flow L1D -> L2 -> (L3) -> memory; instruction fetches flow
    L1I -> L2 -> (L3) -> memory, matching the shared higher levels of the
    CPUs in the paper.
    """

    def __init__(
        self, config: CacheHierarchyConfig, engine: Optional[str] = None, rng_seed: int = 0
    ):
        self.config = config
        self.engine = engine
        self.rng_seed = rng_seed
        self.memory = MainMemory()
        last_level: object = self.memory
        self.l3: Optional[Cache] = None

        level_index = {"l1d": 0, "l1i": 1, "l2": 2, "l3": 3}

        def build(level: CacheLevelConfig, name: str, below) -> Cache:
            # Levels derive distinct stream seeds from the hierarchy seed so
            # same-geometry levels (e.g. a split L1) never replay each
            # other's victim tape.
            return Cache(
                level.to_cache_config(
                    name, config.line_bytes, rng_seed=rng_seed * 4 + level_index[name]
                ),
                below,
                engine=engine,
            )

        if config.l3 is not None:
            self.l3 = build(config.l3, "l3", last_level)
            last_level = self.l3
        self.l2 = build(config.l2, "l2", last_level)
        self.l1d = build(config.l1d, "l1d", self.l2)
        self.l1i = build(config.l1i, "l1i", self.l2)

    # -- access paths -----------------------------------------------------
    def access_data(self, address: int, is_write: bool) -> bool:
        """Single data access through the data path; returns True on an L1D hit."""
        return self.l1d.access(address, is_write)

    def access_data_batch(self, addresses: np.ndarray, is_write: np.ndarray) -> int:
        """Batch of data accesses in program order; returns L1D hits."""
        return self.l1d.access_batch(addresses, is_write)

    def access_data_descriptors(self, chunk) -> int:
        """One descriptor chunk through the data path; returns L1D hits.

        Misses propagate to the lower levels as materialised line batches
        exactly like :meth:`access_data_batch` — only the L1D front-end
        consumes descriptors.
        """
        return self.l1d.access_descriptors(chunk)

    def access_data_descriptor_arena(self, arena) -> int:
        """A whole packed descriptor arena through the data path; L1D hits.

        The L1D walks every chunk of the arena in one native call and
        forwards the combined miss stream to L2 (and onward) as one batch —
        one dispatch per level per arena instead of one per chunk.  Falls
        back to per-chunk processing, bit-identically, when the compiled
        batch kernel is unavailable.
        """
        return self.l1d.access_descriptor_arena(arena)

    def access_data_descriptor_stream(self, chunks) -> int:
        """A stream of descriptor chunks through the data path; L1D hits.

        Chunks are grouped into packed arenas on the fly (see
        :meth:`Cache.access_descriptor_stream`); per-chunk dispatch is the
        automatic, bit-identical fallback.
        """
        return self.l1d.access_descriptor_stream(chunks)

    def access_instr_batch(self, addresses: np.ndarray) -> int:
        """Batch of instruction fetches; returns L1I hits."""
        flags = np.zeros(addresses.shape, dtype=bool)
        return self.l1i.access_batch(addresses, flags)

    # -- management ---------------------------------------------------------
    def data_caches(self) -> List[Cache]:
        """Caches on the data path, closest first."""
        caches = [self.l1d, self.l2]
        if self.l3 is not None:
            caches.append(self.l3)
        return caches

    def all_caches(self) -> Dict[str, Cache]:
        """All caches keyed by level name."""
        caches = {"l1d": self.l1d, "l1i": self.l1i, "l2": self.l2}
        if self.l3 is not None:
            caches["l3"] = self.l3
        return caches

    def reset_stats(self) -> None:
        """Zero counters of every level and of main memory."""
        for cache in self.all_caches().values():
            cache.reset_stats()
        self.memory.reset_stats()

    def reset_state(self) -> None:
        """Flush every level and zero all counters (cold caches)."""
        for cache in self.all_caches().values():
            cache.reset_state()
        self.memory.reset_stats()

    def stats_dict(self) -> Dict[str, Dict[str, float]]:
        """Per-level statistics, keyed by level name plus ``mem``."""
        stats = {name: cache.stats_dict() for name, cache in self.all_caches().items()}
        stats["mem"] = self.memory.stats_dict()
        return stats

    def __repr__(self) -> str:
        return f"CacheHierarchy({self.config.name})"

"""Typed runtime configuration: one resolution point for the toggle surface.

The simulation stack grew one environment variable per PR — engine selection,
trace representation, native-kernel and arena-batching toggles, the batched
measurement path, retry policy, the shared memo directory.  Each used to be
read ad hoc at its point of use (``os.environ.get`` scattered through
``engine.py``, ``simulator.py``, ``runner.py``, ``memo.py``), which made the
effective configuration of a run impossible to inspect or to pin down for a
service process.

:class:`RuntimeConfig` consolidates that surface into a frozen dataclass with
**one documented env-resolution point**, :meth:`RuntimeConfig.from_env`:

========================  =======================  ==============================
``RuntimeConfig`` field   environment variable     meaning
========================  =======================  ==============================
``engine``                ``REPRO_SIM_ENGINE``     cache-simulation engine
                                                   (``reference``/``vectorized``;
                                                   default ``vectorized``)
``trace``                 ``REPRO_SIM_TRACE``      trace representation
                                                   (``expanded``/``descriptor``;
                                                   default by engine)
``replacement``           ``REPRO_SIM_REPLACEMENT``  uniform replacement policy
                                                   for every hierarchy level
                                                   (registry name; default:
                                                   per-level Table I policies)
``native``                ``REPRO_SIM_NATIVE``     compiled C kernels (``0``
                                                   disables; default on)
``arena``                 ``REPRO_SIM_ARENA``      cross-chunk arena batching
                                                   (``0`` disables; default on)
``runner_batch``          ``REPRO_RUNNER_BATCH``   candidate-batch measurement
                                                   path (``0``/``false``/``off``
                                                   disables; default on)
``memo_dir``              ``REPRO_SIM_MEMO_DIR``   shared on-disk memo directory
                                                   (default: per-user temp dir)
``retry``                 ``REPRO_RETRY_*``        retry policy of the resilient
                                                   APIs (attempts/base delay/max
                                                   delay/seed; default disabled)
========================  =======================  ==============================

Every field defaults to *unset* (``None``), which defers to the environment at
use time — exactly the pre-config behaviour, so exporting a ``REPRO_*``
variable keeps working unchanged for code that never touches a config object.
An explicit field value overrides the environment.  ``from_env()`` snapshots
the current environment into explicit values, pinning them against later
environment changes; it is the one place the variables above are read into
structured form.

``native`` and ``arena`` are process-global toggles (the native library probe
and the arena dispatch gate read the environment directly, deep inside the
engine); :meth:`apply_process_toggles` writes them back to ``os.environ`` for
service entry points that must pin the whole process, and
:meth:`RuntimeConfig.describe` renders the resolved surface for
``repro.cli serve --check``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import List, Mapping, Optional, Tuple

from repro.reliability import RetryPolicy
from repro.sim.engine import resolve_engine, resolve_trace_mode

#: ``(field, env var, description)`` rows of the documented toggle surface.
ENV_SURFACE: Tuple[Tuple[str, str, str], ...] = (
    ("engine", "REPRO_SIM_ENGINE", "cache-simulation engine (reference/vectorized)"),
    ("trace", "REPRO_SIM_TRACE", "trace representation (expanded/descriptor)"),
    ("replacement", "REPRO_SIM_REPLACEMENT",
     "replacement policy of every hierarchy level (registry name; default Table I)"),
    ("native", "REPRO_SIM_NATIVE", "compiled C kernels (0 disables)"),
    ("arena", "REPRO_SIM_ARENA", "cross-chunk arena batching (0 disables)"),
    ("runner_batch", "REPRO_RUNNER_BATCH", "candidate-batch measurement path"),
    ("memo_dir", "REPRO_SIM_MEMO_DIR", "shared on-disk memo directory"),
    ("retry", "REPRO_RETRY_ATTEMPTS (+_BASE_DELAY_S/_MAX_DELAY_S/_SEED)",
     "retry policy of the resilient APIs"),
)


def _native_flag(value: Optional[str]) -> bool:
    """``REPRO_SIM_NATIVE``/``REPRO_SIM_ARENA`` reading: only ``"0"`` disables."""
    return value != "0"


def _batch_flag(value: Optional[str]) -> bool:
    """``REPRO_RUNNER_BATCH`` semantics (matches ``batched_measurement_default``)."""
    if value is None:
        return True
    return value.strip().lower() not in ("0", "false", "off")


@dataclass(frozen=True)
class RuntimeConfig:
    """The consolidated toggle surface of one simulation stack instance.

    ``None`` fields defer to the environment at use time (the pre-config
    behaviour); explicit values override it.  Instances are frozen — derive
    variants with :func:`dataclasses.replace` or :meth:`with_overrides`.
    """

    #: Cache-simulation engine; ``None`` defers to ``REPRO_SIM_ENGINE``.
    engine: Optional[str] = None
    #: Trace representation; ``None`` defers to ``REPRO_SIM_TRACE`` / engine.
    trace: Optional[str] = None
    #: Replacement policy applied to every hierarchy level (a
    #: :data:`repro.sim.policies.POLICIES` name); ``None`` defers to
    #: ``REPRO_SIM_REPLACEMENT`` and then the Table I per-level defaults.
    replacement: Optional[str] = None
    #: Compiled-kernel toggle (process-global; see :meth:`apply_process_toggles`).
    native: Optional[bool] = None
    #: Arena-batching toggle (process-global; see :meth:`apply_process_toggles`).
    arena: Optional[bool] = None
    #: Whether runners use the candidate-batch measurement path.
    runner_batch: Optional[bool] = None
    #: Whether simulators memoize results at all (no env var; default on).
    memoize: Optional[bool] = None
    #: Shared on-disk memo directory; ``None`` defers to ``REPRO_SIM_MEMO_DIR``
    #: (and then the per-user default of :func:`repro.sim.memo.shared_disk_cache_dir`).
    memo_dir: Optional[str] = None
    #: Per-candidate simulation budget in seconds (0 = unlimited).
    timeout_s: float = 0.0
    #: Retry policy of the resilient APIs; ``None`` defers to ``REPRO_RETRY_*``.
    retry: Optional[RetryPolicy] = field(default=None)

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "RuntimeConfig":
        """Snapshot the current environment into explicit field values.

        This is the one documented resolution point of every ``REPRO_*``
        toggle (see the module table); the returned config reproduces the
        pre-config env-var semantics exactly and pins them against later
        environment changes.
        """
        env = os.environ if environ is None else environ
        return cls(
            engine=env.get("REPRO_SIM_ENGINE") or None,
            trace=env.get("REPRO_SIM_TRACE") or None,
            replacement=env.get("REPRO_SIM_REPLACEMENT") or None,
            native=_native_flag(env.get("REPRO_SIM_NATIVE")),
            arena=_native_flag(env.get("REPRO_SIM_ARENA")),
            runner_batch=_batch_flag(env.get("REPRO_RUNNER_BATCH")),
            memoize=True,
            memo_dir=env.get("REPRO_SIM_MEMO_DIR") or None,
            retry=RetryPolicy(
                max_attempts=int(env.get("REPRO_RETRY_ATTEMPTS", "1")),
                base_delay_s=float(env.get("REPRO_RETRY_BASE_DELAY_S", "0.05")),
                max_delay_s=float(env.get("REPRO_RETRY_MAX_DELAY_S", "2.0")),
                seed=int(env.get("REPRO_RETRY_SEED", "0")),
            ),
        )

    # -- resolution ---------------------------------------------------------
    def resolved_engine(self, override: Optional[str] = None) -> str:
        """The effective engine: ``override`` > field > environment > default."""
        return resolve_engine(override or self.engine)

    def resolved_trace(self, engine: str, override: Optional[str] = None) -> str:
        """The effective trace mode for ``engine`` (same precedence chain)."""
        return resolve_trace_mode(override or self.trace, engine)

    def resolved_replacement(self) -> Optional[str]:
        """The effective uniform replacement override, validated against the
        policy registry; ``None`` keeps the hierarchy's per-level defaults."""
        value = self.replacement or os.environ.get("REPRO_SIM_REPLACEMENT") or None
        if value is not None:
            from repro.sim.policies import get_policy

            get_policy(value)  # raises ValueError on unknown names
        return value

    def resolved_native(self) -> bool:
        """The effective compiled-kernel toggle (field, else ``REPRO_SIM_NATIVE``)."""
        if self.native is not None:
            return self.native
        return _native_flag(os.environ.get("REPRO_SIM_NATIVE"))

    def resolved_arena(self) -> bool:
        """The effective arena toggle (field, else ``REPRO_SIM_ARENA``)."""
        if self.arena is not None:
            return self.arena
        return _native_flag(os.environ.get("REPRO_SIM_ARENA"))

    def resolved_runner_batch(self) -> bool:
        """The effective batched-measurement toggle (field, else env)."""
        if self.runner_batch is not None:
            return self.runner_batch
        return _batch_flag(os.environ.get("REPRO_RUNNER_BATCH"))

    def resolved_memoize(self) -> bool:
        """The effective memoization toggle (default on; no env var)."""
        return True if self.memoize is None else self.memoize

    def resolved_retry(self) -> RetryPolicy:
        """The effective retry policy (field, else ``REPRO_RETRY_*``)."""
        return self.retry if self.retry is not None else RetryPolicy.from_env()

    def resolved_memo_dir(self) -> str:
        """The effective shared memo directory (field, else env, else default)."""
        if self.memo_dir is not None:
            return str(self.memo_dir)
        from repro.sim.memo import shared_disk_cache_dir

        return str(shared_disk_cache_dir())

    # -- process-global toggles ---------------------------------------------
    def apply_process_toggles(self) -> None:
        """Pin the process-global toggles by writing them back to ``os.environ``.

        The native-kernel probe and the arena dispatch gate are read deep
        inside the engine on every call; long-lived service processes call
        this once at startup so the config object is authoritative for the
        whole process.
        """
        os.environ["REPRO_SIM_NATIVE"] = "1" if self.resolved_native() else "0"
        os.environ["REPRO_SIM_ARENA"] = "1" if self.resolved_arena() else "0"
        os.environ["REPRO_RUNNER_BATCH"] = "1" if self.resolved_runner_batch() else "0"
        if self.memo_dir is not None:
            os.environ["REPRO_SIM_MEMO_DIR"] = str(self.memo_dir)

    def validate(self) -> "RuntimeConfig":
        """Resolve and type-check every field; raises ``ValueError`` on nonsense."""
        engine = self.resolved_engine()
        self.resolved_trace(engine)
        self.resolved_replacement()
        self.resolved_retry()
        if self.timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {self.timeout_s}")
        return self

    def describe(self) -> List[Tuple[str, str, str]]:
        """``(field, env var, resolved value)`` rows for ``serve --check``."""
        engine = self.resolved_engine()
        resolved = {
            "engine": engine,
            "trace": self.resolved_trace(engine),
            "replacement": self.resolved_replacement() or "per-level default",
            "native": "on" if self.resolved_native() else "off",
            "arena": "on" if self.resolved_arena() else "off",
            "runner_batch": "on" if self.resolved_runner_batch() else "off",
            "memo_dir": self.resolved_memo_dir(),
            "retry": repr(self.resolved_retry()),
        }
        return [(name, env_var, resolved[name]) for name, env_var, _ in ENV_SURFACE]

    def with_overrides(self, **overrides) -> "RuntimeConfig":
        """A copy with ``overrides`` applied; unknown keys raise ``TypeError``."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(f"unknown RuntimeConfig fields: {sorted(unknown)}")
        return replace(self, **overrides)

"""Cache hierarchies of the evaluated CPUs (Table I of the paper).

All line sizes are 64 B.  The ARM and RISC-V CPUs have a shared L2 but no L3;
the x86 CPU has a large L3 (LLC).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig, CacheLevelConfig


def _kib(value: int) -> int:
    return value * 1024


#: Table I — cache sizes and hierarchy of the used CPUs.
CACHE_HIERARCHIES: Dict[str, CacheHierarchyConfig] = {
    "x86": CacheHierarchyConfig(
        name="x86",
        l1d=CacheLevelConfig(size_bytes=_kib(32), sets=64, associativity=8),
        l1i=CacheLevelConfig(size_bytes=_kib(32), sets=64, associativity=8),
        l2=CacheLevelConfig(size_bytes=_kib(512), sets=1024, associativity=8),
        l3=CacheLevelConfig(size_bytes=_kib(32768), sets=32768, associativity=16),
    ),
    "arm": CacheHierarchyConfig(
        name="arm",
        l1d=CacheLevelConfig(size_bytes=_kib(32), sets=256, associativity=2),
        l1i=CacheLevelConfig(size_bytes=_kib(48), sets=256, associativity=3),
        l2=CacheLevelConfig(size_bytes=_kib(1024), sets=1024, associativity=16),
        l3=None,
    ),
    "riscv": CacheHierarchyConfig(
        name="riscv",
        l1d=CacheLevelConfig(size_bytes=_kib(32), sets=64, associativity=8),
        l1i=CacheLevelConfig(size_bytes=_kib(32), sets=64, associativity=8),
        l2=CacheLevelConfig(size_bytes=_kib(2048), sets=2048, associativity=16),
        l3=None,
    ),
}

#: Table I rendered as rows (architecture, level, size KiB, sets, associativity)
#: for the benchmark that regenerates the table.
TABLE1_ROWS: List[tuple] = [
    (arch, level, cfg.size_bytes // 1024, cfg.sets, cfg.associativity)
    for arch, hierarchy in CACHE_HIERARCHIES.items()
    for level, cfg in hierarchy.levels().items()
]


def hierarchy_with_replacement(arch: str, replacement: str) -> CacheHierarchyConfig:
    """The Table I hierarchy of ``arch`` with every level using ``replacement``.

    The geometry is untouched — only the policy field of each level changes —
    so the variant exercises exactly the Table I scenario class under a
    different replacement policy.  Any name in the
    :data:`repro.sim.policies.POLICIES` registry works (``"random"`` draws
    victims from the replayable seeded stream; ``"plru"``/``"rrip"`` carry
    their aux state planes, see :mod:`repro.sim.policies`).
    """
    key = arch.strip().lower()
    if key not in CACHE_HIERARCHIES:
        raise KeyError(f"no cache hierarchy defined for architecture {arch!r}")
    base = CACHE_HIERARCHIES[key]
    swapped = {
        name: replace(level, replacement=replacement)
        for name, level in base.levels().items()
    }
    return replace(
        base,
        name=f"{base.name}-{replacement}",
        **swapped,
    )


def cache_hierarchy_for(
    arch: str, engine: Optional[str] = None, rng_seed: int = 0
) -> CacheHierarchy:
    """Instantiate the Table I cache hierarchy for ``arch`` (x86/arm/riscv)."""
    key = arch.strip().lower()
    if key not in CACHE_HIERARCHIES:
        raise KeyError(f"no cache hierarchy defined for architecture {arch!r}")
    return CacheHierarchy(CACHE_HIERARCHIES[key], engine=engine, rng_seed=rng_seed)

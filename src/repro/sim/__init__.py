"""Instruction-accurate simulator substrate (gem5 stand-in).

The simulator executes abstract instruction programs produced by
:mod:`repro.codegen`.  Like gem5 in atomic mode with the ``SimpleCPU`` model,
it is *instruction-accurate but not timing-accurate*: it reports exact
instruction counts per category and the hit/miss/replacement behaviour of a
parameterisable cache hierarchy, but no latencies.

Two interchangeable cache-simulation engines are provided (see
:mod:`repro.sim.engine`): the per-access ``"reference"`` loop and the
array-based ``"vectorized"`` chunk engine, which produce bit-identical
statistics.  The trace reaches the engines in one of two bit-equivalent
representations: materialised address chunks (``"expanded"``) or compressed
affine run descriptors (``"descriptor"``, the vectorized default — see
:meth:`repro.codegen.program.Program.memory_trace_descriptors`).  All
replacement policies live in one registry (:mod:`repro.sim.policies` —
LRU, FIFO, random, tree-PLRU, SRRIP) and run bit-identically on both
engines: each :class:`~repro.sim.policies.PolicySpec` defines the state,
touch rule and victim rule every execution layer consumes.  Random
replacement draws its victims from a replayable counter-based stream
(:func:`repro.sim.policies.victim_rank`, seeded via
``TraceOptions.rng_seed`` / ``CacheConfig.rng_seed``), so stochastic
caches stay bit-identical across engines, trace representations and chunk
schedules.  Simulation results are memoized across identical ``(program,
hierarchy, trace options)`` requests via :mod:`repro.sim.memo`; the
victim-stream seed joins the key exactly when a victim-stream level is
present.
"""

from repro.sim.stats import StatGroup, SimulationStats
from repro.sim.engine import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    ENGINES,
    TRACE_DESCRIPTOR,
    TRACE_EXPANDED,
    TRACE_MODES,
    VectorCacheState,
    arena_batching_available,
    arena_batching_enabled,
    default_engine,
    default_trace_mode,
    native_chunk_heads,
    resolve_engine,
    resolve_trace_mode,
    victim_rank,
)
from repro.sim.cache import CacheConfig, Cache
from repro.sim.policies import (
    POLICIES,
    POLICY_NAMES,
    PolicySpec,
    ReplacementPolicy,
    get_policy,
    policy_wire_id,
)
from repro.sim.memory import MainMemory
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig, CacheLevelConfig
from repro.sim.configs import (
    CACHE_HIERARCHIES,
    TABLE1_ROWS,
    cache_hierarchy_for,
    hierarchy_with_replacement,
)
from repro.sim.cpu import AtomicSimpleCPU, TraceOptions, run_data_trace
from repro.sim.memo import (
    SimulationCache,
    default_simulation_cache,
    shared_disk_cache_dir,
    stats_from_flat,
)
from repro.sim.runtime_config import RuntimeConfig
from repro.sim.simulator import (
    BatchSimulator,
    Simulator,
    SimulationFailure,
    SimulationResult,
    SimulatorPool,
)

__all__ = [
    "StatGroup",
    "SimulationStats",
    "ENGINE_REFERENCE",
    "ENGINE_VECTORIZED",
    "ENGINES",
    "TRACE_DESCRIPTOR",
    "TRACE_EXPANDED",
    "TRACE_MODES",
    "VectorCacheState",
    "arena_batching_available",
    "arena_batching_enabled",
    "default_engine",
    "default_trace_mode",
    "native_chunk_heads",
    "resolve_engine",
    "resolve_trace_mode",
    "victim_rank",
    "CacheConfig",
    "Cache",
    "POLICIES",
    "POLICY_NAMES",
    "PolicySpec",
    "ReplacementPolicy",
    "get_policy",
    "policy_wire_id",
    "MainMemory",
    "CacheHierarchy",
    "CacheHierarchyConfig",
    "CacheLevelConfig",
    "CACHE_HIERARCHIES",
    "cache_hierarchy_for",
    "hierarchy_with_replacement",
    "TABLE1_ROWS",
    "AtomicSimpleCPU",
    "TraceOptions",
    "run_data_trace",
    "SimulationCache",
    "default_simulation_cache",
    "shared_disk_cache_dir",
    "stats_from_flat",
    "RuntimeConfig",
    "BatchSimulator",
    "Simulator",
    "SimulationFailure",
    "SimulationResult",
    "SimulatorPool",
]

"""Instruction-accurate simulator substrate (gem5 stand-in).

The simulator executes abstract instruction programs produced by
:mod:`repro.codegen`.  Like gem5 in atomic mode with the ``SimpleCPU`` model,
it is *instruction-accurate but not timing-accurate*: it reports exact
instruction counts per category and the hit/miss/replacement behaviour of a
parameterisable cache hierarchy, but no latencies.
"""

from repro.sim.stats import StatGroup, SimulationStats
from repro.sim.cache import CacheConfig, Cache, ReplacementPolicy
from repro.sim.memory import MainMemory
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig, CacheLevelConfig
from repro.sim.configs import CACHE_HIERARCHIES, cache_hierarchy_for, TABLE1_ROWS
from repro.sim.cpu import AtomicSimpleCPU, TraceOptions
from repro.sim.simulator import Simulator, SimulationResult, SimulatorPool

__all__ = [
    "StatGroup",
    "SimulationStats",
    "CacheConfig",
    "Cache",
    "ReplacementPolicy",
    "MainMemory",
    "CacheHierarchy",
    "CacheHierarchyConfig",
    "CacheLevelConfig",
    "CACHE_HIERARCHIES",
    "cache_hierarchy_for",
    "TABLE1_ROWS",
    "AtomicSimpleCPU",
    "TraceOptions",
    "Simulator",
    "SimulationResult",
    "SimulatorPool",
]

"""Instruction-accurate simulator substrate (gem5 stand-in).

The simulator executes abstract instruction programs produced by
:mod:`repro.codegen`.  Like gem5 in atomic mode with the ``SimpleCPU`` model,
it is *instruction-accurate but not timing-accurate*: it reports exact
instruction counts per category and the hit/miss/replacement behaviour of a
parameterisable cache hierarchy, but no latencies.

Two interchangeable cache-simulation engines are provided (see
:mod:`repro.sim.engine`): the per-access ``"reference"`` loop and the
array-based ``"vectorized"`` chunk engine, which produce bit-identical
statistics.  Simulation results are memoized across identical
``(program, hierarchy, trace options)`` requests via
:mod:`repro.sim.memo`.
"""

from repro.sim.stats import StatGroup, SimulationStats
from repro.sim.engine import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    ENGINES,
    VectorCacheState,
    default_engine,
    resolve_engine,
)
from repro.sim.cache import CacheConfig, Cache, ReplacementPolicy
from repro.sim.memory import MainMemory
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig, CacheLevelConfig
from repro.sim.configs import CACHE_HIERARCHIES, cache_hierarchy_for, TABLE1_ROWS
from repro.sim.cpu import AtomicSimpleCPU, TraceOptions
from repro.sim.memo import SimulationCache, default_simulation_cache
from repro.sim.simulator import Simulator, SimulationResult, SimulatorPool

__all__ = [
    "StatGroup",
    "SimulationStats",
    "ENGINE_REFERENCE",
    "ENGINE_VECTORIZED",
    "ENGINES",
    "VectorCacheState",
    "default_engine",
    "resolve_engine",
    "CacheConfig",
    "Cache",
    "ReplacementPolicy",
    "MainMemory",
    "CacheHierarchy",
    "CacheHierarchyConfig",
    "CacheLevelConfig",
    "CACHE_HIERARCHIES",
    "cache_hierarchy_for",
    "TABLE1_ROWS",
    "AtomicSimpleCPU",
    "TraceOptions",
    "SimulationCache",
    "default_simulation_cache",
    "Simulator",
    "SimulationResult",
    "SimulatorPool",
]

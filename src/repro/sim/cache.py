"""Set-associative cache model.

The cache is a write-allocate, write-back, N-way set-associative cache with a
pluggable replacement policy (LRU by default, matching the paper's gem5
configuration).  It produces the statistics the score predictor consumes:
read/write accesses, hits, misses and replacements.  The model is functional
only — it tracks which lines are resident, not their contents, and it reports
no latencies (the whole point of the paper is that no timing is needed).

Two interchangeable simulation engines back the model:

* ``"reference"`` — the original per-access Python loop over per-set lists.
  Simple, obviously correct, and the behavioural baseline.
* ``"vectorized"`` — the array-based chunk engine of
  :mod:`repro.sim.engine`; bit-identical statistics at a multiple of the
  throughput.

Replacement behaviour comes from the :mod:`repro.sim.policies` registry:
the reference loop drives a way-slot :class:`ReferenceCacheState` through
each policy's scalar ``victim_way``/``touch`` hooks, so every registered
policy (``lru``/``fifo``/``random``/``plru``/``rrip``) runs on either
engine without a policy branch in this module.  Random victims come from
the replayable counter-based stream of
:func:`repro.sim.policies.victim_rank`, keyed on ``(rng_seed, set index,
per-set eviction ordinal)``: the ``k``-th eviction in a set always evicts
the same rank (by descending insertion recency) for a given seed, no matter
which engine — or which schedule inside the vectorized engine — processes
the trace.  ``CacheConfig.rng_seed`` (overridable per cache via the
``rng_seed`` constructor argument) selects the stream; two caches with the
same seed and trace are bit-identical, two different seeds draw independent
victim sequences.

The engine is selected per cache via the ``engine`` constructor argument and
defaults to :func:`repro.sim.engine.default_engine` (environment variable
``REPRO_SIM_ENGINE`` overrides).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.reliability import faults

from repro.sim.engine import (
    ARENA_ACCESS_BATCH,
    ARENA_CHUNK_BATCH,
    DESCRIPTOR_HEAD_FRACTION,
    ENGINE_VECTORIZED,
    SCALAR_CHUNK_CUTOFF,
    ChunkOutcome,
    VectorCacheState,
    arena_batching_available,
    chunk_heads,
    estimated_heads,
    resolve_engine,
)
from repro.sim.policies import (
    PolicySpec,
    ReferenceCacheState,
    ReplacementPolicy,
    get_policy,
)

from repro.codegen.program import pack_descriptor_arena


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and behaviour of one cache.

    ``size_bytes = sets * associativity * line_bytes`` must hold; the
    constructor of :class:`Cache` validates this so the Table I
    configurations cannot be transcribed inconsistently.
    """

    name: str
    size_bytes: int
    sets: int
    associativity: int
    line_bytes: int = 64
    replacement: str = ReplacementPolicy.LRU
    #: Seed of the replayable random-replacement victim stream; ignored by
    #: the policies that never consult it (everything except ``random``).
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes != self.sets * self.associativity * self.line_bytes:
            raise ValueError(
                f"inconsistent cache geometry for {self.name}: "
                f"{self.sets} sets x {self.associativity} ways x {self.line_bytes} B "
                f"!= {self.size_bytes} B"
            )
        if self.sets <= 0 or self.associativity <= 0 or self.line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if self.sets & (self.sets - 1):
            raise ValueError(f"number of sets must be a power of two, got {self.sets}")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line size must be a power of two, got {self.line_bytes}")
        get_policy(self.replacement).validate_geometry(self.associativity)

    @staticmethod
    def from_geometry(
        name: str,
        sets: int,
        associativity: int,
        line_bytes: int = 64,
        replacement: str = ReplacementPolicy.LRU,
        rng_seed: int = 0,
    ) -> "CacheConfig":
        """Build a config from sets/ways/line size, deriving the total size."""
        return CacheConfig(
            name=name,
            size_bytes=sets * associativity * line_bytes,
            sets=sets,
            associativity=associativity,
            line_bytes=line_bytes,
            replacement=replacement,
            rng_seed=rng_seed,
        )


class Cache:
    """One level of a cache hierarchy.

    Misses and dirty evictions are forwarded to ``next_level`` (another
    :class:`Cache` or a :class:`~repro.sim.memory.MainMemory`).
    """

    def __init__(
        self,
        config: CacheConfig,
        next_level=None,
        rng_seed: Optional[int] = None,
        engine: Optional[str] = None,
    ):
        self.config = config
        self.next_level = next_level
        self._offset_bits = int(np.log2(config.line_bytes))
        self._set_mask = config.sets - 1
        self.engine = resolve_engine(engine)
        self.rng_seed = config.rng_seed if rng_seed is None else int(rng_seed)
        self._policy: PolicySpec = get_policy(config.replacement)
        self._state: Optional[VectorCacheState] = None
        # Way-slot state of the reference engine, driven through the policy's
        # scalar hooks (the vectorized state keeps its own arrays).
        self._ref: Optional[ReferenceCacheState] = None
        if self.engine == ENGINE_VECTORIZED:
            self._state = VectorCacheState(
                config.sets, config.associativity, config.replacement, rng_seed=self.rng_seed
            )
        else:
            self._ref = ReferenceCacheState(
                self._policy, config.sets, config.associativity, self.rng_seed
            )
        self.reset_stats()
        # Direct line-address forwarding is only valid when the next level
        # uses the same line size; otherwise byte addresses are re-derived.
        self._forward_lines_directly = (
            isinstance(next_level, Cache) and next_level.config.line_bytes == config.line_bytes
        )

    # -- statistics -------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all counters (resident lines are kept)."""
        self.read_accesses = 0
        self.write_accesses = 0
        self.read_hits = 0
        self.write_hits = 0
        self.read_misses = 0
        self.write_misses = 0
        self.read_replacements = 0
        self.write_replacements = 0
        self.writebacks = 0
        self.sequential_misses = 0
        self._last_miss_line = -2

    def reset_state(self) -> None:
        """Flush the cache contents, rewind the victim stream and zero the counters."""
        if self._state is not None:
            self._state.reset()
        else:
            self._ref = ReferenceCacheState(
                self._policy, self.config.sets, self.config.associativity, self.rng_seed
            )
        self.reset_stats()

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.read_accesses + self.write_accesses

    @property
    def hits(self) -> int:
        """Total hits."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Total misses."""
        return self.read_misses + self.write_misses

    @property
    def replacements(self) -> int:
        """Total replacements (evictions of valid lines)."""
        return self.read_replacements + self.write_replacements

    def stats_dict(self) -> dict:
        """Statistics in the shape the feature extractor consumes."""
        return {
            "read_accesses": self.read_accesses,
            "write_accesses": self.write_accesses,
            "read_hits": self.read_hits,
            "write_hits": self.write_hits,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "read_replacements": self.read_replacements,
            "write_replacements": self.write_replacements,
            "writebacks": self.writebacks,
            "sequential_misses": self.sequential_misses,
        }

    # -- access processing -------------------------------------------------
    def access(self, address: int, is_write: bool) -> bool:
        """Process one byte-address access; returns True on hit.

        This is a scalar fast path: single-address probes go through plain
        integer bookkeeping without allocating per-call NumPy arrays.
        """
        line = int(address) >> self._offset_bits
        if self._state is not None:
            return self._access_single_vectorized(line, is_write)
        return self._access_single_reference(line, is_write)

    def _access_single_vectorized(self, line: int, is_write: bool) -> bool:
        outcome = self._state.process_single(line, is_write, self._last_miss_line)
        self._apply_outcome(outcome)
        if outcome.hits:
            return True
        self._forward_single(line, False)
        if outcome.writebacks:
            self._forward_single(int(outcome.forwarded_lines[1]), True)
        return False

    def _access_single_reference(self, line: int, is_write: bool) -> bool:
        # Deliberately mirrors one iteration of _access_lines_reference
        # rather than sharing a helper: the batch loop keeps its counters in
        # locals for speed, and a per-access call would slow the hot path.
        # Bit-identity across all four access paths (scalar/batch x
        # reference/vectorized) is enforced by tests/test_sim_engine.py.
        state = self._ref
        spec = self._policy
        set_index = line & self._set_mask
        tag_row = state.tags[set_index]
        occupancy = state.occupancy[set_index]
        way = -1
        for position in range(occupancy):
            if tag_row[position] == line:
                way = position
                break
        tick = state.tick
        state.tick = tick + 1
        if way >= 0:
            if is_write:
                self.write_accesses += 1
                self.write_hits += 1
                state.dirty[set_index][way] = 1
            else:
                self.read_accesses += 1
                self.read_hits += 1
            spec.touch(state, set_index, way, tick, True)
            return True
        if is_write:
            self.write_accesses += 1
            self.write_misses += 1
        else:
            self.read_accesses += 1
            self.read_misses += 1
        if line == self._last_miss_line + 1:
            self.sequential_misses += 1
        self._last_miss_line = line
        victim_line = -1
        victim_dirty = 0
        if occupancy >= self.config.associativity:
            way = spec.victim_way(state, set_index)
            victim_line = tag_row[way]
            victim_dirty = state.dirty[set_index][way]
            if is_write:
                self.write_replacements += 1
            else:
                self.read_replacements += 1
        else:
            way = occupancy
            state.occupancy[set_index] = occupancy + 1
        tag_row[way] = line
        state.dirty[set_index][way] = 1 if is_write else 0
        spec.touch(state, set_index, way, tick, False)
        self._forward_single(line, False)
        if victim_dirty:
            self.writebacks += 1
            self._forward_single(victim_line, True)
        return False

    def access_batch(self, addresses: np.ndarray, is_write: np.ndarray) -> int:
        """Process a batch of byte addresses in order; returns the number of hits."""
        lines = (addresses.astype(np.int64)) >> self._offset_bits
        return self.access_lines(lines, is_write)

    def access_lines(self, lines: np.ndarray, is_write: np.ndarray) -> int:
        """Process a batch of line addresses in order; returns the number of hits.

        Misses generate fill reads and dirty evictions generate writebacks,
        which are forwarded (in order) to the next level in one batch.
        """
        if lines.size == 0:
            return 0
        if self._state is not None:
            lines = np.ascontiguousarray(lines, dtype=np.int64)
            outcome = self._state.process_chunk(lines, is_write, self._last_miss_line)
            self._apply_outcome(outcome)
            if outcome.forwarded_lines is not None:
                self._forward(outcome.forwarded_lines, outcome.forwarded_writes)
            return outcome.hits
        return self._access_lines_reference(lines, is_write)

    def access_descriptors(self, chunk) -> int:
        """Process one :class:`~repro.codegen.program.DescriptorChunk` in order.

        The vectorized engine consumes the grid run descriptors directly —
        collapsed line heads are derived in closed form per innermost row
        and only those enter the chunk pipeline.  The reference engine (and
        tiny chunks, where head bookkeeping cannot pay off) expands the
        chunk and takes the batch path; both routes produce bit-identical
        statistics.
        """
        if chunk.total == 0:
            return 0
        if (
            self._state is None
            or chunk.total < SCALAR_CHUNK_CUTOFF
            or not chunk.batches
            or estimated_heads(chunk, self._offset_bits)
            > DESCRIPTOR_HEAD_FRACTION * chunk.total
        ):
            addresses, is_write = chunk.expand()
            return self.access_batch(addresses, is_write)
        try:
            faults.maybe_raise("descriptor_heads")
            heads = chunk_heads(chunk, self._offset_bits, self._set_mask)
        except Exception as error:  # noqa: BLE001 — head collapse is pure,
            # so expansion recomputes the identical statistics from scratch.
            warnings.warn(
                RuntimeWarning(
                    "descriptor head collapse failed "
                    f"({type(error).__name__}: {error}); expanding chunk"
                ),
                stacklevel=2,
            )
            addresses, is_write = chunk.expand()
            return self.access_batch(addresses, is_write)
        outcome = self._state.process_descriptor_heads(
            chunk.total, chunk.pos_bound, *heads, self._last_miss_line
        )
        self._apply_outcome(outcome)
        if outcome.forwarded_lines is not None:
            self._forward(outcome.forwarded_lines, outcome.forwarded_writes)
        return outcome.hits

    def access_descriptor_stream(self, chunks) -> int:
        """Walk an iterable of descriptor chunks with cross-chunk batching.

        Chunks are grouped into packed arenas of up to
        :data:`ARENA_CHUNK_BATCH` chunks / :data:`ARENA_ACCESS_BATCH`
        accesses, and each group runs through this level in one native
        call (the driver picks closed-form head collapse or member
        expansion per chunk, by the same head-fraction estimate as the
        per-chunk path).  Without the batch kernel — or with
        ``REPRO_SIM_ARENA=0`` — every chunk goes through
        :meth:`access_descriptors` unchanged.  Statistics are bit-identical
        either way; returns the total number of hits.
        """
        if self._state is None or not arena_batching_available():
            hits = 0
            for chunk in chunks:
                hits += self.access_descriptors(chunk)
            return hits
        hits = 0
        pending: List = []
        pending_accesses = 0
        for chunk in chunks:
            pending.append(chunk)
            pending_accesses += chunk.total
            if len(pending) >= ARENA_CHUNK_BATCH or pending_accesses >= ARENA_ACCESS_BATCH:
                hits += self.access_descriptor_arena(pack_descriptor_arena(pending))
                pending, pending_accesses = [], 0
        if pending:
            hits += self.access_descriptor_arena(pack_descriptor_arena(pending))
        return hits

    def access_descriptor_arena(self, arena) -> int:
        """Process a packed :class:`~repro.codegen.program.DescriptorArena`.

        With the compiled batch kernel available, the whole arena — head
        pipeline, stack-distance pre-resolution and event walk for every
        chunk — runs as **one** foreign call against this level's tag
        store, and the aggregated fill/write-back stream is handed to the
        next level in one batch (statistics are chunking-invariant, so the
        coarser forwarding granularity cannot change results).  Without the
        kernel, the arena's chunks are replayed through the bit-identical
        per-chunk path.
        """
        outcome = None
        if self._state is not None:
            outcome = self._state.process_descriptor_arena(
                arena, self._offset_bits, self._last_miss_line
            )
        if outcome is None:
            hits = 0
            for chunk in arena.chunks:
                hits += self.access_descriptors(chunk)
            return hits
        self._apply_outcome(outcome)
        if outcome.forwarded_lines is not None:
            self._forward(outcome.forwarded_lines, outcome.forwarded_writes)
        return outcome.hits

    def _apply_outcome(self, outcome: ChunkOutcome) -> None:
        """Fold one chunk's statistics deltas into the counters."""
        self.read_hits += outcome.read_hits
        self.write_hits += outcome.write_hits
        self.read_misses += outcome.read_misses
        self.write_misses += outcome.write_misses
        self.read_accesses += outcome.read_hits + outcome.read_misses
        self.write_accesses += outcome.write_hits + outcome.write_misses
        self.read_replacements += outcome.read_replacements
        self.write_replacements += outcome.write_replacements
        self.writebacks += outcome.writebacks
        self.sequential_misses += outcome.sequential_misses
        self._last_miss_line = outcome.last_miss_line

    def _access_lines_reference(self, lines: np.ndarray, is_write: np.ndarray) -> int:
        set_indices = (lines & self._set_mask).tolist()
        line_list = lines.tolist()
        write_list = is_write.tolist()

        state = self._ref
        spec = self._policy
        assoc = self.config.associativity
        tags = state.tags
        dirty = state.dirty
        occupancies = state.occupancy
        touch = spec.touch
        victim_way = spec.victim_way
        tick = state.tick

        hits = 0
        read_hits = 0
        write_hits = 0
        read_misses = 0
        write_misses = 0
        read_replacements = 0
        write_replacements = 0
        writebacks = 0
        sequential_misses = 0
        last_miss_line = self._last_miss_line

        forwarded_lines: List[int] = []
        forwarded_writes: List[bool] = []

        for line, set_index, write in zip(line_list, set_indices, write_list):
            tag_row = tags[set_index]
            occupancy = occupancies[set_index]
            way = -1
            for position in range(occupancy):
                if tag_row[position] == line:
                    way = position
                    break
            if way >= 0:
                hits += 1
                if write:
                    write_hits += 1
                    dirty[set_index][way] = 1
                else:
                    read_hits += 1
                touch(state, set_index, way, tick, True)
                tick += 1
                continue

            # Miss: fill from the next level, possibly evicting a victim.
            if write:
                write_misses += 1
            else:
                read_misses += 1
            if line == last_miss_line + 1:
                sequential_misses += 1
            last_miss_line = line

            forwarded_lines.append(line)
            forwarded_writes.append(False)  # fill is a read from below

            if occupancy >= assoc:
                way = victim_way(state, set_index)
                if write:
                    write_replacements += 1
                else:
                    read_replacements += 1
                if dirty[set_index][way]:
                    writebacks += 1
                    forwarded_lines.append(tag_row[way])
                    forwarded_writes.append(True)
            else:
                way = occupancy
                occupancies[set_index] = occupancy + 1
            tag_row[way] = line
            dirty[set_index][way] = 1 if write else 0
            touch(state, set_index, way, tick, False)
            tick += 1

        state.tick = tick
        self.read_hits += read_hits
        self.write_hits += write_hits
        self.read_misses += read_misses
        self.write_misses += write_misses
        self.read_accesses += read_hits + read_misses
        self.write_accesses += write_hits + write_misses
        self.read_replacements += read_replacements
        self.write_replacements += write_replacements
        self.writebacks += writebacks
        self.sequential_misses += sequential_misses
        self._last_miss_line = last_miss_line

        if forwarded_lines:
            self._forward(
                np.asarray(forwarded_lines, dtype=np.int64),
                np.asarray(forwarded_writes, dtype=bool),
            )
        return hits

    # -- forwarding ---------------------------------------------------------
    def _forward(self, lines: np.ndarray, is_write: np.ndarray) -> None:
        """Hand the fill/write-back stream of one chunk to the next level."""
        if self.next_level is None:
            return
        if self._forward_lines_directly:
            # Same line size below: line addresses are identical, skip the
            # byte-address round trip.
            self.next_level.access_lines(lines, is_write)
        else:
            self.next_level.access_batch(lines << self._offset_bits, is_write)

    def _forward_single(self, line: int, is_write: bool) -> None:
        """Scalar counterpart of :meth:`_forward` (no array allocations)."""
        if self.next_level is None:
            return
        self.next_level.access(line << self._offset_bits, is_write)

    # -- introspection ------------------------------------------------------
    def resident_lines(self) -> int:
        """Number of valid lines currently resident."""
        if self._state is not None:
            return self._state.resident_lines()
        return self._ref.resident_lines()

    def contains(self, address: int) -> bool:
        """Whether the line holding ``address`` is resident."""
        line = int(address) >> self._offset_bits
        if self._state is not None:
            return self._state.contains_line(line)
        return self._ref.contains_line(line, line & self._set_mask)

    def __repr__(self) -> str:
        cfg = self.config
        return (
            f"Cache({cfg.name}, {cfg.size_bytes // 1024}K, {cfg.sets} sets, "
            f"{cfg.associativity}-way, engine={self.engine})"
        )

"""gem5-style statistics collection.

Statistics are organised in named groups (``system.cpu``, ``system.l1d`` ...)
and can be dumped in the flat ``stats.txt`` style format gem5 produces, or
exported as a flat dictionary for the score-predictor feature extraction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class StatGroup:
    """A named group of scalar statistics."""

    def __init__(self, name: str):
        self.name = name
        self._values: Dict[str, float] = {}

    def add(self, key: str, amount: float = 1.0) -> None:
        """Increment statistic ``key`` by ``amount``."""
        self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, key: str, value: float) -> None:
        """Set statistic ``key`` to ``value``."""
        self._values[key] = float(value)

    def get(self, key: str, default: float = 0.0) -> float:
        """Read statistic ``key`` (0 when absent)."""
        return self._values.get(key, default)

    def items(self) -> Iterator[Tuple[str, float]]:
        """Iterate ``(key, value)`` pairs in insertion order."""
        return iter(self._values.items())

    def as_dict(self, prefix: str = "") -> Dict[str, float]:
        """Flat dictionary of this group's statistics, keys prefixed by the group name."""
        prefix = prefix or self.name
        return {f"{prefix}.{key}": value for key, value in self._values.items()}

    def __repr__(self) -> str:
        return f"StatGroup({self.name}, {len(self._values)} stats)"


class SimulationStats:
    """All statistics produced by one simulation run."""

    def __init__(self):
        self._groups: Dict[str, StatGroup] = {}

    def group(self, name: str) -> StatGroup:
        """Return (creating if needed) the group called ``name``."""
        if name not in self._groups:
            self._groups[name] = StatGroup(name)
        return self._groups[name]

    def groups(self) -> List[StatGroup]:
        """All groups in creation order."""
        return list(self._groups.values())

    def as_dict(self) -> Dict[str, float]:
        """Flatten all statistics into ``{"group.key": value}``."""
        flat: Dict[str, float] = {}
        for group in self._groups.values():
            flat.update(group.as_dict())
        return flat

    def get(self, flat_key: str, default: float = 0.0) -> float:
        """Read a statistic by its flat ``group.key`` name."""
        group_name, _, key = flat_key.rpartition(".")
        if group_name in self._groups:
            return self._groups[group_name].get(key, default)
        return default

    def copy(self) -> "SimulationStats":
        """An independent deep copy (used when one result fans out to many
        consumers that may rewrite e.g. ``sim.host_seconds``)."""
        clone = SimulationStats()
        for group in self._groups.values():
            clone_group = clone.group(group.name)
            for key, value in group.items():
                clone_group.set(key, value)
        return clone

    def dump(self) -> str:
        """Render the statistics in a gem5 ``stats.txt``-like format."""
        lines = ["---------- Begin Simulation Statistics ----------"]
        for key, value in sorted(self.as_dict().items()):
            if float(value).is_integer():
                rendered = f"{int(value)}"
            else:
                rendered = f"{value:.6f}"
            lines.append(f"{key:<60} {rendered}")
        lines.append("---------- End Simulation Statistics   ----------")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SimulationStats({len(self._groups)} groups)"

"""Workload definitions: the kernels evaluated in the paper.

The primary kernel type is Conv2D+Bias+ReLU (Listing 5 of the paper) with the
ResNet-derived shape groups of Table II; matrix-matrix multiplication
(Listing 1) is provided as a second kernel type.  Each kernel is exposed both
as an Auto-Scheduler workload function (returning the argument tensors) and
as an AutoTVM schedule template with tunable knobs.
"""

from repro.workloads.conv2d import (
    conv2d_bias_relu_workload,
    conv2d_bias_relu_template,
    Conv2DParams,
)
from repro.workloads.matmul import matmul_workload, matmul_template, MatmulParams
from repro.workloads.resnet import (
    TABLE2_GROUPS,
    GroupSpec,
    group_params,
    scaled_group_params,
    TABLE2_ROWS,
)

__all__ = [
    "conv2d_bias_relu_workload",
    "conv2d_bias_relu_template",
    "Conv2DParams",
    "matmul_workload",
    "matmul_template",
    "MatmulParams",
    "TABLE2_GROUPS",
    "GroupSpec",
    "group_params",
    "scaled_group_params",
    "TABLE2_ROWS",
]

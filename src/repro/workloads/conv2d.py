"""Conv2D+Bias+ReLU kernel (the paper's Listing 5) and its AutoTVM template."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from repro import te
from repro.autotune.space import ConfigSpace
from repro.autotune.template import template
from repro.te import topi
from repro.te.schedule import Schedule
from repro.te.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


@dataclass(frozen=True)
class Conv2DParams:
    """Shape and parameters of one Conv2D+Bias+ReLU kernel instance."""

    n: int
    h: int
    w: int
    co: int
    ci: int
    kh: int
    kw: int
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (1, 1)

    def as_args(self) -> tuple:
        """Positional argument tuple in the paper's Listing 5 order."""
        return (self.n, self.h, self.w, self.co, self.ci, self.kh, self.kw,
                self.stride, self.padding)

    @property
    def output_spatial(self) -> Tuple[int, int]:
        """Spatial output size (OH, OW)."""
        oh = (self.h + 2 * self.padding[0] - self.kh) // self.stride[0] + 1
        ow = (self.w + 2 * self.padding[1] - self.kw) // self.stride[1] + 1
        return oh, ow

    def macs(self) -> int:
        """Multiply-accumulate count of the convolution."""
        oh, ow = self.output_spatial
        return self.n * self.co * oh * ow * self.ci * self.kh * self.kw


def conv2d_bias_relu_workload(
    n: int,
    h: int,
    w: int,
    co: int,
    ci: int,
    kh: int,
    kw: int,
    stride: IntPair = (1, 1),
    padding: IntPair = (1, 1),
) -> List[Tensor]:
    """Conv2D+Bias+ReLU compute definition (Listing 5).

    Returns the argument tensors ``[ifm, weights, bias, ofm]`` — the list that
    the paper transfers to the standalone executable as DLPack tensors.
    """
    ifm = te.placeholder((n, ci, h, w), name="ifm")
    weights = te.placeholder((co, ci, kh, kw), name="weights")
    bias = te.placeholder((n, co, 1, 1), name="bias")
    conv = topi.conv2d_nchw(ifm, weights, stride=stride, padding=padding, name="conv2d")
    ofm = topi.relu(topi.bias_add(conv, bias, name="bias_add"), name="relu")
    return [ifm, weights, bias, ofm]


@template("conv2d_bias_relu")
def conv2d_bias_relu_template(
    cfg: ConfigSpace,
    n: int,
    h: int,
    w: int,
    co: int,
    ci: int,
    kh: int,
    kw: int,
    stride: IntPair = (1, 1),
    padding: IntPair = (1, 1),
) -> Tuple[Schedule, List[Tensor]]:
    """Pre-designed AutoTVM schedule template for Conv2D+Bias+ReLU.

    Knobs: output-channel / output-width / input-channel tilings, loop order
    variant, vectorisation and unrolling of the innermost loops.
    """
    args = conv2d_bias_relu_workload(n, h, w, co, ci, kh, kw, stride, padding)
    ifm, weights, bias, ofm = args
    bias_add_tensor = ofm.op.input_tensors[0]
    conv = bias_add_tensor.op.input_tensors[0]
    schedule = te.create_schedule(ofm)

    # Always inline padding (it is a data-layout helper, not a real stage).
    for stage in schedule.compute_stages():
        if stage.op.name.endswith(".pad"):
            stage.compute_inline()

    conv_stage = schedule[conv]
    n_axis, co_axis, oh_axis, ow_axis = conv.op.axis
    ci_axis, kh_axis, kw_axis = conv.op.reduce_axis

    cfg.define_split("tile_co", co_axis, num_outputs=2)
    cfg.define_split("tile_ow", ow_axis, num_outputs=2)
    cfg.define_split("tile_ci", ci_axis, num_outputs=2)
    cfg.define_knob("reorder", ["outer_co", "outer_oh"])
    cfg.define_knob("vectorize", [True, False])
    cfg.define_knob("unroll_kw", [True, False])

    co_outer, co_inner = cfg["tile_co"].apply(schedule, conv, co_axis)
    ow_outer, ow_inner = cfg["tile_ow"].apply(schedule, conv, ow_axis)
    ci_outer, ci_inner = cfg["tile_ci"].apply(schedule, conv, ci_axis)

    if cfg["reorder"].val == "outer_co":
        conv_stage.reorder(
            n_axis, co_outer, oh_axis, ow_outer, ci_outer, kh_axis, kw_axis,
            ci_inner, co_inner, ow_inner,
        )
    else:
        conv_stage.reorder(
            n_axis, oh_axis, co_outer, ow_outer, ci_outer, kh_axis, kw_axis,
            ci_inner, co_inner, ow_inner,
        )

    if cfg["vectorize"].val:
        conv_stage.vectorize(ow_inner)
    if cfg["unroll_kw"].val:
        conv_stage.unroll(kw_axis)

    # Vectorise the element-wise epilogue stages over their innermost axis.
    for tensor in (ofm,):
        stage = schedule[tensor]
        if stage.leaf_iter_vars:
            stage.vectorize(stage.leaf_iter_vars[-1])
    return schedule, args

"""The ResNet-derived Conv2D+Bias+ReLU shape groups of Table II.

A *group* is a fixed combination of shapes and parameters of one kernel type;
the autotuner generates many *implementations* (schedules) per group.  Beside
the paper's full-size groups, scaled-down variants are provided so the whole
reproduction pipeline runs in minutes on a laptop; the scaling preserves the
structure (kernel sizes, strides, padding, channel ratios) while shrinking
spatial extents and channel counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.conv2d import Conv2DParams


@dataclass(frozen=True)
class GroupSpec:
    """One Table II row: a kernel-type group with fixed shapes and parameters."""

    group_id: int
    params: Conv2DParams

    def __repr__(self) -> str:
        p = self.params
        return (
            f"GroupSpec(id={self.group_id}, N={p.n}, H={p.h}, W={p.w}, CO={p.co}, CI={p.ci}, "
            f"KH={p.kh}, KW={p.kw}, stride={p.stride}, pad={p.padding})"
        )


#: Table II — shapes of the used Conv2D+Bias+ReLU kernels (ResNet layers).
#: Group 4 reproduces the paper's row verbatim (H=14, W=24).
TABLE2_GROUPS: Dict[int, GroupSpec] = {
    0: GroupSpec(0, Conv2DParams(1, 224, 224, 64, 3, 7, 7, (2, 2), (3, 3))),
    1: GroupSpec(1, Conv2DParams(1, 56, 56, 64, 64, 3, 3, (1, 1), (1, 1))),
    2: GroupSpec(2, Conv2DParams(1, 56, 56, 128, 64, 3, 3, (2, 2), (1, 1))),
    3: GroupSpec(3, Conv2DParams(1, 28, 28, 256, 128, 3, 3, (2, 2), (1, 1))),
    4: GroupSpec(4, Conv2DParams(1, 14, 24, 512, 256, 3, 3, (2, 2), (1, 1))),
}

#: Table II rendered as rows (group, N, H, W, CO, CI, KH, KW, stride, pad)
#: for the benchmark that regenerates the table.
TABLE2_ROWS: List[Tuple] = [
    (
        spec.group_id,
        spec.params.n,
        spec.params.h,
        spec.params.w,
        spec.params.co,
        spec.params.ci,
        spec.params.kh,
        spec.params.kw,
        spec.params.stride,
        spec.params.padding,
    )
    for spec in TABLE2_GROUPS.values()
]


def group_params(group_id: int) -> Conv2DParams:
    """Full-size parameters of one Table II group."""
    if group_id not in TABLE2_GROUPS:
        raise KeyError(f"unknown group {group_id}; Table II defines groups {sorted(TABLE2_GROUPS)}")
    return TABLE2_GROUPS[group_id].params


def _scale_dim(value: int, factor: float, minimum: int) -> int:
    return max(int(round(value * factor)), minimum)


def scaled_group_params(group_id: int, scale: float = 0.25) -> Conv2DParams:
    """A scaled-down variant of one Table II group.

    Spatial extents and channel counts are multiplied by ``scale`` (kernel
    size, stride and padding are preserved).  ``scale=1.0`` returns the
    paper's shapes unchanged.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    full = group_params(group_id)
    if scale == 1.0:
        return full
    min_spatial = max(full.kh, full.kw) + 1
    return Conv2DParams(
        n=full.n,
        h=_scale_dim(full.h, scale, min_spatial),
        w=_scale_dim(full.w, scale, min_spatial),
        co=_scale_dim(full.co, scale, 4),
        ci=_scale_dim(full.ci, scale, 3 if full.ci == 3 else 4),
        kh=full.kh,
        kw=full.kw,
        stride=full.stride,
        padding=full.padding,
    )

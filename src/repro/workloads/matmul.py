"""Matrix-matrix multiplication kernel (the paper's Listing 1) and its template."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro import te
from repro.autotune.space import ConfigSpace
from repro.autotune.template import template
from repro.te import topi
from repro.te.schedule import Schedule
from repro.te.tensor import Tensor


@dataclass(frozen=True)
class MatmulParams:
    """Shape of one matrix-matrix multiplication C[N, M] = A[N, L] x B[L, M]."""

    n: int
    l: int
    m: int

    def as_args(self) -> tuple:
        """Positional argument tuple (N, L, M)."""
        return (self.n, self.l, self.m)

    def macs(self) -> int:
        """Multiply-accumulate count."""
        return self.n * self.l * self.m


def matmul_workload(n: int, l: int, m: int) -> List[Tensor]:
    """MMM compute definition (Listing 1); returns ``[A, B, C]``."""
    a = te.placeholder((n, l), name="A")
    b = te.placeholder((l, m), name="B")
    c = topi.matmul(a, b, name="matmul")
    return [a, b, c]


@template("matmul")
def matmul_template(cfg: ConfigSpace, n: int, l: int, m: int) -> Tuple[Schedule, List[Tensor]]:
    """AutoTVM schedule template for MMM (mirrors the paper's Listing 2 split)."""
    args = matmul_workload(n, l, m)
    a, b, c = args
    schedule = te.create_schedule(c)
    stage = schedule[c]
    y_axis, x_axis = c.op.axis
    (k_axis,) = c.op.reduce_axis

    cfg.define_split("split_y", y_axis, num_outputs=2)
    cfg.define_split("split_x", x_axis, num_outputs=2)
    cfg.define_split("split_k", k_axis, num_outputs=2)
    cfg.define_knob("vectorize", [True, False])
    cfg.define_knob("unroll_k", [False, True])

    y_outer, y_inner = cfg["split_y"].apply(schedule, c, y_axis)
    x_outer, x_inner = cfg["split_x"].apply(schedule, c, x_axis)
    k_outer, k_inner = cfg["split_k"].apply(schedule, c, k_axis)

    stage.reorder(y_outer, x_outer, k_outer, k_inner, y_inner, x_inner)
    if cfg["vectorize"].val:
        stage.vectorize(x_inner)
    if cfg["unroll_k"].val:
        stage.unroll(k_inner)
    return schedule, args

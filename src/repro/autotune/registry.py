"""A tiny global function registry (stand-in for ``tvm._ffi.register_func``).

The Auto-Scheduler flow resolves its measurement callback through this
registry, so replacing native execution with a simulator is a one-line
override (the paper's Listing 4)::

    @override_func("auto_scheduler.local_runner.run")
    def simulator_run(inputs, build_results, ...):
        ...
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

_REGISTRY: Dict[str, Callable] = {}


def register_func(name: str, func: Optional[Callable] = None, override: bool = False):
    """Register ``func`` under ``name``; usable as a decorator."""

    def do_register(target: Callable) -> Callable:
        if name in _REGISTRY and not override:
            raise ValueError(
                f"function {name!r} is already registered; pass override=True to replace it"
            )
        _REGISTRY[name] = target
        return target

    if func is not None:
        return do_register(func)
    return do_register


def override_func(name: str, func: Optional[Callable] = None):
    """Register ``func`` under ``name``, replacing any existing registration."""
    return register_func(name, func, override=True)


def get_func(name: str, default: Optional[Callable] = None) -> Optional[Callable]:
    """Look up a registered function (``default`` when absent)."""
    return _REGISTRY.get(name, default)


def remove_func(name: str) -> None:
    """Remove a registration (no error if absent)."""
    _REGISTRY.pop(name, None)


def registered_names() -> list:
    """All registered function names."""
    return sorted(_REGISTRY)

"""Measurement interfaces shared by all tuners (mirrors ``tvm.autotvm.measure``).

Tuners never talk to hardware or simulators directly; they submit batches of
``MeasureInput`` objects to a :class:`Builder` (compilation) and a
:class:`Runner` (execution) and receive ``MeasureResult`` objects back.  The
paper swaps the runner — native board vs. parallel simulators — without
touching anything else, and this module defines exactly that seam.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.autotune.space import ConfigEntity
from repro.autotune.task import Task
from repro.codegen.program import Program
from repro.reliability import RetryPolicy


class MeasureErrorNo:
    """Error codes attached to measurement results (subset of AutoTVM's)."""

    NO_ERROR = 0
    INSTANTIATION_ERROR = 1
    COMPILE_ERROR = 2
    RUNTIME_ERROR = 3
    #: The candidate exceeded the runner's ``timeout_s`` simulation budget.
    RUN_TIMEOUT = 4
    #: The worker executing the candidate died (e.g. a broken process pool).
    WORKER_CRASH = 5


@dataclass
class MeasureInput:
    """A request to measure one configuration of one task."""

    task: Task
    config: ConfigEntity

    def __repr__(self) -> str:
        return f"MeasureInput({self.task.name}, config #{self.config.index})"


@dataclass
class BuildResult:
    """The artefact produced by a builder for one measure input."""

    program: Optional[Program]
    build_seconds: float
    error_no: int = MeasureErrorNo.NO_ERROR
    error_msg: str = ""

    @property
    def ok(self) -> bool:
        """Whether compilation succeeded."""
        return self.error_no == MeasureErrorNo.NO_ERROR and self.program is not None


@dataclass
class MeasureResult:
    """The outcome of running one built implementation.

    ``costs`` holds the per-repetition run times for native execution, or the
    (single) score returned by a simulator-backed runner.  Lower is better in
    both cases.
    """

    costs: List[float]
    error_no: int = MeasureErrorNo.NO_ERROR
    error_msg: str = ""
    all_cost: float = 0.0
    timestamp: float = field(default_factory=time.time)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the measurement succeeded."""
        return self.error_no == MeasureErrorNo.NO_ERROR and bool(self.costs)

    @property
    def mean_cost(self) -> float:
        """Mean cost (infinite for failed measurements)."""
        if not self.ok:
            return float("inf")
        return float(sum(self.costs) / len(self.costs))

    def __repr__(self) -> str:
        return f"MeasureResult(mean_cost={self.mean_cost:.6g}, error_no={self.error_no})"


class Builder:
    """Compiles measure inputs into runnable artefacts."""

    def build(self, measure_inputs: Sequence[MeasureInput]) -> List[BuildResult]:
        """Build all ``measure_inputs`` and return one result per input."""
        raise NotImplementedError


class Runner:
    """Executes built artefacts and reports their cost.

    Subclasses implement :meth:`run`; the paper's ``SimulatorRunner``
    (Listing 3) is one such subclass.
    """

    def __init__(self, n_parallel: int = 1, timeout_s: float = 0.0):
        self.n_parallel = n_parallel
        self.timeout_s = timeout_s

    def run(
        self,
        measure_inputs: Sequence[MeasureInput],
        build_results: Sequence[BuildResult],
    ) -> List[MeasureResult]:
        """Run all built implementations and return one result per input."""
        raise NotImplementedError


#: Error codes :func:`measure_batch` re-runs by default: transient
#: infrastructure failures, not properties of the candidate itself.
RETRYABLE_ERROR_NOS = (MeasureErrorNo.WORKER_CRASH, MeasureErrorNo.RUN_TIMEOUT)


def measure_batch(
    builder: Builder,
    runner: Runner,
    measure_inputs: Sequence[MeasureInput],
    retry: Optional[RetryPolicy] = None,
    retryable: Sequence[int] = RETRYABLE_ERROR_NOS,
) -> List[MeasureResult]:
    """Build then run a batch of measure inputs, re-running transient failures.

    Builds happen once.  After the first run, results whose ``error_no`` is
    in ``retryable`` are re-run — only that failed slice, with the original
    build artefacts — up to ``retry.max_attempts`` total attempts with
    deterministic backoff between rounds.  ``retry=None`` reads
    ``REPRO_RETRY_*`` from the environment, which disables retrying by
    default, preserving the historical single-shot behaviour.
    """
    build_results = builder.build(measure_inputs)
    results = list(runner.run(measure_inputs, build_results))
    policy = retry if retry is not None else RetryPolicy.from_env()
    retryable_set = set(retryable)
    for attempt in range(1, policy.max_attempts):
        failed = [i for i, result in enumerate(results) if result.error_no in retryable_set]
        if not failed:
            break
        time.sleep(policy.delay_s(attempt, key="measure_batch"))
        retried = runner.run(
            [measure_inputs[i] for i in failed],
            [build_results[i] for i in failed],
        )
        for i, result in zip(failed, retried):
            results[i] = result
    return results

"""Tuners for the template-based flow."""

from repro.autotune.tuner.tuner import Tuner
from repro.autotune.tuner.random_tuner import RandomTuner
from repro.autotune.tuner.grid_tuner import GridSearchTuner
from repro.autotune.tuner.ga_tuner import GATuner
from repro.autotune.tuner.model_based_tuner import ModelBasedTuner

__all__ = ["Tuner", "RandomTuner", "GridSearchTuner", "GATuner", "ModelBasedTuner"]

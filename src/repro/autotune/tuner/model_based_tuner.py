"""Cost-model-guided tuner (AutoTVM's ``XGBTuner`` equivalent).

A gradient-boosted-tree regression model is fitted on the configurations
measured so far (numeric knob encoding -> cost); candidate configurations are
then ranked by predicted cost and the most promising unvisited ones are
measured next, with an epsilon of random exploration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autotune.measure import MeasureInput, MeasureResult
from repro.autotune.space import ConfigEntity
from repro.autotune.task import Task
from repro.autotune.tuner.tuner import Tuner


class ModelBasedTuner(Tuner):
    """Proposes configurations ranked by a learned cost model."""

    def __init__(
        self,
        task: Task,
        plan_size: int = 32,
        candidate_pool: int = 256,
        epsilon_greedy: float = 0.15,
        model_factory=None,
        seed: int = 0,
    ):
        super().__init__(task, seed)
        self.plan_size = plan_size
        self.candidate_pool = candidate_pool
        self.epsilon_greedy = epsilon_greedy
        self._model_factory = model_factory or self._default_model_factory
        self._model = None
        self._train_features: List[List[float]] = []
        self._train_costs: List[float] = []

    @staticmethod
    def _default_model_factory():
        from repro.predictor.xgboost import GradientBoostedTrees

        return GradientBoostedTrees(
            n_estimators=60, max_depth=3, learning_rate=0.15, subsample=0.9, random_state=0
        )

    # -- tuner interface -----------------------------------------------------
    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        if self._model is None or len(self._train_costs) < self.plan_size:
            return self._sample_unvisited(batch_size)

        candidates = self._sample_unvisited(self.candidate_pool)
        if not candidates:
            return []
        features = np.asarray([config.features() for config in candidates], dtype=float)
        predicted = self._model.predict(features)
        order = np.argsort(predicted)

        batch: List[ConfigEntity] = []
        for position in order:
            if len(batch) >= batch_size:
                break
            if self.rng.random() < self.epsilon_greedy:
                continue
            batch.append(candidates[int(position)])
        while len(batch) < batch_size:
            extra = self._sample_unvisited(1)
            if not extra:
                break
            if any(c.index == extra[0].index for c in batch):
                continue
            batch.append(extra[0])
        return batch

    def update(self, inputs: Sequence[MeasureInput], results: Sequence[MeasureResult]) -> None:
        for measure_input, result in zip(inputs, results):
            if not result.ok or not np.isfinite(result.mean_cost):
                continue
            self._train_features.append(measure_input.config.features())
            self._train_costs.append(result.mean_cost)
        if len(self._train_costs) >= self.plan_size:
            self._fit_model()

    def _fit_model(self) -> None:
        features = np.asarray(self._train_features, dtype=float)
        costs = np.asarray(self._train_costs, dtype=float)
        # Train on log-cost: the dynamic range of run times is large and the
        # model only needs to rank configurations.
        targets = np.log(np.maximum(costs, 1e-30))
        self._model = self._model_factory()
        self._model.fit(features, targets)

    def predicted_cost(self, config: ConfigEntity) -> Optional[float]:
        """Predicted cost for ``config`` (None before the model is first fitted)."""
        if self._model is None:
            return None
        features = np.asarray([config.features()], dtype=float)
        return float(np.exp(self._model.predict(features)[0]))

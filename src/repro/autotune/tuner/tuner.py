"""Base class of all tuners."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.autotune.builder import LocalBuilder
from repro.autotune.measure import (
    Builder,
    MeasureInput,
    MeasureResult,
    Runner,
    measure_batch,
)
from repro.autotune.space import ConfigEntity
from repro.autotune.task import Task
from repro.utils.rng import new_generator


class Tuner:
    """Iteratively proposes configurations and learns from their measured cost."""

    def __init__(self, task: Task, seed: int = 0):
        self.task = task
        self.seed = seed
        self.rng = new_generator(seed, "tuner", type(self).__name__, task.name)
        self.best_config: Optional[ConfigEntity] = None
        self.best_cost: float = float("inf")
        self.best_measure: Optional[MeasureResult] = None
        self.visited: set = set()
        self.trial_count = 0

    # -- to be provided by concrete tuners ---------------------------------
    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        """Propose up to ``batch_size`` configurations to measure next."""
        raise NotImplementedError

    def update(self, inputs: Sequence[MeasureInput], results: Sequence[MeasureResult]) -> None:
        """Learn from a finished measurement batch (optional for subclasses)."""

    def has_next(self) -> bool:
        """Whether the tuner can still propose unvisited configurations."""
        return len(self.visited) < len(self.task.config_space)

    # -- main loop -----------------------------------------------------------
    def tune(
        self,
        n_trial: int,
        runner: Runner,
        builder: Optional[Builder] = None,
        batch_size: int = 16,
        callbacks: Iterable = (),
        early_stopping: Optional[int] = None,
    ) -> None:
        """Run the tuning loop for at most ``n_trial`` measurements."""
        builder = builder or LocalBuilder()
        trials_without_improvement = 0
        while self.trial_count < n_trial and self.has_next():
            remaining = n_trial - self.trial_count
            configs = self.next_batch(min(batch_size, remaining))
            if not configs:
                break
            inputs = [MeasureInput(self.task, config) for config in configs]
            results = measure_batch(builder, runner, inputs)
            self.trial_count += len(results)

            improved = False
            for measure_input, result in zip(inputs, results):
                self.visited.add(measure_input.config.index)
                if result.ok and result.mean_cost < self.best_cost:
                    self.best_cost = result.mean_cost
                    self.best_config = measure_input.config
                    self.best_measure = result
                    improved = True
            trials_without_improvement = (
                0 if improved else trials_without_improvement + len(results)
            )

            self.update(inputs, results)
            for callback in callbacks:
                callback(self, inputs, results)

            if early_stopping is not None and trials_without_improvement >= early_stopping:
                break

    # -- helpers --------------------------------------------------------------
    def _sample_unvisited(self, count: int) -> List[ConfigEntity]:
        """Uniformly sample ``count`` configurations not measured yet."""
        space = self.task.config_space
        size = len(space)
        picked: List[ConfigEntity] = []
        attempts = 0
        while (
            len(picked) < count and attempts < 20 * count
            and len(self.visited) + len(picked) < size
        ):
            index = int(self.rng.integers(0, size))
            if index in self.visited or any(c.index == index for c in picked):
                attempts += 1
                continue
            picked.append(space.get(index))
        return picked

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.task.name}, trials={self.trial_count})"

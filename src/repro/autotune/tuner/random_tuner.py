"""Random search tuner."""

from __future__ import annotations

from typing import List

from repro.autotune.space import ConfigEntity
from repro.autotune.tuner.tuner import Tuner


class RandomTuner(Tuner):
    """Proposes uniformly random, unvisited configurations."""

    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        return self._sample_unvisited(batch_size)

"""Genetic-algorithm tuner (AutoTVM's ``GATuner`` equivalent)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.autotune.measure import MeasureInput, MeasureResult
from repro.autotune.space import ConfigEntity
from repro.autotune.task import Task
from repro.autotune.tuner.tuner import Tuner


class GATuner(Tuner):
    """Evolves a population of configurations by selection, crossover and mutation.

    Genomes are the per-knob candidate indices; fitness is the negative
    measured cost.
    """

    def __init__(
        self,
        task: Task,
        population_size: int = 32,
        elite_fraction: float = 0.25,
        mutation_probability: float = 0.1,
        seed: int = 0,
    ):
        super().__init__(task, seed)
        if not 0.0 < elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        self.population_size = population_size
        self.elite_fraction = elite_fraction
        self.mutation_probability = mutation_probability
        self._knob_names = task.config_space.knob_names()
        self._knob_sizes = [len(task.config_space.candidates(name)) for name in self._knob_names]
        self._fitness: Dict[int, float] = {}

    # -- genome helpers -----------------------------------------------------
    def _genome_to_index(self, genome: Sequence[int]) -> int:
        index = 0
        for gene, size in zip(genome, self._knob_sizes):
            index = index * size + int(gene)
        return index

    def _index_to_genome(self, index: int) -> List[int]:
        genome = [0] * len(self._knob_sizes)
        remaining = index
        for position in range(len(self._knob_sizes) - 1, -1, -1):
            size = self._knob_sizes[position]
            genome[position] = remaining % size
            remaining //= size
        return genome

    def _random_genome(self) -> List[int]:
        return [int(self.rng.integers(0, size)) for size in self._knob_sizes]

    # -- tuner interface -------------------------------------------------------
    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        if len(self._fitness) < self.population_size:
            return self._sample_unvisited(batch_size)

        ranked = sorted(self._fitness.items(), key=lambda item: item[1], reverse=True)
        elite_count = max(2, int(len(ranked) * self.elite_fraction))
        elite_genomes = [self._index_to_genome(index) for index, _ in ranked[:elite_count]]

        offspring: List[ConfigEntity] = []
        attempts = 0
        while len(offspring) < batch_size and attempts < 50 * batch_size:
            attempts += 1
            parent_a, parent_b = (
                elite_genomes[int(self.rng.integers(0, len(elite_genomes)))],
                elite_genomes[int(self.rng.integers(0, len(elite_genomes)))],
            )
            crossover_point = int(self.rng.integers(0, len(parent_a) + 1))
            child = parent_a[:crossover_point] + parent_b[crossover_point:]
            for position, size in enumerate(self._knob_sizes):
                if self.rng.random() < self.mutation_probability:
                    child[position] = int(self.rng.integers(0, size))
            index = self._genome_to_index(child)
            if index in self.visited or any(c.index == index for c in offspring):
                continue
            offspring.append(self.task.config_space.get(index))
        if len(offspring) < batch_size:
            offspring.extend(self._sample_unvisited(batch_size - len(offspring)))
        return offspring

    def update(self, inputs: Sequence[MeasureInput], results: Sequence[MeasureResult]) -> None:
        for measure_input, result in zip(inputs, results):
            cost = result.mean_cost if result.ok else float("inf")
            fitness = -cost if np.isfinite(cost) else -1e30
            self._fitness[measure_input.config.index] = fitness
        if len(self._fitness) > 4 * self.population_size:
            ranked = sorted(self._fitness.items(), key=lambda item: item[1], reverse=True)
            self._fitness = dict(ranked[: 2 * self.population_size])

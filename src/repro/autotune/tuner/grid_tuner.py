"""Exhaustive grid-search tuner."""

from __future__ import annotations

from typing import List

from repro.autotune.space import ConfigEntity
from repro.autotune.task import Task
from repro.autotune.tuner.tuner import Tuner


class GridSearchTuner(Tuner):
    """Enumerates the configuration space in index order."""

    def __init__(self, task: Task, seed: int = 0):
        super().__init__(task, seed)
        self._cursor = 0

    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        space = self.task.config_space
        batch: List[ConfigEntity] = []
        while len(batch) < batch_size and self._cursor < len(space):
            if self._cursor not in self.visited:
                batch.append(space.get(self._cursor))
            self._cursor += 1
        return batch

    def has_next(self) -> bool:
        return self._cursor < len(self.task.config_space)

"""Tuning callbacks: record logging and progress reporting."""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.autotune.measure import MeasureInput, MeasureResult

Callback = Callable[[object, Sequence[MeasureInput], Sequence[MeasureResult]], None]


def log_to_records(records: List[dict]) -> Callback:
    """Append one dictionary per measurement to ``records``."""

    def callback(tuner, inputs: Sequence[MeasureInput], results: Sequence[MeasureResult]) -> None:
        for measure_input, result in zip(inputs, results):
            records.append(
                {
                    "task": measure_input.task.name,
                    "config_index": measure_input.config.index,
                    "config": {
                        name: repr(measure_input.config[name])
                        for name in measure_input.config.knob_names()
                    },
                    "cost": result.mean_cost,
                    "error_no": result.error_no,
                    "extra": dict(result.extra),
                }
            )

    return callback


def progress_callback(prefix: str = "tuning", every: int = 1, printer=print) -> Callback:
    """Print the running best cost every ``every`` batches."""
    state = {"batch": 0, "best": float("inf"), "trials": 0}

    def callback(tuner, inputs: Sequence[MeasureInput], results: Sequence[MeasureResult]) -> None:
        state["batch"] += 1
        state["trials"] += len(results)
        for result in results:
            if result.ok and result.mean_cost < state["best"]:
                state["best"] = result.mean_cost
        if state["batch"] % every == 0:
            printer(
                f"[{prefix}] batch {state['batch']}: {state['trials']} trials, "
                f"best cost {state['best']:.6g}"
            )

    return callback

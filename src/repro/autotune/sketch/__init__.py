"""Auto-Scheduler (Ansor-style) sketch-based tuning flow."""

from repro.autotune.sketch.dag import ComputeDAG
from repro.autotune.sketch.sketch import Sketch, generate_sketches
from repro.autotune.sketch.annotation import ScheduleCandidate, AnnotationSampler
from repro.autotune.sketch.cost_model import RandomCostModel, LearnedCostModel
from repro.autotune.sketch.auto_scheduler import (
    SearchTask,
    TuningOptions,
    SketchPolicy,
    auto_schedule,
    LOCAL_RUNNER_FUNC_NAME,
)

__all__ = [
    "ComputeDAG",
    "Sketch",
    "generate_sketches",
    "ScheduleCandidate",
    "AnnotationSampler",
    "RandomCostModel",
    "LearnedCostModel",
    "SearchTask",
    "TuningOptions",
    "SketchPolicy",
    "auto_schedule",
    "LOCAL_RUNNER_FUNC_NAME",
]

"""Annotation phase: turning sketches into concrete schedule candidates.

Annotation fills a sketch's placeholders: concrete tile sizes for every
tiling level, vectorisation of the innermost spatial loop, and unrolling of
small inner loops.  Candidates know how to apply themselves to a fresh
schedule, how to mutate (for the evolutionary search) and how to encode
themselves as a feature vector (for the cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autotune.space import all_factorizations
from repro.autotune.sketch.sketch import Sketch, loop_order
from repro.te.operation import ComputeOp
from repro.te.schedule import Schedule, create_schedule
from repro.te.tensor import IterVar, Tensor


@dataclass
class ScheduleCandidate:
    """One fully annotated implementation of a kernel."""

    sketch: Sketch
    #: Tile sizes per axis name (level extents, outermost first; product == extent).
    tile_sizes: Dict[str, Tuple[int, ...]]
    vectorize_inner: bool = True
    unroll_inner: bool = False
    annotate_consumers: bool = True

    # -- identity -----------------------------------------------------------
    def key(self) -> Tuple:
        """Hashable identity used for de-duplication."""
        tiles = tuple(sorted((name, sizes) for name, sizes in self.tile_sizes.items()))
        return (
            self.sketch.order_rule,
            tiles,
            self.vectorize_inner,
            self.unroll_inner,
            self.annotate_consumers,
        )

    def features(self) -> List[float]:
        """Numeric encoding of the candidate (input of the search cost model)."""
        encoded: List[float] = []
        for name in sorted(self.tile_sizes):
            for size in self.tile_sizes[name]:
                encoded.append(float(np.log2(max(size, 1))))
        encoded.append(1.0 if self.vectorize_inner else 0.0)
        encoded.append(1.0 if self.unroll_inner else 0.0)
        encoded.append(1.0 if self.annotate_consumers else 0.0)
        encoded.append(0.0 if self.sketch.order_rule == "ssrsrs" else 1.0)
        return encoded

    # -- application -----------------------------------------------------------
    def apply(self, output_tensors: List[Tensor]) -> Schedule:
        """Build a concrete schedule implementing this candidate."""
        schedule = create_schedule(output_tensors)

        # Rule: always inline element-wise producers (padding, broadcasts).
        inline_names = set(self.sketch.inline_ops)
        for stage in schedule.compute_stages():
            if stage.op.name in inline_names:
                stage.compute_inline()

        heavy_op = self._find_op(schedule, self.sketch.heavy_op_name)
        if heavy_op is not None:
            self._apply_heavy_op(schedule, heavy_op)

        if self.annotate_consumers:
            self._annotate_consumers(schedule, inline_names)
        return schedule

    def _find_op(self, schedule: Schedule, name: str) -> Optional[ComputeOp]:
        for stage in schedule.compute_stages():
            if stage.op.name == name:
                return stage.op
        return None

    def _apply_heavy_op(self, schedule: Schedule, op: ComputeOp) -> None:
        stage = schedule[op.output_tensor]
        spatial_axes: Dict[str, List[IterVar]] = {}
        reduce_axes: Dict[str, List[IterVar]] = {}

        for plan, mapping, axes in (
            [(p, spatial_axes, op.axis) for p in self.sketch.spatial_plans]
            + [(p, reduce_axes, op.reduce_axis) for p in self.sketch.reduce_plans]
        ):
            axis = next(a for a in axes if a.name == plan.name)
            sizes = self.tile_sizes.get(plan.name, (axis.extent,))
            current = axis
            for size in sizes[:0:-1]:
                current, _ = stage.split(current, factor=size)
            # The stage tracks which leaf loops each original axis decomposed
            # into (outermost first).
            mapping[plan.name] = self._split_chain(stage, axis, sizes)

        order = loop_order(self.sketch, spatial_axes, reduce_axes)
        if order:
            stage.reorder(*order)

        innermost_spatial = self._innermost_spatial(spatial_axes)
        if innermost_spatial is not None:
            if self.vectorize_inner and innermost_spatial.extent > 1:
                stage.vectorize(innermost_spatial)
            elif self.unroll_inner and innermost_spatial.extent <= 16:
                stage.unroll(innermost_spatial)

    def _split_chain(self, stage, axis: IterVar, sizes: Tuple[int, ...]) -> List[IterVar]:
        """Return the loops produced for ``axis`` (outermost first) from the stage state."""
        decomposition = stage.axis_decomposition()
        return decomposition.get(axis, [axis])

    def _innermost_spatial(self, spatial_axes: Dict[str, List[IterVar]]) -> Optional[IterVar]:
        if not self.sketch.spatial_plans:
            return None
        last_plan = self.sketch.spatial_plans[-1]
        loops = spatial_axes.get(last_plan.name)
        if not loops:
            return None
        return loops[-1]

    def _annotate_consumers(self, schedule: Schedule, inline_names: set) -> None:
        for stage in schedule.compute_stages():
            if stage.inlined or stage.op.name == self.sketch.heavy_op_name:
                continue
            if stage.op.name in inline_names or not stage.leaf_iter_vars:
                continue
            innermost = stage.leaf_iter_vars[-1]
            if innermost.extent > 1:
                stage.vectorize(innermost)

    def __repr__(self) -> str:
        tiles = {name: list(sizes) for name, sizes in self.tile_sizes.items()}
        return (
            f"ScheduleCandidate(order={self.sketch.order_rule}, tiles={tiles}, "
            f"vec={self.vectorize_inner}, unroll={self.unroll_inner})"
        )


class AnnotationSampler:
    """Randomly samples and mutates schedule candidates for a set of sketches."""

    def __init__(self, rng: np.random.Generator, max_inner_tile: int = 64):
        self.rng = rng
        self.max_inner_tile = max_inner_tile
        self._factorization_cache: Dict[Tuple[int, int], List[Tuple[int, ...]]] = {}

    # -- sampling -----------------------------------------------------------
    def _factorizations(self, extent: int, parts: int) -> List[Tuple[int, ...]]:
        key = (extent, parts)
        if key not in self._factorization_cache:
            self._factorization_cache[key] = all_factorizations(extent, parts)
        return self._factorization_cache[key]

    def sample_tiles(self, sketch: Sketch) -> Dict[str, Tuple[int, ...]]:
        """Random tile sizes for every tunable axis of ``sketch``."""
        tiles: Dict[str, Tuple[int, ...]] = {}
        for plan in sketch.axis_plans():
            if plan.levels <= 1 or plan.extent <= 1:
                tiles[plan.name] = (plan.extent,)
                continue
            options = self._factorizations(plan.extent, plan.levels)
            choice = options[int(self.rng.integers(0, len(options)))]
            tiles[plan.name] = tuple(choice)
        return tiles

    def sample(self, sketch: Sketch) -> ScheduleCandidate:
        """One random candidate for ``sketch``."""
        return ScheduleCandidate(
            sketch=sketch,
            tile_sizes=self.sample_tiles(sketch),
            vectorize_inner=bool(self.rng.random() < 0.7),
            unroll_inner=bool(self.rng.random() < 0.3),
            annotate_consumers=bool(self.rng.random() < 0.7),
        )

    def mutate(self, candidate: ScheduleCandidate) -> ScheduleCandidate:
        """Return a copy of ``candidate`` with one decision re-sampled."""
        tiles = dict(candidate.tile_sizes)
        sketch = candidate.sketch
        tunable = [plan for plan in sketch.tunable_axes()]
        mutation_kind = self.rng.random()
        vectorize = candidate.vectorize_inner
        unroll = candidate.unroll_inner
        consumers = candidate.annotate_consumers
        if tunable and mutation_kind < 0.7:
            plan = tunable[int(self.rng.integers(0, len(tunable)))]
            options = self._factorizations(plan.extent, plan.levels)
            tiles[plan.name] = tuple(options[int(self.rng.integers(0, len(options)))])
        elif mutation_kind < 0.8:
            vectorize = not vectorize
        elif mutation_kind < 0.9:
            unroll = not unroll
        else:
            consumers = not consumers
        return ScheduleCandidate(
            sketch=sketch,
            tile_sizes=tiles,
            vectorize_inner=vectorize,
            unroll_inner=unroll,
            annotate_consumers=consumers,
        )

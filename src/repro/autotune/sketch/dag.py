"""Compute DAG analysis for sketch generation."""

from __future__ import annotations

from typing import List, Sequence

from repro.te.operation import ComputeOp, Operation, PlaceholderOp, collect_ops
from repro.te.tensor import Tensor


class ComputeDAG:
    """The operator DAG of one kernel, with the classification sketch rules need."""

    def __init__(self, output_tensors: Sequence[Tensor]):
        if isinstance(output_tensors, Tensor):
            output_tensors = [output_tensors]
        self.outputs = list(output_tensors)
        self.ops: List[Operation] = collect_ops([t.op for t in self.outputs])

    # -- classification -----------------------------------------------------
    def compute_ops(self) -> List[ComputeOp]:
        """All compute operations in producer-before-consumer order."""
        return [op for op in self.ops if isinstance(op, ComputeOp)]

    def placeholder_ops(self) -> List[PlaceholderOp]:
        """All input placeholders."""
        return [op for op in self.ops if isinstance(op, PlaceholderOp)]

    def reduction_ops(self) -> List[ComputeOp]:
        """Compute operations with at least one reduction axis (the heavy ops)."""
        return [op for op in self.compute_ops() if op.reduce_axis]

    def elementwise_ops(self) -> List[ComputeOp]:
        """Compute operations without reductions (candidates for inlining)."""
        return [op for op in self.compute_ops() if not op.reduce_axis]

    def output_ops(self) -> List[Operation]:
        """Operations producing the kernel outputs (never inlined)."""
        return [t.op for t in self.outputs]

    def inlinable_ops(self) -> List[ComputeOp]:
        """Element-wise operations that are not outputs (always inlined by the sketch rules)."""
        output_ids = {id(op) for op in self.output_ops()}
        return [op for op in self.elementwise_ops() if id(op) not in output_ids]

    def flop_estimate(self) -> float:
        """Rough floating-point operation count of the kernel (for reporting)."""
        total = 0.0
        for op in self.compute_ops():
            points = 1.0
            for axis in op.axis:
                points *= axis.extent
            reduce_size = 1.0
            for axis in op.reduce_axis:
                reduce_size *= axis.extent
            # One multiply-accumulate per reduction point, one op per element otherwise.
            total += points * (2.0 * reduce_size if op.reduce_axis else 1.0)
        return total

    def __repr__(self) -> str:
        names = [op.name for op in self.compute_ops()]
        return f"ComputeDAG({names})"

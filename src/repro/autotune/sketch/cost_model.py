"""Search cost models for the sketch-based flow.

The cost model ranks unmeasured candidates so that the evolutionary search
spends measurements on promising implementations.  It is distinct from the
paper's *score predictor*: the cost model learns from whatever costs the
runner returns (native times or simulator-derived scores), while the score
predictor maps simulator statistics to scores.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.autotune.sketch.annotation import ScheduleCandidate


class RandomCostModel:
    """Assigns random scores; turns the search into random sampling."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def update(self, candidates: Sequence[ScheduleCandidate], costs: Sequence[float]) -> None:
        """Random model: nothing to learn."""

    def predict(self, candidates: Sequence[ScheduleCandidate]) -> np.ndarray:
        """Random scores (lower is better, as for real costs)."""
        return self.rng.random(len(candidates))


class LearnedCostModel:
    """Gradient-boosted-tree model over the candidates' decision features."""

    def __init__(self, min_samples: int = 16, seed: int = 0):
        self.min_samples = min_samples
        self.seed = seed
        self._features: List[List[float]] = []
        self._costs: List[float] = []
        self._model = None

    def update(self, candidates: Sequence[ScheduleCandidate], costs: Sequence[float]) -> None:
        """Add measured candidates and refit once enough samples are available."""
        for candidate, cost in zip(candidates, costs):
            if not np.isfinite(cost):
                continue
            self._features.append(candidate.features())
            self._costs.append(float(cost))
        if len(self._costs) >= self.min_samples:
            self._fit()

    def _fit(self) -> None:
        from repro.predictor.xgboost import GradientBoostedTrees

        features = self._padded_features(self._features)
        targets = np.log(np.maximum(np.asarray(self._costs), 1e-30))
        self._model = GradientBoostedTrees(
            n_estimators=80, max_depth=3, learning_rate=0.15, subsample=0.9, random_state=self.seed
        )
        self._model.fit(features, targets)

    @staticmethod
    def _padded_features(rows: Sequence[Sequence[float]]) -> np.ndarray:
        width = max(len(row) for row in rows)
        out = np.zeros((len(rows), width), dtype=float)
        for i, row in enumerate(rows):
            out[i, : len(row)] = row
        return out

    def predict(self, candidates: Sequence[ScheduleCandidate]) -> np.ndarray:
        """Predicted (relative) cost per candidate; random before the first fit."""
        if self._model is None:
            rng = np.random.default_rng(self.seed)
            return rng.random(len(candidates))
        features = self._padded_features([c.features() for c in candidates])
        trained_width = self._model.n_features_
        if features.shape[1] < trained_width:
            features = np.pad(features, ((0, 0), (0, trained_width - features.shape[1])))
        elif features.shape[1] > trained_width:
            features = features[:, :trained_width]
        return self._model.predict(features)

"""Sketch generation: loop structures with tile-size placeholders.

A sketch fixes the *structure* of a schedule — which stages are inlined, how
many tiling levels each axis of the heavy (reduction) operation gets, and the
relative loop order — while leaving the concrete tile sizes and annotations
to the annotation phase (as in Ansor's sketch/annotation split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.autotune.sketch.dag import ComputeDAG
from repro.te.operation import ComputeOp


@dataclass(frozen=True)
class AxisPlan:
    """Tiling plan for one axis of the heavy operation."""

    name: str
    extent: int
    levels: int  # number of loops this axis is split into (1 = not split)
    is_reduce: bool


@dataclass
class Sketch:
    """A structural schedule plan for one kernel."""

    dag: ComputeDAG
    heavy_op_name: str
    spatial_plans: List[AxisPlan]
    reduce_plans: List[AxisPlan]
    inline_ops: Tuple[str, ...]
    #: Identifier of the loop-order rule (see :func:`loop_order`).
    order_rule: str = "ssrsrs"

    def axis_plans(self) -> List[AxisPlan]:
        """All axis plans (spatial then reduce)."""
        return list(self.spatial_plans) + list(self.reduce_plans)

    def tunable_axes(self) -> List[AxisPlan]:
        """Axes whose tile sizes are chosen during annotation."""
        return [plan for plan in self.axis_plans() if plan.levels > 1 and plan.extent > 1]

    def __repr__(self) -> str:
        spatial = {p.name: p.levels for p in self.spatial_plans}
        reduce_ = {p.name: p.levels for p in self.reduce_plans}
        return (
            f"Sketch({self.heavy_op_name}, spatial={spatial}, reduce={reduce_}, "
            f"order={self.order_rule}, inline={list(self.inline_ops)})"
        )


def generate_sketches(dag: ComputeDAG, max_spatial_levels: int = 3) -> List[Sketch]:
    """Derive sketches from the kernel's compute DAG.

    The derivation rules are the ones the paper's workloads exercise:

    * element-wise producers (padding, broadcasting) are always inlined;
    * the reduction operation is multi-level tiled; one sketch is generated
      per tiling depth (2 and ``max_spatial_levels``) and loop-order rule.
    """
    reduction_ops = dag.reduction_ops()
    if not reduction_ops:
        # Purely element-wise kernel: a single trivial sketch.
        output_op = dag.output_ops()[0]
        assert isinstance(output_op, ComputeOp)
        spatial = [
            AxisPlan(axis.name, axis.extent, 1, False) for axis in output_op.axis
        ]
        return [
            Sketch(
                dag=dag,
                heavy_op_name=output_op.name,
                spatial_plans=spatial,
                reduce_plans=[],
                inline_ops=tuple(op.name for op in dag.inlinable_ops()),
                order_rule="flat",
            )
        ]

    heavy_op = reduction_ops[-1]  # the last (outermost consumer) heavy op
    inline_names = tuple(op.name for op in dag.inlinable_ops())

    sketches: List[Sketch] = []
    for spatial_levels in (2, max_spatial_levels):
        for order_rule in ("ssrsrs", "srs"):
            spatial_plans = [
                AxisPlan(
                    axis.name,
                    axis.extent,
                    spatial_levels if axis.extent > 1 else 1,
                    False,
                )
                for axis in heavy_op.axis
            ]
            reduce_plans = [
                AxisPlan(axis.name, axis.extent, 2 if axis.extent > 1 else 1, True)
                for axis in heavy_op.reduce_axis
            ]
            sketches.append(
                Sketch(
                    dag=dag,
                    heavy_op_name=heavy_op.name,
                    spatial_plans=spatial_plans,
                    reduce_plans=reduce_plans,
                    inline_ops=inline_names,
                    order_rule=order_rule,
                )
            )
    # Deduplicate sketches that collapse to the same structure (e.g. when
    # max_spatial_levels == 2).
    unique: Dict[str, Sketch] = {}
    for sketch in sketches:
        key = repr(sketch)
        unique.setdefault(key, sketch)
    return list(unique.values())


def loop_order(
    sketch: Sketch,
    spatial_axes: Dict[str, Sequence],
    reduce_axes: Dict[str, Sequence],
) -> List:
    """Compute the loop order for a fully tiled candidate.

    ``spatial_axes``/``reduce_axes`` map axis names to their split loops
    (outermost first).  Two order rules are supported:

    * ``ssrsrs``: spatial outer, spatial middle, reduce outer, reduce inner,
      spatial inner — the classic blocked GEMM/conv structure;
    * ``srs``: spatial outer, reduce (all), spatial remaining — a simpler
      structure closer to untiled code.
    """
    spatial_names = [plan.name for plan in sketch.spatial_plans]
    reduce_names = [plan.name for plan in sketch.reduce_plans]

    def level(axes: Dict[str, Sequence], axis_names: List[str], idx: int) -> List:
        out = []
        for axis_name in axis_names:
            loops = list(axes[axis_name])
            if idx < len(loops):
                out.append(loops[idx])
        return out

    max_spatial = max((len(spatial_axes[n]) for n in spatial_names), default=1)
    max_reduce = max((len(reduce_axes[n]) for n in reduce_names), default=0)

    order: List = []
    if sketch.order_rule == "flat" or not reduce_names:
        for name in spatial_names:
            order.extend(spatial_axes[name])
        return order

    if sketch.order_rule == "srs":
        order.extend(level(spatial_axes, spatial_names, 0))
        for idx in range(max_reduce):
            order.extend(level(reduce_axes, reduce_names, idx))
        for idx in range(1, max_spatial):
            order.extend(level(spatial_axes, spatial_names, idx))
        return order

    # "ssrsrs": interleave spatial and reduce tiling levels, keeping the last
    # spatial level innermost (the classic blocked GEMM/conv structure, e.g.
    # S0 R0 S1 R1 S2 for three spatial and two reduce levels).
    order.extend(level(spatial_axes, spatial_names, 0))
    reduce_idx, spatial_idx = 0, 1
    while reduce_idx < max_reduce or spatial_idx < max_spatial - 1:
        if reduce_idx < max_reduce:
            order.extend(level(reduce_axes, reduce_names, reduce_idx))
            reduce_idx += 1
        if spatial_idx < max_spatial - 1:
            order.extend(level(spatial_axes, spatial_names, spatial_idx))
            spatial_idx += 1
    if max_spatial > 1:
        order.extend(level(spatial_axes, spatial_names, max_spatial - 1))
    return order

"""Auto-Scheduler entry points: search tasks, tuning options and the policy.

The measurement backend is resolved through the function registry under
``"auto_scheduler.local_runner.run"`` — exactly the override point the paper
uses (Listing 4) to redirect measurements to simulators — and falls back to a
runner object passed to :func:`auto_schedule`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.autotune.builder import LocalBuilder  # noqa: F401  (re-exported convenience)
from repro.autotune.measure import BuildResult, MeasureErrorNo, MeasureResult, Runner
from repro.autotune.registry import get_func
from repro.autotune.sketch.annotation import AnnotationSampler, ScheduleCandidate
from repro.autotune.sketch.cost_model import LearnedCostModel
from repro.autotune.sketch.dag import ComputeDAG
from repro.autotune.sketch.sketch import Sketch, generate_sketches
from repro.codegen.codegen import CodegenError, build_program
from repro.codegen.target import Target
from repro.te.lower import lower
from repro.te.tensor import Tensor
from repro.utils.rng import new_generator

#: Registry name of the measurement callback (mirrors TVM's function name).
LOCAL_RUNNER_FUNC_NAME = "auto_scheduler.local_runner.run"


class SearchTask:
    """A kernel to optimise with the sketch-based flow.

    ``workload_fn(*args)`` must return the kernel's argument tensors in call
    order (inputs first, outputs last), as in the paper's Listing 5.
    """

    def __init__(self, workload_fn: Callable[..., List[Tensor]], args: tuple, target: Target,
                 name: Optional[str] = None):
        self.workload_fn = workload_fn
        self.args = tuple(args)
        self.target = target
        self.arg_tensors = list(workload_fn(*self.args))
        self.output_tensors = [
            t for t in self.arg_tensors if type(t.op).__name__ == "ComputeOp"
        ]
        if not self.output_tensors:
            raise ValueError("the workload function must return at least one computed tensor")
        self.dag = ComputeDAG(self.output_tensors)
        self.name = name or f"{getattr(workload_fn, '__name__', 'workload')}{list(self.args)}"

    def __repr__(self) -> str:
        return f"SearchTask({self.name}, target={self.target.name})"


@dataclass
class SketchMeasureInput:
    """A candidate scheduled implementation queued for measurement."""

    task: SearchTask
    candidate: ScheduleCandidate


@dataclass
class MeasureRecord:
    """One measured candidate (kept by the policy for later analysis)."""

    candidate: ScheduleCandidate
    cost: float
    result: MeasureResult


@dataclass
class TuningOptions:
    """Search budget and behaviour of the sketch policy."""

    num_measure_trials: int = 64
    num_measures_per_round: int = 16
    population_size: int = 128
    evolution_fraction: float = 0.7
    verbose: bool = False
    seed: int = 0


class SketchPolicy:
    """Sketch generation + random annotation + evolutionary refinement."""

    def __init__(
        self,
        task: SearchTask,
        options: TuningOptions = TuningOptions(),
        cost_model=None,
    ):
        self.task = task
        self.options = options
        self.cost_model = (
            cost_model if cost_model is not None else LearnedCostModel(seed=options.seed)
        )
        self.rng = new_generator(options.seed, "sketch_policy", task.name)
        self.sampler = AnnotationSampler(self.rng)
        self.sketches: List[Sketch] = generate_sketches(task.dag)
        self.records: List[MeasureRecord] = []
        self._seen: set = set()

    # -- candidate generation -------------------------------------------------
    def sample_candidates(self, count: int) -> List[ScheduleCandidate]:
        """Sample ``count`` fresh random candidates across all sketches."""
        candidates: List[ScheduleCandidate] = []
        attempts = 0
        while len(candidates) < count and attempts < 50 * count:
            attempts += 1
            sketch = self.sketches[int(self.rng.integers(0, len(self.sketches)))]
            candidate = self.sampler.sample(sketch)
            if candidate.key() in self._seen:
                continue
            self._seen.add(candidate.key())
            candidates.append(candidate)
        return candidates

    def evolve_candidates(self, count: int) -> List[ScheduleCandidate]:
        """Mutate the best measured candidates, ranked by the cost model."""
        if not self.records:
            return self.sample_candidates(count)
        ranked = sorted(self.records, key=lambda record: record.cost)
        parents = [record.candidate for record in ranked[: max(4, count)]]
        pool: List[ScheduleCandidate] = []
        attempts = 0
        population_size = self.options.population_size
        while len(pool) < population_size and attempts < 20 * population_size:
            attempts += 1
            parent = parents[int(self.rng.integers(0, len(parents)))]
            child = self.sampler.mutate(parent)
            if child.key() in self._seen:
                continue
            pool.append(child)
        if not pool:
            return self.sample_candidates(count)
        predicted = self.cost_model.predict(pool)
        order = np.argsort(predicted)
        chosen = [pool[int(i)] for i in order[:count]]
        for candidate in chosen:
            self._seen.add(candidate.key())
        return chosen

    def next_batch(self, count: int) -> List[ScheduleCandidate]:
        """Candidates for the next measurement round (evolution + exploration)."""
        if not self.records:
            return self.sample_candidates(count)
        evolved = int(round(count * self.options.evolution_fraction))
        batch = self.evolve_candidates(evolved)
        batch.extend(self.sample_candidates(count - len(batch)))
        return batch

    # -- building and measuring -------------------------------------------------
    def build_candidates(
        self, candidates: Sequence[ScheduleCandidate]
    ) -> Tuple[List[SketchMeasureInput], List[BuildResult]]:
        """Lower and code-generate a batch of candidates (never raises)."""
        inputs: List[SketchMeasureInput] = []
        build_results: List[BuildResult] = []
        for position, candidate in enumerate(candidates):
            start = time.perf_counter()
            inputs.append(SketchMeasureInput(self.task, candidate))
            try:
                schedule = candidate.apply(self.task.output_tensors)
                func = lower(
                    schedule,
                    self.task.arg_tensors,
                    name=f"{self.task.name}_cand{len(self.records) + position}",
                )
                program = build_program(func, self.task.target, name=func.name)
                build_results.append(
                    BuildResult(program=program, build_seconds=time.perf_counter() - start)
                )
            except (CodegenError, ValueError, KeyError) as error:
                build_results.append(
                    BuildResult(
                        program=None,
                        build_seconds=time.perf_counter() - start,
                        error_no=MeasureErrorNo.COMPILE_ERROR,
                        error_msg=f"{type(error).__name__}: {error}",
                    )
                )
        return inputs, build_results

    def measure(
        self,
        inputs: Sequence[SketchMeasureInput],
        build_results: Sequence[BuildResult],
        runner: Optional[Runner] = None,
    ) -> List[MeasureResult]:
        """Measure built candidates through the registry override or ``runner``."""
        run_func = get_func(LOCAL_RUNNER_FUNC_NAME)
        if run_func is not None:
            return run_func(inputs, build_results)
        if runner is None:
            raise RuntimeError(
                "no measurement backend: register a function under "
                f"{LOCAL_RUNNER_FUNC_NAME!r} or pass a runner to auto_schedule()"
            )
        return runner.run(inputs, build_results)

    # -- search loop ---------------------------------------------------------------
    def search(self, runner: Optional[Runner] = None) -> Optional[ScheduleCandidate]:
        """Run the full search; returns the best measured candidate."""
        measured = 0
        best: Optional[MeasureRecord] = None
        while measured < self.options.num_measure_trials:
            batch_size = min(
                self.options.num_measures_per_round,
                self.options.num_measure_trials - measured,
            )
            candidates = self.next_batch(batch_size)
            if not candidates:
                break
            inputs, build_results = self.build_candidates(candidates)
            results = self.measure(inputs, build_results, runner)
            measured += len(results)

            round_candidates: List[ScheduleCandidate] = []
            round_costs: List[float] = []
            for measure_input, result in zip(inputs, results):
                cost = result.mean_cost if result.ok else float("inf")
                record = MeasureRecord(measure_input.candidate, cost, result)
                self.records.append(record)
                if np.isfinite(cost):
                    round_candidates.append(measure_input.candidate)
                    round_costs.append(cost)
                if best is None or cost < best.cost:
                    best = record
            if round_candidates:
                self.cost_model.update(round_candidates, round_costs)
            if self.options.verbose:
                best_cost = best.cost if best else float("inf")
                print(f"[auto_scheduler] {measured} trials, best cost {best_cost:.6g}")
        return best.candidate if best else None


def auto_schedule(
    task: SearchTask,
    options: TuningOptions = TuningOptions(),
    runner: Optional[Runner] = None,
    cost_model=None,
) -> Tuple[Optional[ScheduleCandidate], List[MeasureRecord]]:
    """Search for a good schedule of ``task``; returns (best candidate, records)."""
    policy = SketchPolicy(task, options, cost_model=cost_model)
    best = policy.search(runner)
    return best, policy.records

"""Tuning-record logging (the equivalent of AutoTVM's JSON log files).

Every measurement can be appended to a JSON-lines log; logs can be reloaded to
resume tuning, to pick the best configuration without re-measuring, or to feed
offline analysis (for instance, training a score predictor from previously
collected runs).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.autotune.measure import MeasureInput, MeasureResult
from repro.autotune.task import Task


def record_to_dict(measure_input: MeasureInput, result: MeasureResult) -> dict:
    """Serialise one measurement as a plain dictionary."""
    return {
        "task": measure_input.task.name,
        "template": measure_input.task.template_name,
        "args": list(measure_input.task.args),
        "target": measure_input.task.target.name,
        "config_index": measure_input.config.index,
        "costs": list(result.costs),
        "error_no": result.error_no,
        "all_cost": result.all_cost,
        "timestamp": result.timestamp,
        "extra": dict(result.extra),
    }


def save_records(
    path: str | Path,
    measurements: Iterable[Tuple[MeasureInput, MeasureResult]],
    append: bool = True,
) -> int:
    """Append measurements to a JSON-lines log file; returns the number written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    count = 0
    with path.open(mode, encoding="utf-8") as handle:
        for measure_input, result in measurements:
            handle.write(json.dumps(record_to_dict(measure_input, result)) + "\n")
            count += 1
    return count


def load_records(path: str | Path) -> List[dict]:
    """Load all records from a JSON-lines log file."""
    path = Path(path)
    records: List[dict] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def logging_callback(path: str | Path):
    """A tuner callback that appends every finished batch to ``path``."""

    def callback(tuner, inputs: Sequence[MeasureInput], results: Sequence[MeasureResult]) -> None:
        save_records(path, zip(inputs, results), append=True)

    return callback


def best_record(records: Sequence[dict], task_name: Optional[str] = None) -> Optional[dict]:
    """The record with the lowest mean cost (optionally restricted to one task)."""
    best: Optional[dict] = None
    best_cost = float("inf")
    for record in records:
        if task_name is not None and record["task"] != task_name:
            continue
        if record.get("error_no", 0) != 0 or not record.get("costs"):
            continue
        cost = sum(record["costs"]) / len(record["costs"])
        if cost < best_cost:
            best_cost = cost
            best = record
    return best


def apply_history_best(task: Task, records: Sequence[dict]):
    """Return the configuration of the best logged measurement for ``task``.

    This is the equivalent of ``autotvm.apply_history_best``: it lets a
    compilation flow reuse a previous tuning session without re-measuring.
    """
    best = best_record(records, task_name=task.name)
    if best is None:
        return None
    return task.config_space.get(int(best["config_index"]))

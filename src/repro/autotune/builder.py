"""Local builder: template instantiation, lowering and code generation.

This is the stand-in for TVM's ``LocalBuilder``: it turns a (task, config)
pair into a standalone executable artefact.  In the paper the executable
prepares input tensors, calls the compiled workload and is handed to the
simulator by path; here the artefact is the abstract instruction
:class:`~repro.codegen.program.Program`, which plays the same role.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.autotune.measure import BuildResult, Builder, MeasureErrorNo, MeasureInput
from repro.codegen.codegen import CodegenError, build_program


class LocalBuilder(Builder):
    """Builds measure inputs on the local machine."""

    def __init__(self, verbose: bool = False):
        self.verbose = verbose

    def build(self, measure_inputs: Sequence[MeasureInput]) -> List[BuildResult]:
        """Lower and code-generate every measure input; never raises."""
        results: List[BuildResult] = []
        for measure_input in measure_inputs:
            start = time.perf_counter()
            try:
                func = measure_input.task.lower(measure_input.config)
                program = build_program(
                    func,
                    measure_input.task.target,
                    name=f"{measure_input.task.template_name}_{measure_input.config.index}",
                )
                results.append(
                    BuildResult(program=program, build_seconds=time.perf_counter() - start)
                )
            except (CodegenError, ValueError, KeyError) as error:
                results.append(
                    BuildResult(
                        program=None,
                        build_seconds=time.perf_counter() - start,
                        error_no=MeasureErrorNo.COMPILE_ERROR,
                        error_msg=f"{type(error).__name__}: {error}",
                    )
                )
            except Exception as error:  # pragma: no cover - defensive
                results.append(
                    BuildResult(
                        program=None,
                        build_seconds=time.perf_counter() - start,
                        error_no=MeasureErrorNo.INSTANTIATION_ERROR,
                        error_msg=f"{type(error).__name__}: {error}",
                    )
                )
        return results

"""Schedule-template registry for the AutoTVM-style flow.

A template is a function ``template_fn(cfg, *args) -> (schedule, arg_tensors)``
that builds the compute definition, declares its tunable knobs on ``cfg`` and
applies the currently selected configuration.  Pre-designed templates for the
paper's kernels live in :mod:`repro.workloads`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.autotune.space import ConfigSpace
from repro.te.schedule import Schedule
from repro.te.tensor import Tensor

TemplateFn = Callable[..., Tuple[Schedule, List[Tensor]]]

_TEMPLATES: Dict[str, TemplateFn] = {}


def template(name: str) -> Callable[[TemplateFn], TemplateFn]:
    """Decorator registering a schedule template under ``name``."""

    def decorator(func: TemplateFn) -> TemplateFn:
        if name in _TEMPLATES:
            raise ValueError(f"a template named {name!r} is already registered")
        _TEMPLATES[name] = func
        func.template_name = name
        return func

    return decorator


def get_template(name: str) -> TemplateFn:
    """Look up a registered template."""
    try:
        return _TEMPLATES[name]
    except KeyError:
        raise KeyError(
            f"no template named {name!r}; registered templates: {sorted(_TEMPLATES)}"
        ) from None


def list_templates() -> List[str]:
    """Names of all registered templates."""
    return sorted(_TEMPLATES)


def instantiate(name: str, args: tuple, cfg: ConfigSpace) -> Tuple[Schedule, List[Tensor]]:
    """Run template ``name`` with ``cfg`` and positional ``args``."""
    return get_template(name)(cfg, *args)

"""Autotuning framework (AutoTVM / Auto-Scheduler stand-in).

Two tuning flows are provided, mirroring the paper's Figure 2:

* the **template flow** (AutoTVM): an expert writes a schedule template with
  tunable knobs (:func:`~repro.autotune.space.ConfigSpace.define_split`,
  ``define_knob``); tuners search the resulting configuration space.
* the **sketch flow** (Auto-Scheduler / Ansor): sketches are derived
  automatically from the kernel's compute DAG and annotated with concrete
  tile sizes, vectorisation and unrolling; an evolutionary search with a
  learned cost model explores the space.

Both flows measure candidate implementations through a ``Builder`` and a
``Runner``.  The paper's contribution I is the :class:`SimulatorRunner` (and
the registry override for the sketch flow), which replaces native execution
with parallel instruction-accurate simulations.
"""

from repro.autotune.space import (
    ConfigSpace,
    ConfigEntity,
    SplitEntity,
    OtherOptionEntity,
    all_factorizations,
)
from repro.autotune.template import template, get_template, list_templates
from repro.autotune.task import Task, create_task
from repro.autotune.measure import (
    MeasureInput,
    MeasureResult,
    BuildResult,
    MeasureErrorNo,
    RETRYABLE_ERROR_NOS,
    Builder,
    Runner,
    measure_batch,
)
from repro.autotune.builder import LocalBuilder
from repro.autotune.runner import LocalRunner, SimulatorRunner, RunnerStatsCollector
from repro.autotune.registry import register_func, get_func, override_func
from repro.autotune.callbacks import log_to_records, progress_callback
from repro.autotune.record import (
    save_records,
    load_records,
    logging_callback,
    best_record,
    apply_history_best,
)
from repro.autotune.tuner import (
    Tuner,
    RandomTuner,
    GridSearchTuner,
    GATuner,
    ModelBasedTuner,
)
from repro.autotune.sketch import (
    ComputeDAG,
    SearchTask,
    TuningOptions,
    SketchPolicy,
    auto_schedule,
)

__all__ = [
    "ConfigSpace",
    "ConfigEntity",
    "SplitEntity",
    "OtherOptionEntity",
    "all_factorizations",
    "template",
    "get_template",
    "list_templates",
    "Task",
    "create_task",
    "MeasureInput",
    "MeasureResult",
    "BuildResult",
    "MeasureErrorNo",
    "RETRYABLE_ERROR_NOS",
    "Builder",
    "Runner",
    "measure_batch",
    "LocalBuilder",
    "LocalRunner",
    "SimulatorRunner",
    "RunnerStatsCollector",
    "register_func",
    "get_func",
    "override_func",
    "log_to_records",
    "progress_callback",
    "save_records",
    "load_records",
    "logging_callback",
    "best_record",
    "apply_history_best",
    "Tuner",
    "RandomTuner",
    "GridSearchTuner",
    "GATuner",
    "ModelBasedTuner",
    "ComputeDAG",
    "SearchTask",
    "TuningOptions",
    "SketchPolicy",
    "auto_schedule",
]

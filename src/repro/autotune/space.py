"""Configuration spaces for the template-based (AutoTVM-style) tuning flow.

A schedule template calls ``cfg.define_split`` / ``cfg.define_knob`` to
declare its tunable parameters; the cartesian product of all declared knobs is
the design space.  A :class:`ConfigEntity` is one point of that space and can
be applied to a concrete schedule.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.te.schedule import Stage
from repro.te.tensor import IterVar


def factorize(value: int) -> List[int]:
    """All divisors of ``value`` in ascending order."""
    if value <= 0:
        raise ValueError("can only factorise positive integers")
    small, large = [], []
    divisor = 1
    while divisor * divisor <= value:
        if value % divisor == 0:
            small.append(divisor)
            if divisor != value // divisor:
                large.append(value // divisor)
        divisor += 1
    return small + large[::-1]


def all_factorizations(
    extent: int, parts: int, max_factor: Optional[int] = None
) -> List[Tuple[int, ...]]:
    """All ways to write ``extent`` as an ordered product of ``parts`` factors.

    ``max_factor`` bounds every factor except the first (outermost), matching
    AutoTVM's ``max_factor`` option for ``define_split``.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if parts == 1:
        return [(extent,)]
    results: List[Tuple[int, ...]] = []
    for first in factorize(extent):
        for rest in all_factorizations(extent // first, parts - 1, max_factor):
            if max_factor is not None and any(f > max_factor for f in rest):
                continue
            results.append((first,) + rest)
    return results


class SplitEntity:
    """A concrete loop split: the extents of the produced sub-loops (outer first)."""

    def __init__(self, sizes: Sequence[int]):
        self.size = tuple(int(s) for s in sizes)

    def apply(self, schedule, tensor, axis: IterVar) -> List[IterVar]:
        """Split ``axis`` of ``tensor``'s stage into ``len(self.size)`` loops."""
        stage: Stage = schedule[tensor]
        axes: List[IterVar] = []
        current = axis
        # The outermost factor is implicit; split off the inner factors right to left.
        for factor in self.size[:0:-1]:
            current, inner = stage.split(current, factor=factor)
            axes.insert(0, inner)
        axes.insert(0, current)
        return axes

    def __repr__(self) -> str:
        return f"SplitEntity(size={list(self.size)})"

    def __eq__(self, other) -> bool:
        return isinstance(other, SplitEntity) and self.size == other.size

    def __hash__(self) -> int:
        return hash(self.size)


class OtherOptionEntity:
    """A concrete value of a free-form knob."""

    def __init__(self, value):
        self.val = value

    def __repr__(self) -> str:
        return f"OtherOptionEntity({self.val!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, OtherOptionEntity) and self.val == other.val

    def __hash__(self) -> int:
        return hash(self.val)


class ConfigSpace:
    """The declared design space of one template.

    While the template runs, every ``define_*`` call registers a knob; reading
    ``cfg["name"]`` returns the currently selected entity (the first candidate
    during space construction, the chosen one for a :class:`ConfigEntity`).
    """

    def __init__(self):
        self._knobs: Dict[str, List[object]] = {}
        self._selection: Dict[str, int] = {}

    # -- definition API (called by templates) -----------------------------
    def define_split(
        self,
        name: str,
        axis: IterVar | int,
        num_outputs: int = 2,
        max_factor: Optional[int] = None,
        policy: str = "factors",
    ) -> None:
        """Declare a split knob over ``axis`` producing ``num_outputs`` loops."""
        extent = axis.extent if isinstance(axis, IterVar) else int(axis)
        if policy == "factors":
            candidates = [
                SplitEntity(sizes)
                for sizes in all_factorizations(extent, num_outputs, max_factor)
            ]
        elif policy == "power2":
            powers = [p for p in (2**i for i in range(0, extent.bit_length())) if p <= extent]
            combos = itertools.product(powers, repeat=num_outputs - 1)
            candidates = [
                SplitEntity((-1,) + combo)
                for combo in combos
                if int(np.prod(combo)) <= extent
            ]
            candidates = [
                SplitEntity((max(extent // int(np.prod(c.size[1:])), 1),) + c.size[1:])
                for c in candidates
            ]
        else:
            raise ValueError(f"unknown split policy {policy!r}")
        self._register(name, candidates)

    def define_knob(self, name: str, candidates: Sequence[object]) -> None:
        """Declare a free-form knob with explicit ``candidates``."""
        if not candidates:
            raise ValueError(f"knob {name!r} needs at least one candidate")
        self._register(name, [OtherOptionEntity(value) for value in candidates])

    def define_replacement(
        self, name: str = "replacement", policies: Optional[Sequence[str]] = None
    ) -> None:
        """Declare a cache replacement-policy knob over registry names.

        Candidates default to every policy in the
        :data:`repro.sim.policies.POLICIES` registry (wire-id order); an
        explicit ``policies`` sequence restricts the choice and is validated
        against the registry.  The selected value is the policy *name* — feed
        it to :func:`repro.sim.configs.hierarchy_with_replacement` or
        ``RuntimeConfig(replacement=...)`` when measuring the candidate, so
        the tuner explores policy choice alongside the schedule knobs.
        """
        from repro.sim.policies import POLICY_NAMES, get_policy

        if policies is None:
            names = list(POLICY_NAMES)
        else:
            names = [get_policy(policy).name for policy in policies]
        self.define_knob(name, names)

    def _register(self, name: str, candidates: List[object]) -> None:
        if name in self._knobs:
            # Templates are re-run for every configuration; keep the first definition.
            return
        if not candidates:
            raise ValueError(f"knob {name!r} has an empty candidate list")
        self._knobs[name] = candidates
        self._selection.setdefault(name, 0)

    # -- access API ---------------------------------------------------------
    def __getitem__(self, name: str):
        if name not in self._knobs:
            raise KeyError(f"unknown knob {name!r}")
        return self._knobs[name][self._selection[name]]

    def knob_names(self) -> List[str]:
        """Names of all declared knobs, in definition order."""
        return list(self._knobs)

    def candidates(self, name: str) -> List[object]:
        """All candidate entities of one knob."""
        return list(self._knobs[name])

    def __len__(self) -> int:
        total = 1
        for candidates in self._knobs.values():
            total *= len(candidates)
        return total

    # -- configuration enumeration -------------------------------------------
    def get(self, index: int) -> "ConfigEntity":
        """The ``index``-th configuration (row-major over the knobs)."""
        if index < 0 or index >= len(self):
            raise IndexError(f"configuration index {index} out of range (space size {len(self)})")
        selection: Dict[str, int] = {}
        remaining = index
        for name in reversed(list(self._knobs)):
            count = len(self._knobs[name])
            selection[name] = remaining % count
            remaining //= count
        return ConfigEntity(self, selection, index)

    def sample(self, n_samples: int, rng: np.random.Generator) -> List["ConfigEntity"]:
        """Sample ``n_samples`` distinct configurations uniformly (without replacement)."""
        size = len(self)
        n_samples = min(n_samples, size)
        if size <= 10_000_000:
            indices = rng.choice(size, size=n_samples, replace=False)
        else:
            indices = np.unique(rng.integers(0, size, size=2 * n_samples))[:n_samples]
        return [self.get(int(i)) for i in indices]

    def __iter__(self) -> Iterator["ConfigEntity"]:
        for index in range(len(self)):
            yield self.get(index)

    def __repr__(self) -> str:
        return f"ConfigSpace({len(self._knobs)} knobs, {len(self)} configurations)"


class ConfigEntity(ConfigSpace):
    """One concrete point of a :class:`ConfigSpace`."""

    def __init__(self, space: ConfigSpace, selection: Dict[str, int], index: int):
        super().__init__()
        self._knobs = space._knobs
        self._selection = dict(selection)
        self.index = index

    def to_dict(self) -> Dict[str, object]:
        """Chosen entity per knob (for logging)."""
        return {name: self[name] for name in self._knobs}

    def features(self) -> List[float]:
        """A numeric encoding of the configuration (used by cost-model tuners)."""
        encoded: List[float] = []
        for name in self._knobs:
            entity = self[name]
            if isinstance(entity, SplitEntity):
                encoded.extend(float(np.log2(max(s, 1))) for s in entity.size)
            elif isinstance(entity, OtherOptionEntity):
                if isinstance(entity.val, bool):
                    encoded.append(1.0 if entity.val else 0.0)
                elif isinstance(entity.val, (int, float)):
                    encoded.append(float(entity.val))
                else:
                    encoded.append(float(self._selection[name]))
            else:
                encoded.append(float(self._selection[name]))
        return encoded

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}={self[name]!r}" for name in self._knobs)
        return f"ConfigEntity(#{self.index}: {parts})"

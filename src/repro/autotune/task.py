"""Tuning tasks: a template, its arguments and a compilation target."""

from __future__ import annotations

from typing import List, Tuple

from repro.autotune.template import instantiate as _instantiate_template
from repro.autotune.space import ConfigEntity, ConfigSpace
from repro.codegen.target import Target
from repro.te.ir import LoweredFunc
from repro.te.lower import lower
from repro.te.schedule import Schedule
from repro.te.tensor import Tensor


class Task:
    """One tunable kernel instance (template + arguments + target)."""

    def __init__(self, template_name: str, args: tuple, target: Target):
        self.template_name = template_name
        self.args = tuple(args)
        self.target = target
        self.config_space = self._build_space()

    @property
    def name(self) -> str:
        """A stable, human-readable task name."""
        rendered_args = "x".join(str(a) for a in self.args)
        return f"{self.template_name}[{rendered_args}]@{self.target.name}"

    def _build_space(self) -> ConfigSpace:
        cfg = ConfigSpace()
        _instantiate_template(self.template_name, self.args, cfg)
        return cfg

    # -- instantiation ------------------------------------------------------
    def instantiate(self, config: ConfigEntity) -> Tuple[Schedule, List[Tensor]]:
        """Apply ``config`` and return the concrete schedule and argument tensors."""
        return _instantiate_template(self.template_name, self.args, config)

    def lower(self, config: ConfigEntity, name: str | None = None) -> LoweredFunc:
        """Lower the schedule selected by ``config`` to the loop-nest IR."""
        schedule, arg_tensors = self.instantiate(config)
        func_name = name or f"{self.template_name}_{config.index}"
        return lower(schedule, arg_tensors, name=func_name)

    def __repr__(self) -> str:
        return f"Task({self.name}, space={len(self.config_space)})"


def create_task(template_name: str, args: tuple, target: Target) -> Task:
    """Create a :class:`Task` (mirrors ``autotvm.task.create``)."""
    return Task(template_name, args, target)

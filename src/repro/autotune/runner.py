"""Runners: native execution and the paper's simulator interface.

``LocalRunner`` executes built implementations on a target board with the
full measurement protocol — this is what classic autotuning does and what the
training phase of the score predictor needs.

``SimulatorRunner`` is Contribution I of the paper (Listing 3): it executes
the implementations on ``n_parallel`` instruction-accurate simulator
instances and returns a *score* per implementation.  The function that maps a
finished simulation to a score is pluggable; during the execution phase it is
a trained score predictor, and it can also be overridden globally through the
function registry under the name ``"autotvm.simulator_run"``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.autotune.measure import (
    BuildResult,
    MeasureErrorNo,
    MeasureInput,
    MeasureResult,
    Runner,
)
from repro.autotune.registry import get_func
from repro.hardware.board import TargetBoard
from repro.reliability import RetryPolicy
from repro.sim.cpu import TraceOptions
from repro.sim.simulator import SimulationFailure, SimulationResult, SimulatorPool

#: Signature of a score function: (simulation result, measure input) -> score.
ScoreFunction = Callable[[SimulationResult, MeasureInput], float]

#: How simulation failure kinds map onto measurement error codes.
_FAILURE_ERROR_NO = {
    SimulationFailure.TIMEOUT: MeasureErrorNo.RUN_TIMEOUT,
    SimulationFailure.CRASH: MeasureErrorNo.WORKER_CRASH,
    SimulationFailure.ERROR: MeasureErrorNo.RUNTIME_ERROR,
}


def _failure_result(failure: SimulationFailure) -> MeasureResult:
    """Convert one pool failure record into a structured measurement error."""
    return MeasureResult(
        costs=[],
        error_no=_FAILURE_ERROR_NO.get(failure.kind, MeasureErrorNo.RUNTIME_ERROR),
        error_msg=f"{failure.kind} after {failure.attempts} attempt(s): {failure.error}",
        all_cost=failure.host_seconds,
    )


class LocalRunner(Runner):
    """Runs implementations natively on a target board (sequentially).

    Native runs are never parallelised: the paper notes that concurrent
    workloads on the device would disturb the measurements.
    """

    def __init__(self, board: TargetBoard, timeout_s: float = 0.0):
        super().__init__(n_parallel=1, timeout_s=timeout_s)
        self.board = board

    def run(
        self,
        measure_inputs: Sequence[MeasureInput],
        build_results: Sequence[BuildResult],
    ) -> List[MeasureResult]:
        results: List[MeasureResult] = []
        for build in build_results:
            start = time.perf_counter()
            if not build.ok:
                results.append(
                    MeasureResult(
                        costs=[],
                        error_no=build.error_no,
                        error_msg=build.error_msg,
                        all_cost=time.perf_counter() - start,
                    )
                )
                continue
            record = self.board.measure(build.program)
            results.append(
                MeasureResult(
                    costs=list(record.times_s),
                    all_cost=record.benchmarking_seconds,
                    extra={"t_ref": record.median_s, "t_std": record.std_s},
                )
            )
        return results


class SimulatorRunner(Runner):
    """Custom runner executing autotuning workloads on simulators (Listing 3)."""

    def __init__(
        self,
        arch: str,
        n_parallel: int = 16,
        trace_options: TraceOptions = TraceOptions(),
        score_function: Optional[ScoreFunction] = None,
        backend: str = "serial",
        collect_results: bool = True,
        engine: Optional[str] = None,
        memoize: bool = True,
        timeout_s: float = 0.0,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(n_parallel=n_parallel, timeout_s=timeout_s)
        self.arch = arch
        self.trace_options = trace_options
        self.score_function = score_function
        self.pool = SimulatorPool(
            arch=arch,
            n_parallel=n_parallel,
            trace_options=trace_options,
            backend=backend,
            engine=engine,
            memoize=memoize,
            timeout_s=timeout_s,
            retry=retry,
        )
        self.collect_results = collect_results
        #: Simulation results of every successful run, in measurement order.
        self.simulation_results: List[SimulationResult] = []

    # -- the simulator interface -------------------------------------------
    def simulator_run(self, programs) -> List[SimulationResult]:
        """Execute the built programs on the simulator pool.

        This is the override point of the paper's interface: registering a
        function under ``"autotvm.simulator_run"`` replaces the built-in pool
        (for instance to drive an external simulator).  The built-in pool
        runs through the resilient API, so individual entries may be
        :class:`~repro.sim.simulator.SimulationFailure` records (hung,
        crashed or erroring candidates) instead of results; an external
        override may return plain results only.
        """
        external = get_func("autotvm.simulator_run")
        if external is not None:
            return external(programs, self.arch, self.n_parallel)
        return self.pool.run_many_resilient(programs)

    def default_score(self, result: SimulationResult, measure_input: MeasureInput) -> float:
        """Fallback score when no predictor is attached: total executed instructions.

        Instruction count alone is a weak but monotone-ish proxy; the paper's
        predictors (Contribution II) replace it with a learned score.
        """
        return float(result.stats.get("cpu.num_insts"))

    def run(
        self,
        measure_inputs: Sequence[MeasureInput],
        build_results: Sequence[BuildResult],
    ) -> List[MeasureResult]:
        start = time.perf_counter()
        indexed_programs = [
            (position, build.program)
            for position, build in enumerate(build_results)
            if build.ok
        ]
        simulation_results = self.simulator_run([program for _, program in indexed_programs])
        if self.collect_results:
            self.simulation_results.extend(
                result for result in simulation_results
                if isinstance(result, SimulationResult)
            )
        by_position: Dict[int, SimulationResult] = {
            position: result
            for (position, _), result in zip(indexed_programs, simulation_results)
        }
        elapsed = time.perf_counter() - start

        results: List[MeasureResult] = []
        for position, (measure_input, build) in enumerate(zip(measure_inputs, build_results)):
            if not build.ok:
                results.append(
                    MeasureResult(
                        costs=[],
                        error_no=build.error_no,
                        error_msg=build.error_msg,
                        all_cost=elapsed / max(len(build_results), 1),
                    )
                )
                continue
            simulation = by_position[position]
            if isinstance(simulation, SimulationFailure):
                results.append(_failure_result(simulation))
                continue
            score_fn = self.score_function or self.default_score
            try:
                score = float(score_fn(simulation, measure_input))
            except Exception as error:
                results.append(
                    MeasureResult(
                        costs=[],
                        error_no=MeasureErrorNo.RUNTIME_ERROR,
                        error_msg=f"score function failed: {error}",
                        all_cost=simulation.host_seconds,
                    )
                )
                continue
            results.append(
                MeasureResult(
                    costs=[score],
                    all_cost=simulation.host_seconds,
                    extra={
                        "sim_host_seconds": simulation.host_seconds,
                        "sim_instructions": simulation.stats.get("cpu.num_insts"),
                    },
                )
            )
        return results


class RunnerStatsCollector(Runner):
    """Training-phase runner: measures natively *and* simulates (Figure 4-I).

    Every successful measurement produces a paired record (simulator
    statistics, native measurement) which is exactly the training data the
    score predictors need.
    """

    def __init__(
        self,
        board: TargetBoard,
        arch: Optional[str] = None,
        trace_options: TraceOptions = TraceOptions(),
        n_parallel: int = 1,
        backend: str = "serial",
        engine: Optional[str] = None,
        memoize: bool = True,
        timeout_s: float = 0.0,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(n_parallel=n_parallel, timeout_s=timeout_s)
        self.board = board
        self.arch = arch or board.arch
        self.pool = SimulatorPool(
            arch=self.arch,
            n_parallel=n_parallel,
            trace_options=trace_options,
            backend=backend,
            engine=engine,
            memoize=memoize,
            timeout_s=timeout_s,
            retry=retry,
        )
        #: Paired training records: (measure input, simulation result, measurement record).
        self.records: List[tuple] = []

    def run(
        self,
        measure_inputs: Sequence[MeasureInput],
        build_results: Sequence[BuildResult],
    ) -> List[MeasureResult]:
        results: List[MeasureResult] = []
        ok_programs = [build.program for build in build_results if build.ok]
        simulations = iter(self.pool.run_many_resilient(ok_programs))
        for measure_input, build in zip(measure_inputs, build_results):
            if not build.ok:
                results.append(
                    MeasureResult(costs=[], error_no=build.error_no, error_msg=build.error_msg)
                )
                continue
            simulation = next(simulations)
            if isinstance(simulation, SimulationFailure):
                # No paired training record without a simulation half.
                results.append(_failure_result(simulation))
                continue
            record = self.board.measure(build.program)
            self.records.append((measure_input, simulation, record))
            results.append(
                MeasureResult(
                    costs=list(record.times_s),
                    all_cost=record.benchmarking_seconds + simulation.host_seconds,
                    extra={"t_ref": record.median_s},
                )
            )
        return results

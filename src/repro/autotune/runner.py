"""Runners: native execution and the paper's simulator interface.

``LocalRunner`` executes built implementations on a target board with the
full measurement protocol — this is what classic autotuning does and what the
training phase of the score predictor needs.

``SimulatorRunner`` is Contribution I of the paper (Listing 3): it executes
the implementations on ``n_parallel`` instruction-accurate simulator
instances and returns a *score* per implementation.  The function that maps a
finished simulation to a score is pluggable; during the execution phase it is
a trained score predictor, and it can also be overridden globally through the
function registry under the name ``"autotvm.simulator_run"``.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace as dataclasses_replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.autotune.measure import (
    BuildResult,
    MeasureErrorNo,
    MeasureInput,
    MeasureResult,
    Runner,
)
from repro.autotune.registry import get_func
from repro.hardware.board import TargetBoard
from repro.reliability import RetryPolicy
from repro.sim.cpu import TraceOptions
from repro.sim.runtime_config import RuntimeConfig
from repro.sim.simulator import SimulationFailure, SimulationResult, SimulatorPool

#: Union the resilient pool APIs hand back per candidate.
SimulationOutcome = Union[SimulationResult, SimulationFailure]

#: Signature of a score function: (simulation result, measure input) -> score.
ScoreFunction = Callable[[SimulationResult, MeasureInput], float]

#: How simulation failure kinds map onto measurement error codes.
_FAILURE_ERROR_NO = {
    SimulationFailure.TIMEOUT: MeasureErrorNo.RUN_TIMEOUT,
    SimulationFailure.CRASH: MeasureErrorNo.WORKER_CRASH,
    SimulationFailure.ERROR: MeasureErrorNo.RUNTIME_ERROR,
}


def _failure_result(failure: SimulationFailure) -> MeasureResult:
    """Convert one pool failure record into a structured measurement error."""
    return MeasureResult(
        costs=[],
        error_no=_FAILURE_ERROR_NO.get(failure.kind, MeasureErrorNo.RUNTIME_ERROR),
        error_msg=f"{failure.kind} after {failure.attempts} attempt(s): {failure.error}",
        all_cost=failure.host_seconds,
    )


def batched_measurement_default() -> bool:
    """Whether runners route simulations through the candidate-batch
    scheduler by default (``REPRO_RUNNER_BATCH=0`` restores the
    per-candidate path; results are bit-identical either way)."""
    return os.environ.get("REPRO_RUNNER_BATCH", "1").strip().lower() not in (
        "0", "false", "off",
    )


#: Callback invoked per candidate as its measurement settles (streaming
#: consumption): ``(position, measure_input, measure_result)``.
ResultCallback = Callable[[int, MeasureInput, MeasureResult], None]


class LocalRunner(Runner):
    """Runs implementations natively on a target board (sequentially).

    Native runs are never parallelised: the paper notes that concurrent
    workloads on the device would disturb the measurements.
    """

    def __init__(self, board: TargetBoard, timeout_s: float = 0.0):
        super().__init__(n_parallel=1, timeout_s=timeout_s)
        self.board = board

    def run(
        self,
        measure_inputs: Sequence[MeasureInput],
        build_results: Sequence[BuildResult],
    ) -> List[MeasureResult]:
        results: List[MeasureResult] = []
        for build in build_results:
            start = time.perf_counter()
            if not build.ok:
                results.append(
                    MeasureResult(
                        costs=[],
                        error_no=build.error_no,
                        error_msg=build.error_msg,
                        all_cost=time.perf_counter() - start,
                    )
                )
                continue
            record = self.board.measure(build.program)
            results.append(
                MeasureResult(
                    costs=list(record.times_s),
                    all_cost=record.benchmarking_seconds,
                    extra={"t_ref": record.median_s, "t_std": record.std_s},
                )
            )
        return results


class SimulatorRunner(Runner):
    """Custom runner executing autotuning workloads on simulators (Listing 3).

    The measurement batch travels the **candidate-batch scheduler** by
    default (``batch=True``): identical candidates — which GA populations
    and model-based tuners produce in numbers — are deduplicated by
    :meth:`~repro.codegen.program.Program.content_digest` *before* any
    simulation (within one runner every other memoization-key component is
    fixed, so digest-level dedupe coincides exactly with memo-key dedupe),
    the surviving unique programs are submitted as one batch job on the
    shared-arena fast path, and each unique result is fanned back out to
    all duplicate positions as an independent copy.  Results stream back
    per candidate (``on_result``) so a tuner's ``update()`` can consume
    them incrementally; callbacks fire strictly in input order as the
    settled prefix grows, because stateful score functions (the
    predictor's window estimators) are order-sensitive.  Scores,
    statistics, error mapping and retry accounting are bit-identical to
    the per-candidate path (``REPRO_RUNNER_BATCH=0`` or ``batch=False``).
    """

    def __init__(
        self,
        arch: str,
        n_parallel: int = 16,
        trace_options: TraceOptions = TraceOptions(),
        score_function: Optional[ScoreFunction] = None,
        backend: str = "serial",
        collect_results: bool = True,
        engine: Optional[str] = None,
        memoize: bool = True,
        timeout_s: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        batch: Optional[bool] = None,
        on_result: Optional[ResultCallback] = None,
        config: Optional[RuntimeConfig] = None,
    ):
        super().__init__(n_parallel=n_parallel, timeout_s=timeout_s)
        self.arch = arch
        self.trace_options = trace_options
        self.score_function = score_function
        self.config = config if config is not None else RuntimeConfig()
        self.pool = SimulatorPool(
            arch=arch,
            n_parallel=n_parallel,
            trace_options=trace_options,
            backend=backend,
            engine=engine,
            memoize=memoize,
            timeout_s=timeout_s,
            retry=retry,
            config=self.config,
        )
        self.collect_results = collect_results
        # Precedence: explicit kwarg > config field > REPRO_RUNNER_BATCH > on.
        self.batch = self.config.resolved_runner_batch() if batch is None else bool(batch)
        #: Streaming hook: called as each candidate's measurement settles.
        self.on_result = on_result
        #: Simulation results of every successful run, in measurement order.
        self.simulation_results: List[SimulationResult] = []
        #: Candidates inspected by / absorbed into batch-level deduplication.
        self.dedupe_lookups = 0
        self.dedupe_hits = 0

    # -- the simulator interface -------------------------------------------
    def simulator_run(self, programs) -> List[SimulationOutcome]:
        """Execute the built programs on the simulator pool.

        This is the override point of the paper's interface: registering a
        function under ``"autotvm.simulator_run"`` replaces the built-in pool
        (for instance to drive an external simulator); with batching enabled
        the override receives the *deduplicated* program list.  The built-in
        pool runs through the resilient API, so individual entries may be
        :class:`~repro.sim.simulator.SimulationFailure` records (hung,
        crashed or erroring candidates) instead of results; an external
        override may return plain results only.
        """
        return list(self._iter_simulator_run(programs))

    def _iter_simulator_run(self, programs) -> Iterator[SimulationOutcome]:
        """Stream pool outcomes in input order as candidates complete."""
        external = get_func("autotvm.simulator_run")
        if external is not None:
            yield from external(programs, self.arch, self.n_parallel)
        elif self.batch:
            yield from self.pool.iter_batch_resilient(programs)
        else:
            yield from self.pool.run_many_resilient(programs)

    def default_score(self, result: SimulationResult, measure_input: MeasureInput) -> float:
        """Fallback score when no predictor is attached: total executed instructions.

        Instruction count alone is a weak but monotone-ish proxy; the paper's
        predictors (Contribution II) replace it with a learned score.
        """
        return float(result.stats.get("cpu.num_insts"))

    def run(
        self,
        measure_inputs: Sequence[MeasureInput],
        build_results: Sequence[BuildResult],
    ) -> List[MeasureResult]:
        start = time.perf_counter()
        indexed_programs = [
            (position, build.program)
            for position, build in enumerate(build_results)
            if build.ok
        ]
        # Deduplicate before any simulation: one simulation per distinct
        # program content, fanned back out to every duplicate position.
        # (With batching off, every position stays its own submission, so
        # the per-candidate path is preserved exactly.)
        unique_programs: List = []
        positions_by_unique: List[List[int]] = []
        if self.batch:
            unique_by_digest: Dict[str, int] = {}
            for position, program in indexed_programs:
                digest = program.content_digest()
                u = unique_by_digest.get(digest)
                if u is None:
                    u = unique_by_digest[digest] = len(unique_programs)
                    unique_programs.append(program)
                    positions_by_unique.append([])
                positions_by_unique[u].append(position)
        else:
            for position, program in indexed_programs:
                unique_programs.append(program)
                positions_by_unique.append([position])
        self.dedupe_lookups += len(indexed_programs)
        self.dedupe_hits += len(indexed_programs) - len(unique_programs)

        n = len(build_results)
        results: List[Optional[MeasureResult]] = [None] * n
        simulations: List[Optional[SimulationResult]] = [None] * n
        pending: List[Optional[SimulationOutcome]] = [None] * n
        settled = [False] * n
        emitted = 0
        elapsed_budget = time.perf_counter() - start

        def drain() -> None:
            # Score and emit the settled prefix strictly in input order.
            # Scoring must not follow settle order: stateful score functions
            # (the predictor's window estimators) are order-sensitive, and
            # duplicate positions settle out of order under dedupe fan-out.
            # Position-ordered scoring keeps the batched trajectory
            # bit-identical to the per-candidate path.
            nonlocal emitted
            while emitted < n and settled[emitted]:
                position = emitted
                outcome = pending[position]
                if isinstance(outcome, SimulationFailure):
                    results[position] = _failure_result(outcome)
                elif outcome is not None:
                    simulations[position] = outcome
                    results[position] = self._score_result(
                        outcome, measure_inputs[position]
                    )
                # else: build failure, results[position] is already set.
                self._emit(position, measure_inputs[position], results[position])
                emitted += 1

        for position, build in enumerate(build_results):
            if not build.ok:
                results[position] = MeasureResult(
                    costs=[],
                    error_no=build.error_no,
                    error_msg=build.error_msg,
                    all_cost=elapsed_budget / max(n, 1),
                )
                settled[position] = True
        drain()

        # Consume outcomes as they stream back: each unique result settles
        # all of its duplicate positions immediately, so incremental
        # consumers never wait on the tail of the generation.
        for u, outcome in enumerate(self._iter_simulator_run(unique_programs)):
            for copy_index, position in enumerate(positions_by_unique[u]):
                if copy_index > 0 and not isinstance(outcome, SimulationFailure):
                    # Fan-out copies are independent objects: downstream
                    # consumers rewrite e.g. sim.host_seconds in place.
                    pending[position] = dataclasses_replace(
                        outcome, stats=outcome.stats.copy(), cached=True
                    )
                else:
                    pending[position] = outcome
                settled[position] = True
            drain()

        if self.collect_results:
            self.simulation_results.extend(
                simulation for simulation in simulations if simulation is not None
            )
        return [result for result in results if result is not None]

    def _score_result(
        self, simulation: SimulationResult, measure_input: MeasureInput
    ) -> MeasureResult:
        score_fn = self.score_function or self.default_score
        try:
            score = float(score_fn(simulation, measure_input))
        except Exception as error:
            return MeasureResult(
                costs=[],
                error_no=MeasureErrorNo.RUNTIME_ERROR,
                error_msg=f"score function failed: {error}",
                all_cost=simulation.host_seconds,
            )
        return MeasureResult(
            costs=[score],
            all_cost=simulation.host_seconds,
            extra={
                "sim_host_seconds": simulation.host_seconds,
                "sim_instructions": simulation.stats.get("cpu.num_insts"),
            },
        )

    def _emit(
        self, position: int, measure_input: MeasureInput, result: MeasureResult
    ) -> None:
        if self.on_result is not None:
            self.on_result(position, measure_input, result)


class RunnerStatsCollector(Runner):
    """Training-phase runner: measures natively *and* simulates (Figure 4-I).

    Every successful measurement produces a paired record (simulator
    statistics, native measurement) which is exactly the training data the
    score predictors need.
    """

    def __init__(
        self,
        board: TargetBoard,
        arch: Optional[str] = None,
        trace_options: TraceOptions = TraceOptions(),
        n_parallel: int = 1,
        backend: str = "serial",
        engine: Optional[str] = None,
        memoize: bool = True,
        timeout_s: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        batch: Optional[bool] = None,
        config: Optional[RuntimeConfig] = None,
    ):
        super().__init__(n_parallel=n_parallel, timeout_s=timeout_s)
        self.board = board
        self.arch = arch or board.arch
        self.config = config if config is not None else RuntimeConfig()
        self.pool = SimulatorPool(
            arch=self.arch,
            n_parallel=n_parallel,
            trace_options=trace_options,
            backend=backend,
            engine=engine,
            memoize=memoize,
            timeout_s=timeout_s,
            retry=retry,
            config=self.config,
        )
        self.batch = self.config.resolved_runner_batch() if batch is None else bool(batch)
        #: Paired training records: (measure input, simulation result, measurement record).
        self.records: List[tuple] = []

    def run(
        self,
        measure_inputs: Sequence[MeasureInput],
        build_results: Sequence[BuildResult],
    ) -> List[MeasureResult]:
        results: List[MeasureResult] = []
        ok_programs = [build.program for build in build_results if build.ok]
        # The batched path streams simulations back while this loop is still
        # measuring earlier candidates on the board, so the two halves of a
        # training pair overlap instead of serialising per candidate.
        if self.batch:
            simulations = self.pool.iter_batch_resilient(ok_programs)
        else:
            simulations = iter(self.pool.run_many_resilient(ok_programs))
        for measure_input, build in zip(measure_inputs, build_results):
            if not build.ok:
                results.append(
                    MeasureResult(costs=[], error_no=build.error_no, error_msg=build.error_msg)
                )
                continue
            simulation = next(simulations)
            if isinstance(simulation, SimulationFailure):
                # No paired training record without a simulation half.
                results.append(_failure_result(simulation))
                continue
            record = self.board.measure(build.program)
            self.records.append((measure_input, simulation, record))
            results.append(
                MeasureResult(
                    costs=list(record.times_s),
                    all_cost=record.benchmarking_seconds + simulation.host_seconds,
                    extra={"t_ref": record.median_s},
                )
            )
        return results

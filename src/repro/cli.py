"""Command-line interface for the reproduction experiments.

Usage examples::

    python -m repro.cli simulate --arch riscv --group 1 --scale 0.2
    python -m repro.cli table --arch x86 --implementations 36 --repeats 2
    python -m repro.cli fig5 --arch arm
    python -m repro.cli eq4
    python -m repro.cli serve --arch riscv --port 8642 --db results.db
    python -m repro.cli serve --check
    python -m repro.cli query --url http://127.0.0.1:8642 --stats

Each experiment sub-command prints the same artefact the corresponding
benchmark regenerates; the CLI exists so the experiments can be driven
without pytest.  ``serve`` runs the simulation service (``--check``
validates the runtime configuration and store without binding a port) and
``query`` talks to a running one.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.autotune.sketch import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.codegen import Target
from repro.hardware import TargetBoard
from repro.pipeline import (
    DatasetConfig,
    ExperimentConfig,
    format_comparison_table,
    generalization_curves,
    load_or_generate_dataset,
    predictor_comparison_table,
    speedup_summary,
)
from repro.sim import Simulator, TraceOptions
from repro.utils.tabulate import format_table
from repro.workloads import conv2d_bias_relu_workload, scaled_group_params


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=["x86", "arm", "riscv"], default="riscv")
    parser.add_argument("--implementations", type=int, default=36,
                        help="implementations per group (paper: 500)")
    parser.add_argument("--scale", type=float, default=0.18,
                        help="workload scale relative to Table II (paper: 1.0)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="training repetitions (paper: 10)")
    parser.add_argument("--trace", type=int, default=100_000,
                        help="simulated memory references per implementation")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for cached datasets (optional)")
    parser.add_argument("--seed", type=int, default=0)


def _dataset(args: argparse.Namespace):
    config = DatasetConfig(
        arch=args.arch,
        implementations_per_group=args.implementations,
        scale=args.scale,
        trace_max_accesses=args.trace,
        seed=args.seed,
    )
    return load_or_generate_dataset(config, cache_dir=args.cache_dir, verbose=True)


def _experiment(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        implementations_per_group=args.implementations,
        n_training_repeats=args.repeats,
        scale=args.scale,
        trace_max_accesses=args.trace,
        seed=args.seed,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    """Simulate a few random schedules of one kernel group and print their statistics."""
    params = scaled_group_params(args.group, args.scale)
    target = Target.from_name(args.arch)
    task = SearchTask(conv2d_bias_relu_workload, params.as_args(), target, name="cli")
    policy = SketchPolicy(
        task, TuningOptions(seed=args.seed), cost_model=RandomCostModel(args.seed)
    )
    candidates = policy.sample_candidates(args.count)
    _, builds = policy.build_candidates(candidates)
    trace_options = TraceOptions(max_accesses=args.trace, rng_seed=args.rng_seed)
    from repro.sim import RuntimeConfig

    config = RuntimeConfig(replacement=args.replacement)
    simulator = Simulator(args.arch, trace_options=trace_options, config=config)
    board = TargetBoard(args.arch, trace_options=trace_options, seed=args.seed)
    rows = []
    for index, build in enumerate(builds):
        if not build.ok:
            continue
        stats = simulator.run(build.program).flat_stats()
        record = board.measure(build.program)
        rows.append(
            [
                index,
                f"{stats['cpu.num_insts']:.3e}",
                f"{stats['l1d.miss_rate'] * 100:.2f}",
                f"{stats['l2.miss_rate'] * 100:.2f}",
                f"{record.median_s * 1e3:.3f}",
            ]
        )
    print(
        format_table(
            ["impl", "instructions", "L1D miss %", "L2 miss %", "t_ref [ms]"],
            rows,
            title=f"group {args.group} on {args.arch} (scale {args.scale})",
        )
    )
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    """Regenerate the predictor-comparison table (Table III/IV/V) for one architecture."""
    dataset = _dataset(args)
    rows = predictor_comparison_table(dataset, _experiment(args))
    titles = {"x86": "Table III", "arm": "Table IV", "riscv": "Table V"}
    print(format_comparison_table(
        rows, title=f"{titles[args.arch]} - prediction results ({args.arch})"
    ))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    """Regenerate the Figure 5 generalisation experiment for one architecture."""
    dataset = _dataset(args)
    curves = generalization_curves(
        dataset, held_out_group=args.group, config=_experiment(args), predictor_name="bayes"
    )
    rows = []
    for variant, data in curves.items():
        metrics = data["metrics"]
        rows.append([variant, metrics.e_top1, metrics.q_low, metrics.q_high, metrics.r_top1])
    print(
        format_table(
            ["training", "Etop1 %", "Qlow %", "Qhigh %", "Rtop1 %"],
            rows,
            title=f"Figure 5 ({args.arch}) - group {args.group} included vs. excluded",
        )
    )
    return 0


def cmd_eq4(args: argparse.Namespace) -> int:
    """Recompute the Equation 4 break-even parallelism ranges."""
    summary = speedup_summary(
        scale=args.scale, n_schedules=args.count, trace_max_accesses=args.trace
    )
    rows = [[arch, data["k_min"], data["k_max"]] for arch, data in summary.items()]
    print(format_table(["arch", "K min", "K max"], rows, title="Equation 4 - break-even K"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service (or just validate its configuration)."""
    from repro.sim import RuntimeConfig
    from repro.service import ResultStore, ServiceServer, SimulationService, Tenant

    config = RuntimeConfig.from_env()
    try:
        config.validate()
    except (ValueError, KeyError) as error:
        print(f"invalid runtime configuration: {error}", file=sys.stderr)
        return 2
    if args.check:
        print(format_table(
            ["field", "environment variable", "resolved value"],
            [list(row) for row in config.describe()],
            title="runtime configuration",
        ))
        store = ResultStore(args.db, max_entries=args.max_entries, max_age_s=args.max_age)
        print(f"store: {store!r}")
        store.close()
        print("configuration OK")
        return 0
    tenants = {}
    for index, spec in enumerate(args.api_key or []):
        name, _, key = spec.rpartition(":")
        tenants[key] = Tenant(
            name=name or f"tenant{index}", api_key=key, quota=args.quota,
            rate_limit=args.rate_limit, rate_window_s=args.rate_window,
        )
    store = ResultStore(args.db, max_entries=args.max_entries, max_age_s=args.max_age)
    if args.import_memo_dir:
        imported = store.import_disk_cache(args.import_memo_dir)
        print(f"imported {imported} entries from {args.import_memo_dir}")
    config.apply_process_toggles()
    trace_options = TraceOptions(max_accesses=args.trace) if args.trace else None
    service = SimulationService(
        args.arch, store, config=config, tenants=tenants, trace_options=trace_options,
        max_queue_depth=args.queue_depth, lease_s=args.lease,
    )
    server = ServiceServer(service, host=args.host, port=args.port)
    # SIGTERM/SIGINT trigger a graceful drain: the event loop unwinds (the
    # shutdown call is non-blocking and signal-safe), serve_forever returns,
    # and the finally block finishes the in-flight wave and journals the
    # rest — a restarted service settles them from the same database.
    import signal

    def _graceful(_signo, _frame) -> None:
        server.shutdown()

    for signo in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signo, _graceful)
        except (ValueError, OSError):  # not the main thread (tests)
            break
    print(f"serving {args.arch} simulations on http://{args.host}:{args.port} "
          f"(db {args.db}, {len(tenants)} tenant(s))")
    try:
        server.serve_forever()
    finally:
        service.close(drain=True)
        store.close()
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Query a running simulation service (stats or one stored digest)."""
    import json

    from repro.service import ServiceClient

    client = ServiceClient(args.url, api_key=args.key)
    if args.stats:
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return 0
    if args.digest:
        result = client.result(args.digest)
        if result is None:
            print(f"no result stored for digest {args.digest}", file=sys.stderr)
            return 1
        print(result.dump())
        return 0
    print("nothing to do: pass --stats or --digest", file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Instruction-accurate simulators for autotuning performance estimation "
        "(DAC 2025 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser("simulate", help="simulate random schedules of one group")
    _add_dataset_arguments(simulate)
    simulate.add_argument("--group", type=int, default=1, choices=range(5))
    simulate.add_argument("--count", type=int, default=5, help="number of schedules")
    simulate.add_argument("--rng-seed", type=int, default=0,
                          help="seed of the replayable random-replacement victim stream "
                          "(only relevant for hierarchies with a random-policy level)")
    from repro.sim.policies import POLICY_NAMES

    simulate.add_argument("--replacement", choices=POLICY_NAMES, default=None,
                          help="replacement policy for every cache level "
                          "(default: the per-level Table I policies)")
    simulate.set_defaults(func=cmd_simulate)

    table = commands.add_parser("table", help="regenerate Table III/IV/V for one architecture")
    _add_dataset_arguments(table)
    table.set_defaults(func=cmd_table)

    fig5 = commands.add_parser("fig5", help="regenerate the Figure 5 experiment")
    _add_dataset_arguments(fig5)
    fig5.add_argument("--group", type=int, default=3, choices=range(5), help="held-out group")
    fig5.set_defaults(func=cmd_fig5)

    eq4 = commands.add_parser("eq4", help="recompute the Equation 4 K ranges")
    eq4.add_argument("--scale", type=float, default=1.0)
    eq4.add_argument("--count", type=int, default=3, help="schedules per group")
    eq4.add_argument("--trace", type=int, default=120_000)
    eq4.set_defaults(func=cmd_eq4)

    serve = commands.add_parser("serve", help="run the simulation service")
    serve.add_argument("--arch", choices=["x86", "arm", "riscv"], default="riscv")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument("--db", default=":memory:",
                       help="SQLite database path of the shared result store")
    serve.add_argument("--api-key", action="append", metavar="NAME:KEY",
                       help="register one tenant (repeatable); no keys = open dev mode")
    serve.add_argument("--quota", type=int, default=0,
                       help="per-tenant lifetime request quota (0 = unlimited)")
    serve.add_argument("--rate-limit", type=int, default=0,
                       help="per-tenant requests per sliding window (0 = no limit)")
    serve.add_argument("--rate-window", type=float, default=1.0,
                       help="sliding rate-limit window in seconds")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="miss-queue bound before 503 shedding "
                       "(default: REPRO_SERVICE_QUEUE_DEPTH or 256; 0 = unbounded)")
    serve.add_argument("--lease", type=float, default=None,
                       help="journal lease seconds before a claimed job is "
                       "reclaimable (default: REPRO_SERVICE_LEASE_S or 30)")
    serve.add_argument("--max-entries", type=int, default=100_000,
                       help="LRU bound of the result store")
    serve.add_argument("--max-age", type=float, default=0.0,
                       help="age eviction window in seconds (0 = none)")
    serve.add_argument("--trace", type=int, default=None,
                       help="simulated memory references per request (default: unbounded)")
    serve.add_argument("--import-memo-dir", default=None,
                       help="import an existing flat-file memo directory on startup")
    serve.add_argument("--check", action="store_true",
                       help="validate the runtime configuration and store, then exit")
    serve.set_defaults(func=cmd_serve)

    query = commands.add_parser("query", help="query a running simulation service")
    query.add_argument("--url", default="http://127.0.0.1:8642")
    query.add_argument("--key", default=None, help="API key (X-Api-Key header)")
    query.add_argument("--stats", action="store_true", help="print GET /stats")
    query.add_argument("--digest", default=None, help="fetch one result by digest")
    query.set_defaults(func=cmd_query)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

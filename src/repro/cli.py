"""Command-line interface for the reproduction experiments.

Usage examples::

    python -m repro.cli simulate --arch riscv --group 1 --scale 0.2
    python -m repro.cli table --arch x86 --implementations 36 --repeats 2
    python -m repro.cli fig5 --arch arm
    python -m repro.cli eq4

Each sub-command prints the same artefact the corresponding benchmark
regenerates; the CLI exists so the experiments can be driven without pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.autotune.sketch import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.codegen import Target
from repro.hardware import TargetBoard
from repro.pipeline import (
    DatasetConfig,
    ExperimentConfig,
    format_comparison_table,
    generalization_curves,
    load_or_generate_dataset,
    predictor_comparison_table,
    speedup_summary,
)
from repro.sim import Simulator, TraceOptions
from repro.utils.tabulate import format_table
from repro.workloads import conv2d_bias_relu_workload, scaled_group_params


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=["x86", "arm", "riscv"], default="riscv")
    parser.add_argument("--implementations", type=int, default=36,
                        help="implementations per group (paper: 500)")
    parser.add_argument("--scale", type=float, default=0.18,
                        help="workload scale relative to Table II (paper: 1.0)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="training repetitions (paper: 10)")
    parser.add_argument("--trace", type=int, default=100_000,
                        help="simulated memory references per implementation")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for cached datasets (optional)")
    parser.add_argument("--seed", type=int, default=0)


def _dataset(args: argparse.Namespace):
    config = DatasetConfig(
        arch=args.arch,
        implementations_per_group=args.implementations,
        scale=args.scale,
        trace_max_accesses=args.trace,
        seed=args.seed,
    )
    return load_or_generate_dataset(config, cache_dir=args.cache_dir, verbose=True)


def _experiment(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        implementations_per_group=args.implementations,
        n_training_repeats=args.repeats,
        scale=args.scale,
        trace_max_accesses=args.trace,
        seed=args.seed,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    """Simulate a few random schedules of one kernel group and print their statistics."""
    params = scaled_group_params(args.group, args.scale)
    target = Target.from_name(args.arch)
    task = SearchTask(conv2d_bias_relu_workload, params.as_args(), target, name="cli")
    policy = SketchPolicy(
        task, TuningOptions(seed=args.seed), cost_model=RandomCostModel(args.seed)
    )
    candidates = policy.sample_candidates(args.count)
    _, builds = policy.build_candidates(candidates)
    trace_options = TraceOptions(max_accesses=args.trace, rng_seed=args.rng_seed)
    simulator = Simulator(args.arch, trace_options=trace_options)
    board = TargetBoard(args.arch, trace_options=trace_options, seed=args.seed)
    rows = []
    for index, build in enumerate(builds):
        if not build.ok:
            continue
        stats = simulator.run(build.program).flat_stats()
        record = board.measure(build.program)
        rows.append(
            [
                index,
                f"{stats['cpu.num_insts']:.3e}",
                f"{stats['l1d.miss_rate'] * 100:.2f}",
                f"{stats['l2.miss_rate'] * 100:.2f}",
                f"{record.median_s * 1e3:.3f}",
            ]
        )
    print(
        format_table(
            ["impl", "instructions", "L1D miss %", "L2 miss %", "t_ref [ms]"],
            rows,
            title=f"group {args.group} on {args.arch} (scale {args.scale})",
        )
    )
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    """Regenerate the predictor-comparison table (Table III/IV/V) for one architecture."""
    dataset = _dataset(args)
    rows = predictor_comparison_table(dataset, _experiment(args))
    titles = {"x86": "Table III", "arm": "Table IV", "riscv": "Table V"}
    print(format_comparison_table(
        rows, title=f"{titles[args.arch]} - prediction results ({args.arch})"
    ))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    """Regenerate the Figure 5 generalisation experiment for one architecture."""
    dataset = _dataset(args)
    curves = generalization_curves(
        dataset, held_out_group=args.group, config=_experiment(args), predictor_name="bayes"
    )
    rows = []
    for variant, data in curves.items():
        metrics = data["metrics"]
        rows.append([variant, metrics.e_top1, metrics.q_low, metrics.q_high, metrics.r_top1])
    print(
        format_table(
            ["training", "Etop1 %", "Qlow %", "Qhigh %", "Rtop1 %"],
            rows,
            title=f"Figure 5 ({args.arch}) - group {args.group} included vs. excluded",
        )
    )
    return 0


def cmd_eq4(args: argparse.Namespace) -> int:
    """Recompute the Equation 4 break-even parallelism ranges."""
    summary = speedup_summary(
        scale=args.scale, n_schedules=args.count, trace_max_accesses=args.trace
    )
    rows = [[arch, data["k_min"], data["k_max"]] for arch, data in summary.items()]
    print(format_table(["arch", "K min", "K max"], rows, title="Equation 4 - break-even K"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Instruction-accurate simulators for autotuning performance estimation "
        "(DAC 2025 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    simulate = commands.add_parser("simulate", help="simulate random schedules of one group")
    _add_dataset_arguments(simulate)
    simulate.add_argument("--group", type=int, default=1, choices=range(5))
    simulate.add_argument("--count", type=int, default=5, help="number of schedules")
    simulate.add_argument("--rng-seed", type=int, default=0,
                          help="seed of the replayable random-replacement victim stream "
                          "(only relevant for hierarchies with a random-policy level)")
    simulate.set_defaults(func=cmd_simulate)

    table = commands.add_parser("table", help="regenerate Table III/IV/V for one architecture")
    _add_dataset_arguments(table)
    table.set_defaults(func=cmd_table)

    fig5 = commands.add_parser("fig5", help="regenerate the Figure 5 experiment")
    _add_dataset_arguments(fig5)
    fig5.add_argument("--group", type=int, default=3, choices=range(5), help="held-out group")
    fig5.set_defaults(func=cmd_fig5)

    eq4 = commands.add_parser("eq4", help="recompute the Equation 4 K ranges")
    eq4.add_argument("--scale", type=float, default=1.0)
    eq4.add_argument("--count", type=int, default=3, help="schedules per group")
    eq4.add_argument("--trace", type=int, default=120_000)
    eq4.set_defaults(func=cmd_eq4)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

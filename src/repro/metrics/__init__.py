"""Evaluation metrics of the paper (Section IV-B) and the speedup model (Eq. 4)."""

from repro.metrics.evaluation import (
    prediction_order,
    e_top1,
    r_top1,
    quality_scores,
    evaluate_predictions,
    PredictionMetrics,
)
from repro.metrics.speedup import (
    break_even_parallelism,
    estimate_simulation_seconds,
    native_benchmarking_seconds,
    SpeedupModel,
)

__all__ = [
    "prediction_order",
    "e_top1",
    "r_top1",
    "quality_scores",
    "evaluate_predictions",
    "PredictionMetrics",
    "break_even_parallelism",
    "estimate_simulation_seconds",
    "native_benchmarking_seconds",
    "SpeedupModel",
]

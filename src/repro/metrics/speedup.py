"""The parallel-simulation break-even factor K (Equation 4).

Native benchmarking of one implementation costs ``(t_cooldown + t_ref) * N_exe``
seconds on the board; simulating it costs ``t_simulator`` seconds on the host.
K is the number of simulator instances that must run in parallel for the
simulator-based flow to match the native throughput; the paper reports
K in [7, 97] for x86, [4, 31] for ARM and [3, 21] for RISC-V.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple


def native_benchmarking_seconds(t_ref_s: float, n_exe: int = 15, cooldown_s: float = 1.0) -> float:
    """Wall-clock cost of benchmarking one implementation natively."""
    if t_ref_s <= 0:
        raise ValueError("t_ref_s must be positive")
    if n_exe <= 0:
        raise ValueError("n_exe must be positive")
    return (cooldown_s + t_ref_s) * n_exe


def estimate_simulation_seconds(instructions: float, simulator_mips: float = 5.0) -> float:
    """Host time needed to simulate ``instructions`` at ``simulator_mips`` MIPS.

    Instruction-accurate simulators such as gem5's atomic mode sustain a few
    million instructions per second on a desktop host; the default of 5 MIPS
    is in that range.
    """
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    if simulator_mips <= 0:
        raise ValueError("simulator_mips must be positive")
    return instructions / (simulator_mips * 1e6)


def break_even_parallelism(
    t_simulator_s: float,
    t_ref_s: float,
    n_exe: int = 15,
    cooldown_s: float = 1.0,
) -> int:
    """Equation 4: K = ceil(t_simulator / ((t_cooldown + t_ref) * N_exe))."""
    if t_simulator_s <= 0:
        raise ValueError("t_simulator_s must be positive")
    native_seconds = native_benchmarking_seconds(t_ref_s, n_exe, cooldown_s)
    return max(1, math.ceil(t_simulator_s / native_seconds))


@dataclass(frozen=True)
class SpeedupModel:
    """Computes K ranges for a set of workloads on one architecture."""

    simulator_mips: float = 5.0
    n_exe: int = 15
    cooldown_s: float = 1.0

    def k_for(self, instructions: float, t_ref_s: float) -> int:
        """K for a single workload."""
        t_simulator = estimate_simulation_seconds(instructions, self.simulator_mips)
        return break_even_parallelism(t_simulator, t_ref_s, self.n_exe, self.cooldown_s)

    def k_range(self, workloads: Sequence[Tuple[float, float]]) -> Tuple[int, int]:
        """(min K, max K) over ``(instructions, t_ref_s)`` pairs."""
        if not workloads:
            raise ValueError("at least one workload is required")
        values = [self.k_for(instructions, t_ref) for instructions, t_ref in workloads]
        return min(values), max(values)

    def summary(
        self, workloads_by_arch: Dict[str, Sequence[Tuple[float, float]]]
    ) -> Dict[str, Tuple[int, int]]:
        """K ranges per architecture."""
        return {arch: self.k_range(workloads) for arch, workloads in workloads_by_arch.items()}

"""Prediction-quality metrics: E_top1, R_top1, Q_low and Q_high (Equations 5-7).

All metrics operate on pairs of arrays: the measured reference run times
``t_ref`` and the predicted scores of the same implementations.  Smaller is
better for every metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np


def _validate(times: Sequence[float], scores: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    times = np.asarray(times, dtype=float)
    scores = np.asarray(scores, dtype=float)
    if times.ndim != 1 or scores.ndim != 1:
        raise ValueError("times and scores must be one-dimensional")
    if times.shape != scores.shape:
        raise ValueError("times and scores must have the same length")
    if times.size == 0:
        raise ValueError("cannot evaluate empty predictions")
    if np.any(times <= 0):
        raise ValueError("run times must be positive")
    return times, scores


def prediction_order(times: Sequence[float], scores: Sequence[float]) -> np.ndarray:
    """Measured run times re-ordered by ascending predicted score (``t_pred``)."""
    times, scores = _validate(times, scores)
    return times[np.argsort(scores, kind="stable")]


def e_top1(times: Sequence[float], scores: Sequence[float]) -> float:
    """Equation 5: relative error between the truly fastest sample and the
    sample the predictor ranks first, in percent."""
    times, scores = _validate(times, scores)
    t_pred = prediction_order(times, scores)
    t_ref_best = float(np.min(times))
    return float(abs(1.0 - t_ref_best / t_pred[0]) * 100.0)


def r_top1(times: Sequence[float], scores: Sequence[float]) -> float:
    """Equation 6: relative rank (in percent) at which the predictor places the
    truly fastest sample."""
    times, scores = _validate(times, scores)
    t_pred = prediction_order(times, scores)
    t_ref_best = float(np.min(times))
    position = int(np.argmax(t_pred == t_ref_best))
    # Multiply before dividing: 100.0 / n * (n) can exceed 100 by one ulp
    # (e.g. n = 11), violating the documented [100/n, 100] bounds.
    return float(100.0 * (position + 1) / times.size)


def quality_scores(times: Sequence[float], scores: Sequence[float]) -> Tuple[float, float]:
    """``(Q_low, Q_high)``: sorting quality (Equation 7) of the prediction order.

    The per-pair penalty ``(t[i] - min(t[i], t[i+1])) / t[i]`` is evaluated on
    the prediction-ordered run times; pairs in the lower 50 % of the order
    contribute to ``Q_low`` and the remaining pairs to ``Q_high``.  Both are
    scaled by ``100 / |t_ref|`` as in the paper.
    """
    times, scores = _validate(times, scores)
    t_pred = prediction_order(times, scores)
    if t_pred.size < 2:
        return 0.0, 0.0
    current = t_pred[:-1]
    following = t_pred[1:]
    penalties = (current - np.minimum(current, following)) / current
    half = t_pred.size // 2
    scale = 100.0 / t_pred.size
    q_low = float(scale * penalties[:half].sum())
    q_high = float(scale * penalties[half:].sum())
    return q_low, q_high


@dataclass(frozen=True)
class PredictionMetrics:
    """All four metrics of one predictor on one group's test set."""

    e_top1: float
    q_low: float
    q_high: float
    r_top1: float

    def as_dict(self) -> Dict[str, float]:
        """Metric values keyed like the paper's table headers."""
        return {
            "Etop1": self.e_top1,
            "Qlow": self.q_low,
            "Qhigh": self.q_high,
            "Rtop1": self.r_top1,
        }


def evaluate_predictions(times: Sequence[float], scores: Sequence[float]) -> PredictionMetrics:
    """Compute E_top1, Q_low, Q_high and R_top1 for one test set."""
    q_low, q_high = quality_scores(times, scores)
    return PredictionMetrics(
        e_top1=e_top1(times, scores),
        q_low=q_low,
        q_high=q_high,
        r_top1=r_top1(times, scores),
    )

"""Compilation targets.

A :class:`Target` bundles the ISA spec with code-generation options.  Targets
can also be constructed from a TVM-style string such as
``"llvm -mtriple=riscv64-unknown-linux-gnu"`` so the autotuning API mirrors
how targets are specified in the paper's flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.isa import ISA_SPECS, IsaSpec


@dataclass(frozen=True)
class Target:
    """A code-generation target.

    Attributes
    ----------
    isa:
        The instruction-set specification.
    enable_vectorization:
        If False, ``vectorize`` annotations are lowered as plain unrolled
        loops even when the ISA has SIMD registers.
    enable_scalar_replacement:
        If True (default), loads and stores that are invariant with respect to
        the innermost loop are hoisted out of it, mimicking LLVM register
        promotion; this is what makes loop order matter for the generated
        instruction stream.
    """

    isa: IsaSpec
    enable_vectorization: bool = True
    enable_scalar_replacement: bool = True
    options: dict = field(default_factory=dict, compare=False)

    @property
    def name(self) -> str:
        """Short architecture name (``x86``, ``arm`` or ``riscv``)."""
        return self.isa.name

    @property
    def triple(self) -> str:
        """LLVM-style target triple."""
        return self.isa.triple

    # -- constructors ----------------------------------------------------
    @staticmethod
    def x86(**kwargs) -> "Target":
        """The x86-64 target (AMD Ryzen 7 5800X class, AVX2)."""
        return Target(isa=ISA_SPECS["x86"], **kwargs)

    @staticmethod
    def arm(**kwargs) -> "Target":
        """The AArch64 target (ARM Cortex-A72 class, NEON)."""
        return Target(isa=ISA_SPECS["arm"], **kwargs)

    @staticmethod
    def riscv(**kwargs) -> "Target":
        """The RV64GC target (SiFive U74 class, no vector unit)."""
        return Target(isa=ISA_SPECS["riscv"], **kwargs)

    @staticmethod
    def from_name(name: str, **kwargs) -> "Target":
        """Create a target from a short architecture name."""
        key = name.strip().lower()
        aliases = {
            "x86": "x86",
            "x86_64": "x86",
            "amd64": "x86",
            "arm": "arm",
            "aarch64": "arm",
            "arm64": "arm",
            "riscv": "riscv",
            "riscv64": "riscv",
            "rv64": "riscv",
        }
        if key not in aliases:
            raise ValueError(f"unknown target name {name!r}")
        return Target(isa=ISA_SPECS[aliases[key]], **kwargs)

    def __repr__(self) -> str:
        return f"Target({self.name})"


def target_from_string(spec: str) -> Target:
    """Parse a TVM-style target string.

    Supported forms::

        "llvm"                                        -> x86 host target
        "llvm -mtriple=aarch64-unknown-linux-gnu"     -> ARM target
        "llvm -mtriple=riscv64-unknown-linux-gnu"     -> RISC-V target
        "x86" / "arm" / "riscv"                       -> shorthand names
    """
    text = spec.strip()
    if not text:
        raise ValueError("empty target string")
    if not text.startswith("llvm"):
        return Target.from_name(text)
    triple = None
    for token in text.split():
        if token.startswith("-mtriple="):
            triple = token.split("=", 1)[1]
    if triple is None:
        return Target.x86()
    for name, isa in ISA_SPECS.items():
        if isa.triple == triple or triple.split("-")[0] in isa.triple:
            return Target(isa=isa)
    raise ValueError(f"unsupported target triple {triple!r}")

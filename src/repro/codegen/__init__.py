"""Code generation: lowered loop nests to abstract instruction programs.

The code generator plays the role LLVM plays in the paper's flow: it turns the
lowered tensor program into an executable artefact for a specific target ISA.
Because the downstream consumer is an instruction-accurate simulator, the
artefact does not contain encoded machine instructions; it is an
:class:`~repro.codegen.program.Program` that records, per loop body, the exact
instruction mix and the exact memory references (as strided access
descriptors), from which instruction counts and address traces are derived.
"""

from repro.codegen.isa import InstructionCategory, ISA_SPECS, IsaSpec
from repro.codegen.target import Target, target_from_string
from repro.codegen.program import (
    Buffer,
    MemoryAccess,
    LinearPredicate,
    Block,
    Loop,
    Guard,
    Program,
    PerfectNest,
)
from repro.codegen.codegen import build_program

__all__ = [
    "InstructionCategory",
    "ISA_SPECS",
    "IsaSpec",
    "Target",
    "target_from_string",
    "Buffer",
    "MemoryAccess",
    "LinearPredicate",
    "Block",
    "Loop",
    "Guard",
    "Program",
    "PerfectNest",
    "build_program",
]

"""Instruction-set abstractions for the supported target architectures.

The simulator is instruction-accurate but not timing-accurate, so what matters
about an ISA is *how many* instructions of each category a given source
construct expands to, not how fast they run.  The per-ISA expansion rules here
capture the first-order differences between x86-64 (complex addressing modes,
AVX2), AArch64 (NEON, simpler addressing) and RV64GC (scalar only, explicit
address arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass


class InstructionCategory:
    """Categories used for instruction counting (mirrors gem5's opClass split)."""

    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    INT_ALU = "int_alu"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_FMA = "fp_fma"
    FP_OTHER = "fp_other"
    VEC_LOAD = "vec_load"
    VEC_STORE = "vec_store"
    VEC_FP = "vec_fp"
    OTHER = "other"

    ALL = (
        LOAD,
        STORE,
        BRANCH,
        INT_ALU,
        FP_ADD,
        FP_MUL,
        FP_FMA,
        FP_OTHER,
        VEC_LOAD,
        VEC_STORE,
        VEC_FP,
        OTHER,
    )

    #: Categories that perform a data-memory access.
    MEMORY = (LOAD, STORE, VEC_LOAD, VEC_STORE)


@dataclass(frozen=True)
class IsaSpec:
    """Static properties of one instruction-set architecture.

    Attributes
    ----------
    name:
        Short architecture name used throughout the library.
    triple:
        LLVM-style target triple (kept for interface fidelity with TVM, where
        cross-compilation is requested through the triple).
    vector_bits:
        SIMD register width in bits; 0 means no usable vector unit.
    has_fma:
        Whether fused multiply-add instructions are available.
    has_predication:
        Whether small selects compile to conditional moves/selects instead of
        branches.
    complex_addressing:
        Whether base+index*scale addressing folds index arithmetic into the
        memory instruction (x86) or explicit address arithmetic is needed.
    avg_instruction_bytes:
        Average encoded instruction size, used for code-footprint (L1I)
        estimation.
    """

    name: str
    triple: str
    vector_bits: int
    has_fma: bool
    has_predication: bool
    complex_addressing: bool
    avg_instruction_bytes: float

    def vector_lanes(self, dtype_bytes: int) -> int:
        """Number of SIMD lanes for elements of ``dtype_bytes`` (0 = no SIMD)."""
        if self.vector_bits <= 0:
            return 0
        return max(self.vector_bits // (8 * dtype_bytes), 1)


#: The three ISAs evaluated in the paper.
ISA_SPECS = {
    "x86": IsaSpec(
        name="x86",
        triple="x86_64-unknown-linux-gnu",
        vector_bits=256,
        has_fma=True,
        has_predication=True,
        complex_addressing=True,
        avg_instruction_bytes=4.2,
    ),
    "arm": IsaSpec(
        name="arm",
        triple="aarch64-unknown-linux-gnu",
        vector_bits=128,
        has_fma=True,
        has_predication=True,
        complex_addressing=False,
        avg_instruction_bytes=4.0,
    ),
    "riscv": IsaSpec(
        name="riscv",
        triple="riscv64-unknown-linux-gnu",
        vector_bits=0,
        has_fma=True,
        has_predication=False,
        complex_addressing=False,
        avg_instruction_bytes=4.0,
    ),
}
